#!/usr/bin/env bash
# Local CI gate — the same sequence .github/workflows/ci.yml runs.
# Everything is offline: dependencies are vendored under vendor/.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --release --offline

echo "== test (workspace) =="
cargo test --workspace --offline -q

echo "CI gate passed."
