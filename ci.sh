#!/usr/bin/env bash
# Local CI gate — the same sequence .github/workflows/ci.yml runs.
# Everything is offline: dependencies are vendored under vendor/.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all --check

echo "== lint (eos-lint: panic-path ratchet, latch discipline, FORMAT.md drift, lock order, durability order) =="
cargo run -q --offline -p eos-lint -- .

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --release --offline

echo "== test (workspace) =="
cargo test --workspace --offline -q

echo "== bench smoke (compare --quick, BENCH_obs.json) =="
# One experiment binary end-to-end in quick mode: exercises the store
# comparison harness and proves the observability snapshot lands in
# BENCH_obs.json for CI diffing.
rm -f BENCH_obs.json
cargo run --release --offline -q -p eos-bench --bin compare -- --quick
test -s BENCH_obs.json || { echo "BENCH_obs.json missing or empty"; exit 1; }

echo "== bench smoke (concurrency --quick: group commit + MVCC readers/writers) =="
# The readers+writers table exercises the whole MVCC surface end to
# end (publication, pins, parked frees, reclaim) under real threads;
# --quick shrinks both tables to a CI-sized run.
cargo run --release --offline -q -p eos-bench --bin concurrency -- --quick
grep -q "bench.concurrency.rw" BENCH_obs.json \
    || { echo "rw bench gauges missing from BENCH_obs.json"; exit 1; }

echo "== striped scaling gate (16 writers: latch-shard advantage + buddy latch waits) =="
# The §17 sharding acceptance, enforced as a regression gate: at 16
# writers and equal syncs/commit, the 16-stripe solo pipeline must beat
# the single-stripe baseline by >= 1.6x, and the per-space buddy
# directory latches must stay uncontended (mean wait <= 50us). Both
# numbers come from the concurrency bench snapshot written above.
grep -q "bench.concurrency.striped.s16.t16.commits_per_sec" BENCH_obs.json \
    || { echo "striped bench gauges missing from BENCH_obs.json"; exit 1; }
python3 - <<'EOF'
import json

doc = json.load(open("BENCH_obs.json"))
metrics = doc["concurrency"]["metrics"]
gauges = metrics["gauges"]

adv = gauges["bench.concurrency.striped.advantage_t16_x100"]
assert adv >= 160, (
    f"striped 16-writer advantage regressed: {adv / 100:.2f}x < 1.60x"
)

hists = {h["name"]: h for h in metrics["histograms"]}
latch = hists["buddy.latch.wait_us"]
mean = latch["sum"] / max(latch["count"], 1)
assert mean <= 50, (
    f"buddy.latch.wait_us mean regressed: {mean:.1f}us > 50us "
    f"over {latch['count']} acquisitions"
)

print(
    f"striped advantage {adv / 100:.2f}x at 16 writers; "
    f"buddy latch mean wait {mean:.2f}us over {latch['count']} acquisitions"
)
EOF

echo "== trace (pipeline events: bench --trace, Chrome export, flight recorder) =="
# The eos-trace surface end to end: a traced 4-writer bench round must
# export a raw event dump, the CLI must reconstruct batches from it and
# convert it to Chrome trace_event JSON (validated by re-parsing with
# the in-tree parser), per-phase p50/p99 gauges must land in
# BENCH_obs.json, and a flight-recorder dump must round-trip.
rm -f TRACE_events.json TRACE_chrome.json FLIGHT.json
cargo run --release --offline -q -p eos-bench --bin concurrency -- --quick --trace
test -s TRACE_events.json || { echo "TRACE_events.json missing or empty"; exit 1; }
grep -q "bench.concurrency.trace.phase_a.p99_us" BENCH_obs.json \
    || { echo "trace p99 gauges missing from BENCH_obs.json"; exit 1; }
cargo run --release --offline -q -p eos-cli -- trace summary TRACE_events.json --top 3 \
    | grep -q "WALL-US" || { echo "trace summary reconstructed no batches"; exit 1; }
cargo run --release --offline -q -p eos-cli -- trace export TRACE_events.json --out TRACE_chrome.json
test -s TRACE_chrome.json || { echo "TRACE_chrome.json missing or empty"; exit 1; }
# Cross-thread causality (batch linkage, phase contiguity, histogram
# reconciliation) plus the flight-recorder round-trip through
# `eos trace dump`.
cargo test --release --offline --test trace_causality -- --nocapture
cargo test --release --offline -p eos-cli trace_subcommands -- --nocapture
rm -f TRACE_events.json TRACE_chrome.json FLIGHT.json

echo "== crash sweep (release, pinned seed) =="
# Exhaustive crash-point sweep: every write I/O point of the scripted
# workload, clean and torn, plus crashes during recovery itself. Release
# mode keeps the sweep fast; the pinned seed makes the differential
# companion reproducible. --nocapture surfaces the I/O-point count.
PROPTEST_SEED=3735928559 \
    cargo test --release --offline --test crash_sweep --test differential -- --nocapture

echo "== crashdep (L6 static + barrier-mutation smoke) =="
# The durability-ordering gate end to end: the static rule re-runs as
# part of the lint step above; here the runtime half elides the three
# pinned sync sites (undo force, data barrier, frame force) and the
# census test cross-checks the static seal-site list. The full
# every-sync sweep rides in the workspace test step.
cargo test --release --offline --test barrier_mutation quick_ -- --nocapture

echo "== concurrent stress (release, pinned seed) =="
# Multi-writer/multi-reader stress over the group-commit pipeline,
# checked against a single-threaded replay of the same seeded scripts.
# Release mode widens the real thread interleaving the test explores.
EOS_STRESS_SEED=3735928559 \
    cargo test --release --offline --test concurrent_store -- --nocapture

echo "== lockdep (runtime lock-order witness, pinned seed) =="
# The dynamic half of eos-lockdep: rebuild with the Tracked* wrappers
# armed and re-run the concurrency surface. The witness panics with
# both acquisition stacks on the first observed inversion or volume
# I/O under a forbids_io class — silence is the assertion. The
# lockdep_runtime test also proves the witness itself still fires.
# The mvcc battery rides along so the witness also watches the
# lock-free read path: pins, parked frees, and reclaim ordering.
# concurrent_store includes the 16-writer / 8-stripe / 4-space stress,
# so the sharded latches (buddy.space, wal.scopes, wal.stripe) run
# under the armed witness here.
EOS_STRESS_SEED=3735928559 \
    cargo test --release --offline --features lockdep \
    --test lockdep_runtime --test concurrent_store --test concurrent \
    --test mvcc -- --nocapture
cargo clippy --workspace --all-targets --offline --features lockdep -- -D warnings

echo "CI gate passed."
