//! # eos-cli — command-line access to EOS volumes
//!
//! A small tool over the library: format a file-backed volume, store and
//! retrieve named large objects through the boot-record catalog, edit
//! byte ranges in place, and inspect or verify the store.
//!
//! ```text
//! eos init db.eos --mb 64            # format a 64 MiB volume
//! eos put db.eos photo.jpg photo.jpg # store a file under a name
//! eos putmany db.eos a.bin b.bin     # store several files concurrently
//! eos ls db.eos                      # list objects
//! eos cat db.eos photo.jpg 0 128     # read a byte range (hex to stdout)
//! eos splice db.eos doc.txt 100 patch.bin   # insert bytes at offset
//! eos cut db.eos doc.txt 100 64      # delete a byte range
//! eos get db.eos photo.jpg out.jpg   # read an object into a file
//! eos rm db.eos photo.jpg            # delete object + catalog entry
//! eos stat db.eos [name]             # store / object statistics
//! eos stats db.eos [--json]          # per-operation I/O attribution
//! eos verify db.eos                  # full invariant check
//! eos check db.eos [--json]          # static analysis of every structure
//! eos compact db.eos doc.txt         # rewrite into maximal segments
//! eos snapshot create db.eos nightly # pin every named root, cheaply
//! eos snapshot read db.eos nightly doc.txt old.txt  # read as-of
//! eos recover db.eos                 # restart recovery + catalog GC
//! ```
//!
//! CLI volumes always use 4 KiB pages; the buddy-space layout is derived
//! from the file length, so a volume file is fully self-describing
//! (geometry from size, objects from the boot-record catalog).
//!
//! Volumes are **durable**: the last [`WAL_PAGES`] pages of the file
//! hold a write-ahead log, every command's mutations commit through it,
//! and every open runs restart recovery — so a `kill -9` (or power
//! loss) mid-command never corrupts the volume. `eos recover` runs
//! recovery explicitly, reports what it found, and reconciles the
//! catalog with the committed object set.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

use eos::buddy::Geometry;
use eos::catalog::Catalog;
use eos::core::{ConcurrentStore, LargeObject, ObjectStore, RecoveryReport, StoreConfig};
use eos::pager::{DiskProfile, FileVolume, SharedVolume};

/// Page size every CLI volume uses.
pub const PAGE_SIZE: usize = 4096;

/// Pages reserved at the end of every CLI volume for the write-ahead
/// log (1 MiB at 4 KiB pages: two ~508 KiB halves — CLI log records are
/// descriptor-sized, so each half holds thousands of them).
pub const WAL_PAGES: u64 = 256;

/// Errors surfaced to the user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

type Result<T> = std::result::Result<T, CliError>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(CliError(msg.into()))
}

macro_rules! bail {
    ($($arg:tt)*) => { return err(format!($($arg)*)) };
}

fn map_err<E: std::fmt::Display>(e: E) -> CliError {
    CliError(e.to_string())
}

/// Buddy-space layout for a volume of `total_pages` 4 KiB pages —
/// the same deterministic formula `init` uses, so any file length maps
/// back to its geometry.
pub fn layout_for(total_pages: u64) -> (usize, u64) {
    let g = Geometry::for_page_size(PAGE_SIZE);
    // The trailing log region comes off the top; buddy spaces of the
    // maximum size fill the rest. Derive the count from the span.
    let data_pages = total_pages.saturating_sub(WAL_PAGES);
    let span = g.max_space_pages + 1;
    let spaces = (data_pages / span).max(1) as usize;
    let pps = if data_pages / span == 0 {
        data_pages.saturating_sub(1).max(16)
    } else {
        g.max_space_pages
    };
    (spaces, pps)
}

/// Catalog namespace reserved for snapshot manifests: a snapshot named
/// `nightly` is cataloged as `.snap/nightly`, so it survives every
/// command (including `eos recover`'s catalog GC) like any other named
/// object while staying visually separate in `eos ls`.
const SNAP_PREFIX: &str = ".snap/";

const SNAP_MAGIC: u32 = 0x454F_5350; // format-anchor: SNAP_MAGIC

/// Serialize a snapshot manifest: the root descriptor of every named
/// object at creation time. Descriptor-sized per entry — a snapshot of
/// a multi-gigabyte store is a few hundred bytes.
fn encode_manifest(entries: &[(String, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, desc) in entries {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(desc.len() as u32).to_le_bytes());
        out.extend_from_slice(desc);
    }
    out
}

fn decode_manifest(data: &[u8]) -> Result<Vec<(String, Vec<u8>)>> {
    let mut at = 0usize;
    let mut take = |n: usize| -> Result<&[u8]> {
        if at + n > data.len() {
            return err("snapshot manifest truncated");
        }
        let s = &data[at..at + n];
        at += n;
        Ok(s)
    };
    let u32_at = |b: &[u8]| u32::from_le_bytes(b.try_into().unwrap());
    if u32_at(take(4)?) != SNAP_MAGIC {
        return err("not a snapshot manifest (bad magic)");
    }
    let n = u32_at(take(4)?);
    let mut entries = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let nl = u32_at(take(4)?) as usize;
        let name = String::from_utf8(take(nl)?.to_vec())
            .map_err(|_| CliError("snapshot manifest: name not UTF-8".into()))?;
        let dl = u32_at(take(4)?) as usize;
        entries.push((name, take(dl)?.to_vec()));
    }
    Ok(entries)
}

/// Is the pinned root still the live root of some cataloged object?
/// Descriptor equality (same id, root page, size, LSN) means the root —
/// and, by the shadow rule, every page beneath it — is exactly the
/// committed tree the snapshot saw. Anything else means the object was
/// modified or deleted since, its superseded pages were freed at commit,
/// and the pinned descriptor may point at reclaimed (reused) pages.
fn snap_entry_intact(cat: &Catalog, desc: &[u8]) -> bool {
    cat.names()
        .filter(|n| !n.starts_with(SNAP_PREFIX))
        .filter_map(|n| cat.get(n).ok())
        .any(|live| live.to_bytes() == desc)
}

fn open_volume(path: &Path) -> Result<(SharedVolume, usize, u64)> {
    let meta = std::fs::metadata(path).map_err(|e| CliError(format!("{}: {e}", path.display())))?;
    let total_pages = meta.len() / PAGE_SIZE as u64;
    let (spaces, pps) = layout_for(total_pages);
    let vol = FileVolume::open(path, PAGE_SIZE, DiskProfile::MODERN_HDD)
        .map_err(map_err)?
        .shared();
    Ok((vol, spaces, pps))
}

/// Open a CLI volume, running restart recovery (a no-op on a cleanly
/// closed volume). Every command goes through here, so a volume left
/// behind by a crashed command heals on its next use. The store joins
/// the process-global metrics domain, so `eos stats` sees the I/O
/// every command in this process attributed to its operations.
fn open_store_recover(path: &Path) -> Result<(ObjectStore, RecoveryReport)> {
    let (vol, spaces, pps) = open_volume(path)?;
    ObjectStore::open_durable_with(
        vol,
        spaces,
        pps,
        StoreConfig::default(),
        WAL_PAGES,
        eos::obs::global(),
    )
    .map_err(map_err)
}

fn open_store(path: &Path) -> Result<ObjectStore> {
    open_store_recover(path).map(|(store, _)| store)
}

/// Static whole-volume analysis: open the store and run the full
/// `eos-check` suite over every cataloged object *plus* the catalog
/// object itself (it owns pages too — without it the census would
/// report its pages as leaks). Falls back to a raw directory audit
/// when the volume is too damaged to open.
fn run_check(path: &Path) -> Result<eos_check::Report> {
    match open_store(path) {
        Ok(store) => {
            let mut objects: Vec<(String, LargeObject)> = Vec::new();
            let boot = store.read_boot_record().map_err(map_err)?;
            if !boot.is_empty() {
                let cat_obj = LargeObject::from_bytes(&boot).map_err(map_err)?;
                objects.push(("<catalog>".into(), cat_obj));
            }
            let cat = Catalog::load(&store).map_err(map_err)?;
            for name in cat.names() {
                objects.push((name.to_string(), cat.get(name).map_err(map_err)?));
            }
            Ok(eos_check::check_store(&store, &objects, None))
        }
        Err(open_err) => {
            // The store refused to open (corrupt log superblocks, torn
            // directory, bad boot record, …): audit the raw directory
            // pages instead, and surface the refusal itself as an
            // error — a volume whose store cannot open is never clean.
            let meta = std::fs::metadata(path)
                .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
            let total_pages = meta.len() / PAGE_SIZE as u64;
            let (spaces, pps) = layout_for(total_pages);
            let vol = FileVolume::open(path, PAGE_SIZE, DiskProfile::MODERN_HDD)
                .map_err(map_err)?
                .shared();
            let mut report = eos_check::audit_volume(&vol, spaces, pps);
            report.findings.insert(
                0,
                eos_check::Finding {
                    severity: eos_check::Severity::Error,
                    layer: eos_check::Layer::Wal,
                    location: path.display().to_string(),
                    detail: format!("store failed to open: {open_err}"),
                },
            );
            Ok(report)
        }
    }
}

/// One pipeline event parsed back from a raw dump
/// ([`eos::obs::pipe_doc_json`]) or a flight-recorder file. The phase
/// label comes back as an owned string — the in-process
/// [`eos::obs::PipeEvent`] uses `&'static str`, so dumps round-trip
/// through this mirror instead.
#[derive(Debug, Clone)]
struct PipeRow {
    seq: u64,
    ts_ns: u64,
    kind: String,
    phase: String,
    trace_id: u64,
    batch_id: u64,
    thread: u64,
}

fn pipe_rows(events: &[eos_check::Json]) -> Vec<PipeRow> {
    let u = |j: &eos_check::Json, k: &str| j.get(k).and_then(eos_check::Json::as_u64).unwrap_or(0);
    let s = |j: &eos_check::Json, k: &str| {
        j.get(k)
            .and_then(eos_check::Json::as_str)
            .unwrap_or("")
            .to_string()
    };
    events
        .iter()
        .map(|e| PipeRow {
            seq: u(e, "seq"),
            ts_ns: u(e, "ts_ns"),
            kind: s(e, "kind"),
            phase: s(e, "phase"),
            trace_id: u(e, "trace_id"),
            batch_id: u(e, "batch_id"),
            thread: u(e, "thread"),
        })
        .collect()
}

/// Parse a raw pipeline-event document; returns the rows plus the ring
/// accounting (`recorded`, `capacity`, `dropped`).
fn parse_pipe_doc(text: &str) -> Result<(Vec<PipeRow>, u64, u64, u64)> {
    let doc =
        eos_check::schema::parse(text).map_err(|e| CliError(format!("bad trace JSON: {e}")))?;
    let events = doc
        .get("events")
        .and_then(eos_check::Json::as_array)
        .ok_or(CliError("not a trace dump: no `events` array".into()))?;
    let u = |k: &str| doc.get(k).and_then(eos_check::Json::as_u64).unwrap_or(0);
    Ok((
        pipe_rows(events),
        u("recorded"),
        u("capacity"),
        u("dropped"),
    ))
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Re-emit parsed rows as Chrome `trace_event` JSON — the same format
/// [`eos::obs::chrome_trace_json`] produces in-process, rebuilt here
/// because a dump's phase labels are no longer `&'static str`.
fn chrome_from_rows(rows: &[PipeRow]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (ph, scope) = match r.kind.as_str() {
            "begin" => ("B", ""),
            "end" => ("E", ""),
            _ => ("i", ",\"s\":\"t\""),
        };
        out.push_str(&format!(
            "{{\"name\":{},\"ph\":\"{ph}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}{scope},\
             \"args\":{{\"seq\":{},\"kind\":{},\"trace_id\":{},\"batch_id\":{}}}}}",
            json_str(&r.phase),
            r.ts_ns / 1000,
            r.ts_ns % 1000,
            r.thread,
            r.seq,
            json_str(&r.kind),
            r.trace_id,
            r.batch_id
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// One reconstructed group-commit batch: the leader's `commit` span
/// with its Phase A–D breakdown and the follower head-count.
struct BatchSummary {
    batch_id: u64,
    leader: u64,
    thread: u64,
    wall_us: u64,
    phases_us: [u64; 4],
    members: u64,
}

/// Pair up `commit` begin/end spans per batch and attach the phase
/// breakdown; unmatched begins (still in flight when the dump was
/// taken) are skipped.
fn summarize_batches(rows: &[PipeRow]) -> Vec<BatchSummary> {
    use std::collections::HashMap;
    const PHASES: [&str; 4] = [
        "commit.phase_a",
        "commit.phase_b",
        "commit.phase_c",
        "commit.phase_d",
    ];
    let mut open: HashMap<u64, &PipeRow> = HashMap::new();
    let mut phase_open: HashMap<(u64, usize), u64> = HashMap::new();
    let mut phases: HashMap<u64, [u64; 4]> = HashMap::new();
    let mut members: HashMap<u64, BTreeSet<u64>> = HashMap::new();
    let mut out = Vec::new();
    for r in rows {
        if r.phase == "commit.queue_wait" && r.kind == "end" {
            members.entry(r.batch_id).or_default().insert(r.trace_id);
        } else if let Some(i) = PHASES.iter().position(|p| *p == r.phase) {
            match r.kind.as_str() {
                "begin" => {
                    phase_open.insert((r.batch_id, i), r.ts_ns);
                }
                "end" => {
                    if let Some(t0) = phase_open.remove(&(r.batch_id, i)) {
                        phases.entry(r.batch_id).or_default()[i] =
                            r.ts_ns.saturating_sub(t0) / 1000;
                    }
                }
                _ => {}
            }
        } else if r.phase == "commit" {
            match r.kind.as_str() {
                "begin" => {
                    open.insert(r.batch_id, r);
                }
                "end" => {
                    if let Some(b) = open.remove(&r.batch_id) {
                        out.push(BatchSummary {
                            batch_id: r.batch_id,
                            leader: b.trace_id,
                            thread: b.thread,
                            wall_us: r.ts_ns.saturating_sub(b.ts_ns) / 1000,
                            phases_us: [0; 4],
                            members: 0,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    for b in &mut out {
        b.phases_us = phases.remove(&b.batch_id).unwrap_or_default();
        b.members = members.remove(&b.batch_id).map_or(0, |m| m.len() as u64);
    }
    out.sort_by_key(|b| std::cmp::Reverse(b.wall_us));
    out
}

fn render_pipe_rows(out: &mut String, rows: &[PipeRow]) {
    writeln!(
        out,
        "{:>6} {:>12} {:<7} {:<20} {:>16} {:>6} {:>6}",
        "SEQ", "TS-US", "KIND", "PHASE", "TRACE", "BATCH", "THR"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>6} {:>12} {:<7} {:<20} {:>16} {:>6} {:>6}",
            r.seq,
            r.ts_ns / 1000,
            r.kind,
            r.phase,
            r.trace_id,
            r.batch_id,
            r.thread
        )
        .unwrap();
    }
}

/// Run one CLI invocation; returns the text to print.
pub fn run(args: &[String]) -> Result<String> {
    let mut out = String::new();
    match args {
        [] => return err(USAGE),
        [cmd, rest @ ..] => match (cmd.as_str(), rest) {
            ("init", [file, opts @ ..]) => {
                let mut mb = 64u64;
                let mut it = opts.iter();
                while let Some(o) = it.next() {
                    match o.as_str() {
                        "--mb" => {
                            mb = it
                                .next()
                                .and_then(|v| v.parse().ok())
                                .ok_or(CliError("--mb needs a number".into()))?;
                        }
                        other => bail!("unknown option {other}"),
                    }
                }
                let total_pages = (mb << 20) / PAGE_SIZE as u64;
                if total_pages < WAL_PAGES + 32 {
                    bail!("--mb {mb} is too small: the volume needs room for the log region");
                }
                let (spaces, pps) = layout_for(total_pages);
                let vol = FileVolume::create(
                    Path::new(file),
                    PAGE_SIZE,
                    (pps + 1) * spaces as u64 + WAL_PAGES,
                    DiskProfile::MODERN_HDD,
                )
                .map_err(map_err)?
                .shared();
                let mut store = ObjectStore::create_durable(
                    vol,
                    spaces,
                    pps,
                    StoreConfig::default(),
                    WAL_PAGES,
                )
                .map_err(map_err)?;
                store.set_metrics(eos::obs::global());
                Catalog::new().save(&mut store).map_err(map_err)?;
                writeln!(
                    out,
                    "formatted {file}: {spaces} buddy space(s) × {pps} pages ({:.1} MiB data)",
                    (spaces as u64 * pps * PAGE_SIZE as u64) as f64 / (1 << 20) as f64
                )
                .unwrap();
            }
            ("put", [file, name, input]) => {
                let data = std::fs::read(input).map_err(map_err)?;
                let mut store = open_store(Path::new(file))?;
                let mut cat = Catalog::load(&store).map_err(map_err)?;
                if let Ok(mut old) = cat.get(name) {
                    store.delete_object(&mut old).map_err(map_err)?;
                }
                let obj = store
                    .create_with(&data, Some(data.len() as u64))
                    .map_err(map_err)?;
                cat.put(name, &obj);
                cat.save(&mut store).map_err(map_err)?;
                writeln!(out, "stored {name}: {} bytes", data.len()).unwrap();
            }
            ("putmany", [file, inputs @ ..]) if !inputs.is_empty() => {
                let mut datas = Vec::with_capacity(inputs.len());
                for input in inputs {
                    datas.push((input.clone(), std::fs::read(input).map_err(map_err)?));
                }
                let mut store = open_store(Path::new(file))?;
                let mut cat = Catalog::load(&store).map_err(map_err)?;
                // Replacements are deleted up front, serially — the
                // concurrent phase then only creates fresh objects, so
                // the writer transactions are lock-disjoint.
                for (name, _) in &datas {
                    if let Ok(mut old) = cat.get(name) {
                        store.delete_object(&mut old).map_err(map_err)?;
                    }
                }
                let cs = ConcurrentStore::new(store);
                let mut stored: Vec<(String, LargeObject, usize)> = Vec::new();
                let results: Vec<std::thread::Result<_>> = std::thread::scope(|s| {
                    datas
                        .iter()
                        .map(|(name, data)| {
                            let cs = cs.clone();
                            s.spawn(move || -> std::result::Result<_, eos::core::Error> {
                                let txn = cs.begin();
                                let obj = txn.create(data, Some(data.len() as u64))?;
                                txn.commit()?;
                                Ok((name.clone(), obj, data.len()))
                            })
                        })
                        .collect::<Vec<_>>()
                        .into_iter()
                        .map(std::thread::ScopedJoinHandle::join)
                        .collect()
                });
                let mut store = match cs.try_into_inner() {
                    Ok(s) => s,
                    Err(_) => bail!("internal: store handle leaked past the ingest threads"),
                };
                for r in results {
                    match r {
                        Ok(Ok(entry)) => stored.push(entry),
                        Ok(Err(e)) => bail!("putmany: {e}"),
                        Err(_) => bail!("putmany: ingest thread panicked"),
                    }
                }
                for (name, obj, _) in &stored {
                    cat.put(name, obj);
                }
                cat.save(&mut store).map_err(map_err)?;
                let total: usize = stored.iter().map(|(_, _, n)| n).sum();
                writeln!(
                    out,
                    "stored {} object(s), {total} bytes ({} writer threads, group commit)",
                    stored.len(),
                    datas.len()
                )
                .unwrap();
            }
            ("get", [file, name, output]) => {
                let store = open_store(Path::new(file))?;
                let cat = Catalog::load(&store).map_err(map_err)?;
                let obj = cat.get(name).map_err(map_err)?;
                let data = store.read_all(&obj).map_err(map_err)?;
                std::fs::write(output, &data).map_err(map_err)?;
                writeln!(out, "wrote {} bytes to {output}", data.len()).unwrap();
            }
            ("cat", [file, name, offset, len]) => {
                let store = open_store(Path::new(file))?;
                let cat = Catalog::load(&store).map_err(map_err)?;
                let obj = cat.get(name).map_err(map_err)?;
                let offset: u64 = offset.parse().map_err(map_err)?;
                let len: u64 = len.parse().map_err(map_err)?;
                let data = store.read(&obj, offset, len).map_err(map_err)?;
                for chunk in data.chunks(16) {
                    for b in chunk {
                        write!(out, "{b:02x} ").unwrap();
                    }
                    writeln!(out).unwrap();
                }
            }
            ("ls", [file]) => {
                let store = open_store(Path::new(file))?;
                let cat = Catalog::load(&store).map_err(map_err)?;
                if cat.is_empty() {
                    writeln!(out, "(empty)").unwrap();
                }
                for name in cat.names() {
                    let obj = cat.get(name).map_err(map_err)?;
                    let stats = store.object_stats(&obj).map_err(map_err)?;
                    writeln!(
                        out,
                        "{name}\t{} bytes\t{} segment(s)\theight {}",
                        obj.size(),
                        stats.segments,
                        stats.height
                    )
                    .unwrap();
                }
            }
            ("rm", [file, name]) => {
                let mut store = open_store(Path::new(file))?;
                let mut cat = Catalog::load(&store).map_err(map_err)?;
                let mut obj = cat.get(name).map_err(map_err)?;
                store.delete_object(&mut obj).map_err(map_err)?;
                cat.remove(name);
                cat.save(&mut store).map_err(map_err)?;
                writeln!(out, "removed {name}").unwrap();
            }
            ("splice", [file, name, offset, input]) => {
                let data = std::fs::read(input).map_err(map_err)?;
                let offset: u64 = offset.parse().map_err(map_err)?;
                let mut store = open_store(Path::new(file))?;
                let mut cat = Catalog::load(&store).map_err(map_err)?;
                let mut obj = cat.get(name).map_err(map_err)?;
                store.insert(&mut obj, offset, &data).map_err(map_err)?;
                cat.put(name, &obj);
                cat.save(&mut store).map_err(map_err)?;
                writeln!(
                    out,
                    "inserted {} bytes at {offset}; {name} is now {} bytes",
                    data.len(),
                    obj.size()
                )
                .unwrap();
            }
            ("cut", [file, name, offset, len]) => {
                let offset: u64 = offset.parse().map_err(map_err)?;
                let len: u64 = len.parse().map_err(map_err)?;
                let mut store = open_store(Path::new(file))?;
                let mut cat = Catalog::load(&store).map_err(map_err)?;
                let mut obj = cat.get(name).map_err(map_err)?;
                store.delete(&mut obj, offset, len).map_err(map_err)?;
                cat.put(name, &obj);
                cat.save(&mut store).map_err(map_err)?;
                writeln!(
                    out,
                    "cut [{offset}, {}); {name} is now {} bytes",
                    offset + len,
                    obj.size()
                )
                .unwrap();
            }
            ("append", [file, name, input]) => {
                let data = std::fs::read(input).map_err(map_err)?;
                let mut store = open_store(Path::new(file))?;
                let mut cat = Catalog::load(&store).map_err(map_err)?;
                let mut obj = cat.get(name).map_err(map_err)?;
                store.append(&mut obj, &data).map_err(map_err)?;
                cat.put(name, &obj);
                cat.save(&mut store).map_err(map_err)?;
                writeln!(
                    out,
                    "appended {} bytes; {name} is now {} bytes",
                    data.len(),
                    obj.size()
                )
                .unwrap();
            }
            ("compact", [file, name]) => {
                let mut store = open_store(Path::new(file))?;
                let mut cat = Catalog::load(&store).map_err(map_err)?;
                let mut obj = cat.get(name).map_err(map_err)?;
                let stats = store.compact(&mut obj).map_err(map_err)?;
                cat.put(name, &obj);
                cat.save(&mut store).map_err(map_err)?;
                writeln!(
                    out,
                    "compacted {name}: {} -> {} segment(s)",
                    stats.segments_before, stats.segments_after
                )
                .unwrap();
            }
            ("stat", [file]) => {
                let store = open_store(Path::new(file))?;
                let frag = store.buddy().fragmentation();
                let total = store.buddy().total_data_pages();
                writeln!(
                    out,
                    "{} / {total} pages free; largest contiguous run {} pages",
                    frag.free_pages, frag.largest_free_run
                )
                .unwrap();
            }
            ("stat", [file, name]) => {
                let store = open_store(Path::new(file))?;
                let cat = Catalog::load(&store).map_err(map_err)?;
                let obj = cat.get(name).map_err(map_err)?;
                let s = store.object_stats(&obj).map_err(map_err)?;
                writeln!(out, "{name}: {} bytes", s.size).unwrap();
                writeln!(
                    out,
                    "  {} segment(s) over {} leaf pages ({}..{} pages each)",
                    s.segments, s.leaf_pages, s.min_seg_pages, s.max_seg_pages
                )
                .unwrap();
                writeln!(
                    out,
                    "  tree height {}, {} index page(s), {:.1}% leaf utilization",
                    s.height,
                    s.index_pages,
                    100.0 * s.leaf_utilization(PAGE_SIZE)
                )
                .unwrap();
            }
            ("stats", [file, opts @ ..]) => {
                let mut json = false;
                let mut prom = false;
                let mut trace = false;
                for o in opts {
                    match o.as_str() {
                        "--json" => json = true,
                        "--prom" => prom = true,
                        "--trace" => trace = true,
                        other => bail!("unknown option {other}"),
                    }
                }
                if json && prom {
                    bail!("--json and --prom are mutually exclusive");
                }
                if trace && (json || prom) {
                    bail!("--trace is a human-readable dump; drop --json/--prom");
                }
                let store = open_store(Path::new(file))?;
                let snap = store.metrics_snapshot();
                if json {
                    // The shared report envelope (same shape as
                    // `eos check --json`): stats never finds problems,
                    // so `clean` is constant and `findings` empty.
                    writeln!(
                        out,
                        "{{\"clean\":true,\"findings\":[],\"metrics\":{}}}",
                        snap.to_json_object()
                    )
                    .unwrap();
                } else if prom {
                    out.push_str(&snap.render_prometheus());
                } else {
                    out.push_str(&snap.render_table());
                    if trace {
                        out.push('\n');
                        out.push_str(&eos::obs::render_trace(
                            &store.metrics().trace(),
                            snap.trace_recorded,
                            snap.trace_capacity,
                        ));
                    }
                }
            }
            ("trace", [sub, rest @ ..]) => match (sub.as_str(), rest) {
                ("summary", [file, opts @ ..]) => {
                    let mut top = 5usize;
                    let mut it = opts.iter();
                    while let Some(o) = it.next() {
                        match o.as_str() {
                            "--top" => {
                                top = it
                                    .next()
                                    .and_then(|v| v.parse().ok())
                                    .ok_or(CliError("--top needs a number".into()))?;
                            }
                            other => bail!("unknown option {other}"),
                        }
                    }
                    let text = std::fs::read_to_string(file).map_err(map_err)?;
                    let (rows, recorded, capacity, dropped) = parse_pipe_doc(&text)?;
                    let stalls = rows.iter().filter(|r| r.kind == "stall").count();
                    writeln!(
                        out,
                        "pipeline: {} event(s) in window ({recorded} recorded, ring \
                         capacity {capacity}, {dropped} dropped), {stalls} stall(s)",
                        rows.len()
                    )
                    .unwrap();
                    let batches = summarize_batches(&rows);
                    if batches.is_empty() {
                        writeln!(out, "(no completed commit batches in the window)").unwrap();
                    } else {
                        writeln!(
                            out,
                            "top {} slowest commit batch(es) of {}:",
                            top.min(batches.len()),
                            batches.len()
                        )
                        .unwrap();
                        writeln!(
                            out,
                            "{:>6} {:>8} {:>4} {:>5} {:>9} {:>8} {:>8} {:>8} {:>8}",
                            "BATCH",
                            "LEADER",
                            "THR",
                            "TXNS",
                            "WALL-US",
                            "A-US",
                            "B-US",
                            "C-US",
                            "D-US"
                        )
                        .unwrap();
                        for b in batches.iter().take(top) {
                            writeln!(
                                out,
                                "{:>6} {:>8} {:>4} {:>5} {:>9} {:>8} {:>8} {:>8} {:>8}",
                                b.batch_id,
                                b.leader,
                                b.thread,
                                b.members,
                                b.wall_us,
                                b.phases_us[0],
                                b.phases_us[1],
                                b.phases_us[2],
                                b.phases_us[3]
                            )
                            .unwrap();
                        }
                    }
                }
                ("export", [file, opts @ ..]) => {
                    let mut dest: Option<&str> = None;
                    let mut it = opts.iter();
                    while let Some(o) = it.next() {
                        match o.as_str() {
                            "--out" => {
                                dest =
                                    Some(it.next().ok_or(CliError("--out needs a path".into()))?);
                            }
                            other => bail!("unknown option {other}"),
                        }
                    }
                    let text = std::fs::read_to_string(file).map_err(map_err)?;
                    let (rows, ..) = parse_pipe_doc(&text)?;
                    let chrome = chrome_from_rows(&rows);
                    // Self-check: the export must round-trip through the
                    // house parser with every event intact.
                    let parsed = eos_check::schema::parse(&chrome)
                        .map_err(|e| CliError(format!("export failed self-check: {e}")))?;
                    let n = parsed
                        .get("traceEvents")
                        .and_then(eos_check::Json::as_array)
                        .map_or(0, <[eos_check::Json]>::len);
                    if n != rows.len() {
                        bail!("export failed self-check: {n} of {} events", rows.len());
                    }
                    match dest {
                        Some(p) => {
                            std::fs::write(p, &chrome).map_err(map_err)?;
                            writeln!(out, "wrote {n} trace event(s) to {p}").unwrap();
                        }
                        None => out.push_str(&chrome),
                    }
                }
                ("dump", [file]) => {
                    let text = std::fs::read_to_string(file).map_err(map_err)?;
                    let doc = eos_check::schema::parse(&text)
                        .map_err(|e| CliError(format!("bad flight dump: {e}")))?;
                    let flight = doc
                        .get("flight")
                        .ok_or(CliError("not a flight dump: no `flight` object".into()))?;
                    let reason = flight
                        .get("reason")
                        .and_then(eos_check::Json::as_str)
                        .unwrap_or("unknown");
                    let pipe = flight
                        .get("pipe")
                        .ok_or(CliError("flight dump has no `pipe` document".into()))?;
                    let rows = pipe
                        .get("events")
                        .and_then(eos_check::Json::as_array)
                        .map(pipe_rows)
                        .unwrap_or_default();
                    let u = |k: &str| pipe.get(k).and_then(eos_check::Json::as_u64).unwrap_or(0);
                    let spans = flight
                        .get("spans")
                        .and_then(eos_check::Json::as_array)
                        .map_or(0, <[eos_check::Json]>::len);
                    writeln!(out, "flight recorder dump — reason `{reason}`").unwrap();
                    writeln!(
                        out,
                        "pipeline window: {} event(s) ({} recorded, ring capacity {}, \
                         {} dropped); {spans} completed span(s)",
                        rows.len(),
                        u("recorded"),
                        u("capacity"),
                        u("dropped")
                    )
                    .unwrap();
                    render_pipe_rows(&mut out, &rows);
                }
                _ => bail!("usage: eos trace summary|export|dump ...\n{USAGE}"),
            },
            ("verify", [file]) => {
                let store = open_store(Path::new(file))?;
                store.buddy().check_invariants().map_err(map_err)?;
                let cat = Catalog::load(&store).map_err(map_err)?;
                let mut objects = 0;
                for name in cat.names() {
                    let obj = cat.get(name).map_err(map_err)?;
                    store
                        .verify_object(&obj)
                        .map_err(|e| CliError(format!("{name}: {e}")))?;
                    objects += 1;
                }
                writeln!(
                    out,
                    "ok: buddy maps consistent, {objects} object(s) verified"
                )
                .unwrap();
            }
            ("check", [file, opts @ ..]) => {
                let mut json = false;
                for o in opts {
                    match o.as_str() {
                        "--json" => json = true,
                        other => bail!("unknown option {other}"),
                    }
                }
                let report = run_check(Path::new(file))?;
                let rendered = if json {
                    let mut j = report.to_json();
                    j.push('\n');
                    j
                } else {
                    report.render_table()
                };
                // fsck semantics: findings worse than informational fail
                // the command (non-zero exit) but still print the report.
                if report.is_clean() {
                    out.push_str(&rendered);
                } else {
                    return Err(CliError(rendered));
                }
            }
            ("lint", opts) => {
                let mut json = false;
                let mut locks_dot = false;
                let mut durability_dot = false;
                let mut root = None;
                let mut lint_opts = eos_lint::Options::default();
                for o in opts {
                    match o.as_str() {
                        "--json" => json = true,
                        "--locks-dot" => locks_dot = true,
                        "--durability-dot" => durability_dot = true,
                        "--verbose" => lint_opts.verbose = true,
                        "--update-ratchet" => lint_opts.update_ratchet = true,
                        other if !other.starts_with('-') && root.is_none() => {
                            root = Some(other.to_string());
                        }
                        other => bail!("unknown option {other}"),
                    }
                }
                let root = root.unwrap_or_else(|| ".".to_string());
                let report = eos_lint::lint_workspace(Path::new(&root), &lint_opts)
                    .map_err(|e| CliError(format!("lint {root}: {e}")))?;
                let rendered = if locks_dot {
                    report.to_dot()
                } else if durability_dot {
                    report.to_durability_dot()
                } else if json {
                    let mut j = report.to_json();
                    j.push('\n');
                    j
                } else {
                    report.render_table()
                };
                // Same gate semantics as `check`: anything worse than
                // informational fails the command but still prints.
                if report.is_clean() {
                    out.push_str(&rendered);
                } else {
                    return Err(CliError(rendered));
                }
            }
            ("recover", [file]) => {
                let path = Path::new(file);
                let (mut store, report) = open_store_recover(path)?;
                writeln!(
                    out,
                    "recovered {file}: {} log record(s) scanned{}",
                    report.records_scanned,
                    if report.torn_tail {
                        ", torn tail cut"
                    } else {
                        ""
                    }
                )
                .unwrap();
                writeln!(
                    out,
                    "  rolled back {} uncommitted op(s), restored {} page(s) from before-images",
                    report.rolled_back_ops, report.restored_pages
                )
                .unwrap();
                writeln!(
                    out,
                    "  {} committed object(s), log tail LSN {}",
                    report.objects.len(),
                    report.max_lsn
                )
                .unwrap();

                // Reconcile the catalog with the committed object set —
                // the log is authoritative, the boot record is only a
                // pointer. A crash between a commit and the catalog
                // save can leave stale names or orphaned objects.
                let committed: BTreeSet<u64> = report.objects.iter().map(LargeObject::id).collect();
                // A zeroed boot page is indistinguishable from a
                // never-saved catalog (both read back empty), so an
                // empty result with committed objects present also
                // takes the salvage path.
                let loaded = Catalog::load(&store);
                let needs_salvage = match &loaded {
                    Ok(c) => c.is_empty() && !report.objects.is_empty(),
                    Err(_) => true,
                };
                let mut cat = match loaded {
                    Ok(c) if !needs_salvage => c,
                    _ => {
                        // The boot record (a raw, unlogged page) did not
                        // survive. The catalog object itself is committed
                        // through the log — find it and re-point the boot
                        // record at it.
                        let salvaged = report.objects.iter().find(|obj| {
                            store
                                .read_all(obj)
                                .is_ok_and(|bytes| Catalog::parse(&bytes).is_ok())
                        });
                        match salvaged {
                            Some(obj) => {
                                store.write_boot_record(&obj.to_bytes()).map_err(map_err)?;
                                writeln!(
                                    out,
                                    "  boot record rebuilt from committed catalog object {}",
                                    obj.id()
                                )
                                .unwrap();
                                Catalog::load(&store).map_err(map_err)?
                            }
                            None => {
                                writeln!(out, "  catalog lost; starting empty").unwrap();
                                Catalog::new()
                            }
                        }
                    }
                };
                let catalog_obj_id = store
                    .read_boot_record()
                    .ok()
                    .filter(|b| !b.is_empty())
                    .and_then(|b| LargeObject::from_bytes(&b).ok())
                    .map(|o| o.id());

                // Drop names whose objects did not survive recovery.
                let names: Vec<String> = cat.names().map(str::to_string).collect();
                let mut dropped = 0usize;
                for name in names {
                    let live = cat.get(&name).is_ok_and(|o| committed.contains(&o.id()));
                    if !live {
                        cat.remove(&name);
                        dropped += 1;
                    }
                }
                // Collect committed objects no name (and no boot pointer)
                // reaches — garbage from a crash between commit and
                // catalog save.
                let named_ids: BTreeSet<u64> = cat
                    .names()
                    .filter_map(|n| cat.get(n).ok())
                    .map(|o| o.id())
                    .collect();
                let mut collected = 0usize;
                for obj in &report.objects {
                    if Some(obj.id()) != catalog_obj_id && !named_ids.contains(&obj.id()) {
                        let mut o = obj.clone();
                        store.delete_object(&mut o).map_err(map_err)?;
                        collected += 1;
                    }
                }
                if dropped > 0 || collected > 0 {
                    cat.save(&mut store).map_err(map_err)?;
                }
                writeln!(
                    out,
                    "  catalog: {} name(s) kept, {dropped} dropped, {collected} orphan object(s) collected",
                    cat.len()
                )
                .unwrap();
            }
            ("snapshot", [sub, rest @ ..]) => match (sub.as_str(), rest) {
                ("create", [file, snap]) => {
                    if snap.contains('/') {
                        bail!("snapshot names must not contain `/`");
                    }
                    let mut store = open_store(Path::new(file))?;
                    let mut cat = Catalog::load(&store).map_err(map_err)?;
                    let key = format!("{SNAP_PREFIX}{snap}");
                    if cat.get(&key).is_ok() {
                        bail!("snapshot `{snap}` already exists");
                    }
                    let mut entries: Vec<(String, Vec<u8>)> = Vec::new();
                    let mut max_lsn = 0u64;
                    for name in cat.names().filter(|n| !n.starts_with(SNAP_PREFIX)) {
                        let obj = cat.get(name).map_err(map_err)?;
                        max_lsn = max_lsn.max(obj.lsn());
                        entries.push((name.to_string(), obj.to_bytes()));
                    }
                    let bytes = encode_manifest(&entries);
                    let obj = store
                        .create_with(&bytes, Some(bytes.len() as u64))
                        .map_err(map_err)?;
                    cat.put(&key, &obj);
                    cat.save(&mut store).map_err(map_err)?;
                    writeln!(
                        out,
                        "snapshot {snap}: pinned {} object(s) at lsn {max_lsn} ({} manifest bytes)",
                        entries.len(),
                        bytes.len()
                    )
                    .unwrap();
                }
                ("list", [file]) => {
                    let store = open_store(Path::new(file))?;
                    let cat = Catalog::load(&store).map_err(map_err)?;
                    let snaps: Vec<String> = cat
                        .names()
                        .filter_map(|n| n.strip_prefix(SNAP_PREFIX))
                        .map(str::to_string)
                        .collect();
                    if snaps.is_empty() {
                        writeln!(out, "(no snapshots)").unwrap();
                    }
                    for snap in snaps {
                        let mobj = cat.get(&format!("{SNAP_PREFIX}{snap}")).map_err(map_err)?;
                        let entries = decode_manifest(&store.read_all(&mobj).map_err(map_err)?)?;
                        let max_lsn = entries
                            .iter()
                            .filter_map(|(_, d)| LargeObject::from_bytes(d).ok())
                            .map(|o| o.lsn())
                            .max()
                            .unwrap_or(0);
                        let intact = entries
                            .iter()
                            .filter(|(_, d)| snap_entry_intact(&cat, d))
                            .count();
                        writeln!(
                            out,
                            "{snap}\t{} object(s)\tlsn {max_lsn}\t{intact} still readable",
                            entries.len()
                        )
                        .unwrap();
                    }
                }
                ("read", [file, snap, name, output]) => {
                    let store = open_store(Path::new(file))?;
                    let cat = Catalog::load(&store).map_err(map_err)?;
                    let mobj = cat
                        .get(&format!("{SNAP_PREFIX}{snap}"))
                        .map_err(|_| CliError(format!("no snapshot named `{snap}`")))?;
                    let entries = decode_manifest(&store.read_all(&mobj).map_err(map_err)?)?;
                    let desc = entries
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, d)| d)
                        .ok_or_else(|| {
                            CliError(format!("snapshot `{snap}` has no object `{name}`"))
                        })?;
                    if !snap_entry_intact(&cat, desc) {
                        bail!(
                            "`{name}` diverged since snapshot `{snap}`: its pinned root is no \
                             longer live and the pages may have been reclaimed"
                        );
                    }
                    let obj = LargeObject::from_bytes(desc).map_err(map_err)?;
                    let data = store.read_all(&obj).map_err(map_err)?;
                    std::fs::write(output, &data).map_err(map_err)?;
                    writeln!(
                        out,
                        "wrote {} bytes to {output} (as of snapshot {snap})",
                        data.len()
                    )
                    .unwrap();
                }
                ("drop", [file, snap]) => {
                    let mut store = open_store(Path::new(file))?;
                    let mut cat = Catalog::load(&store).map_err(map_err)?;
                    let key = format!("{SNAP_PREFIX}{snap}");
                    let mut mobj = cat
                        .get(&key)
                        .map_err(|_| CliError(format!("no snapshot named `{snap}`")))?;
                    store.delete_object(&mut mobj).map_err(map_err)?;
                    cat.remove(&key);
                    cat.save(&mut store).map_err(map_err)?;
                    writeln!(out, "dropped snapshot {snap}").unwrap();
                }
                _ => bail!("usage: eos snapshot create|list|read|drop ...\n{USAGE}"),
            },
            ("help", _) => return err(USAGE),
            (other, _) => bail!("unknown or malformed command `{other}`\n{USAGE}"),
        },
    }
    Ok(out)
}

/// Usage text.
pub const USAGE: &str = "\
usage: eos <command> ...
  init <file> [--mb N]            format a volume (default 64 MiB)
  put <file> <name> <input>       store a file as a named object
  putmany <file> <input>...       store several files concurrently
                                  (one transaction per file, batched
                                  through the group-commit log; each
                                  is cataloged under its input path)
  get <file> <name> <output>      read an object into a file
  cat <file> <name> <off> <len>   hex-dump a byte range
  ls <file>                       list objects
  rm <file> <name>                delete an object
  splice <file> <name> <off> <input>  insert bytes at an offset
  cut <file> <name> <off> <len>   delete a byte range
  append <file> <name> <input>    append bytes
  compact <file> <name>           rewrite into maximal segments
  stat <file> [name]              store or object statistics
  stats <file> [--json|--prom] [--trace]
                                  per-operation I/O attribution, metric
                                  registry, and trace-ring summary for
                                  this process (table, shared JSON
                                  envelope, or Prometheus text)
  trace summary <events.json> [--top N]
                                  reconstruct group-commit batches from
                                  a raw pipeline-event dump and list the
                                  N slowest with their Phase A-D
                                  breakdown (default 5)
  trace export <events.json> [--out <path>]
                                  convert a raw dump to Chrome
                                  trace_event JSON (open in Perfetto or
                                  chrome://tracing)
  trace dump <flight.json>        render a flight-recorder dump (written
                                  to $EOS_FLIGHT_PATH on commit failure,
                                  recovery rollback, or panic)
  snapshot create <file> <name>   pin every cataloged object's current
                                  root in a named, descriptor-sized
                                  manifest (itself stored as an object)
  snapshot list <file>            list snapshots: objects pinned, lsn,
                                  how many roots are still readable
  snapshot read <file> <snap> <obj> <output>
                                  read an object as of a snapshot;
                                  refuses if the object diverged (its
                                  pinned pages may have been reclaimed)
  snapshot drop <file> <name>     delete a snapshot manifest
  verify <file>                   check every invariant (first failure)
  recover <file>                  run restart recovery, report what it
                                  found, reconcile the catalog
  check <file> [--json]           full static analysis: audit every
                                  buddy directory, census every page,
                                  report all findings (fsck)
  lint [root] [--json] [--locks-dot] [--durability-dot] [--verbose]
       [--update-ratchet]
                                  source-level invariant linter:
                                  panic-path ratchet, latch discipline,
                                  FORMAT.md drift, lock-order analysis,
                                  durability-ordering analysis (default
                                  root: .); --locks-dot / --durability-dot
                                  emit the hierarchies as Graphviz DOT";

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("eos-cli-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    fn call(args: &[&str]) -> Result<String> {
        let v: Vec<String> = args.iter().map(std::string::ToString::to_string).collect();
        run(&v)
    }

    #[test]
    fn lint_subcommand_runs_clean_on_the_workspace() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .unwrap();
        let text = call(&["lint", root.to_str().unwrap()]).unwrap();
        assert!(text.contains("linted"), "{text}");
        let json = call(&["lint", root.to_str().unwrap(), "--json"]).unwrap();
        assert!(json.contains("\"clean\":true"), "{json}");
        assert!(call(&["lint", "--bogus"]).is_err());
    }

    #[test]
    fn putmany_ingests_concurrently_and_catalogs_everything() {
        let db = tmp("many.eos");
        let dbs = db.to_str().unwrap();
        assert!(call(&["init", dbs, "--mb", "16"])
            .unwrap()
            .contains("formatted"));
        let mut names = Vec::new();
        for i in 0..6u32 {
            let f = tmp(&format!("many-{i}.bin"));
            let data: Vec<u8> = (0..20_000u32)
                .map(|j| ((j * 7 + i * 13) % 251) as u8)
                .collect();
            std::fs::write(&f, &data).unwrap();
            names.push(f.to_str().unwrap().to_string());
        }
        let mut args = vec!["putmany".to_string(), dbs.to_string()];
        args.extend(names.iter().cloned());
        let text = run(&args).unwrap();
        assert!(text.contains("stored 6 object(s)"), "{text}");
        // Every file is cataloged under its path and byte-identical.
        for (i, name) in names.iter().enumerate() {
            let outf = tmp(&format!("many-out-{i}.bin"));
            call(&["get", dbs, name, outf.to_str().unwrap()]).unwrap();
            assert_eq!(std::fs::read(&outf).unwrap(), std::fs::read(name).unwrap());
        }
        // Re-ingesting replaces rather than duplicates, and the store
        // stays structurally clean.
        let text = run(&args).unwrap();
        assert!(text.contains("stored 6 object(s)"), "{text}");
        let check = call(&["check", dbs]).unwrap();
        assert!(check.contains("0 error(s)"), "{check}");
    }

    #[test]
    fn full_session() {
        let db = tmp("a.eos");
        let dbs = db.to_str().unwrap();
        let input = tmp("in.bin");
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&input, &data).unwrap();
        let ins = input.to_str().unwrap();

        assert!(call(&["init", dbs, "--mb", "16"])
            .unwrap()
            .contains("formatted"));
        assert!(call(&["put", dbs, "blob", ins])
            .unwrap()
            .contains("100000 bytes"));
        let ls = call(&["ls", dbs]).unwrap();
        assert!(ls.contains("blob") && ls.contains("100000 bytes"), "{ls}");

        // Byte-range edits.
        let patch = tmp("patch.bin");
        std::fs::write(&patch, b"PATCH").unwrap();
        call(&["splice", dbs, "blob", "10", patch.to_str().unwrap()]).unwrap();
        call(&["cut", dbs, "blob", "0", "10"]).unwrap();
        call(&["append", dbs, "blob", patch.to_str().unwrap()]).unwrap();

        let outp = tmp("out.bin");
        call(&["get", dbs, "blob", outp.to_str().unwrap()]).unwrap();
        let got = std::fs::read(&outp).unwrap();
        let mut want = data.clone();
        want.splice(10..10, *b"PATCH");
        want.drain(0..10);
        want.extend(*b"PATCH");
        assert_eq!(got, want);

        // cat prints hex of the patch at its post-cut position (offset 0).
        let hex = call(&["cat", dbs, "blob", "0", "5"]).unwrap();
        assert!(hex.contains("50 41 54 43 48"), "{hex}");

        assert!(call(&["stat", dbs]).unwrap().contains("pages free"));
        assert!(call(&["stat", dbs, "blob"]).unwrap().contains("segment(s)"));
        assert!(call(&["verify", dbs]).unwrap().contains("ok:"));
        assert!(call(&["compact", dbs, "blob"]).unwrap().contains("->"));
        assert!(call(&["verify", dbs]).unwrap().contains("1 object(s)"));
        assert!(call(&["rm", dbs, "blob"]).unwrap().contains("removed"));
        assert!(call(&["ls", dbs]).unwrap().contains("(empty)"));

        std::fs::remove_file(&db).ok();
    }

    #[test]
    fn errors_are_reported() {
        assert!(call(&[]).is_err());
        assert!(call(&["bogus"]).is_err());
        assert!(call(&["get", "/nonexistent.eos", "x", "/tmp/y"]).is_err());
        let db = tmp("err.eos");
        let dbs = db.to_str().unwrap();
        call(&["init", dbs, "--mb", "16"]).unwrap();
        assert!(call(&["get", dbs, "missing", "/tmp/nope"]).is_err());
        assert!(call(&["init", dbs, "--mb", "oops"]).is_err());
        std::fs::remove_file(&db).ok();
    }

    #[test]
    fn check_reports_clean_volume() {
        let db = tmp("check.eos");
        let dbs = db.to_str().unwrap();
        call(&["init", dbs, "--mb", "16"]).unwrap();
        let input = tmp("check-in.bin");
        std::fs::write(&input, vec![42u8; 50_000]).unwrap();
        call(&["put", dbs, "blob", input.to_str().unwrap()]).unwrap();

        let table = call(&["check", dbs]).unwrap();
        assert!(table.contains("0 error(s)"), "{table}");
        assert!(table.contains("object(s)"), "{table}");

        // A fresh volume may carry Info-level superdirectory optimism
        // (by design) but must be clean: no warnings, no errors.
        let json = call(&["check", dbs, "--json"]).unwrap();
        assert!(json.starts_with("{\"clean\":true"), "{json}");
        assert!(!json.contains("\"error\""), "{json}");
        assert!(!json.contains("\"warning\""), "{json}");

        std::fs::remove_file(&db).ok();
    }

    #[test]
    fn check_flags_corrupt_volume() {
        use std::io::{Seek, SeekFrom, Write};
        let db = tmp("check-bad.eos");
        let dbs = db.to_str().unwrap();
        call(&["init", dbs, "--mb", "16"]).unwrap();
        let input = tmp("check-bad-in.bin");
        std::fs::write(&input, vec![11u8; 30_000]).unwrap();
        call(&["put", dbs, "blob", input.to_str().unwrap()]).unwrap();
        // Smashing a buddy directory is no longer enough: restart
        // recovery rebuilds the directories from the log on every open.
        // Smash both log superblock slots instead — attach refuses to
        // open a non-virgin region with no valid superblock (silently
        // reformatting would be data loss), and `check` must surface
        // that refusal as an error and exit non-zero, without
        // panicking.
        let total_pages = std::fs::metadata(&db).unwrap().len() / PAGE_SIZE as u64;
        let (spaces, pps) = layout_for(total_pages);
        let sb_base = (pps + 1) * spaces as u64;
        let mut f = std::fs::OpenOptions::new().write(true).open(&db).unwrap();
        f.seek(SeekFrom::Start(sb_base * PAGE_SIZE as u64)).unwrap();
        f.write_all(&vec![0xFFu8; 2 * 4096]).unwrap();
        drop(f);

        let err = call(&["check", dbs]).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("error(s)") || text.contains("ERROR"),
            "{text}"
        );

        std::fs::remove_file(&db).ok();
    }

    #[test]
    fn trace_subcommands_summarize_export_and_dump_real_events() {
        use eos::obs::Metrics;
        use eos::pager::MemVolume;

        // Generate a genuine event stream: a private domain, a small
        // concurrent store, a handful of commits.
        let metrics = Metrics::new();
        let vol = MemVolume::with_profile(4096, 6144, eos::pager::DiskProfile::FREE).shared();
        let mut store = eos::core::ObjectStore::create_durable(
            vol,
            1,
            4096,
            eos::core::StoreConfig::default(),
            1024,
        )
        .unwrap();
        store.set_metrics(&metrics);
        let cs = ConcurrentStore::new(store);
        for i in 0..3u8 {
            let txn = cs.begin();
            let mut obj = txn.create(&vec![i; 5_000], None).unwrap();
            txn.append(&mut obj, &[i; 500]).unwrap();
            txn.commit().unwrap();
        }

        let events = tmp("trace-events.json");
        std::fs::write(&events, eos::obs::pipe_doc_json(&metrics)).unwrap();
        let flight = tmp("trace-flight.json");
        std::fs::write(&flight, metrics.flight_json("commit_failed")).unwrap();
        let ev = events.to_str().unwrap();

        let summary = call(&["trace", "summary", ev]).unwrap();
        assert!(summary.contains("pipeline: "), "{summary}");
        assert!(summary.contains("slowest commit batch(es)"), "{summary}");
        assert!(summary.contains("WALL-US"), "{summary}");
        let top1 = call(&["trace", "summary", ev, "--top", "1"]).unwrap();
        assert!(top1.contains("top 1 slowest"), "{top1}");

        // Export: valid Chrome trace_event JSON, to stdout and to a file.
        let chrome = call(&["trace", "export", ev]).unwrap();
        let doc = eos_check::schema::parse(&chrome).unwrap();
        assert!(doc
            .get("traceEvents")
            .and_then(eos_check::Json::as_array)
            .is_some_and(|a| !a.is_empty()));
        let outp = tmp("trace-chrome.json");
        let msg = call(&["trace", "export", ev, "--out", outp.to_str().unwrap()]).unwrap();
        assert!(msg.contains("trace event(s)"), "{msg}");
        eos_check::schema::parse(&std::fs::read_to_string(&outp).unwrap()).unwrap();

        let dump = call(&["trace", "dump", flight.to_str().unwrap()]).unwrap();
        assert!(dump.contains("reason `commit_failed`"), "{dump}");
        assert!(dump.contains("completed span(s)"), "{dump}");
        assert!(dump.contains("PHASE"), "{dump}");

        // Malformed inputs fail without panicking.
        let bogus = tmp("trace-bogus.json");
        std::fs::write(&bogus, "{\"nope\":1}").unwrap();
        assert!(call(&["trace", "summary", bogus.to_str().unwrap()]).is_err());
        assert!(call(&["trace", "dump", bogus.to_str().unwrap()]).is_err());
        assert!(call(&["trace", "frobnicate"]).is_err());
    }

    #[test]
    fn recover_on_a_healthy_volume_is_a_no_op() {
        let db = tmp("rec-clean.eos");
        let dbs = db.to_str().unwrap();
        call(&["init", dbs, "--mb", "16"]).unwrap();
        let input = tmp("rec-in.bin");
        std::fs::write(&input, vec![3u8; 20_000]).unwrap();
        call(&["put", dbs, "blob", input.to_str().unwrap()]).unwrap();

        let report = call(&["recover", dbs]).unwrap();
        assert!(report.contains("rolled back 0 uncommitted"), "{report}");
        assert!(report.contains("0 dropped, 0 orphan"), "{report}");
        // The volume still checks out and the object is intact.
        assert!(call(&["check", dbs]).is_ok());
        let outp = tmp("rec-out.bin");
        call(&["get", dbs, "blob", outp.to_str().unwrap()]).unwrap();
        assert_eq!(std::fs::read(&outp).unwrap(), vec![3u8; 20_000]);
        std::fs::remove_file(&db).ok();
    }

    #[test]
    fn recover_collects_orphans_and_stale_names() {
        let db = tmp("rec-gc.eos");
        let dbs = db.to_str().unwrap();
        call(&["init", dbs, "--mb", "16"]).unwrap();
        let input = tmp("rec-gc-in.bin");
        std::fs::write(&input, vec![5u8; 9_000]).unwrap();
        call(&["put", dbs, "keep", input.to_str().unwrap()]).unwrap();

        // Simulate a command that crashed between committing an object
        // and saving the catalog: commit straight through the library
        // without a catalog entry.
        {
            let (mut store, _) = open_store_recover(Path::new(dbs)).unwrap();
            store.create_with(&[9u8; 5000], None).unwrap();
            // dropped here: committed but unnamed — an orphan
        }

        let report = call(&["recover", dbs]).unwrap();
        assert!(report.contains("1 orphan object(s) collected"), "{report}");
        assert!(report.contains("1 name(s) kept"), "{report}");
        // `check` agrees nothing leaks afterwards.
        assert!(call(&["check", dbs]).is_ok());
        std::fs::remove_file(&db).ok();
    }

    #[test]
    fn recover_salvages_catalog_after_boot_page_loss() {
        use std::io::{Seek, SeekFrom, Write};
        let db = tmp("rec-boot.eos");
        let dbs = db.to_str().unwrap();
        call(&["init", dbs, "--mb", "16"]).unwrap();
        let input = tmp("rec-boot-in.bin");
        std::fs::write(&input, vec![8u8; 14_000]).unwrap();
        call(&["put", dbs, "blob", input.to_str().unwrap()]).unwrap();

        // Zero the boot page (volume page 1): a torn catalog-save. The
        // boot record reads back *empty* — indistinguishable from a
        // never-saved catalog — so salvage must kick in anyway and
        // re-point it at the committed catalog object instead of
        // collecting everything as orphans.
        let mut f = std::fs::OpenOptions::new().write(true).open(&db).unwrap();
        f.seek(SeekFrom::Start(PAGE_SIZE as u64)).unwrap();
        f.write_all(&vec![0u8; PAGE_SIZE]).unwrap();
        drop(f);

        let report = call(&["recover", dbs]).unwrap();
        assert!(report.contains("boot record rebuilt"), "{report}");
        assert!(report.contains("1 name(s) kept"), "{report}");
        assert!(report.contains("0 orphan object(s) collected"), "{report}");
        let outp = tmp("rec-boot-out.bin");
        call(&["get", dbs, "blob", outp.to_str().unwrap()]).unwrap();
        assert_eq!(std::fs::read(&outp).unwrap(), vec![8u8; 14_000]);
        assert!(call(&["check", dbs]).is_ok());
        std::fs::remove_file(&db).ok();
    }

    #[test]
    fn stats_attributes_quickstart_io_to_operations() {
        let db = tmp("stats.eos");
        let dbs = db.to_str().unwrap();
        call(&["init", dbs, "--mb", "16"]).unwrap();
        let input = tmp("stats-in.bin");
        std::fs::write(&input, vec![9u8; 120_000]).unwrap();
        call(&["put", dbs, "blob", input.to_str().unwrap()]).unwrap();
        call(&["cat", dbs, "blob", "50000", "64"]).unwrap();
        let patch = tmp("stats-patch.bin");
        std::fs::write(&patch, vec![1u8; 5_000]).unwrap();
        call(&["splice", dbs, "blob", "60000", patch.to_str().unwrap()]).unwrap();

        // The quickstart's I/O lands on the process-global domain,
        // attributed per operation: put → create, cat → read,
        // splice → insert.
        let json = call(&["stats", dbs, "--json"]).unwrap();
        let env = eos_check::parse_envelope(&json).unwrap();
        assert!(env.clean && env.findings.is_empty());
        let ops = env
            .body
            .get("metrics")
            .and_then(|m| m.get("ops"))
            .and_then(eos_check::Json::as_array)
            .unwrap();
        for wanted in ["create", "read", "insert"] {
            let row = ops
                .iter()
                .find(|o| o.get("op").and_then(eos_check::Json::as_str) == Some(wanted))
                .unwrap_or_else(|| panic!("no `{wanted}` row in {json}"));
            let field = |k: &str| row.get(k).and_then(eos_check::Json::as_u64).unwrap();
            assert!(field("count") > 0, "{wanted} never ran: {json}");
            assert!(field("seeks") > 0, "{wanted} attributed no seeks: {json}");
            assert!(
                field("page_reads") + field("page_writes") > 0,
                "{wanted} attributed no transfers: {json}"
            );
        }

        // All three renderings work; bad flag combos do not.
        let table = call(&["stats", dbs]).unwrap();
        assert!(
            table.contains("OPERATION") && table.contains("create"),
            "{table}"
        );
        let traced = call(&["stats", dbs, "--trace"]).unwrap();
        assert!(traced.contains("SEQ"), "{traced}");
        let prom = call(&["stats", dbs, "--prom"]).unwrap();
        assert!(prom.contains("eos_op_seeks{op=\"create\"}"), "{prom}");
        assert!(call(&["stats", dbs, "--json", "--prom"]).is_err());
        assert!(call(&["stats", dbs, "--json", "--trace"]).is_err());
        assert!(call(&["stats", dbs, "--bogus"]).is_err());
        std::fs::remove_file(&db).ok();
    }

    #[test]
    fn check_and_stats_share_the_report_envelope() {
        let db = tmp("envelope.eos");
        let dbs = db.to_str().unwrap();
        call(&["init", dbs, "--mb", "16"]).unwrap();
        let input = tmp("envelope-in.bin");
        std::fs::write(&input, vec![4u8; 10_000]).unwrap();
        call(&["put", dbs, "blob", input.to_str().unwrap()]).unwrap();

        // One schema helper parses both commands' --json output.
        for cmd in ["check", "stats"] {
            let json = call(&[cmd, dbs, "--json"]).unwrap();
            let env = eos_check::parse_envelope(&json)
                .unwrap_or_else(|e| panic!("{cmd} --json broke the envelope: {e}\n{json}"));
            assert!(env.clean, "{cmd}: {json}");
            assert!(
                env.findings.iter().all(|f| f.severity == "info"),
                "{cmd}: {json}"
            );
        }
        std::fs::remove_file(&db).ok();
    }

    #[test]
    fn named_snapshots_pin_and_refuse_after_divergence() {
        let db = tmp("snap.eos");
        let dbs = db.to_str().unwrap();
        call(&["init", dbs, "--mb", "16"]).unwrap();
        let a_in = tmp("snap-a.bin");
        let b_in = tmp("snap-b.bin");
        let a_data: Vec<u8> = (0..30_000u32).map(|i| (i % 241) as u8).collect();
        std::fs::write(&a_in, &a_data).unwrap();
        std::fs::write(&b_in, vec![6u8; 12_000]).unwrap();
        call(&["put", dbs, "a", a_in.to_str().unwrap()]).unwrap();
        call(&["put", dbs, "b", b_in.to_str().unwrap()]).unwrap();

        let text = call(&["snapshot", "create", dbs, "s1"]).unwrap();
        assert!(text.contains("pinned 2 object(s)"), "{text}");
        // A snapshot is cheap: descriptor-sized entries, not a copy.
        assert!(text.contains("manifest bytes"), "{text}");
        assert!(call(&["snapshot", "create", dbs, "s1"]).is_err());
        assert!(call(&["snapshot", "create", dbs, "s/1"]).is_err());

        let ls = call(&["snapshot", "list", dbs]).unwrap();
        assert!(ls.contains("s1") && ls.contains("2 still readable"), "{ls}");

        // Both objects read back as-of the snapshot.
        let a_out = tmp("snap-a-out.bin");
        call(&["snapshot", "read", dbs, "s1", "a", a_out.to_str().unwrap()]).unwrap();
        assert_eq!(std::fs::read(&a_out).unwrap(), a_data);

        // Diverge `a`: append frees nothing but replaces its root; the
        // snapshot must now refuse `a` (pages no longer pinned) while
        // `b` stays readable.
        call(&["append", dbs, "a", b_in.to_str().unwrap()]).unwrap();
        let e = call(&["snapshot", "read", dbs, "s1", "a", a_out.to_str().unwrap()])
            .unwrap_err()
            .to_string();
        assert!(e.contains("diverged"), "{e}");
        let b_out = tmp("snap-b-out.bin");
        call(&["snapshot", "read", dbs, "s1", "b", b_out.to_str().unwrap()]).unwrap();
        assert_eq!(std::fs::read(&b_out).unwrap(), vec![6u8; 12_000]);
        let ls = call(&["snapshot", "list", dbs]).unwrap();
        assert!(ls.contains("1 still readable"), "{ls}");

        // Unknown names and missing snapshots are reported, drop works,
        // and the store stays structurally clean throughout.
        assert!(call(&["snapshot", "read", dbs, "s1", "zz", "/tmp/x"]).is_err());
        assert!(call(&["snapshot", "read", dbs, "nope", "a", "/tmp/x"]).is_err());
        assert!(call(&["snapshot", "drop", dbs, "nope"]).is_err());
        call(&["snapshot", "drop", dbs, "s1"]).unwrap();
        let ls = call(&["snapshot", "list", dbs]).unwrap();
        assert!(ls.contains("(no snapshots)"), "{ls}");
        assert!(call(&["check", dbs]).is_ok());
        std::fs::remove_file(&db).ok();
    }

    #[test]
    fn put_replaces_and_reclaims() {
        let db = tmp("repl.eos");
        let dbs = db.to_str().unwrap();
        call(&["init", dbs, "--mb", "16"]).unwrap();
        let input = tmp("big.bin");
        std::fs::write(&input, vec![7u8; 2_000_000]).unwrap();
        let small = tmp("small.bin");
        std::fs::write(&small, b"tiny").unwrap();
        call(&["put", dbs, "x", input.to_str().unwrap()]).unwrap();
        let before = call(&["stat", dbs]).unwrap();
        call(&["put", dbs, "x", small.to_str().unwrap()]).unwrap();
        let after = call(&["stat", dbs]).unwrap();
        let free = |s: &str| -> u64 { s.split_whitespace().next().unwrap().parse().unwrap() };
        assert!(free(&after) > free(&before), "{before} -> {after}");
        std::fs::remove_file(&db).ok();
    }
}
