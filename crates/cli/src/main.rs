//! Thin binary wrapper around [`eos_cli::run`].

fn main() {
    // Arm the flight recorder: a panic anywhere in a command dumps the
    // global domain's last events to $EOS_FLIGHT_PATH (no-op when
    // unset).
    eos::obs::install_flight_panic_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match eos_cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
