//! Thin binary wrapper around [`eos_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match eos_cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
