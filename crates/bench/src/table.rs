//! Minimal fixed-width table rendering for experiment output.

/// A simple left-header table accumulated row by row.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Add one row (same arity as the headers).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with every column padded to its widest cell.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        let width = lines[0].len();
        assert!(lines[2].len() <= width + 2);
        assert!(s.contains("a-much-longer-name"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(pct(0.873), "87.3%");
    }
}
