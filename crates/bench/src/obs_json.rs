//! `BENCH_obs.json` — machine-readable metrics from experiment runs.
//!
//! Every experiment binary routes its EOS stores through the
//! process-global [`eos_core::obs`] domain and, on exit, calls
//! [`emit`] to fold its [`MetricsSnapshot`] into `BENCH_obs.json`
//! (one member per bench, replaced on re-run, other benches'
//! members preserved), so CI and notebooks can diff attributed
//! per-operation I/O across commits without scraping tables.

use eos_check::Json;
use eos_obs::MetricsSnapshot;
use std::path::PathBuf;

/// Default output file, relative to the working directory.
pub const OBS_FILE: &str = "BENCH_obs.json";

/// True when `--quick` is on the command line — experiment binaries
/// shrink their workloads so a CI smoke run finishes in seconds.
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// `full` normally, a tenth of it (at least 1) under `--quick` — the
/// one-line way for binaries to scale workload knobs.
pub fn scaled(full: u64) -> u64 {
    if quick() {
        (full / 10).max(1)
    } else {
        full
    }
}

/// Fold one bench's snapshot into `BENCH_obs.json` (or the file named
/// by `BENCH_OBS_PATH`). The document is an object keyed by bench
/// name; an unreadable or malformed existing file is replaced rather
/// than appended to. Returns the path written.
pub fn emit(bench: &str, snapshot: &MetricsSnapshot) -> std::io::Result<PathBuf> {
    let path =
        std::env::var_os("BENCH_OBS_PATH").map_or_else(|| PathBuf::from(OBS_FILE), PathBuf::from);
    let mut doc = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| eos_check::schema::parse(&text).ok())
        .filter(|j| matches!(j, Json::Obj(_)))
        .unwrap_or(Json::Obj(Vec::new()));
    let metrics = eos_check::schema::parse(&snapshot.to_json_object())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut record = Json::Obj(Vec::new());
    record.set("quick", Json::Bool(quick()));
    record.set("metrics", metrics);
    doc.set(bench, record);
    std::fs::write(&path, doc.render() + "\n")?;
    Ok(path)
}

/// [`emit`] for binaries without error plumbing: print where the
/// snapshot went, or the reason it could not be written.
pub fn emit_or_warn(bench: &str, snapshot: &MetricsSnapshot) {
    match emit(bench, snapshot) {
        Ok(path) => println!("observability snapshot -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write {OBS_FILE}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eos_obs::Metrics;

    #[test]
    fn emit_merges_records_by_bench_name() {
        let dir = std::env::temp_dir().join(format!("eos-bench-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_obs.json");
        std::env::set_var("BENCH_OBS_PATH", &path);

        let m = Metrics::new();
        m.counter("wal.frames").add(7);
        emit("alpha", &m.snapshot()).unwrap();
        m.counter("wal.frames").add(1);
        emit("beta", &m.snapshot()).unwrap();
        emit("alpha", &m.snapshot()).unwrap(); // replaces, not duplicates

        let doc = eos_check::schema::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let frames = |bench: &str| {
            doc.get(bench)
                .and_then(|b| b.get("metrics"))
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("wal.frames"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert_eq!(frames("alpha"), 8);
        assert_eq!(frames("beta"), 8);
        if let Json::Obj(members) = &doc {
            assert_eq!(members.len(), 2, "no duplicate members");
        } else {
            panic!("document must be an object");
        }

        std::env::remove_var("BENCH_OBS_PATH");
        std::fs::remove_file(&path).ok();
    }
}
