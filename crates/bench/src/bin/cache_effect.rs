//! Buffer-cache ablation (design-note experiment, `DESIGN.md` §4).
//!
//! The paper charges every index page on each operation ("including
//! indices except the root", §4.2) — i.e. a cold buffer. This binary
//! shows what a resident index buys: the same random-read workload with
//! and without an LRU page cache in front of the volume. Only
//! single-page (index/directory) traffic is cached; leaf-segment
//! streams bypass it.
//!
//! ```text
//! cargo run --release -p eos-bench --bin cache_effect
//! ```

use eos_bench::table::{f2, Table};
use eos_bench::workload::{payload, rng};
use eos_core::{ObjectStore, StoreConfig, Threshold};
use eos_pager::{CachedVolume, DiskProfile, MemVolume, SharedVolume};
use rand::Rng;
use std::sync::Arc;

fn main() {
    println!("== cache ablation: random 4 KiB reads on a fragmented 8 MiB object ==");
    let mut t = Table::new(vec![
        "configuration",
        "reads",
        "seeks/op",
        "transfers/op",
        "ms/op",
        "index hit ratio",
    ]);

    for cache_pages in [0usize, 64, 1024] {
        let inner: SharedVolume =
            MemVolume::with_profile(4096, 4 * 16_273 + 2, DiskProfile::VINTAGE_1992).shared();
        let cached: Option<Arc<CachedVolume>> =
            (cache_pages > 0).then(|| Arc::new(CachedVolume::new(inner.clone(), cache_pages)));
        let volume: SharedVolume = match &cached {
            Some(c) => c.clone(),
            None => inner.clone(),
        };
        let mut store = ObjectStore::create(
            volume.clone(),
            4,
            16_272,
            StoreConfig {
                threshold: Threshold::Fixed(4),
                ..StoreConfig::default()
            },
        )
        .unwrap();
        store.set_metrics(eos_obs::global());

        // Build and fragment the object so the tree has real depth.
        let bytes = 8usize << 20;
        let data = payload(2, bytes);
        let mut obj = store.create_with(&data, Some(bytes as u64)).unwrap();
        let mut r = rng();
        for _ in 0..eos_bench::obs_json::scaled(400) {
            let off = r.gen_range(0..obj.size() - 200);
            store.insert(&mut obj, off, b"fragmenting-wedge").unwrap();
        }
        if let Some(c) = &cached {
            c.clear();
        }

        // Measure the read workload.
        let reads = eos_bench::obs_json::scaled(500);
        volume.reset_stats();
        let before = volume.stats();
        let mut r = rng();
        for _ in 0..reads {
            let off = r.gen_range(0..obj.size() - 4096);
            let _ = store.read(&obj, off, 4096).unwrap();
        }
        let io = volume.stats() - before;
        let name = match cache_pages {
            0 => "cold (paper's accounting)".to_string(),
            n => format!("{n}-page LRU cache"),
        };
        t.row(vec![
            name,
            format!("{reads}"),
            f2(io.seeks as f64 / reads as f64),
            f2(io.transfers() as f64 / reads as f64),
            f2(io.elapsed_ms() / reads as f64),
            cached.as_ref().map_or("-".to_string(), |c| {
                format!("{:.0}%", 100.0 * c.cache_stats().hit_ratio())
            }),
        ]);
    }
    t.print();
    println!(
        "\nthe cache absorbs index-page reads (tree height dominates the cold cost);\n\
         leaf transfers are identical in all rows because segment reads bypass the cache."
    );
    eos_bench::obs_json::emit_or_warn("cache_effect", &eos_obs::global().snapshot());
}
