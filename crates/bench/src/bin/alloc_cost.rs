//! E8 — buddy allocation cost (paper §3.3).
//!
//! Two claims are measured:
//!
//! 1. "At most one disk access is needed to serve block allocation (and
//!    deallocation) requests, regardless of the segment size" — we count
//!    directory-page I/O per allocation across sizes from 1 page to the
//!    maximum segment.
//! 2. The superdirectory "eliminates unnecessary access to an individual
//!    buddy space directory" — we fill most spaces and count directory
//!    probes per allocation with the superdirectory on and off.
//!
//! A naive first-fit free-list allocator is included as the ablation
//! baseline: its free list lives on chained disk pages, so allocation
//! cost grows with fragmentation.

use eos_bench::table::{f2, Table};
use eos_buddy::BuddyManager;
use eos_pager::{DiskProfile, MemVolume};

fn main() {
    one_access_per_allocation();
    superdirectory();
    freelist_ablation();
    long_run_fragmentation();
    eos_bench::obs_json::emit_or_warn("alloc_cost", &eos_obs::global().snapshot());
}

/// E8d — free-space shape under sustained churn. §3 cites \[Selt91\]'s
/// warning that buddy allocation "is prone to severe internal
/// fragmentation"; EOS sidesteps it ("the unused portion of an
/// allocated segment is always less than a page"), so what remains is
/// external fragmentation, which coalescing keeps in check.
fn long_run_fragmentation() {
    use rand::{Rng, SeedableRng};
    println!("== E8d: free-space shape after sustained churn ==");
    let vol = MemVolume::with_profile(4096, 17000, DiskProfile::VINTAGE_1992).shared();
    let mut mgr = BuddyManager::create(vol, 1, 16272).unwrap();
    mgr.set_metrics(eos_obs::global());
    let mut r = rand::rngs::StdRng::seed_from_u64(0xF4A6);
    let mut held: Vec<eos_buddy::Extent> = Vec::new();
    let mut t = Table::new(vec![
        "ops",
        "held pages",
        "free pages",
        "largest run",
        "free usable for 64p",
    ]);
    let rounds = eos_bench::obs_json::scaled(5) as u32;
    let per_round = eos_bench::obs_json::scaled(10_000);
    for round in 1..=rounds {
        for _ in 0..per_round {
            if r.gen_bool(0.55) || held.is_empty() {
                let want = 1u64 << r.gen_range(0..9); // 1..256 pages
                if let Ok(e) = mgr.allocate(want) {
                    held.push(e);
                }
            } else {
                let i = r.gen_range(0..held.len());
                let e = held.swap_remove(i);
                mgr.free(e.start, e.pages).unwrap();
            }
        }
        let f = mgr.fragmentation();
        let held_pages: u64 = held.iter().map(|e| e.pages).sum();
        t.row(vec![
            format!("{}", u64::from(round) * per_round),
            format!("{held_pages}"),
            format!("{}", f.free_pages),
            format!("{}", f.largest_free_run),
            f2(f.usable_for(64)),
        ]);
    }
    mgr.check_invariants().unwrap();
    t.print();
    println!("coalescing keeps large runs available even after 50k alloc/free ops\n");
}

/// Claim 1: directory-page writes per allocation, by request size.
fn one_access_per_allocation() {
    println!("== E8a: disk accesses per allocation, by segment size ==");
    let vol = MemVolume::with_profile(4096, 17000, DiskProfile::VINTAGE_1992).shared();
    let mut mgr = BuddyManager::create(vol.clone(), 1, 16272).unwrap();
    mgr.set_metrics(eos_obs::global());
    let mut t = Table::new(vec![
        "request (pages)",
        "alloc page writes",
        "alloc page reads",
        "free page writes",
    ]);
    for pages in [1u64, 11, 64, 777, 4096, 8192] {
        vol.reset_stats();
        let e = mgr.allocate(pages).unwrap();
        let a = vol.stats();
        vol.reset_stats();
        mgr.free(e.start, e.pages).unwrap();
        let f = vol.stats();
        t.row(vec![
            format!("{pages}"),
            format!("{}", a.page_writes),
            format!("{}", a.page_reads),
            format!("{}", f.page_writes),
        ]);
    }
    t.print();
    println!("paper: one directory-page access regardless of segment size\n");
}

/// Claim 2: superdirectory effectiveness across many spaces.
fn superdirectory() {
    println!("== E8b: superdirectory — directory probes per allocation ==");
    let spaces = 24usize;
    let pps = 2048u64;
    let mut t = Table::new(vec![
        "configuration",
        "allocations",
        "probes",
        "probes avoided",
        "probes/alloc",
    ]);
    for (name, use_sd) in [("with superdirectory", true), ("without", false)] {
        let vol = MemVolume::with_profile(
            4096,
            (pps + 1) * spaces as u64 + 2,
            DiskProfile::VINTAGE_1992,
        )
        .shared();
        let mut mgr = BuddyManager::create(vol, spaces, pps).unwrap();
        mgr.set_metrics(eos_obs::global());
        mgr.set_use_superdirectory(use_sd);
        // Fill all but the last two spaces with immovable allocations.
        for _ in 0..spaces - 2 {
            mgr.allocate(2048).unwrap();
        }
        mgr.reset_superdir_stats();
        // Now serve the mid-size requests; without the superdirectory
        // every full space's directory must be inspected each time.
        let requests = eos_bench::obs_json::scaled(200);
        let mut held = Vec::new();
        for _ in 0..requests {
            if let Ok(e) = mgr.allocate(16) {
                held.push(e);
            }
            if held.len() > 100 {
                let e = held.remove(0);
                mgr.free(e.start, e.pages).unwrap();
            }
        }
        let s = mgr.superdir_stats();
        t.row(vec![
            name.to_string(),
            format!("{requests}"),
            format!("{}", s.probes_made),
            format!("{}", s.probes_avoided),
            f2(s.probes_made as f64 / requests as f64),
        ]);
    }
    t.print();
    println!("paper: the first wrong guess corrects the superdirectory entry\n");
}

/// Ablation: a disk-resident first-fit free list (the design the buddy
/// system replaces). Each free-list node lives on its own page; the
/// allocator reads the chain until a fitting run is found and rewrites
/// the affected node — cost grows with fragmentation, unlike the
/// one-page buddy directory.
fn freelist_ablation() {
    struct FreeList {
        vol: eos_pager::SharedVolume,
        /// (start, len) runs, each conceptually on its own list page.
        runs: Vec<(u64, u64)>,
    }

    impl FreeList {
        fn charge_walk(&self, nodes: u64) {
            // One page read per visited list node.
            for i in 0..nodes {
                let _ = self.vol.read_pages(i % self.vol.num_pages(), 1);
            }
        }

        fn allocate(&mut self, pages: u64) -> Option<u64> {
            let pos = self.runs.iter().position(|&(_, l)| l >= pages);
            match pos {
                Some(i) => {
                    self.charge_walk(i as u64 + 1);
                    let (s, l) = self.runs[i];
                    if l == pages {
                        self.runs.remove(i);
                    } else {
                        self.runs[i] = (s + pages, l - pages);
                    }
                    let _ = self.vol.write_pages(0, &vec![0u8; 4096]); // node update
                    Some(s)
                }
                None => {
                    self.charge_walk(self.runs.len() as u64);
                    None
                }
            }
        }

        fn free(&mut self, start: u64, pages: u64) {
            // Insert sorted + merge neighbours: walk to position.
            let i = self.runs.partition_point(|&(s, _)| s < start);
            self.charge_walk(i as u64 + 1);
            self.runs.insert(i, (start, pages));
            // Merge with neighbours.
            if i + 1 < self.runs.len() {
                let (s, l) = self.runs[i];
                let (s2, l2) = self.runs[i + 1];
                if s + l == s2 {
                    self.runs[i] = (s, l + l2);
                    self.runs.remove(i + 1);
                }
            }
            if i > 0 {
                let (s0, l0) = self.runs[i - 1];
                let (s, l) = self.runs[i];
                if s0 + l0 == s {
                    self.runs[i - 1] = (s0, l0 + l);
                    self.runs.remove(i);
                }
            }
            let _ = self.vol.write_pages(0, &vec![0u8; 4096]);
        }
    }

    println!("== E8c: ablation — buddy directory vs on-disk first-fit free list ==");

    let profile = DiskProfile::VINTAGE_1992;
    let pages = 16272u64;

    // Identical fragmentation-inducing workload for both allocators.
    let script: Vec<(bool, u64)> = {
        use rand::{Rng, SeedableRng};
        let mut r = rand::rngs::StdRng::seed_from_u64(0xA110C);
        (0..eos_bench::obs_json::scaled(2000))
            .map(|_| (r.gen_bool(0.55), r.gen_range(1..64)))
            .collect()
    };

    let mut t = Table::new(vec![
        "allocator",
        "ops",
        "page reads",
        "page writes",
        "simulated ms",
    ]);

    // Buddy.
    {
        let vol = MemVolume::with_profile(4096, pages + 2, profile).shared();
        let mut mgr = BuddyManager::create(vol.clone(), 1, pages).unwrap();
        mgr.set_metrics(eos_obs::global());
        vol.reset_stats();
        let mut held: Vec<eos_buddy::Extent> = Vec::new();
        for &(is_alloc, n) in &script {
            if is_alloc {
                if let Ok(e) = mgr.allocate(n) {
                    held.push(e);
                }
            } else if !held.is_empty() {
                let e = held.remove(held.len() / 2);
                mgr.free(e.start, e.pages).unwrap();
            }
        }
        let s = vol.stats();
        t.row(vec![
            "buddy directory".to_string(),
            format!("{}", script.len()),
            format!("{}", s.page_reads),
            format!("{}", s.page_writes),
            format!("{:.0}", s.elapsed_ms()),
        ]);
    }

    // First-fit free list.
    {
        let vol = MemVolume::with_profile(4096, pages + 2, profile).shared();
        let mut fl = FreeList {
            vol: vol.clone(),
            runs: vec![(0, pages)],
        };
        vol.reset_stats();
        let mut held: Vec<(u64, u64)> = Vec::new();
        for &(is_alloc, n) in &script {
            if is_alloc {
                if let Some(s) = fl.allocate(n) {
                    held.push((s, n));
                }
            } else if !held.is_empty() {
                let (s, n) = held.remove(held.len() / 2);
                fl.free(s, n);
            }
        }
        let s = vol.stats();
        t.row(vec![
            "first-fit list (on disk)".to_string(),
            format!("{}", script.len()),
            format!("{}", s.page_reads),
            format!("{}", s.page_writes),
            format!("{:.0}", s.elapsed_ms()),
        ]);
    }
    t.print();
    println!();
}
