//! Group-commit throughput under concurrent writers (`DESIGN.md` §12).
//!
//! Each writer thread runs a loop of small durable transactions
//! (create a 512-byte object, commit). The volume is a
//! [`ThrottledVolume`] whose `sync` costs a fixed delay — the
//! in-memory stand-in for an fsync — so the commit pipeline's sync
//! count is what the benchmark actually measures:
//!
//! * **solo commit** pays two syncs per transaction (data barrier +
//!   log force), serialized under the store latch: adding writers
//!   cannot help.
//! * **group commit** pays two syncs per *batch*: while the leader is
//!   syncing, the other writers queue up, so throughput scales with
//!   the batch size.
//!
//! The second table measures the MVCC read path (`DESIGN.md` §14):
//! a fixed pool of snapshot readers against a growing pool of
//! replace-churning writers. Readers pin an epoch and traverse
//! committed roots without a single range lock, so their throughput
//! should stay flat as writers are added — that flatness *is* the
//! result.
//!
//! ```text
//! cargo run --release -p eos-bench --bin concurrency
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eos_bench::table::{f2, Table};
use eos_core::{ConcurrentStore, ObjectStore, StoreConfig};
use eos_pager::{DiskProfile, MemVolume, SharedVolume, ThrottledVolume};

/// Simulated fsync cost. Real 1992 disks paid ~15 ms; even a modern
/// NVMe flush is tens of microseconds. 400 µs keeps the run short
/// while dwarfing the in-memory page work.
const SYNC_DELAY: Duration = Duration::from_micros(400);

fn run_config(writers: usize, group: bool, stripes: usize, per_thread: u64) -> (f64, u64, f64) {
    let inner: SharedVolume = MemVolume::with_profile(4096, 6144, DiskProfile::FREE).shared();
    let throttled = Arc::new(ThrottledVolume::new(inner, SYNC_DELAY));
    let volume: SharedVolume = throttled.clone();
    // Striped runs shard the buddy directories too (one space per
    // stripe), so allocation and log traffic shard together — the §17
    // configuration the tentpole targets.
    let (spaces, pps) = if stripes > 1 {
        (stripes, 256)
    } else {
        (1, 4096)
    };
    let mut store = ObjectStore::create_durable(
        volume,
        spaces,
        pps,
        StoreConfig {
            sync_on_commit: true,
            wal_stripes: stripes,
            ..StoreConfig::default()
        },
        1024,
    )
    .unwrap();
    store.set_metrics(eos_obs::global());
    let before = eos_obs::global().snapshot();
    let cs = ConcurrentStore::with_group_commit(store, group);

    // Store/WAL format syncs are setup, not workload — a 16-stripe
    // format alone pays 16+ of them.
    let syncs_at_start = throttled.syncs();
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..writers {
            let cs = cs.clone();
            s.spawn(move || {
                for _ in 0..per_thread {
                    let txn = cs.begin();
                    txn.create(&[0xAB; 512], None).unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let after = eos_obs::global().snapshot();
    let commits = writers as u64 * per_thread;
    let d = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    let mean_batch = if group {
        let batches = d("wal.group_commits");
        if batches > 0 {
            commits as f64 / batches as f64
        } else {
            0.0
        }
    } else {
        1.0
    };
    (
        commits as f64 / elapsed,
        throttled.syncs() - syncs_at_start,
        mean_batch,
    )
}

/// Fixed reader pool for the readers+writers table.
const READERS: usize = 4;

/// Snapshot-read throughput with `writers` replace-churning writer
/// threads running alongside. Returns (reads/sec, writer commits).
fn run_rw_config(writers: usize, reads_per_reader: u64) -> (f64, u64) {
    let inner: SharedVolume = MemVolume::with_profile(4096, 8192, DiskProfile::FREE).shared();
    let throttled = Arc::new(ThrottledVolume::new(inner, SYNC_DELAY));
    let volume: SharedVolume = throttled.clone();
    let mut store = ObjectStore::create_durable(
        volume,
        1,
        4096,
        StoreConfig {
            sync_on_commit: true,
            ..StoreConfig::default()
        },
        1024,
    )
    .unwrap();
    store.set_metrics(eos_obs::global());

    // Committed before the front-end wraps the store, so the seeded
    // root set publishes them to every snapshot from epoch 1 on.
    let target = store.create_with(&vec![0x5Au8; 64 << 10], None).unwrap();
    let churn: Vec<_> = (0..writers)
        .map(|_| store.create_with(&vec![0x77u8; 32 << 10], None).unwrap())
        .collect();
    let cs = ConcurrentStore::with_group_commit(store, true);

    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let (elapsed, commits) = std::thread::scope(|s| {
        let writer_handles: Vec<_> = churn
            .into_iter()
            .map(|mut obj| {
                let cs = cs.clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut commits = 0u64;
                    let mut x = 0x9E37_79B9u64 ^ obj.id();
                    while !stop.load(Ordering::Relaxed) {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let off = x % ((32 << 10) - 4096);
                        let txn = cs.begin();
                        txn.replace(&mut obj, off, &[x as u8; 4096]).unwrap();
                        txn.commit().unwrap();
                        commits += 1;
                    }
                    commits
                })
            })
            .collect();
        let reader_handles: Vec<_> = (0..READERS)
            .map(|r| {
                let cs = cs.clone();
                let id = target.id();
                s.spawn(move || {
                    let mut x = 0xDEAD_BEEFu64 ^ r as u64;
                    let mut left = reads_per_reader;
                    // One pinned snapshot serves a block of reads — the
                    // intended usage pattern (a snapshot is a consistent
                    // view, not a per-read token), and it keeps the pin
                    // table out of the per-read hot path.
                    while left > 0 {
                        let block = left.min(32);
                        let snap = cs.snapshot();
                        for _ in 0..block {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            let off = x % ((64 << 10) - 4096);
                            let bytes = snap.read(id, off, 4096).unwrap();
                            assert_eq!(bytes.len(), 4096);
                        }
                        left -= block;
                    }
                })
            })
            .collect();
        for h in reader_handles {
            h.join().unwrap();
        }
        let elapsed = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        let commits: u64 = writer_handles.into_iter().map(|h| h.join().unwrap()).sum();
        (elapsed, commits)
    });

    let reads = READERS as u64 * reads_per_reader;
    (reads as f64 / elapsed, commits)
}

/// `--trace` mode (DESIGN.md §16): one traced 4-writer grouped round
/// on a **private** metrics domain (so the pipeline ring holds only
/// this round), exported as a raw event dump for `eos trace
/// summary`/`export`, with per-phase p50/p99 latencies recorded as
/// gauges on the global domain so they land in `BENCH_obs.json`.
fn run_traced(per_thread: u64) {
    const TRACE_WRITERS: usize = 4;
    let metrics = eos_obs::Metrics::new();
    let inner: SharedVolume = MemVolume::with_profile(4096, 6144, DiskProfile::FREE).shared();
    let volume: SharedVolume = Arc::new(ThrottledVolume::new(inner, SYNC_DELAY));
    let mut store = ObjectStore::create_durable(
        volume,
        1,
        4096,
        StoreConfig {
            sync_on_commit: true,
            ..StoreConfig::default()
        },
        1024,
    )
    .unwrap();
    store.set_metrics(&metrics);
    let cs = ConcurrentStore::with_group_commit(store, true);

    std::thread::scope(|s| {
        for _ in 0..TRACE_WRITERS {
            let cs = cs.clone();
            s.spawn(move || {
                for _ in 0..per_thread {
                    let txn = cs.begin();
                    txn.create(&[0xAB; 512], None).unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });

    let path = std::env::var("EOS_TRACE_PATH").unwrap_or_else(|_| "TRACE_events.json".to_string());
    match std::fs::write(&path, eos_obs::pipe_doc_json(&metrics)) {
        Ok(()) => println!(
            "\n== trace mode: {} pipeline event(s) from {TRACE_WRITERS} writers x \
             {per_thread} commits -> {path} ==",
            metrics.pipe_recorded()
        ),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }

    let snap = metrics.snapshot();
    let g = eos_obs::global();
    let mut t = Table::new(vec!["phase", "samples", "p50 us", "p99 us"]);
    for (short, name) in [
        ("queue_wait", "commit.queue_wait_us"),
        ("phase_a", "commit.phase_a.wall_us"),
        ("phase_b", "commit.phase_b.wall_us"),
        ("phase_c", "commit.phase_c.wall_us"),
        ("phase_d", "commit.phase_d.wall_us"),
    ] {
        let Some(h) = snap.histogram(name) else {
            continue;
        };
        let (p50, p99) = (h.quantile(0.5), h.quantile(0.99));
        g.gauge(&format!("bench.concurrency.trace.{short}.p50_us"))
            .set(p50);
        g.gauge(&format!("bench.concurrency.trace.{short}.p99_us"))
            .set(p99);
        t.row(vec![
            short.to_string(),
            format!("{}", h.count),
            format!("{p50}"),
            format!("{p99}"),
        ]);
    }
    t.print();
    println!(
        "per-phase log2-bucket latencies from the traced round; the raw event\n\
         dump replays the same batches: `eos trace summary {path}`."
    );
}

fn main() {
    eos_obs::install_flight_panic_hook();
    println!("== durable commit throughput vs writer threads (sync = {SYNC_DELAY:?}) ==");
    let per_thread = eos_bench::obs_json::scaled(24);
    let mut t = Table::new(vec![
        "writers",
        "group commit",
        "commits",
        "commits/s",
        "syncs/commit",
        "mean batch",
    ]);
    let mut grouped_1 = 0.0f64;
    let mut grouped_16 = 0.0f64;
    for &group in &[false, true] {
        for &writers in &[1usize, 2, 4, 8, 16] {
            let (rate, syncs, mean_batch) = run_config(writers, group, 1, per_thread);
            let commits = writers as u64 * per_thread;
            if group && writers == 1 {
                grouped_1 = rate;
            }
            if group && writers == 16 {
                grouped_16 = rate;
            }
            let label = format!(
                "bench.concurrency.{}.t{writers}",
                if group { "group" } else { "solo" }
            );
            let g = eos_obs::global();
            g.gauge(&format!("{label}.commits_per_sec"))
                .set(rate as u64);
            g.gauge(&format!("{label}.syncs")).set(syncs);
            t.row(vec![
                format!("{writers}"),
                if group { "on" } else { "off" }.to_string(),
                format!("{commits}"),
                f2(rate),
                f2(syncs as f64 / commits as f64),
                f2(mean_batch),
            ]);
        }
    }
    t.print();
    println!(
        "\nsolo commits pay 2 syncs each regardless of writers; group commit\n\
         amortizes the same 2 syncs over the whole batch, so throughput climbs\n\
         with the writer count (16-writer grouped = {:.1}x the 1-writer rate).",
        grouped_16 / grouped_1.max(1e-9)
    );

    println!(
        "\n== striped WAL: solo commits, single latch vs 16 stripes \
         (equal 2 syncs/commit) =="
    );
    let mut t = Table::new(vec![
        "writers",
        "stripes",
        "commits",
        "commits/s",
        "syncs/commit",
    ]);
    let mut striped_rate = std::collections::BTreeMap::new();
    for &stripes in &[1usize, 16] {
        for &writers in &[8usize, 16] {
            let (rate, syncs, _) = run_config(writers, false, stripes, per_thread);
            striped_rate.insert((stripes, writers), rate);
            let commits = writers as u64 * per_thread;
            let label = format!("bench.concurrency.striped.s{stripes}.t{writers}");
            let g = eos_obs::global();
            g.gauge(&format!("{label}.commits_per_sec"))
                .set(rate as u64);
            g.gauge(&format!("{label}.syncs")).set(syncs);
            t.row(vec![
                format!("{writers}"),
                format!("{stripes}"),
                format!("{commits}"),
                f2(rate),
                f2(syncs as f64 / commits as f64),
            ]);
        }
    }
    t.print();
    // Every commit here pays the same 2 syncs (data barrier + log
    // force); only the force's *latch scope* differs. With one stripe
    // the forces serialize behind the single log latch; with 16, forces
    // for disjoint stripes overlap, so the 16-writer rate scales with
    // the stripes instead of flat-lining.
    let advantage = striped_rate[&(16, 16)] / striped_rate[&(1, 16)].max(1e-9);
    let scaling = striped_rate[&(16, 16)] / striped_rate[&(16, 8)].max(1e-9);
    let g = eos_obs::global();
    g.gauge("bench.concurrency.striped.advantage_t16_x100")
        .set((advantage * 100.0) as u64);
    g.gauge("bench.concurrency.striped.scaling_8_16_x100")
        .set((scaling * 100.0) as u64);
    println!(
        "\n16 writers, same 2 syncs/commit: 16 stripes = {advantage:.2}x the \
         single-latch rate\n(8 -> 16 writers on 16 stripes scales {scaling:.2}x)."
    );

    println!("\n== snapshot-read throughput vs writer threads ({READERS} readers, MVCC) ==");
    let reads_per_reader = eos_bench::obs_json::scaled(20_000);
    let mut t = Table::new(vec![
        "writers",
        "reads",
        "reads/s",
        "writer commits",
        "vs 0 writers",
    ]);
    let mut baseline = 0.0f64;
    let mut at_8 = 0.0f64;
    for &writers in &[0usize, 2, 4, 8] {
        let (rate, commits) = run_rw_config(writers, reads_per_reader);
        if writers == 0 {
            baseline = rate;
        }
        if writers == 8 {
            at_8 = rate;
        }
        let g = eos_obs::global();
        g.gauge(&format!("bench.concurrency.rw.w{writers}.reads_per_sec"))
            .set(rate as u64);
        g.gauge(&format!("bench.concurrency.rw.w{writers}.writer_commits"))
            .set(commits);
        t.row(vec![
            format!("{writers}"),
            format!("{}", READERS as u64 * reads_per_reader),
            f2(rate),
            format!("{commits}"),
            f2(rate / baseline.max(1e-9)),
        ]);
    }
    t.print();
    println!(
        "\nreaders pin an epoch and traverse committed roots lock-free, so the\n\
         read rate stays flat as replace-churning writers are added\n\
         (8-writer rate = {:.2}x the zero-writer baseline).",
        at_8 / baseline.max(1e-9)
    );
    if std::env::args().any(|a| a == "--trace") {
        run_traced(eos_bench::obs_json::scaled(24));
    }
    eos_bench::obs_json::emit_or_warn("concurrency", &eos_obs::global().snapshot());
}
