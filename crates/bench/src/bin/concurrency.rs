//! Group-commit throughput under concurrent writers (`DESIGN.md` §12).
//!
//! Each writer thread runs a loop of small durable transactions
//! (create a 512-byte object, commit). The volume is a
//! [`ThrottledVolume`] whose `sync` costs a fixed delay — the
//! in-memory stand-in for an fsync — so the commit pipeline's sync
//! count is what the benchmark actually measures:
//!
//! * **solo commit** pays two syncs per transaction (data barrier +
//!   log force), serialized under the store latch: adding writers
//!   cannot help.
//! * **group commit** pays two syncs per *batch*: while the leader is
//!   syncing, the other writers queue up, so throughput scales with
//!   the batch size.
//!
//! ```text
//! cargo run --release -p eos-bench --bin concurrency
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use eos_bench::table::{f2, Table};
use eos_core::{ConcurrentStore, ObjectStore, StoreConfig};
use eos_pager::{DiskProfile, MemVolume, SharedVolume, ThrottledVolume};

/// Simulated fsync cost. Real 1992 disks paid ~15 ms; even a modern
/// NVMe flush is tens of microseconds. 400 µs keeps the run short
/// while dwarfing the in-memory page work.
const SYNC_DELAY: Duration = Duration::from_micros(400);

fn run_config(writers: usize, group: bool, per_thread: u64) -> (f64, u64, f64) {
    let inner: SharedVolume = MemVolume::with_profile(4096, 6144, DiskProfile::FREE).shared();
    let throttled = Arc::new(ThrottledVolume::new(inner, SYNC_DELAY));
    let volume: SharedVolume = throttled.clone();
    let mut store = ObjectStore::create_durable(
        volume,
        1,
        4096,
        StoreConfig {
            sync_on_commit: true,
            ..StoreConfig::default()
        },
        1024,
    )
    .unwrap();
    store.set_metrics(eos_obs::global());
    let before = eos_obs::global().snapshot();
    let cs = ConcurrentStore::with_group_commit(store, group);

    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..writers {
            let cs = cs.clone();
            s.spawn(move || {
                for _ in 0..per_thread {
                    let txn = cs.begin();
                    txn.create(&[0xAB; 512], None).unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let after = eos_obs::global().snapshot();
    let commits = writers as u64 * per_thread;
    let d = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    let mean_batch = if group {
        let batches = d("wal.group_commits");
        if batches > 0 {
            commits as f64 / batches as f64
        } else {
            0.0
        }
    } else {
        1.0
    };
    (commits as f64 / elapsed, throttled.syncs(), mean_batch)
}

fn main() {
    println!("== durable commit throughput vs writer threads (sync = {SYNC_DELAY:?}) ==");
    let per_thread = eos_bench::obs_json::scaled(24);
    let mut t = Table::new(vec![
        "writers",
        "group commit",
        "commits",
        "commits/s",
        "syncs/commit",
        "mean batch",
    ]);
    let mut grouped_1 = 0.0f64;
    let mut grouped_8 = 0.0f64;
    for &group in &[false, true] {
        for &writers in &[1usize, 2, 4, 8] {
            let (rate, syncs, mean_batch) = run_config(writers, group, per_thread);
            let commits = writers as u64 * per_thread;
            if group && writers == 1 {
                grouped_1 = rate;
            }
            if group && writers == 8 {
                grouped_8 = rate;
            }
            let label = format!(
                "bench.concurrency.{}.t{writers}",
                if group { "group" } else { "solo" }
            );
            let g = eos_obs::global();
            g.gauge(&format!("{label}.commits_per_sec"))
                .set(rate as u64);
            g.gauge(&format!("{label}.syncs")).set(syncs);
            t.row(vec![
                format!("{writers}"),
                if group { "on" } else { "off" }.to_string(),
                format!("{commits}"),
                f2(rate),
                f2(syncs as f64 / commits as f64),
                f2(mean_batch),
            ]);
        }
    }
    t.print();
    println!(
        "\nsolo commits pay 2 syncs each regardless of writers; group commit\n\
         amortizes the same 2 syncs over the whole batch, so throughput climbs\n\
         with the writer count (8-writer grouped = {:.1}x the 1-writer rate).",
        grouped_8 / grouped_1.max(1e-9)
    );
    eos_bench::obs_json::emit_or_warn("concurrency", &eos_obs::global().snapshot());
}
