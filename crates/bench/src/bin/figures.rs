//! Regenerate the paper's figures and worked examples as executable
//! output (experiments E1–E4, E9, E10, E11 — see `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run -p eos-bench --bin figures            # everything
//! cargo run -p eos-bench --bin figures -- fig3    # one figure
//! ```

use eos_bench::table::Table;
use eos_buddy::{Geometry, SegState, SpaceDir};
use eos_core::wal::Wal;
use eos_core::{reshuffle, LargeObject, ObjectStore, StoreConfig, Threshold};
use eos_pager::{DiskProfile, MemVolume};

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty();
    let want = |name: &str| all || which.iter().any(|w| w == name);

    if want("limits") {
        limits();
    }
    if want("fig3") {
        fig3();
    }
    if want("fig4") {
        fig4();
    }
    if want("fig5") {
        fig5();
    }
    if want("sec42") {
        sec42();
    }
    if want("fig6") {
        fig6();
    }
    if want("fig7") {
        fig7();
    }
    if want("recovery") {
        recovery();
    }
}

/// Render a buddy directory as a segment list.
fn render_segments(dir: &SpaceDir) -> String {
    let mut out = String::new();
    let mut s = 0u64;
    while s < dir.data_pages() {
        let d = dir.amap().seg_at_start(s);
        let tag = if d.state == SegState::Allocated {
            'A'
        } else {
            'F'
        };
        out.push_str(&format!("[{}{}@{}]", tag, d.pages, d.start));
        s += d.pages;
    }
    out
}

/// E9 — §3 worked limits for 4 KiB pages.
fn limits() {
    println!("== E9: geometry limits (paper §3) ==");
    let mut t = Table::new(vec![
        "page size",
        "max seg type",
        "max seg (pages)",
        "max seg (MB)",
        "amap bytes",
        "max space (pages)",
        "max space (MB)",
    ]);
    for ps in [1024usize, 4096, 8192] {
        let g = Geometry::for_page_size(ps);
        t.row(vec![
            format!("{ps}"),
            format!("{}", g.max_type),
            format!("{}", g.max_seg_pages()),
            format!(
                "{:.1}",
                (g.max_seg_pages() * ps as u64) as f64 / (1 << 20) as f64
            ),
            format!("{}", g.amap_len),
            format!("{}", g.max_space_pages),
            format!(
                "{:.1}",
                (g.max_space_pages * ps as u64) as f64 / (1 << 20) as f64
            ),
        ]);
    }
    t.print();
    println!(
        "paper: 4K pages -> type 13 (32 MB segments), 4068-byte map, 16,272-page (63.5 MB) spaces\n"
    );
}

/// E1 — Figure 3: the allocation-map example and the §3.1 search walk.
fn fig3() {
    println!("== E1: Figure 3 — allocation map example ==");
    let g = Geometry::for_page_size(4096);
    let mut d = SpaceDir::create(g, 128);
    d.alloc_pow2(6).unwrap(); // allocated 64-seg at page 0
    d.alloc_any(4).unwrap(); // pages 64..68, then punch holes:
    d.free_range(64, 1).unwrap();
    d.free_range(67, 1).unwrap();
    // Occupy 80.. so the free 4@68 and 8@72 stand out as in the figure.
    d.alloc_pow2(4).unwrap();
    d.alloc_pow2(5).unwrap();
    d.check_invariants().unwrap();

    let mut t = Table::new(vec!["map byte", "value", "meaning"]);
    let meanings = [
        (0usize, "allocated segment of size 2^6 = 64 at page 0"),
        (1, "continuation of the 64-page segment"),
        (16, "pages 64,67 free; 65,66 allocated (individual bits)"),
        (17, "free segment of size 2^2 = 4 at page 68"),
        (18, "free segment of size 2^3 = 8 at page 72"),
    ];
    for (i, meaning) in meanings {
        t.row(vec![
            format!("{i}"),
            format!("{:08b}", d.amap().byte(i)),
            meaning.to_string(),
        ]);
    }
    t.print();
    let (s, probes) = d.find_free(3).unwrap();
    println!(
        "search for a free 8-segment: walk visits segments 0 -> 64 -> 72: \
         found at page {s} after {probes} probes (paper: 3 map inspections)\n"
    );
}

/// E2 — Figure 4: any-size allocation and iterative coalescing.
fn fig4() {
    println!("== E2: Figure 4 — allocation/deallocation of any size ==");
    let g = Geometry::for_page_size(4096);
    let mut d = SpaceDir::create(g, 16);
    println!("(a) initial free space:        {}", render_segments(&d));
    d.alloc_any(11).unwrap();
    println!("(b) after allocating 11 pages: {}", render_segments(&d));
    d.free_range(3, 7).unwrap();
    println!("(c) after freeing 7 from p.3:  {}", render_segments(&d));
    d.free_range(10, 1).unwrap();
    println!("(d) after freeing page 10:     {}", render_segments(&d));
    d.check_invariants().unwrap();
    println!("paper (d): 10+11 -> 2@10; +2@8 -> 4@8; +4@12 -> 8@8; segment 0 not free, stop");
    println!(
        "(allocated 1- and 2-page runs are individual page bits in the map, so\n\
         [A1@8][A1@9] above is the figure's 2-page allocated segment at 8)\n"
    );
}

/// E3 — Figure 5: the three example 1820-byte objects (100-byte pages).
fn fig5() {
    println!("== E3: Figure 5 — example large objects (100-byte pages) ==");
    let data = ObjectStore::assembled_pattern(0, 1820);

    // 5.a — created with a size hint: one 19-page segment.
    let mut store = store100();
    let a = store.create_with(&data, Some(1820)).unwrap();
    let sa = store.object_stats(&a).unwrap();

    // 5.b — created by small appends: doubling segments.
    let mut store_b = store100();
    let mut b = store_b.create_object();
    {
        let mut sess = store_b.open_append(&mut b, None).unwrap();
        for chunk in data.chunks(70) {
            sess.append(chunk).unwrap();
        }
        sess.close().unwrap();
    }
    let sb = store_b.object_stats(&b).unwrap();

    // 5.c — the post-update shape with root counts 1020 | 1820.
    let mut store_c = store100();
    let c = store_c
        .assemble_object(&[vec![520, 500], vec![280, 430, 90]])
        .unwrap();
    let sc = store_c.object_stats(&c).unwrap();

    let mut t = Table::new(vec![
        "object",
        "size",
        "root pairs",
        "height",
        "segments",
        "leaf pages",
        "segment sizes (pages)",
    ]);
    t.row(vec![
        "5.a (hinted create)".to_string(),
        format!("{}", a.size()),
        format!("{}", a.root_entries()),
        format!("{}", a.height()),
        format!("{}", sa.segments),
        format!("{}", sa.leaf_pages),
        format!("{}..{}", sa.min_seg_pages, sa.max_seg_pages),
    ]);
    t.row(vec![
        "5.b (doubling appends)".to_string(),
        format!("{}", b.size()),
        format!("{}", b.root_entries()),
        format!("{}", b.height()),
        format!("{}", sb.segments),
        format!("{}", sb.leaf_pages),
        format!("{}..{}", sb.min_seg_pages, sb.max_seg_pages),
    ]);
    t.row(vec![
        "5.c (after updates)".to_string(),
        format!("{}", c.size()),
        format!("{}", c.root_entries()),
        format!("{}", c.height()),
        format!("{}", sc.segments),
        format!("{}", sc.leaf_pages),
        format!("{}..{}", sc.min_seg_pages, sc.max_seg_pages),
    ]);
    t.print();
    for (name, store, obj) in [
        ("5.a", &store, &a),
        ("5.b", &store_b, &b),
        ("5.c", &store_c, &c),
    ] {
        store.verify_object(obj).unwrap();
        assert_eq!(store.read_all(obj).unwrap(), data, "{name} content");
    }
    println!("all three decode to the same 1820 bytes; 5.c root counts: 1020 | 1820\n");
}

/// E4 — §4.2: the read-cost walkthrough.
fn sec42() {
    println!("== E4: §4.2 — read 320 bytes from byte 1470 ==");
    let mut t = Table::new(vec!["object", "seeks", "page transfers", "paper says"]);

    // Fig 5.c object: 3 seeks (index node, segment 2, segment 3).
    let mut store = store100();
    let c = store
        .assemble_object(&[vec![520, 500], vec![280, 430, 90]])
        .unwrap();
    store.reset_io_stats();
    let got = store.read(&c, 1470, 320).unwrap();
    assert_eq!(got, ObjectStore::assembled_pattern(1470, 320));
    let io = store.io_stats();
    t.row(vec![
        "Fig 5.c (three segments + index)".to_string(),
        format!("{}", io.seeks),
        format!("{}", io.page_reads),
        "3 seeks + 6 transfers".to_string(),
    ]);

    // Fig 5.a object: single segment, one seek.
    let mut store = store100();
    let a = store
        .create_with(&ObjectStore::assembled_pattern(0, 1820), Some(1820))
        .unwrap();
    store.reset_io_stats();
    let _ = store.read(&a, 1470, 320).unwrap();
    let io = store.io_stats();
    t.row(vec![
        "Fig 5.a (one segment)".to_string(),
        format!("{}", io.seeks),
        format!("{}", io.page_reads),
        "1 seek + 5 transfers".to_string(),
    ]);
    t.print();
    println!(
        "(the paper counts the 4-page span of bytes 1470..1790 inclusively as 5;\n\
         the seek counts — the load-bearing quantity — match exactly)\n"
    );
}

/// E10 — Figure 6: the insert L/N/R arithmetic, shown live.
fn fig6() {
    println!("== E10a: Figure 6 — inserting bytes into a segment ==");
    // A 1000-byte segment on 100-byte pages; insert 150 bytes at 450.
    let mut store = store100();
    let data = ObjectStore::assembled_pattern(0, 1000);
    let mut obj = store.create_with(&data, Some(1000)).unwrap();
    let before = store.object_stats(&obj).unwrap();
    store.reset_io_stats();
    store.insert(&mut obj, 450, &[0xAB; 150]).unwrap();
    let io = store.io_stats();
    let after = store.object_stats(&obj).unwrap();
    println!(
        "before: {} segment(s), {} pages; insert 150 bytes at 450",
        before.segments, before.leaf_pages
    );
    println!(
        "after:  {} segment(s), {} pages  (L keeps the prefix, N holds the insert,\n\
         R keeps the suffix pages in place)",
        after.segments, after.leaf_pages
    );
    println!(
        "i/o: {} seeks, {} page reads, {} page writes — the paper: \"one or two\n\
         (physically adjacent) pages from the original leaf segment have to be read\"",
        io.seeks, io.page_reads, io.page_writes
    );
    store.verify_object(&obj).unwrap();

    // The pure reshuffle plan for the same numbers.
    let plan = reshuffle(450, 150 + 50, 500, 100, 1, 8192);
    println!(
        "reshuffle plan (T=1): L={} N={} R={} bytes moved from L={} from R={}\n",
        plan.l, plan.n, plan.r, plan.from_l, plan.from_r
    );
}

/// E10 — Figure 7: byte-range deletion across two segments.
fn fig7() {
    println!("== E10b: Figure 7 — byte range deletion ==");
    let mut store = store100();
    // Two segments of 1000 bytes each.
    let mut obj = store.assemble_object(&[vec![1000, 1000]]).unwrap();
    store.reset_io_stats();
    // Delete from byte 450 (page P=4 of S, Pb=50) to byte 1250
    // (page Q=2 of S', Qb=50): 800 bytes.
    store.delete(&mut obj, 450, 800).unwrap();
    let io = store.io_stats();
    let stats = store.object_stats(&obj).unwrap();
    println!(
        "deleted [450, 1250) of a 2x1000-byte object -> size {}, {} segments",
        obj.size(),
        stats.segments
    );
    println!(
        "i/o: {} seeks, {} page reads, {} page writes — only page Q (and reshuffle\n\
         donors) is read; S's tail and S''s head pages are freed from the parent",
        io.seeks, io.page_reads, io.page_writes
    );
    store.verify_object(&obj).unwrap();
    assert_eq!(
        store.read_all(&obj).unwrap(),
        {
            let mut d = ObjectStore::assembled_pattern(0, 2000);
            d.drain(450..1250);
            d
        },
        "content"
    );

    // Page-boundary special case: "deletions where the last byte to be
    // deleted happens to be the last byte of a page can be completed
    // without accessing any segment."
    let mut store = store100();
    let mut obj = store.assemble_object(&[vec![1000, 1000]]).unwrap();
    store.reset_io_stats();
    store.delete(&mut obj, 450, 750).unwrap(); // ends at byte 1200: page boundary
    let io = store.io_stats();
    println!(
        "page-aligned delete [450, 1200): {} page reads (paper: zero segment access)\n",
        io.page_reads
    );
    store.verify_object(&obj).unwrap();
}

/// E11 — §4.5: the recovery mechanisms, demonstrated.
fn recovery() {
    println!("== E11: §4.5 — logging, shadowing, release locks ==");
    let mut store = ObjectStore::in_memory(512, 4000);
    let mut wal = Wal::new();
    let content = eos_bench::workload::payload(42, 20_000);
    let obj = store.create_with(&content, None).unwrap();
    let committed = obj.to_bytes();

    // Uncommitted transaction: structure-changing ops shadow the index
    // and defer frees, so the committed image survives a crash.
    store.begin_txn();
    let mut inflight = obj;
    store.insert(&mut inflight, 5_000, &[1u8; 3000]).unwrap();
    store.delete(&mut inflight, 100, 2_000).unwrap();
    store.append(&mut inflight, &[2u8; 1000]).unwrap();
    store.abort_txn().unwrap(); // "crash"
    let recovered = LargeObject::from_bytes(&committed).unwrap();
    let ok = store.read_all(&recovered).unwrap() == content;
    println!("crash mid-transaction: committed image intact = {ok}");

    // WAL-protected replace: undo/redo idempotence via the root LSN.
    let mut obj = recovered;
    wal.logged_replace(&mut store, &mut obj, 10, b"JOURNALED")
        .unwrap();
    let r = wal.records().last().unwrap().clone();
    eos_core::wal::redo(&mut store, &mut obj, &r).unwrap(); // no-op: lsn equal
    let after_redo = store.read(&obj, 10, 9).unwrap();
    eos_core::wal::undo(&mut store, &mut obj, &r).unwrap();
    let after_undo = store.read(&obj, 10, 9).unwrap();
    println!(
        "replace logged with before/after images: redo idempotent = {}, undo restores = {}",
        after_redo == b"JOURNALED",
        after_undo == content[10..19]
    );
    println!();
}

fn store100() -> ObjectStore {
    let vol = MemVolume::with_profile(100, 400, DiskProfile::VINTAGE_1992).shared();
    ObjectStore::create(
        vol,
        1,
        336,
        StoreConfig {
            threshold: Threshold::Fixed(1),
            ..StoreConfig::default()
        },
    )
    .unwrap()
}
