//! The segment-size-threshold study (experiments E5, E6, E12; paper
//! §4.4 and the §5 simulation summary).
//!
//! ```text
//! cargo run --release -p eos-bench --bin threshold              # everything
//! cargo run --release -p eos-bench --bin threshold -- sweep     # one part
//! ```

use eos_bench::stores::{eos, Sizing};
use eos_bench::table::{f1, pct, Table};
use eos_bench::workload::{measure, payload, rng};
use eos_core::{BlobStore, ObjectStore, Threshold};
use rand::Rng;

fn main() {
    let which: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let all = which.is_empty();
    let want = |name: &str| all || which.iter().any(|w| w == name);
    if want("utilization") {
        utilization();
    }
    if want("sweep") {
        sweep();
    }
    if want("adaptive") {
        adaptive();
    }
    if want("append") {
        append_growth();
    }
    if want("consolidate") {
        consolidate();
    }
    eos_bench::obs_json::emit_or_warn("threshold", &eos_obs::global().snapshot());
}

/// Workload size scaled down under `--quick`.
fn n(full: u64) -> u64 {
    eos_bench::obs_json::scaled(full)
}

/// E6c — group reallocation (\[Bili91a\]) and explicit compaction: a
/// shattered object is restored to clustered form.
fn consolidate() {
    println!("== E6c: group reallocation and compaction of a shattered object ==");
    let mut t = Table::new(vec!["state", "segments", "scan seeks", "leaf util"]);
    let bytes = 2usize << 20;
    let mut store = eos(Sizing::mb(24), Threshold::Fixed(1));
    let data = payload(5, bytes);
    let mut obj = store.create_with(&data, Some(bytes as u64)).unwrap();
    let mut r = rng();
    for _ in 0..n(400) {
        let off = r.gen_range(0..obj.size() - 100);
        store.insert(&mut obj, off, b"tiny-wedge").unwrap();
    }
    let row = |store: &mut eos_core::ObjectStore,
               obj: &eos_core::LargeObject,
               name: &str,
               t: &mut Table| {
        let stats = store.object_stats(obj).unwrap();
        let size = obj.size();
        store.reset_io_stats();
        let _ = store.read(obj, 0, size).unwrap();
        let seeks = store.io_stats().seeks;
        t.row(vec![
            name.to_string(),
            format!("{}", stats.segments),
            format!("{seeks}"),
            pct(stats.leaf_utilization(store.page_size())),
        ]);
    };
    row(&mut store, &obj, "shattered (T=1, 400 inserts)", &mut t);
    obj.set_threshold(Threshold::Fixed(16));
    let c = store.consolidate(&mut obj).unwrap();
    row(&mut store, &obj, "after consolidate (T=16)", &mut t);
    store.compact(&mut obj).unwrap();
    row(&mut store, &obj, "after compact (max segments)", &mut t);
    store.verify_object(&obj).unwrap();
    t.print();
    println!(
        "consolidation merged {} unsafe runs; compaction leaves maximal segments\n",
        c.runs_merged
    );
}

/// E5 — §4.4: "for segments of size T, the utilization per segment will
/// be on the average 1 − 1/2T. For T = 4, 16 and 64 this evaluates to
/// 87%, 97%, and 99%." We print both the closed form and the measured
/// leaf utilization after an insert-heavy workload.
fn utilization() {
    println!("== E5: leaf utilization vs threshold T (paper §4.4) ==");
    let mut t = Table::new(vec![
        "T (pages)",
        "paper 1-1/2T",
        "measured leaf util",
        "segments",
        "avg seg pages",
    ]);
    for threshold in [4u32, 16, 64] {
        let (stats, store) = shattered_object(threshold, 2 << 20);
        t.row(vec![
            format!("{threshold}"),
            pct(1.0 - 1.0 / (2.0 * threshold as f64)),
            pct(stats.leaf_utilization(store.page_size())),
            format!("{}", stats.segments),
            f1(stats.leaf_pages as f64 / stats.segments.max(1) as f64),
        ]);
    }
    t.print();
    println!();
}

/// Build a 2 MiB object, shatter it with 200 random small inserts under
/// the given threshold, and return its stats.
fn shattered_object(threshold: u32, bytes: usize) -> (eos_core::ObjectStats, ObjectStore) {
    let mut store = eos(Sizing::mb(24), Threshold::Fixed(threshold));
    let data = payload(5, bytes);
    let mut obj = store.create_with(&data, Some(bytes as u64)).unwrap();
    let mut r = rng();
    let wedge = payload(6, 120);
    for _ in 0..n(200) {
        let off = r.gen_range(0..obj.size());
        store.insert(&mut obj, off, &wedge).unwrap();
    }
    store.verify_object(&obj).unwrap();
    (store.object_stats(&obj).unwrap(), store)
}

/// E6 — the T sweep: read/update costs and structure vs T, the §4.4
/// trade-off ("larger T improves storage utilization and the
/// performance of append, read, and replace; the only aspect affected
/// negatively is the cost of inserts and deletes").
fn sweep() {
    println!("== E6: threshold sweep after 300 random updates (2 MiB object) ==");
    let mut t = Table::new(vec![
        "T",
        "segments",
        "height",
        "leaf util",
        "seq-scan seeks",
        "rand-read ms/op",
        "insert ms/op",
        "delete ms/op",
    ]);
    for threshold in [1u32, 2, 4, 8, 16, 64] {
        let bytes = 2usize << 20;
        let mut store = eos(Sizing::mb(24), Threshold::Fixed(threshold));
        let data = payload(5, bytes);
        let mut obj = store.create_with(&data, Some(bytes as u64)).unwrap();
        // Update phase: mixed small inserts and deletes.
        let mut r = rng();
        let wedge = payload(6, 120);
        let insert_cost = {
            store.reset_io_stats();
            let before = store.io_stats();
            for _ in 0..n(150) {
                let off = r.gen_range(0..obj.size());
                store.insert(&mut obj, off, &wedge).unwrap();
            }
            let io = store.io_stats() - before;
            eos_bench::workload::Cost { ops: n(150), io }
        };
        let delete_cost = {
            store.reset_io_stats();
            let before = store.io_stats();
            for _ in 0..n(150) {
                let off = r.gen_range(0..obj.size() - 200);
                store.delete(&mut obj, off, 120).unwrap();
            }
            let io = store.io_stats() - before;
            eos_bench::workload::Cost { ops: n(150), io }
        };
        store.verify_object(&obj).unwrap();
        let stats = store.object_stats(&obj).unwrap();

        // Sequential scan.
        let size = obj.size();
        let h = obj;
        let scan = measure(&mut store, 1, |s, _| {
            let _ = BlobStore::read(s, &h, 0, size).unwrap();
        });
        // Random 4 KiB reads.
        let mut r = rng();
        let reads = measure(&mut store, n(200), |s, _| {
            let off = r.gen_range(0..size - 4096);
            let _ = BlobStore::read(s, &h, off, 4096).unwrap();
        });
        t.row(vec![
            format!("{threshold}"),
            format!("{}", stats.segments),
            format!("{}", stats.height),
            pct(stats.leaf_utilization(store.page_size())),
            format!("{}", scan.io.seeks),
            format!("{:.2}", reads.ms_per_op()),
            format!("{:.2}", insert_cost.ms_per_op()),
            format!("{:.2}", delete_cost.ms_per_op()),
        ]);
    }
    t.print();
    println!(
        "shape check (paper §4.4): segments shrink and reads get cheaper as T grows;\n\
         insert/delete cost rises with T — reads and updates cross over.\n"
    );
}

/// E6b — adaptive T (\[Bili91a\]): the threshold follows the parent
/// node's fan-out, so clustering tightens exactly when a split nears.
fn adaptive() {
    println!("== E6b: fixed vs adaptive threshold ==");
    let mut t = Table::new(vec![
        "policy",
        "segments",
        "height",
        "leaf util",
        "scan seeks",
        "update ms/op",
    ]);
    for (name, threshold) in [
        ("fixed T=2", Threshold::Fixed(2)),
        ("fixed T=16", Threshold::Fixed(16)),
        ("adaptive base=2", Threshold::Adaptive { base: 2 }),
    ] {
        let bytes = 2usize << 20;
        let mut store = eos(Sizing::mb(24), threshold);
        let data = payload(5, bytes);
        let mut obj = store.create_with(&data, Some(bytes as u64)).unwrap();
        let mut r = rng();
        let wedge = payload(6, 120);
        store.reset_io_stats();
        let before = store.io_stats();
        let updates = n(300);
        for i in 0..updates {
            let off = r.gen_range(0..obj.size() - 200);
            if i % 2 == 0 {
                store.insert(&mut obj, off, &wedge).unwrap();
            } else {
                store.delete(&mut obj, off, 120).unwrap();
            }
        }
        let update_io = store.io_stats() - before;
        store.verify_object(&obj).unwrap();
        let stats = store.object_stats(&obj).unwrap();
        let size = obj.size();
        let h = obj;
        let scan = measure(&mut store, 1, |s, _| {
            let _ = BlobStore::read(s, &h, 0, size).unwrap();
        });
        t.row(vec![
            name.to_string(),
            format!("{}", stats.segments),
            format!("{}", stats.height),
            pct(stats.leaf_utilization(store.page_size())),
            format!("{}", scan.io.seeks),
            format!("{:.2}", update_io.elapsed_ms() / updates as f64),
        ]);
    }
    t.print();
    println!();
}

/// E12 — §4.1 growth policies: known size vs doubling, with trim.
fn append_growth() {
    println!("== E12: append/create growth policy (§4.1) ==");
    let mut t = Table::new(vec![
        "creation",
        "object MB",
        "segments",
        "leaf pages",
        "leaf util",
        "create seeks",
    ]);
    for (name, hint, chunk) in [
        ("known size, one shot", true, 4 << 20),
        ("unknown, 64 KiB appends", false, 64 << 10),
        ("unknown, 4 KiB appends", false, 4 << 10),
    ] {
        let bytes = 4usize << 20;
        let mut store = eos(Sizing::mb(24), Threshold::Fixed(8));
        let data = payload(11, bytes);
        store.reset_io_stats();
        let before = store.io_stats();
        let mut obj = store.create_object();
        {
            let hint_v = hint.then_some(bytes as u64);
            let mut sess = store.open_append(&mut obj, hint_v).unwrap();
            for c in data.chunks(chunk) {
                sess.append(c).unwrap();
            }
            sess.close().unwrap();
        }
        let io = store.io_stats() - before;
        store.verify_object(&obj).unwrap();
        let stats = store.object_stats(&obj).unwrap();
        t.row(vec![
            name.to_string(),
            format!("{:.1}", obj.size() as f64 / (1 << 20) as f64),
            format!("{}", stats.segments),
            format!("{}", stats.leaf_pages),
            pct(stats.leaf_utilization(store.page_size())),
            format!("{}", io.seeks),
        ]);
    }
    t.print();
    println!(
        "paper: known size -> minimal segments; unknown -> segments double until the\n\
         maximum, and the last one is trimmed, so utilization stays near 100%.\n"
    );
}
