//! E7 — the \[Bili91b\]-style comparison: EOS vs Exodus (two leaf sizes),
//! Starburst, WiSS and System R on the same simulated disk.
//!
//! ```text
//! cargo run --release -p eos-bench --bin compare            # 4 MiB objects
//! cargo run --release -p eos-bench --bin compare -- 16      # 16 MiB objects
//! cargo run --release -p eos-bench --bin compare -- --quick # CI smoke
//! ```
//!
//! Expected shape (paper §2 and §5): Starburst wins or ties creates and
//! scans but is catastrophic on inserts/deletes (it copies the tail);
//! small-leaf Exodus has good utilization but pays a seek per leaf on
//! scans; large-leaf Exodus scans well but wastes space after updates;
//! WiSS pays a seek per page everywhere and caps object size; System R
//! cannot do partial updates at all; EOS matches the best of each
//! column.

use eos_bench::stores::{eos, exodus, starburst, systemr, wiss, Sizing};
use eos_bench::table::{pct, Table};
use eos_bench::workload::{comparison_run, ComparisonRun, Cost};
use eos_core::Threshold;

fn main() {
    let quick = eos_bench::obs_json::quick();
    let mb: u64 = std::env::args()
        .skip(1)
        .find_map(|s| s.parse().ok())
        .unwrap_or(if quick { 1 } else { 4 });
    let excluded = run_comparison(mb);
    if excluded && !quick {
        println!();
        println!("re-running at 1 MiB so every store participates:");
        println!();
        run_comparison(1);
    }
    // The EOS stores above ran on the process-global metrics domain;
    // persist the attributed per-operation I/O for CI diffing.
    eos_bench::obs_json::emit_or_warn("compare", &eos_obs::global().snapshot());
}

/// Returns true when some store could not hold the object.
fn run_comparison(mb: u64) -> bool {
    let object_bytes = mb * 1024 * 1024;
    let sizing = Sizing::mb((4 * mb).max(16));
    let reads = eos_bench::obs_json::scaled(200);
    let updates = eos_bench::obs_json::scaled(100);

    println!("== E7: store comparison — {mb} MiB objects, {reads} reads, {updates} updates ==\n");

    let mut runs: Vec<ComparisonRun> = Vec::new();
    let mut too_large: Vec<&'static str> = Vec::new();
    let mut push = |r: Result<ComparisonRun, eos_core::Error>, name: &'static str| match r {
        Ok(run) => runs.push(run),
        Err(_) => too_large.push(name),
    };
    push(
        comparison_run("eos (T=8)", object_bytes, reads, updates, || {
            eos(sizing, Threshold::Fixed(8))
        }),
        "eos (T=8)",
    );
    push(
        comparison_run("exodus leaf=1", object_bytes, reads, updates, || {
            exodus(sizing, 1)
        }),
        "exodus leaf=1",
    );
    push(
        comparison_run("exodus leaf=8", object_bytes, reads, updates, || {
            exodus(sizing, 8)
        }),
        "exodus leaf=8",
    );
    push(
        comparison_run("starburst", object_bytes, reads, updates, || {
            starburst(sizing)
        }),
        "starburst",
    );
    push(
        comparison_run("wiss", object_bytes, reads, updates, || wiss(sizing)),
        "wiss",
    );
    push(
        comparison_run("system-r", object_bytes, reads, updates, || systemr(sizing)),
        "system-r",
    );

    let ms = |c: &Cost| format!("{:.2}", c.ms_per_op());
    let opt = |c: &Option<Cost>| c.as_ref().map_or("unsupported".to_string(), ms);

    let mut t = Table::new(vec![
        "store",
        "create(hint) ms",
        "create(app) ms/chunk",
        "scan ms",
        "scan seeks",
        "rd 4K ms/op",
        "repl ms/op",
        "ins ms/op",
        "del ms/op",
        "util",
    ]);
    for r in &runs {
        t.row(vec![
            r.name.to_string(),
            ms(&r.create_known),
            opt(&r.create_unknown),
            ms(&r.scan),
            format!("{}", r.scan.io.seeks),
            ms(&r.random_reads),
            ms(&r.replaces),
            opt(&r.inserts),
            opt(&r.deletes),
            pct(r.utilization),
        ]);
    }
    t.print();

    for name in &too_large {
        println!("{name}: cannot hold a {mb} MiB object (creation refused)");
    }
    println!("\nnotes:");
    println!("- wiss caps objects at ~400 slices x page (1.6 MB at 4 KiB): larger objects fail to create;");
    println!("- system-r supports no byte inserts/deletes; its reads chase the page chain;");
    println!("- starburst inserts/deletes copy every byte right of the update point;");
    println!(
        "- utilization is object bytes over allocated pages (incl. index) after the update phase."
    );
    !too_large.is_empty()
}
