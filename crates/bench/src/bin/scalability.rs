//! E15 — scalability over object size (paper §1, objectives 1 and 3):
//! "support for objects of unlimited size" and "the cost of piece-wise
//! operations must depend on the number of bytes involved in the
//! operation, rather than the size of the entire object."
//!
//! ```text
//! cargo run --release -p eos-bench --bin scalability
//! ```

use eos_bench::stores::{eos, Sizing};
use eos_bench::table::{f2, Table};
use eos_bench::workload::{payload, rng};
use eos_core::Threshold;
use rand::Rng;

fn main() {
    println!("== E15: operation cost vs object size ==");
    let mut t = Table::new(vec![
        "object size",
        "height",
        "segments",
        "rand-read ms/op",
        "insert ms/op",
        "delete ms/op",
        "append ms/op",
    ]);
    let sizes: &[u64] = if eos_bench::obs_json::quick() {
        &[1, 4]
    } else {
        &[1, 4, 16, 64, 128]
    };
    for &mb in sizes {
        let sizing = Sizing::mb((mb * 2).max(16));
        let mut store = eos(sizing, Threshold::Fixed(8));
        // Build via 1 MiB appends (unknown size → doubling growth).
        let chunk = payload(3, 1 << 20);
        let mut obj = store.create_object();
        {
            let mut s = store.open_append(&mut obj, None).unwrap();
            for _ in 0..mb {
                s.append(&chunk).unwrap();
            }
            s.close().unwrap();
        }
        // Fragment lightly so the tree is realistic.
        let mut r = rng();
        for _ in 0..eos_bench::obs_json::scaled(50) {
            let off = r.gen_range(0..obj.size() - 200);
            store.insert(&mut obj, off, &payload(4, 100)).unwrap();
        }
        store.verify_object(&obj).unwrap();
        let stats = store.object_stats(&obj).unwrap();

        let ops = eos_bench::obs_json::scaled(100);
        // Random 4 KiB reads.
        let mut r = rng();
        store.reset_io_stats();
        for _ in 0..ops {
            let off = r.gen_range(0..obj.size() - 4096);
            let _ = store.read(&obj, off, 4096).unwrap();
        }
        let read_ms = store.io_stats().elapsed_ms() / ops as f64;
        // Random 100-byte inserts.
        store.reset_io_stats();
        for _ in 0..ops {
            let off = r.gen_range(0..obj.size());
            store.insert(&mut obj, off, &payload(5, 100)).unwrap();
        }
        let ins_ms = store.io_stats().elapsed_ms() / ops as f64;
        // Random 100-byte deletes.
        store.reset_io_stats();
        for _ in 0..ops {
            let off = r.gen_range(0..obj.size() - 200);
            store.delete(&mut obj, off, 100).unwrap();
        }
        let del_ms = store.io_stats().elapsed_ms() / ops as f64;
        // Appends.
        store.reset_io_stats();
        for _ in 0..ops {
            store.append(&mut obj, &payload(6, 100)).unwrap();
        }
        let app_ms = store.io_stats().elapsed_ms() / ops as f64;

        t.row(vec![
            format!("{mb} MiB"),
            format!("{}", stats.height),
            format!("{}", stats.segments),
            f2(read_ms),
            f2(ins_ms),
            f2(del_ms),
            f2(app_ms),
        ]);
    }
    t.print();
    println!(
        "\nthe per-operation cost is flat (± the extra index level) while the\n\
         object grows 128x — the paper's objective 3, measured."
    );
    eos_bench::obs_json::emit_or_warn("scalability", &eos_obs::global().snapshot());
}
