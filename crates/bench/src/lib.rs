//! # eos-bench — harness regenerating the paper's figures and studies
//!
//! Shared infrastructure for the experiment binaries (see
//! `EXPERIMENTS.md` for the index):
//!
//! * [`table`] — fixed-width table rendering for experiment output.
//! * [`workload`] — deterministic workload generation (seeded RNG) and
//!   the generic measurement driver over any [`eos_core::BlobStore`].
//! * [`stores`] — factories building every store on identically sized
//!   volumes so comparisons are apples to apples.
//! * [`obs_json`] — the `--quick` flag and the `BENCH_obs.json`
//!   metrics emitter shared by every experiment binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod obs_json;
pub mod stores;
pub mod table;
pub mod workload;
