//! Store factories: every store under comparison gets an identically
//! sized in-memory volume with the same disk profile, so seek/transfer
//! counts and simulated times are directly comparable.

use eos_baselines::{ExodusStore, StarburstStore, SystemRStore, WissStore};
use eos_buddy::Geometry;
use eos_core::{ObjectStore, StoreConfig, Threshold};
use eos_pager::{DiskProfile, MemVolume, SharedVolume};

/// Default page size for the comparison experiments (the paper's 4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Volume + space sizing shared by all stores in an experiment.
#[derive(Debug, Clone, Copy)]
pub struct Sizing {
    /// Page size in bytes.
    pub page_size: usize,
    /// Total data pages.
    pub data_pages: u64,
    /// Disk timing profile.
    pub profile: DiskProfile,
}

impl Sizing {
    /// Sizing with `mb` megabytes of 4 KiB pages on the 1992 profile.
    pub fn mb(mb: u64) -> Sizing {
        Sizing {
            page_size: PAGE_SIZE,
            data_pages: mb * 1024 * 1024 / PAGE_SIZE as u64,
            profile: DiskProfile::VINTAGE_1992,
        }
    }

    /// Buddy-space layout for this sizing: (spaces, pages per space).
    pub fn layout(&self) -> (usize, u64) {
        let g = Geometry::for_page_size(self.page_size);
        let pps = g.max_space_pages.min(self.data_pages.max(16));
        let spaces = self.data_pages.div_ceil(pps).max(1) as usize;
        (spaces, pps)
    }

    /// A fresh volume big enough for the layout.
    pub fn volume(&self) -> SharedVolume {
        let (spaces, pps) = self.layout();
        MemVolume::with_profile(self.page_size, (pps + 1) * spaces as u64 + 2, self.profile)
            .shared()
    }
}

/// An EOS store with the given threshold, joined to the process-global
/// metrics domain so the experiment binaries can emit the attributed
/// per-operation I/O into `BENCH_obs.json` at exit.
pub fn eos(sizing: Sizing, threshold: Threshold) -> ObjectStore {
    let (spaces, pps) = sizing.layout();
    let mut store = ObjectStore::create(
        sizing.volume(),
        spaces,
        pps,
        StoreConfig {
            threshold,
            ..StoreConfig::default()
        },
    )
    .expect("eos store");
    store.set_metrics(eos_obs::global());
    store
}

/// An Exodus store with `leaf_pages`-block data pages.
pub fn exodus(sizing: Sizing, leaf_pages: u64) -> ExodusStore {
    let (spaces, pps) = sizing.layout();
    ExodusStore::create(sizing.volume(), spaces, pps, leaf_pages).expect("exodus store")
}

/// A Starburst long field store.
pub fn starburst(sizing: Sizing) -> StarburstStore {
    let (spaces, pps) = sizing.layout();
    StarburstStore::create(sizing.volume(), spaces, pps).expect("starburst store")
}

/// A WiSS slice store.
pub fn wiss(sizing: Sizing) -> WissStore {
    let (spaces, pps) = sizing.layout();
    WissStore::create(sizing.volume(), spaces, pps).expect("wiss store")
}

/// A System R chained long field store.
pub fn systemr(sizing: Sizing) -> SystemRStore {
    let (spaces, pps) = sizing.layout();
    SystemRStore::create(sizing.volume(), spaces, pps).expect("system-r store")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eos_core::BlobStore;

    #[test]
    fn all_stores_come_up_with_identical_geometry() {
        let sizing = Sizing::mb(8);
        let mut e = eos(sizing, Threshold::Fixed(8));
        let mut x = exodus(sizing, 4);
        let mut s = starburst(sizing);
        let mut w = wiss(sizing);
        let mut r = systemr(sizing);
        let data = vec![42u8; 100_000];
        let he = e.create(&data, true).unwrap();
        let hx = x.create(&data, true).unwrap();
        let hs = s.create(&data, true).unwrap();
        let hw = w.create(&data, true).unwrap();
        let hr = r.create(&data, true).unwrap();
        for (name, got) in [
            ("eos", e.read(&he, 50_000, 100).unwrap()),
            ("exodus", x.read(&hx, 50_000, 100).unwrap()),
            ("starburst", s.read(&hs, 50_000, 100).unwrap()),
            ("wiss", w.read(&hw, 50_000, 100).unwrap()),
            ("system-r", r.read(&hr, 50_000, 100).unwrap()),
        ] {
            assert_eq!(got, vec![42u8; 100], "{name}");
        }
    }
}
