//! Deterministic workload generation and the generic measurement driver.

use eos_core::{BlobStore, Error};
use eos_pager::IoStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fixed seed so every run of the harness prints the same numbers.
pub const SEED: u64 = 0x0E05_1992;

/// A seeded RNG for workloads.
pub fn rng() -> StdRng {
    StdRng::seed_from_u64(SEED)
}

/// Deterministic content of `len` bytes.
pub fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut r = StdRng::seed_from_u64(SEED ^ seed);
    (0..len).map(|_| r.gen()).collect()
}

/// Measured cost of one phase of a workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cost {
    /// Number of operations measured.
    pub ops: u64,
    /// I/O delta over the phase.
    pub io: IoStats,
}

impl Cost {
    /// Seeks per operation.
    pub fn seeks_per_op(&self) -> f64 {
        self.io.seeks as f64 / self.ops.max(1) as f64
    }

    /// Page transfers per operation.
    pub fn transfers_per_op(&self) -> f64 {
        self.io.transfers() as f64 / self.ops.max(1) as f64
    }

    /// Simulated milliseconds per operation.
    pub fn ms_per_op(&self) -> f64 {
        self.io.elapsed_ms() / self.ops.max(1) as f64
    }
}

/// Run `ops` operations against `store`, measuring the I/O delta.
pub fn measure<S: BlobStore, F>(store: &mut S, ops: u64, mut f: F) -> Cost
where
    F: FnMut(&mut S, u64),
{
    store.reset_io();
    let before = store.io_stats();
    for i in 0..ops {
        f(store, i);
    }
    let io = store.io_stats() - before;
    Cost { ops, io }
}

/// The standard comparison workload phases (experiment E7), generic
/// over the store. Unsupported operations surface as `None`.
pub struct ComparisonRun {
    /// Store name.
    pub name: &'static str,
    /// Object size used.
    pub object_bytes: u64,
    /// Cost of creating the object with a size hint.
    pub create_known: Cost,
    /// Cost of creating via 8 KiB appends without a hint.
    pub create_unknown: Option<Cost>,
    /// Full sequential scan.
    pub scan: Cost,
    /// Random 4 KiB range reads.
    pub random_reads: Cost,
    /// Random 100-byte inserts.
    pub inserts: Option<Cost>,
    /// Random 100-byte deletes.
    pub deletes: Option<Cost>,
    /// Random 512-byte in-place replaces.
    pub replaces: Cost,
    /// Pages occupied at the end (leaf + index).
    pub storage_pages: u64,
    /// Storage utilization at the end.
    pub utilization: f64,
}

/// Drive the full comparison workload against one store.
///
/// `fresh` builds a new store each phase so earlier phases cannot
/// pollute later ones.
pub fn comparison_run<S, F>(
    name: &'static str,
    object_bytes: u64,
    reads: u64,
    updates: u64,
    mut fresh: F,
) -> Result<ComparisonRun, Error>
where
    S: BlobStore,
    F: FnMut() -> S,
{
    let data = payload(1, object_bytes as usize);
    let page = 4096u64;

    // Create with a known size. A store that cannot hold the object at
    // all (WiSS beyond its directory cap) reports that instead.
    let mut s = fresh();
    s.reset_io();
    let before = s.io_stats();
    s.create(&data, true)?;
    let create_known = Cost {
        ops: 1,
        io: s.io_stats() - before,
    };

    // Create by appending 8 KiB chunks, size unknown.
    let mut s = fresh();
    let create_unknown = {
        let mut h = s.create(&[], false).unwrap();
        let before = {
            s.reset_io();
            s.io_stats()
        };
        let chunks: Vec<&[u8]> = data.chunks(8192).collect();
        let failed = s.append_many(&mut h, &chunks).is_err();
        let io = s.io_stats() - before;
        (!failed).then_some(Cost {
            ops: data.len().div_ceil(8192) as u64,
            io,
        })
    };

    // The remaining phases run on one object created with a hint.
    let mut s = fresh();
    let mut h = s.create(&data, true)?;

    let scan = measure(&mut s, 1, |s, _| {
        let got = s.read(&h, 0, object_bytes).unwrap();
        assert_eq!(got.len() as u64, object_bytes);
    });

    let mut r = rng();
    let offsets: Vec<u64> = (0..reads)
        .map(|_| r.gen_range(0..object_bytes.saturating_sub(page).max(1)))
        .collect();
    let scan_h = &h;
    let random_reads = measure(&mut s, reads, |s, i| {
        let _ = s.read(scan_h, offsets[i as usize], page).unwrap();
    });

    // Random replaces (in place everywhere).
    let mut r = rng();
    let roff: Vec<u64> = (0..updates)
        .map(|_| r.gen_range(0..object_bytes - 512))
        .collect();
    let rdata = payload(7, 512);
    let replaces = measure(&mut s, updates, |s, i| {
        s.replace(&mut h, roff[i as usize], &rdata).unwrap();
    });

    // Random small inserts.
    let mut r = rng();
    let idata = payload(9, 100);
    let inserts = {
        s.reset_io();
        let before = s.io_stats();
        let mut ok = true;
        for _ in 0..updates {
            let size = s.size(&h);
            let off = r.gen_range(0..=size);
            match s.insert(&mut h, off, &idata) {
                Ok(()) => {}
                Err(Error::Unsupported { .. }) => {
                    ok = false;
                    break;
                }
                Err(e) => panic!("insert failed: {e}"),
            }
        }
        let io = s.io_stats() - before;
        ok.then_some(Cost { ops: updates, io })
    };

    // Random small deletes.
    let mut r = rng();
    let deletes = {
        s.reset_io();
        let before = s.io_stats();
        let mut ok = true;
        for _ in 0..updates {
            let size = s.size(&h);
            if size < 200 {
                break;
            }
            let off = r.gen_range(0..size - 100);
            match s.delete(&mut h, off, 100) {
                Ok(()) => {}
                Err(Error::Unsupported { .. }) => {
                    ok = false;
                    break;
                }
                Err(e) => panic!("delete failed: {e}"),
            }
        }
        let io = s.io_stats() - before;
        ok.then_some(Cost { ops: updates, io })
    };

    let storage_pages = s.storage_pages(&h).unwrap_or(0);
    let utilization = if storage_pages == 0 {
        1.0
    } else {
        s.size(&h) as f64 / (storage_pages * page) as f64
    };

    Ok(ComparisonRun {
        name,
        object_bytes,
        create_known,
        create_unknown,
        scan,
        random_reads,
        inserts,
        deletes,
        replaces,
        storage_pages,
        utilization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic() {
        assert_eq!(payload(3, 100), payload(3, 100));
        assert_ne!(payload(3, 100), payload(4, 100));
    }

    #[test]
    fn cost_ratios() {
        let c = Cost {
            ops: 4,
            io: IoStats {
                seeks: 8,
                page_reads: 12,
                page_writes: 4,
                elapsed_us: 8000,
                ..IoStats::default()
            },
        };
        assert_eq!(c.seeks_per_op(), 2.0);
        assert_eq!(c.transfers_per_op(), 4.0);
        assert_eq!(c.ms_per_op(), 2.0);
    }
}
