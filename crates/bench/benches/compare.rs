//! Criterion cross-store microbenchmarks: the E7 shape at wall-clock
//! granularity (CPU + in-memory volume).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eos_bench::stores::{eos, exodus, starburst, Sizing};
use eos_bench::workload::payload;
use eos_core::{BlobStore, Threshold};
use std::hint::black_box;

const OBJ: usize = 1 << 20;

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("compare");
    group.sample_size(20);
    let sizing = Sizing::mb(16);
    let data = payload(1, OBJ);

    // Sequential scan.
    {
        let mut s = eos(sizing, Threshold::Fixed(8));
        let h = s.create(&data, true).unwrap();
        group.bench_function("scan/eos", |b| {
            b.iter(|| black_box(s.read(&h, 0, OBJ as u64).unwrap()));
        });
    }
    {
        let mut s = exodus(sizing, 1);
        let h = s.create(&data, true).unwrap();
        group.bench_function("scan/exodus-leaf1", |b| {
            b.iter(|| black_box(s.read(&h, 0, OBJ as u64).unwrap()));
        });
    }
    {
        let mut s = starburst(sizing);
        let h = s.create(&data, true).unwrap();
        group.bench_function("scan/starburst", |b| {
            b.iter(|| black_box(s.read(&h, 0, OBJ as u64).unwrap()));
        });
    }

    // Random small insert.
    group.bench_function("insert/eos", |b| {
        b.iter_batched_ref(
            || {
                let mut s = eos(sizing, Threshold::Fixed(8));
                let h = s.create(&data, true).unwrap();
                (s, h)
            },
            |(s, h)| s.insert(h, (OBJ / 3) as u64, &[1u8; 100]).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("insert/exodus-leaf1", |b| {
        b.iter_batched_ref(
            || {
                let mut s = exodus(sizing, 1);
                let h = s.create(&data, true).unwrap();
                (s, h)
            },
            |(s, h)| s.insert(h, (OBJ / 3) as u64, &[1u8; 100]).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("insert/starburst", |b| {
        b.iter_batched_ref(
            || {
                let mut s = starburst(sizing);
                let h = s.create(&data, true).unwrap();
                (s, h)
            },
            |(s, h)| s.insert(h, (OBJ / 3) as u64, &[1u8; 100]).unwrap(),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_compare);
criterion_main!(benches);
