//! Criterion microbenchmarks for the positional tree: node
//! serialization and descent over multi-level objects.

use criterion::{criterion_group, criterion_main, Criterion};
use eos_bench::stores::{eos, Sizing};
use eos_bench::workload::payload;
use eos_core::{Entry, Node, Threshold};
use std::hint::black_box;

fn bench_nodes(c: &mut Criterion) {
    let mut group = c.benchmark_group("node");
    group.sample_size(60);

    let node = Node {
        level: 1,
        entries: (0..255)
            .map(|i| Entry {
                bytes: 1000 + i,
                ptr: 7 * i + 3,
            })
            .collect(),
    };
    group.bench_function("to_page 255 entries", |b| {
        b.iter(|| black_box(node.to_page(4096)));
    });
    let page = node.to_page(4096);
    group.bench_function("from_page 255 entries", |b| {
        b.iter(|| black_box(Node::from_page(&page).unwrap()));
    });
    group.bench_function("find_child", |b| {
        b.iter(|| black_box(node.find_child(black_box(200_000))));
    });
    group.finish();
}

fn bench_descent(c: &mut Criterion) {
    let mut group = c.benchmark_group("descend");
    group.sample_size(30);

    // A multi-level object: many small segments via small-T inserts.
    let mut store = eos(Sizing::mb(64), Threshold::Fixed(1));
    let bytes = 8 << 20;
    let data = payload(3, bytes);
    let mut obj = store.create_with(&data, Some(bytes as u64)).unwrap();
    for i in 0..600u64 {
        let off = (i * 7919 * 13) % obj.size();
        store.insert(&mut obj, off, b"fragmentation-wedge").unwrap();
    }
    let stats = store.object_stats(&obj).unwrap();
    assert!(stats.segments > 500);

    group.bench_function(
        format!(
            "read 1B @random ({} segs, h={})",
            stats.segments, stats.height
        ),
        |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i * 6364136223846793005).wrapping_add(1442695040888963407);
                let off = i % obj.size();
                black_box(store.read(&obj, off, 1).unwrap());
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_nodes, bench_descent);
criterion_main!(benches);
