//! Criterion microbenchmarks for the buddy space manager (CPU cost of
//! the directory algorithms; the I/O cost is experiment E8).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eos_buddy::{Geometry, SpaceDir};
use std::hint::black_box;

fn bench_alloc_free(c: &mut Criterion) {
    let g = Geometry::for_page_size(4096);
    let mut group = c.benchmark_group("buddy");
    group.sample_size(40);

    for pages in [1u64, 16, 777] {
        group.bench_function(format!("alloc+free {pages}p"), |b| {
            b.iter_batched_ref(
                || SpaceDir::create(g, 16_272),
                |dir| {
                    let s = dir.alloc_any(black_box(pages)).unwrap();
                    dir.free_range(s, pages).unwrap();
                },
                BatchSize::SmallInput,
            );
        });
    }

    group.bench_function("fragmented alloc (half-full space)", |b| {
        b.iter_batched_ref(
            || {
                let mut dir = SpaceDir::create(g, 16_272);
                // Fragment: allocate 512 runs of 16, free every other.
                let mut held = Vec::new();
                for _ in 0..512 {
                    held.push(dir.alloc_any(16).unwrap());
                }
                for s in held.iter().step_by(2) {
                    dir.free_range(*s, 16).unwrap();
                }
                dir
            },
            |dir| {
                let s = dir.alloc_any(black_box(16)).unwrap();
                dir.free_range(s, 16).unwrap();
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("coalescing cascade 1..8192", |b| {
        b.iter_batched_ref(
            || {
                let mut dir = SpaceDir::create(g, 8192);
                // Allocate everything as single pages.
                let mut pages = Vec::with_capacity(8192);
                for _ in 0..8192 {
                    pages.push(dir.alloc_any(1).unwrap());
                }
                (dir, pages)
            },
            |(dir, pages)| {
                // Freeing them all forces the full coalescing cascade
                // back to one 8192-page segment.
                for &p in pages.iter() {
                    dir.free_range(p, 1).unwrap();
                }
                black_box(dir.count(13));
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("directory serialize+parse", |b| {
        let mut dir = SpaceDir::create(g, 16_272);
        for i in 0..200 {
            dir.alloc_any(1 + i % 37).unwrap();
        }
        b.iter(|| {
            let page = dir.to_page();
            black_box(SpaceDir::from_page(g, 16_272, &page).unwrap());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_alloc_free);
criterion_main!(benches);
