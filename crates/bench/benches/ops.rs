//! Criterion benchmarks for the §4 operations on EOS (end-to-end CPU +
//! simulated volume work, in-memory).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eos_bench::stores::{eos, Sizing};
use eos_bench::workload::payload;
use eos_core::{ObjectStore, Threshold};
use std::hint::black_box;

const OBJ: usize = 4 << 20;

fn prepared() -> (ObjectStore, eos_core::LargeObject) {
    let mut store = eos(Sizing::mb(32), Threshold::Fixed(8));
    let data = payload(1, OBJ);
    let obj = store.create_with(&data, Some(OBJ as u64)).unwrap();
    (store, obj)
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("eos-ops");
    group.sample_size(30);

    let (store, obj) = prepared();
    group.bench_function("read 4K @random", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(99);
            let off = i % (obj.size() - 4096);
            black_box(store.read(&obj, off, 4096).unwrap());
        });
    });
    group.bench_function("scan 4MB", |b| {
        b.iter(|| black_box(store.read_all(&obj).unwrap()));
    });
    drop((store, obj));

    group.bench_function("create 4MB (hinted)", |b| {
        let data = payload(1, OBJ);
        b.iter_batched_ref(
            || eos(Sizing::mb(32), Threshold::Fixed(8)),
            |store| {
                black_box(store.create_with(&data, Some(OBJ as u64)).unwrap());
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("insert 100B @random", |b| {
        b.iter_batched_ref(
            prepared,
            |(store, obj)| {
                store.insert(obj, obj.size() / 3, &[7u8; 100]).unwrap();
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("delete 100B @random", |b| {
        b.iter_batched_ref(
            prepared,
            |(store, obj)| {
                store.delete(obj, obj.size() / 3, 100).unwrap();
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("replace 512B @random", |b| {
        b.iter_batched_ref(
            prepared,
            |(store, obj)| {
                store.replace(obj, obj.size() / 3, &[9u8; 512]).unwrap();
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("append 8K", |b| {
        b.iter_batched_ref(
            prepared,
            |(store, obj)| {
                store.append(obj, &[5u8; 8192]).unwrap();
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance");
    group.sample_size(15);

    // A shattered 2 MiB object (T=1 wedge inserts).
    let shattered = || {
        let mut store = eos(Sizing::mb(24), Threshold::Fixed(1));
        let data = payload(2, 2 << 20);
        let mut obj = store.create_with(&data, Some(data.len() as u64)).unwrap();
        for i in 0..200u64 {
            let off = (i * 10_223) % obj.size();
            store.insert(&mut obj, off, b"wedge").unwrap();
        }
        obj.set_threshold(Threshold::Fixed(16));
        (store, obj)
    };

    group.bench_function("consolidate shattered 2MB", |b| {
        b.iter_batched_ref(
            shattered,
            |(store, obj)| {
                black_box(store.consolidate(obj).unwrap());
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("compact shattered 2MB", |b| {
        b.iter_batched_ref(
            shattered,
            |(store, obj)| {
                black_box(store.compact(obj).unwrap());
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("verify_object 2MB", |b| {
        let (store, obj) = shattered();
        b.iter(|| store.verify_object(&obj).unwrap());
    });

    group.finish();
}

fn bench_wal(c: &mut Criterion) {
    use eos_core::wal::Wal;
    let mut group = c.benchmark_group("wal");
    group.sample_size(30);

    group.bench_function("logged_replace 512B", |b| {
        b.iter_batched_ref(
            || {
                let mut store = eos(Sizing::mb(16), Threshold::Fixed(8));
                let data = payload(1, 1 << 20);
                let obj = store.create_with(&data, Some(data.len() as u64)).unwrap();
                (store, obj, Wal::new())
            },
            |(store, obj, wal)| {
                wal.logged_replace(store, obj, 100_000, &[7u8; 512])
                    .unwrap();
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("wal serialize 100 records", |b| {
        let mut store = eos(Sizing::mb(16), Threshold::Fixed(8));
        let mut obj = store.create_with(&payload(1, 1 << 20), None).unwrap();
        let mut wal = Wal::new();
        for i in 0..100u64 {
            wal.logged_replace(&mut store, &mut obj, i * 1000, &[1u8; 64])
                .unwrap();
        }
        b.iter(|| black_box(wal.to_bytes()));
    });

    group.bench_function("reshuffle planner", |b| {
        b.iter(|| {
            black_box(eos_core::reshuffle(
                black_box(123_456),
                black_box(789),
                black_box(456_123),
                4096,
                8,
                8192,
            ))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_ops, bench_maintenance, bench_wal);
criterion_main!(benches);
