//! # eos-check — whole-volume static consistency analysis (fsck)
//!
//! An offline analyzer for EOS volumes that cross-checks every
//! persistent structure the paper describes against every other:
//!
//! * **Buddy directories** (§3, Fig 1/2) — each space's allocation map
//!   is decoded tolerantly (a corrupt map yields findings, not panics)
//!   and audited for segment alignment, overlap (non-zero bytes under a
//!   big segment), orphan continuation bytes, maximal coalescing, and
//!   agreement between the `count[]` array and the map.
//! * **Superdirectory** (§3.3) — the cached largest-free-type per space
//!   is compared against the truth recomputed from the map. The cache
//!   is optimistic by design ("the first wrong guess will correct it"),
//!   so an over-promise is only informational; an under-promise means
//!   allocations will falsely skip the space and is an error.
//! * **Allocation census** (§4) — every object's positional tree is
//!   walked; each referenced page is claimed in a volume-wide ownership
//!   map. Pages claimed twice are overlaps (errors); pages allocated in
//!   a map but claimed by no object, the boot record, or a pending
//!   deferred free (§4.5 release locks) are leaks (warnings).
//! * **Write-ahead log** (§4.5) — object-root LSNs must not run ahead
//!   of the log tail, and the log's LSNs must be strictly increasing.
//!
//! Every broken invariant becomes a [`Finding`]; nothing short-circuits,
//! so one report shows the full extent of the damage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amap_audit;
mod census;
mod report;
pub mod schema;

use eos_buddy::SpaceDir;
use eos_core::wal::Wal;
use eos_core::{LargeObject, ObjectStore};
use eos_pager::SharedVolume;

pub use amap_audit::{audit_dir, SpaceAudit};
pub use report::Report;
pub use schema::{parse_envelope, Envelope, EnvelopeFinding, Json};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Expected slack in an optimistic structure (e.g. a stale
    /// superdirectory over-promise); no action needed.
    Info,
    /// Space is wasted but no data is at risk (e.g. leaked pages).
    Warning,
    /// An invariant the paper states is broken; data may be at risk.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which layer of the storage structure a finding concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// A buddy-space directory page: the `count[]` array or the
    /// allocation map (§3, Fig 1/2).
    Buddy,
    /// The in-memory superdirectory cache (§3.3).
    Superdir,
    /// One object's positional tree (§4).
    Object,
    /// The volume-wide page-ownership census.
    Census,
    /// The write-ahead log and object-root LSNs (§4.5).
    Wal,
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Layer::Buddy => "buddy",
            Layer::Superdir => "superdir",
            Layer::Object => "object",
            Layer::Census => "census",
            Layer::Wal => "wal",
        })
    }
}

/// One broken (or noteworthy) invariant found by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// Which layer of the structure it concerns.
    pub layer: Layer,
    /// Where: a space/page/object path, e.g. `space 2 page 17` or
    /// `object "big" root/0/3`.
    pub location: String,
    /// What is wrong, in the paper's terms.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.layer, self.location, self.detail
        )
    }
}

/// Analyze a live (successfully opened) store: audit every buddy
/// directory, compare the superdirectory cache against recomputed
/// truth, run the whole-volume page-ownership census over `objects`
/// (pass *every* live object, including the catalog object itself, or
/// their pages will be reported as leaks), and — when `wal` is given —
/// check LSN sanity.
pub fn check_store(
    store: &ObjectStore,
    objects: &[(String, LargeObject)],
    wal: Option<&Wal>,
) -> Report {
    let mut findings = Vec::new();
    let buddy = store.buddy();
    let mut audits = Vec::with_capacity(buddy.num_spaces());
    let mut pages_scanned = 0u64;

    for i in 0..buddy.num_spaces() {
        let space = buddy.space(i);
        let dir = space.dir();
        let audit = audit_dir(dir, i);
        pages_scanned += dir.data_pages();
        findings.extend(audit.findings.iter().cloned());
        audits.push(audit);
    }

    // Superdirectory coherence (§3.3): belief vs truth recomputed from
    // the tolerantly decoded maps, not from the (possibly corrupt)
    // count arrays.
    for (i, audit) in audits.iter().enumerate() {
        let truth = audit
            .free_counts
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &n)| n > 0)
            .map(|(t, _)| t as u8);
        let belief = buddy.superdir_belief(i);
        match (belief, truth) {
            (Some(b), Some(t)) if b > t => findings.push(Finding {
                severity: Severity::Info,
                layer: Layer::Superdir,
                location: format!("space {i}"),
                detail: format!(
                    "superdirectory over-promises type {b}, map holds at most \
                     type {t} (stale optimism; the first wrong guess will correct it)"
                ),
            }),
            (Some(b), Some(t)) if b < t => findings.push(Finding {
                severity: Severity::Error,
                layer: Layer::Superdir,
                location: format!("space {i}"),
                detail: format!(
                    "superdirectory under-promises type {b}, map holds type {t}: \
                     allocations will falsely skip this space"
                ),
            }),
            (Some(b), None) => findings.push(Finding {
                severity: Severity::Info,
                layer: Layer::Superdir,
                location: format!("space {i}"),
                detail: format!(
                    "superdirectory over-promises type {b}, space is full \
                     (stale optimism; the first wrong guess will correct it)"
                ),
            }),
            (None, Some(t)) => findings.push(Finding {
                severity: Severity::Error,
                layer: Layer::Superdir,
                location: format!("space {i}"),
                detail: format!(
                    "superdirectory believes the space is full, map holds type {t}: \
                     allocations will falsely skip this space"
                ),
            }),
            _ => {}
        }
    }

    // Whole-volume allocation census over the tolerantly decoded maps.
    findings.extend(census::run(store, objects, &audits));

    // WAL / LSN sanity (§4.5) — against the caller-held in-memory log
    // or, on a durable store, its own on-disk log.
    let lsn_view: Option<(u64, Vec<eos_core::wal::LogRecord>)> = match wal {
        Some(w) => Some((w.last_lsn(), w.records().to_vec())),
        None => store.durable_wal().map(|w| (w.last_lsn(), w.records())),
    };
    if let Some((tail, records)) = lsn_view {
        for (name, obj) in objects {
            if obj.lsn() > tail {
                findings.push(Finding {
                    severity: Severity::Error,
                    layer: Layer::Wal,
                    location: format!("object {name:?}"),
                    detail: format!(
                        "root carries LSN {} but the log tail is {tail}: \
                         updates were lost from the log",
                        obj.lsn()
                    ),
                });
            }
        }
        for w in records.windows(2) {
            if w[1].lsn <= w[0].lsn {
                findings.push(Finding {
                    severity: Severity::Error,
                    layer: Layer::Wal,
                    location: format!("log record {}", w[1].lsn),
                    detail: format!("LSN {} follows {}, not increasing", w[1].lsn, w[0].lsn),
                });
            }
        }
    }

    Report {
        findings,
        spaces_checked: buddy.num_spaces(),
        objects_checked: objects.len(),
        pages_scanned,
    }
}

/// Audit a volume's buddy directories straight from disk, without
/// opening a store — the path of last resort for volumes so damaged
/// that [`ObjectStore::open`] refuses them. Reads each space's
/// directory page with [`SpaceDir::from_page_unchecked`] and audits it;
/// object-level checks need a store and are not run.
pub fn audit_volume(volume: &SharedVolume, num_spaces: usize, pages_per_space: u64) -> Report {
    let geometry = eos_buddy::Geometry::for_page_size(volume.page_size());
    let span = pages_per_space + 1;
    let mut findings = Vec::new();
    let mut pages_scanned = 0u64;
    for i in 0..num_spaces {
        let dir_page = i as u64 * span;
        let page = match volume.read_pages(dir_page, 1) {
            Ok(p) => p,
            Err(e) => {
                findings.push(Finding {
                    severity: Severity::Error,
                    layer: Layer::Buddy,
                    location: format!("space {i}"),
                    detail: format!("directory page {dir_page} unreadable: {e}"),
                });
                continue;
            }
        };
        match SpaceDir::from_page_unchecked(geometry, pages_per_space, &page) {
            Ok(dir) => {
                pages_scanned += dir.data_pages();
                findings.extend(audit_dir(&dir, i).findings);
            }
            Err(e) => findings.push(Finding {
                severity: Severity::Error,
                layer: Layer::Buddy,
                location: format!("space {i}"),
                detail: format!("directory page {dir_page} undecodable: {e}"),
            }),
        }
    }
    Report {
        findings,
        spaces_checked: num_spaces,
        objects_checked: 0,
        pages_scanned,
    }
}
