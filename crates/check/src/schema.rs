//! The shared machine-readable report envelope.
//!
//! `eos check --json` and `eos stats --json` emit the same top-level
//! shape — `{"clean": bool, "findings": [...], ...}` — so scripts can
//! gate on one schema regardless of which analyzer produced the
//! output. This module is the schema's single source of truth: a
//! dependency-free JSON parser (the workspace has no serde) plus
//! [`parse_envelope`], which validates the common fields and hands
//! back everything else as a generic [`Json`] tree.
//!
//! The parser is strict where it matters for round-tripping our own
//! emitters (objects, arrays, strings with the escapes
//! [`Report::to_json`](crate::Report) produces, integers, floats,
//! bools, null) and returns `Err` — never panics — on anything
//! malformed, in keeping with the crate's decode-tolerantly rule.

use std::iter::Peekable;
use std::str::Chars;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if this is a number that
    /// round-trips losslessly through `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Insert or replace a member on an object; no-op on other
    /// variants. Lets tools (the bench harness's `BENCH_obs.json`
    /// merger) update a document in place.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(members) = self {
            match members.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => members.push((key.to_string(), value)),
            }
        }
    }

    /// Serialize back to JSON text (the inverse of [`parse`]; numbers
    /// that fit an integer render without a fraction).
    pub fn render(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 2f64.powi(53) => {
                format!("{}", *n as i64)
            }
            Json::Num(n) => n.to_string(),
            Json::Str(s) => crate::report::json_string(s),
            Json::Arr(items) => {
                let body: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", body.join(","))
            }
            Json::Obj(members) => {
                let body: Vec<String> = members
                    .iter()
                    .map(|(k, v)| format!("{}:{}", crate::report::json_string(k), v.render()))
                    .collect();
                format!("{{{}}}", body.join(","))
            }
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an
/// error, as is any malformed construct — the parser never panics.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut chars = input.chars().peekable();
    let value = parse_value(&mut chars)?;
    skip_ws(&mut chars);
    match chars.next() {
        None => Ok(value),
        Some(c) => Err(format!("trailing input starting at {c:?}")),
    }
}

fn skip_ws(chars: &mut Peekable<Chars<'_>>) {
    while matches!(chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
        chars.next();
    }
}

/// Consume `word` (minus its already-consumed first char) and yield
/// `value`.
fn parse_keyword(chars: &mut Peekable<Chars<'_>>, word: &str, value: Json) -> Result<Json, String> {
    for expect in word.chars().skip(1) {
        if chars.next() != Some(expect) {
            return Err(format!("invalid literal (expected {word:?})"));
        }
    }
    Ok(value)
}

fn parse_value(chars: &mut Peekable<Chars<'_>>) -> Result<Json, String> {
    skip_ws(chars);
    match chars.next() {
        Some('{') => parse_object(chars),
        Some('[') => parse_array(chars),
        Some('"') => parse_string(chars).map(Json::Str),
        Some('t') => parse_keyword(chars, "true", Json::Bool(true)),
        Some('f') => parse_keyword(chars, "false", Json::Bool(false)),
        Some('n') => parse_keyword(chars, "null", Json::Null),
        Some(c) if c == '-' || c.is_ascii_digit() => parse_number(chars, c),
        Some(c) => Err(format!("unexpected character {c:?}")),
        None => Err("unexpected end of input".into()),
    }
}

/// `{` already consumed.
fn parse_object(chars: &mut Peekable<Chars<'_>>) -> Result<Json, String> {
    let mut members = Vec::new();
    skip_ws(chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(chars);
        if chars.next() != Some('"') {
            return Err("expected object key".into());
        }
        let key = parse_string(chars)?;
        skip_ws(chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        members.push((key, parse_value(chars)?));
        skip_ws(chars);
        match chars.next() {
            Some(',') => {}
            Some('}') => return Ok(Json::Obj(members)),
            _ => return Err("expected ',' or '}' in object".into()),
        }
    }
}

/// `[` already consumed.
fn parse_array(chars: &mut Peekable<Chars<'_>>) -> Result<Json, String> {
    let mut items = Vec::new();
    skip_ws(chars);
    if chars.peek() == Some(&']') {
        chars.next();
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(chars)?);
        skip_ws(chars);
        match chars.next() {
            Some(',') => {}
            Some(']') => return Ok(Json::Arr(items)),
            _ => return Err("expected ',' or ']' in array".into()),
        }
    }
}

/// Opening `"` already consumed; unescapes as it goes.
fn parse_string(chars: &mut Peekable<Chars<'_>>) -> Result<String, String> {
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{0008}'),
                Some('f') => out.push('\u{000c}'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or("bad \\u escape")?;
                        code = code * 16 + d;
                    }
                    // Surrogates can't appear in our emitters' output;
                    // map them to U+FFFD rather than erroring.
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                _ => return Err("bad escape in string".into()),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

/// First char (`-` or a digit) already consumed.
fn parse_number(chars: &mut Peekable<Chars<'_>>, first: char) -> Result<Json, String> {
    let mut text = String::new();
    text.push(first);
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-') {
            text.push(c);
            chars.next();
        } else {
            break;
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?}"))
}

/// One finding from an envelope, with the severity/layer kept as the
/// strings the emitters use (`"error"`, `"buddy"`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvelopeFinding {
    /// `"info"`, `"warning"`, or `"error"`.
    pub severity: String,
    /// The structural layer (`"buddy"`, `"wal"`, …).
    pub layer: String,
    /// Where the finding points.
    pub location: String,
    /// What is wrong.
    pub detail: String,
}

/// The fields every `eos … --json` report shares, plus the full parsed
/// body for tool-specific extras (`"pages"` for check, `"metrics"` for
/// stats).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// `true` when nothing worse than info was found.
    pub clean: bool,
    /// Every finding, in discovery order.
    pub findings: Vec<EnvelopeFinding>,
    /// The whole document, for tool-specific fields.
    pub body: Json,
}

/// Parse and validate a shared-envelope report: the document must be
/// an object with a boolean `"clean"` and an array `"findings"` of
/// well-formed finding objects.
pub fn parse_envelope(input: &str) -> Result<Envelope, String> {
    let body = parse(input)?;
    let clean = body
        .get("clean")
        .and_then(Json::as_bool)
        .ok_or("envelope: missing boolean \"clean\"")?;
    let raw = body
        .get("findings")
        .and_then(Json::as_array)
        .ok_or("envelope: missing array \"findings\"")?;
    let mut findings = Vec::with_capacity(raw.len());
    for (i, f) in raw.iter().enumerate() {
        let field = |key: &str| -> Result<String, String> {
            f.get(key)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| format!("finding {i}: missing string {key:?}"))
        };
        findings.push(EnvelopeFinding {
            severity: field("severity")?,
            layer: field("layer")?,
            location: field("location")?,
            detail: field("detail")?,
        });
    }
    Ok(Envelope {
        clean,
        findings,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Layer, Report, Severity};

    #[test]
    fn parses_scalars_and_nesting() {
        let j = parse(r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(j.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(j.get("e").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn unescapes_strings() {
        let j = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "{\"a\" 1}",
            "{\"a\":1} x",
            "\"open",
            "01x",
            "{1: 2}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn round_trips_a_check_report() {
        let report = Report {
            findings: vec![Finding {
                severity: Severity::Warning,
                layer: Layer::Census,
                location: "object \"a\\b\"".into(),
                detail: "line\nbreak".into(),
            }],
            spaces_checked: 2,
            objects_checked: 1,
            pages_scanned: 100,
        };
        let env = parse_envelope(&report.to_json()).unwrap();
        assert!(!env.clean);
        assert_eq!(env.findings.len(), 1);
        assert_eq!(env.findings[0].severity, "warning");
        assert_eq!(env.findings[0].layer, "census");
        assert_eq!(env.findings[0].location, "object \"a\\b\"");
        assert_eq!(env.findings[0].detail, "line\nbreak");
        assert_eq!(env.body.get("pages").unwrap().as_u64(), Some(100));
    }

    #[test]
    fn accepts_a_stats_style_envelope() {
        let doc = r#"{"clean":true,"findings":[],"metrics":{"ops":{"create":{"count":1,"seeks":3}},"counters":{"wal.frames":7}}}"#;
        let env = parse_envelope(doc).unwrap();
        assert!(env.clean);
        assert!(env.findings.is_empty());
        let create = env
            .body
            .get("metrics")
            .and_then(|m| m.get("ops"))
            .and_then(|o| o.get("create"))
            .unwrap();
        assert_eq!(create.get("seeks").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn render_round_trips() {
        let text = r#"{"clean":true,"n":-3,"pi":2.5,"findings":[],"s":"a\"b","x":null}"#;
        let parsed = parse(text).unwrap();
        assert_eq!(parsed.render(), text);
        assert_eq!(parse(&parsed.render()).unwrap(), parsed);
    }

    #[test]
    fn set_replaces_and_inserts_members() {
        let mut doc = parse(r#"{"a":1}"#).unwrap();
        doc.set("a", Json::Num(2.0));
        doc.set("b", Json::Str("x".into()));
        assert_eq!(doc.render(), r#"{"a":2,"b":"x"}"#);
    }

    #[test]
    fn rejects_envelopes_missing_shared_fields() {
        assert!(parse_envelope(r#"{"findings":[]}"#).is_err());
        assert!(parse_envelope(r#"{"clean":true}"#).is_err());
        assert!(parse_envelope(r#"{"clean":true,"findings":[{"severity":"error"}]}"#).is_err());
        assert!(parse_envelope(r#"{"clean":"yes","findings":[]}"#).is_err());
    }
}
