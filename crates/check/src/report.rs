//! Rendering a check run: human-readable table and machine JSON.

use crate::{Finding, Severity};

/// Everything one `eos check` run found, plus scan statistics.
#[derive(Debug)]
pub struct Report {
    /// Every finding, in discovery order (buddy → superdir → census →
    /// WAL).
    pub findings: Vec<Finding>,
    /// Buddy spaces audited.
    pub spaces_checked: usize,
    /// Objects whose trees were walked.
    pub objects_checked: usize,
    /// Data pages covered by the audited allocation maps.
    pub pages_scanned: u64,
}

impl Report {
    /// The worst severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// A volume is clean when nothing worse than [`Severity::Info`]
    /// was found (info findings are expected optimistic slack).
    pub fn is_clean(&self) -> bool {
        self.max_severity().is_none_or(|s| s <= Severity::Info)
    }

    /// Findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Human-readable table: one row per finding plus a summary line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.findings.is_empty() {
            let sev_w = self
                .findings
                .iter()
                .map(|f| f.severity.to_string().len())
                .max()
                .unwrap_or(0)
                .max("SEVERITY".len());
            let layer_w = self
                .findings
                .iter()
                .map(|f| f.layer.to_string().len())
                .max()
                .unwrap_or(0)
                .max("LAYER".len());
            let loc_w = self
                .findings
                .iter()
                .map(|f| f.location.len())
                .max()
                .unwrap_or(0)
                .max("LOCATION".len());
            out.push_str(&format!(
                "{:sev_w$}  {:layer_w$}  {:loc_w$}  DETAIL\n",
                "SEVERITY", "LAYER", "LOCATION"
            ));
            for f in &self.findings {
                out.push_str(&format!(
                    "{:sev_w$}  {:layer_w$}  {:loc_w$}  {}\n",
                    f.severity.to_string(),
                    f.layer.to_string(),
                    f.location,
                    f.detail
                ));
            }
        }
        out.push_str(&format!(
            "checked {} space(s), {} object(s), {} page(s): \
             {} error(s), {} warning(s), {} info\n",
            self.spaces_checked,
            self.objects_checked,
            self.pages_scanned,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }

    /// Machine-readable JSON:
    /// `{"clean": bool, "spaces": n, "objects": n, "pages": n,
    ///   "findings": [{"severity", "layer", "location", "detail"}, …]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"clean\":{},\"spaces\":{},\"objects\":{},\"pages\":{},\"findings\":[",
            self.is_clean(),
            self.spaces_checked,
            self.objects_checked,
            self.pages_scanned
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"layer\":\"{}\",\"location\":{},\"detail\":{}}}",
                f.severity,
                f.layer,
                json_string(&f.location),
                json_string(&f.detail)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string encoder (the workspace has no serde).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, Severity};

    fn report_with(findings: Vec<Finding>) -> Report {
        Report {
            findings,
            spaces_checked: 2,
            objects_checked: 1,
            pages_scanned: 100,
        }
    }

    #[test]
    fn empty_report_is_clean() {
        let r = report_with(vec![]);
        assert!(r.is_clean());
        assert_eq!(r.max_severity(), None);
        assert!(r.render_table().contains("0 error(s)"));
        assert!(r.to_json().starts_with("{\"clean\":true"));
    }

    #[test]
    fn info_only_is_clean_but_error_is_not() {
        let info = Finding {
            severity: Severity::Info,
            layer: Layer::Superdir,
            location: "space 0".into(),
            detail: "over-promise".into(),
        };
        assert!(report_with(vec![info.clone()]).is_clean());
        let err = Finding {
            severity: Severity::Error,
            layer: Layer::Buddy,
            location: "space 1".into(),
            detail: "bad".into(),
        };
        let r = report_with(vec![info, err]);
        assert!(!r.is_clean());
        assert_eq!(r.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn json_escapes_strings() {
        let f = Finding {
            severity: Severity::Warning,
            layer: Layer::Census,
            location: "object \"a\\b\"".into(),
            detail: "line\nbreak".into(),
        };
        let j = report_with(vec![f]).to_json();
        assert!(j.contains("\\\"a\\\\b\\\""));
        assert!(j.contains("line\\nbreak"));
    }
}
