//! Tolerant decoding and audit of one buddy-space directory.
//!
//! [`SpaceDir::check_invariants`] stops at the first problem and the
//! [`AMap`] decoders assert on malformed maps; an analyzer must instead
//! survive arbitrary bytes and report *everything* wrong. This module
//! re-decodes the Fig 2 byte encoding from scratch over the raw map
//! bytes, collecting findings as it goes, and recomputes the free
//! counts and a per-page allocation bitmap for the downstream checks.

use eos_buddy::{SpaceDir, ALLOC_FLAG, BIG_FLAG, TYPE_MASK};

use crate::{Finding, Layer, Severity};

/// The result of tolerantly decoding one space's directory.
pub struct SpaceAudit {
    /// Everything wrong with the directory.
    pub findings: Vec<Finding>,
    /// Free segments per type, recomputed from the map — the truth the
    /// `count[]` array and the superdirectory are compared against.
    pub free_counts: Vec<u64>,
    /// Per data page: is it allocated? Interior pages of big segments
    /// inherit the header's state; undecodable quads count as
    /// allocated so the census does not double-report them as leaks.
    pub allocated: Vec<bool>,
}

/// A segment recovered from the raw map.
#[derive(Debug, Clone, Copy)]
struct RawSeg {
    start: u64,
    pages: u64,
    free: bool,
}

/// Audit one directory: tolerant map decode, count-array comparison,
/// alignment, overlap, orphan continuations, maximal coalescing.
pub fn audit_dir(dir: &SpaceDir, space: usize) -> SpaceAudit {
    let mut findings = Vec::new();
    let dp = dir.data_pages();
    let max_type = dir.space_max_type();
    let (segs, mut allocated) = decode(dir, space, &mut findings);

    // Recompute the free counts and check maximal coalescing: a free
    // segment whose buddy is also free at the same size should have
    // been coalesced (§3.2) — and the encoding relies on it.
    let mut free_counts = vec![0u64; dir.counts().len()];
    for s in &segs {
        if !s.free {
            continue;
        }
        let t = s.pages.ilog2() as u8;
        if (t as usize) < free_counts.len() {
            free_counts[t as usize] += 1;
        }
        if t > max_type {
            findings.push(Finding {
                severity: Severity::Error,
                layer: Layer::Buddy,
                location: format!("space {space} page {}", s.start),
                detail: format!("free segment of type {t} exceeds the space maximum {max_type}"),
            });
        }
        if t < max_type {
            let buddy = s.start ^ s.pages;
            if segs
                .iter()
                .any(|b| b.free && b.start == buddy && b.pages == s.pages)
                && s.start < buddy
            {
                findings.push(Finding {
                    severity: Severity::Error,
                    layer: Layer::Buddy,
                    location: format!("space {space} page {}", s.start),
                    detail: format!(
                        "free buddies {} and {buddy} of size {} not coalesced",
                        s.start, s.pages
                    ),
                });
            }
        }
    }

    // Coverage: decoded segments must tile the space exactly. (The
    // decoder already reports the specific overlap/orphan bytes; a
    // total mismatch is the summary symptom.)
    let covered: u64 = segs.iter().map(|s| s.pages).sum();
    if covered != dp {
        findings.push(Finding {
            severity: Severity::Error,
            layer: Layer::Buddy,
            location: format!("space {space}"),
            detail: format!("decoded segments cover {covered} pages, space has {dp}"),
        });
    }

    // The count array (Fig 1) must agree with the map.
    for (t, &have) in dir.counts().iter().enumerate() {
        let want = free_counts.get(t).copied().unwrap_or(0);
        if u64::from(have) != want {
            findings.push(Finding {
                severity: Severity::Error,
                layer: Layer::Buddy,
                location: format!("space {space} count[{t}]"),
                detail: format!("count array says {have} free, map holds {want}"),
            });
        }
    }

    allocated.truncate(dp as usize);
    SpaceAudit {
        findings,
        free_counts,
        allocated,
    }
}

/// Decode the raw map bytes into segments, reporting malformed
/// encodings and never panicking. Returns the recovered segments and a
/// per-page allocation bitmap.
fn decode(dir: &SpaceDir, space: usize, findings: &mut Vec<Finding>) -> (Vec<RawSeg>, Vec<bool>) {
    let bytes = dir.amap().as_bytes();
    let dp = dir.data_pages();
    // Undecodable regions default to "allocated": a page we cannot
    // account for must not also be reported as a leak.
    let mut allocated = vec![true; dp as usize];
    let mut segs = Vec::new();
    let mut page = 0u64;
    while page < dp {
        let bi = (page / 4) as usize;
        let b = bytes[bi];
        if b & BIG_FLAG != 0 {
            let t = b & TYPE_MASK;
            let pages = 1u64 << t.min(63);
            let free = b & ALLOC_FLAG == 0;
            if t < 2 {
                findings.push(Finding {
                    severity: Severity::Error,
                    layer: Layer::Buddy,
                    location: format!("space {space} page {page}"),
                    detail: format!(
                        "big-form header for a type-{t} segment (only segments \
                         of 4+ pages use the big form)"
                    ),
                });
                // Treat as covering its quad so the walk advances.
                page = (bi as u64 + 1) * 4;
                continue;
            }
            if !page.is_multiple_of(4) || !page.is_multiple_of(pages) {
                findings.push(Finding {
                    severity: Severity::Error,
                    layer: Layer::Buddy,
                    location: format!("space {space} page {page}"),
                    detail: format!("segment of size {pages} not aligned to its size"),
                });
            }
            if page + pages > dp {
                findings.push(Finding {
                    severity: Severity::Error,
                    layer: Layer::Buddy,
                    location: format!("space {space} page {page}"),
                    detail: format!(
                        "segment of size {pages} runs past the end of the space ({dp} pages)"
                    ),
                });
                segs.push(RawSeg {
                    start: page,
                    pages: dp - page,
                    free,
                });
                break;
            }
            // Every byte under the segment after the header must be a
            // continuation (zero); a non-zero byte is a second segment
            // overlapping this one.
            let last_bi = ((page + pages - 1) / 4) as usize;
            for (i, &cb) in bytes[bi + 1..=last_bi.min(bytes.len() - 1)]
                .iter()
                .enumerate()
            {
                if cb != 0 {
                    findings.push(Finding {
                        severity: Severity::Error,
                        layer: Layer::Buddy,
                        location: format!("space {space} page {}", (bi + 1 + i) as u64 * 4),
                        detail: format!(
                            "map byte {cb:#04x} inside the segment at page {page} \
                             (segments overlap; continuation bytes must be zero)"
                        ),
                    });
                }
            }
            for p in page..page + pages {
                allocated[p as usize] = !free;
            }
            segs.push(RawSeg {
                start: page,
                pages,
                free,
            });
            page += pages;
        } else if b == 0 {
            // A zero byte where a segment must start: an orphan
            // continuation with no big header on its left.
            findings.push(Finding {
                severity: Severity::Error,
                layer: Layer::Buddy,
                location: format!("space {space} page {page}"),
                detail: "continuation byte with no big-segment header on the left".into(),
            });
            page = (bi as u64 + 1) * 4;
        } else {
            // Individual form: four pages, one status bit each; free
            // even/odd pairs form canonical 2-page segments.
            let quad_end = ((bi as u64 + 1) * 4).min(dp);
            let mut p = page;
            while p < quad_end {
                let bit = 1u8 << (3 - (p % 4) as u8);
                if b & bit != 0 {
                    allocated[p as usize] = true;
                    segs.push(RawSeg {
                        start: p,
                        pages: 1,
                        free: false,
                    });
                    p += 1;
                } else {
                    let pair = p.is_multiple_of(2)
                        && p + 1 < quad_end
                        && b & (1u8 << (3 - ((p + 1) % 4) as u8)) == 0;
                    let pages = if pair { 2 } else { 1 };
                    for q in p..p + pages {
                        allocated[q as usize] = false;
                    }
                    segs.push(RawSeg {
                        start: p,
                        pages,
                        free: true,
                    });
                    p += pages;
                }
            }
            page = quad_end;
        }
    }
    (segs, allocated)
}
