//! The whole-volume allocation census.
//!
//! Walks every object's positional tree, claims each referenced page in
//! a volume-wide ownership table, then sweeps the allocation bitmaps
//! for pages nobody claims. Cross-object overlaps are errors; allocated
//! pages with no owner are leaks (warnings) unless they are the boot
//! record or sitting in an uncommitted deferred-free batch (§4.5
//! release locks, where "freed" segments legitimately stay allocated
//! until commit).

use std::collections::HashMap;

use eos_core::{LargeObject, ObjectStore};

use crate::amap_audit::SpaceAudit;
use crate::{Finding, Layer, Severity};

pub(crate) fn run(
    store: &ObjectStore,
    objects: &[(String, LargeObject)],
    audits: &[SpaceAudit],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let buddy = store.buddy();

    // Volume page → index into `objects` (usize::MAX = the boot record).
    let mut owner: HashMap<u64, usize> = HashMap::new();
    let boot = buddy.space(0).data_base();
    owner.insert(boot, usize::MAX);

    let owner_name = |idx: usize, objects: &[(String, LargeObject)]| -> String {
        if idx == usize::MAX {
            "the boot record".into()
        } else {
            format!("object {:?}", objects[idx].0)
        }
    };

    for (idx, (name, obj)) in objects.iter().enumerate() {
        // Structural invariants of the tree itself (§4): every
        // violation, not just the first.
        for v in store.verify_object_report(obj) {
            findings.push(Finding {
                severity: Severity::Error,
                layer: Layer::Object,
                location: format!("object {name:?} {}", v.location),
                detail: v.reason,
            });
        }
        // Claim every page the object references.
        for (start, pages) in store.object_page_extents(obj) {
            for p in start..start + pages {
                if let Some(&prev) = owner.get(&p) {
                    findings.push(Finding {
                        severity: Severity::Error,
                        layer: Layer::Census,
                        location: format!("volume page {p}"),
                        detail: format!(
                            "referenced by object {name:?} but already owned by {}",
                            owner_name(prev, objects)
                        ),
                    });
                } else {
                    owner.insert(p, idx);
                }
            }
        }
    }

    // Pages in uncommitted free batches are allocated on disk but
    // logically free — not leaks.
    let mut pending: HashMap<u64, ()> = HashMap::new();
    for e in buddy.pending_free_extents() {
        for p in e.start..e.end() {
            pending.insert(p, ());
        }
    }

    // Sweep each space's allocation bitmap for unclaimed pages,
    // reporting leaks as coalesced runs.
    for (i, audit) in audits.iter().enumerate() {
        let base = buddy.space(i).data_base();
        let mut run_start: Option<u64> = None;
        let flush = |from: &mut Option<u64>, end: u64, findings: &mut Vec<Finding>| {
            if let Some(s) = from.take() {
                findings.push(Finding {
                    severity: Severity::Warning,
                    layer: Layer::Census,
                    location: format!("space {i} volume pages {s}..{end}"),
                    detail: format!(
                        "{} allocated page(s) referenced by no object \
                         (leaked by an interrupted update?)",
                        end - s
                    ),
                });
            }
        };
        for (off, &alloc) in audit.allocated.iter().enumerate() {
            let p = base + off as u64;
            let leaked = alloc && !owner.contains_key(&p) && !pending.contains_key(&p);
            if leaked {
                run_start.get_or_insert(p);
            } else {
                flush(&mut run_start, p, &mut findings);
            }
        }
        let end = base + audit.allocated.len() as u64;
        flush(&mut run_start, end, &mut findings);
    }

    findings
}
