//! Property test: no sequence of legitimate operations produces findings.
//!
//! Random op sequences are applied to several objects in one store;
//! after the sequence the whole-volume analyzer must report a clean
//! volume — every page owned by exactly one object, every directory
//! self-consistent, the superdirectory coherent.

use eos_check::check_store;
use eos_core::{LargeObject, ObjectStore, StoreConfig, Threshold};
use proptest::prelude::*;

const PS: usize = 512;

fn prop_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
}

#[derive(Debug, Clone)]
enum Op {
    Append { obj: usize, len: usize },
    Insert { obj: usize, at: u64, len: usize },
    Delete { obj: usize, at: u64, len: u64 },
    Replace { obj: usize, at: u64, len: usize },
    Truncate { obj: usize, at: u64 },
    Compact { obj: usize },
    DeleteObject { obj: usize },
}

const NUM_OBJS: usize = 3;

fn op_strategy() -> impl Strategy<Value = Op> {
    let o = 0usize..NUM_OBJS;
    prop_oneof![
        4 => (o.clone(), 0usize..3_000).prop_map(|(obj, len)| Op::Append { obj, len }),
        3 => (o.clone(), any::<u64>(), 0usize..2_000)
            .prop_map(|(obj, at, len)| Op::Insert { obj, at, len }),
        3 => (o.clone(), any::<u64>(), any::<u64>())
            .prop_map(|(obj, at, len)| Op::Delete { obj, at, len: len % 4_000 }),
        2 => (o.clone(), any::<u64>(), 0usize..1_500)
            .prop_map(|(obj, at, len)| Op::Replace { obj, at, len }),
        1 => (o.clone(), any::<u64>()).prop_map(|(obj, at)| Op::Truncate { obj, at }),
        1 => o.clone().prop_map(|obj| Op::Compact { obj }),
        1 => o.prop_map(|obj| Op::DeleteObject { obj }),
    ]
}

fn fill(seed: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| seed.wrapping_add((i % 251) as u8))
        .collect()
}

fn run_clean(ops: Vec<Op>) {
    let mut store = ObjectStore::in_memory_with(
        PS,
        4000,
        StoreConfig {
            threshold: Threshold::Fixed(2),
            ..StoreConfig::default()
        },
    );
    let mut objs: Vec<LargeObject> = (0..NUM_OBJS).map(|_| store.create_object()).collect();

    for (i, op) in ops.into_iter().enumerate() {
        let seed = i as u8;
        match op {
            Op::Append { obj, len } => {
                if objs[obj].size() as usize + len > 80_000 {
                    continue;
                }
                let data = fill(seed, len);
                store.append(&mut objs[obj], &data).unwrap();
            }
            Op::Insert { obj, at, len } => {
                let size = objs[obj].size();
                if size as usize + len > 80_000 {
                    continue;
                }
                let at = if size == 0 { 0 } else { at % (size + 1) };
                let data = fill(seed.wrapping_add(101), len);
                store.insert(&mut objs[obj], at, &data).unwrap();
            }
            Op::Delete { obj, at, len } => {
                let size = objs[obj].size();
                if size == 0 {
                    continue;
                }
                let at = at % size;
                let len = len.min(size - at);
                if len == 0 {
                    continue;
                }
                store.delete(&mut objs[obj], at, len).unwrap();
            }
            Op::Replace { obj, at, len } => {
                let size = objs[obj].size();
                if size == 0 {
                    continue;
                }
                let at = at % size;
                let len = (len as u64).min(size - at) as usize;
                let data = fill(seed.wrapping_add(53), len);
                store.replace(&mut objs[obj], at, &data).unwrap();
            }
            Op::Truncate { obj, at } => {
                let size = objs[obj].size();
                let at = if size == 0 { 0 } else { at % (size + 1) };
                store.truncate(&mut objs[obj], at).unwrap();
            }
            Op::Compact { obj } => {
                store.compact(&mut objs[obj]).unwrap();
            }
            Op::DeleteObject { obj } => {
                store.delete_object(&mut objs[obj]).unwrap();
                objs[obj] = store.create_object();
            }
        }
    }

    let named: Vec<(String, LargeObject)> = objs
        .iter()
        .enumerate()
        .map(|(i, o)| (format!("obj{i}"), o.clone()))
        .collect();
    let report = check_store(&store, &named, None);
    assert!(
        report.findings.is_empty(),
        "legitimate ops produced findings: {:#?}",
        report.findings
    );
    assert!(report.is_clean());

    // And after freeing everything the volume is still clean — no
    // stranded pages, no stale superdirectory entries.
    for obj in &mut objs {
        store.delete_object(obj).unwrap();
    }
    let report = check_store(&store, &[], None);
    assert!(
        report.findings.is_empty(),
        "post-delete findings: {:#?}",
        report.findings
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: prop_cases(),
        ..ProptestConfig::default()
    })]

    /// Random multi-object op sequences leave a volume the analyzer
    /// considers clean, before and after tearing everything down.
    #[test]
    fn random_ops_yield_zero_findings(ops in proptest::collection::vec(op_strategy(), 1..35)) {
        run_clean(ops);
    }
}
