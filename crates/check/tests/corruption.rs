//! Corruption seeding: each test plants one class of damage in an
//! otherwise healthy store/directory and asserts the analyzer reports
//! it with the right severity at the right location — and nothing
//! panics, whatever the bytes look like.

use eos_buddy::{Geometry, SpaceDir};
use eos_check::{audit_dir, check_store, Layer, Severity};
use eos_core::wal::Wal;
use eos_core::{LargeObject, ObjectStore, StoreConfig, Threshold};

const PS: usize = 4096;

fn small_store() -> ObjectStore {
    ObjectStore::in_memory(PS, 2000)
}

/// A store whose objects grow real index pages quickly.
fn indexed_store() -> ObjectStore {
    ObjectStore::in_memory_with(
        PS,
        4000,
        StoreConfig {
            threshold: Threshold::Fixed(1),
            max_root_entries: Some(4),
            ..StoreConfig::default()
        },
    )
}

fn no_objects() -> Vec<(String, LargeObject)> {
    Vec::new()
}

// ---- class 1: count[] array disagrees with the allocation map --------

#[test]
fn detects_count_amap_mismatch() {
    let g = Geometry::for_page_size(PS);
    let mut dir = SpaceDir::create(g, 256);
    dir.alloc_any(5).unwrap();
    dir.check_invariants().unwrap();

    let mut page = dir.to_page();
    // Inflate count[0] (first two little-endian bytes) by one.
    let c0 = u16::from_le_bytes([page[0], page[1]]);
    page[..2].copy_from_slice(&(c0 + 1).to_le_bytes());

    let corrupt = SpaceDir::from_page_unchecked(g, 256, &page).unwrap();
    let audit = audit_dir(&corrupt, 0);
    let f = audit
        .findings
        .iter()
        .find(|f| f.location == "space 0 count[0]")
        .expect("count mismatch reported");
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.layer, Layer::Buddy);
    assert!(f.detail.contains("count array"), "{}", f.detail);
}

// ---- class 2: torn index page (unreadable node) ----------------------

#[test]
fn detects_torn_index_page() {
    let mut store = indexed_store();
    let data = vec![0xA5u8; 40 * PS];
    let mut obj = store.create_with(&data, None).unwrap();
    // Churn until the tree has real index pages.
    for i in 0..30 {
        let at = (i * 97) % obj.size();
        store.insert(&mut obj, at, &[7u8; 700]).unwrap();
    }
    assert!(
        obj.height() >= 2,
        "need index pages, got height {}",
        obj.height()
    );
    store.verify_object(&obj).unwrap();

    // The extent walk emits an index page before its subtree; tear it.
    let (index_page, _) = store.object_page_extents(&obj)[0];
    store
        .volume()
        .write_pages(index_page, &vec![0xFFu8; PS])
        .unwrap();

    let report = check_store(&store, &[("torn".into(), obj)], None);
    let f = report
        .findings
        .iter()
        .find(|f| f.layer == Layer::Object && f.detail.contains("unreadable index page"))
        .expect("torn page reported");
    assert_eq!(f.severity, Severity::Error);
    assert!(f.location.contains("\"torn\""), "{}", f.location);
    // One torn page must not cascade into count mismatches up the path.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.detail.contains("count mismatch")),
        "torn page cascaded: {:#?}",
        report.findings
    );
}

// ---- class 3: two objects own the same pages -------------------------

#[test]
fn detects_overlapping_objects() {
    let mut store = small_store();
    let obj = store.create_with(&vec![1u8; 9 * PS], None).unwrap();
    // A forged descriptor pointing at the same segments.
    let twin = LargeObject::from_bytes(&obj.to_bytes()).unwrap();

    let report = check_store(&store, &[("a".into(), obj), ("b".into(), twin)], None);
    let overlaps: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.layer == Layer::Census && f.severity == Severity::Error)
        .collect();
    assert!(!overlaps.is_empty(), "{:#?}", report.findings);
    assert!(overlaps[0].detail.contains("already owned by object \"a\""));
    assert!(overlaps[0].location.starts_with("volume page"));
    // Every one of the nine pages is double-claimed.
    assert_eq!(overlaps.len(), 9);
}

// ---- class 4: allocated pages no object references (leak) ------------

#[test]
fn detects_leaked_pages() {
    let mut store = small_store();
    let obj = store.create_with(b"healthy", None).unwrap();
    // Allocate behind the object manager's back and lose the extent.
    let leaked = store.buddy_mut().allocate(8).unwrap();

    let report = check_store(&store, &[("ok".into(), obj)], None);
    let f = report
        .findings
        .iter()
        .find(|f| f.layer == Layer::Census && f.severity == Severity::Warning)
        .expect("leak reported");
    assert!(f.detail.contains("8 allocated page(s)"), "{}", f.detail);
    assert!(
        f.location
            .contains(&format!("{}..{}", leaked.start, leaked.end())),
        "{}",
        f.location
    );
    assert!(!report.is_clean());
}

#[test]
fn pending_deferred_frees_are_not_leaks() {
    let mut store = small_store();
    let obj = store.create_with(&vec![3u8; 4 * PS], None).unwrap();
    // A §4.5 release lock: freed under an open batch, still allocated
    // on disk — legitimately unowned, not a leak.
    let ext = store.buddy_mut().allocate(4).unwrap();
    let batch = store.buddy().begin_free_batch();
    store.buddy().defer_free(batch, ext);

    let report = check_store(&store, &[("o".into(), obj)], None);
    assert!(report.is_clean(), "{:#?}", report.findings);
}

// ---- class 5: stale superdirectory -----------------------------------

#[test]
fn detects_superdir_under_promise() {
    // A 64-page space: after the boot page claim the largest free
    // segment is the 32-page half, and there is exactly one of it.
    let mut store = ObjectStore::in_memory(PS, 64);
    let t = store.buddy().space(0).largest_free_type().unwrap();
    // Take the unique largest segment through the manager so its
    // belief drops…
    let big = store.buddy_mut().allocate(1u64 << t).unwrap();
    assert!(store.buddy().superdir_belief(0) < Some(t));
    // …then free behind the superdirectory's back: truth recovers, the
    // cache still believes the space is nearly full.
    store
        .buddy_mut()
        .space_mut(0)
        .free(big.start, big.pages)
        .unwrap();

    let report = check_store(&store, &no_objects(), None);
    let f = report
        .findings
        .iter()
        .find(|f| f.layer == Layer::Superdir)
        .expect("stale superdir reported");
    assert_eq!(f.severity, Severity::Error);
    assert!(f.detail.contains("under-promise"), "{}", f.detail);
    assert_eq!(f.location, "space 0");
}

#[test]
fn superdir_over_promise_is_informational() {
    // Allocate behind the superdirectory's back: the cache now believes
    // more is free than there is — the by-design optimistic case ("the
    // first wrong guess will correct it"), so only Info.
    let mut store = ObjectStore::in_memory(PS, 64);
    let t = store.buddy().space(0).largest_free_type().unwrap();
    // Take the unique largest free segment; truth drops, belief stays.
    store.buddy_mut().space_mut(0).allocate(1u64 << t).unwrap();
    assert!(store.buddy().space(0).largest_free_type() < Some(t));

    let report = check_store(&store, &no_objects(), None);
    let f = report
        .findings
        .iter()
        .find(|f| f.layer == Layer::Superdir)
        .expect("over-promise noted");
    assert_eq!(f.severity, Severity::Info);
    assert!(f.detail.contains("over-promise"), "{}", f.detail);
    // The bypass allocation itself is correctly a leak *warning*; the
    // superdirectory layer must stay informational.
    assert!(report
        .findings
        .iter()
        .all(|f| f.layer != Layer::Superdir || f.severity == Severity::Info));
}

// ---- map-level damage: overlap / orphan continuation / misalignment --

#[test]
fn detects_overlapping_map_segments() {
    let g = Geometry::for_page_size(PS);
    let dir = SpaceDir::create(g, 256);
    let mut page = dir.to_page();
    let amap_off = 2 * g.count_entries();
    // Free 256-seg header at page 0, then a bogus allocated 4-seg
    // header inside its continuation run.
    page[amap_off + 2] = 0x80 | 0x40 | 2;
    let corrupt = SpaceDir::from_page_unchecked(g, 256, &page).unwrap();
    let audit = audit_dir(&corrupt, 3);
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.severity == Severity::Error && f.detail.contains("overlap")),
        "{:#?}",
        audit.findings
    );
    // Location names the offending quad's first page in space 3.
    assert!(audit
        .findings
        .iter()
        .any(|f| f.location == "space 3 page 8"));
}

#[test]
fn detects_orphan_continuation() {
    let g = Geometry::for_page_size(PS);
    let dir = SpaceDir::create(g, 16);
    let mut page = dir.to_page();
    let amap_off = 2 * g.count_entries();
    // Zero the free-16-seg header: its continuations are now orphans.
    page[amap_off] = 0;
    let corrupt = SpaceDir::from_page_unchecked(g, 16, &page).unwrap();
    let audit = audit_dir(&corrupt, 0);
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.detail.contains("no big-segment header")),
        "{:#?}",
        audit.findings
    );
}

#[test]
fn detects_uncoalesced_buddies() {
    let g = Geometry::for_page_size(PS);
    let dir = SpaceDir::create(g, 16);
    let mut page = dir.to_page();
    let amap_off = 2 * g.count_entries();
    // Replace the free 16-seg with two free 8-seg buddies (and fix the
    // counts so only the coalescing violation fires).
    page[amap_off] = 0x80 | 3;
    page[amap_off + 2] = 0x80 | 3;
    page[..2 * g.count_entries()].fill(0);
    page[2 * 3..2 * 3 + 2].copy_from_slice(&2u16.to_le_bytes()); // count[3] = 2
    let corrupt = SpaceDir::from_page_unchecked(g, 16, &page).unwrap();
    let audit = audit_dir(&corrupt, 0);
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.detail.contains("not coalesced")),
        "{:#?}",
        audit.findings
    );
}

// ---- WAL / LSN sanity -------------------------------------------------

#[test]
fn detects_root_lsn_ahead_of_log() {
    let mut store = small_store();
    let mut obj = store.create_with(b"logged", None).unwrap();
    let mut wal = Wal::new();
    wal.logged_append(&mut store, &mut obj, b"x").unwrap();
    assert!(obj.lsn() > 0);

    // Against its own log the object is fine…
    let report = check_store(&store, &[("o".into(), obj.clone())], Some(&wal));
    assert!(
        !report.findings.iter().any(|f| f.layer == Layer::Wal),
        "{:#?}",
        report.findings
    );

    // …against a truncated (lost-tail) log it is ahead.
    let empty = Wal::new();
    let report = check_store(&store, &[("o".into(), obj)], Some(&empty));
    let f = report
        .findings
        .iter()
        .find(|f| f.layer == Layer::Wal)
        .expect("lost log tail reported");
    assert_eq!(f.severity, Severity::Error);
    assert!(f.detail.contains("log tail"), "{}", f.detail);
}

// ---- clean stores produce clean reports ------------------------------

#[test]
fn clean_store_reports_zero_findings() {
    let mut store = indexed_store();
    let mut objs = Vec::new();
    for i in 0..3 {
        let mut obj = store
            .create_with(&vec![i as u8; (i + 1) * 3000], None)
            .unwrap();
        store.insert(&mut obj, 100, &[9u8; 500]).unwrap();
        store.delete(&mut obj, 0, 50).unwrap();
        objs.push((format!("obj{i}"), obj));
    }
    let report = check_store(&store, &objs, None);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert!(report.is_clean());
    assert_eq!(report.objects_checked, 3);
    assert!(report.pages_scanned > 0);
}

#[test]
fn paranoid_checks_pass_on_healthy_operations() {
    let mut store = ObjectStore::in_memory_with(
        PS,
        2000,
        StoreConfig {
            paranoid_checks: true,
            ..StoreConfig::default()
        },
    );
    let mut obj = store.create_with(&vec![5u8; 3 * PS], None).unwrap();
    store.insert(&mut obj, 10, b"abc").unwrap();
    store.replace(&mut obj, 0, b"zz").unwrap();
    store.delete(&mut obj, 5, 100).unwrap();
    store.append(&mut obj, &vec![6u8; PS]).unwrap();
    store.truncate(&mut obj, 1000).unwrap();
    store.compact(&mut obj).unwrap();
    store.consolidate(&mut obj).unwrap();
    store.delete_object(&mut obj).unwrap();
}
