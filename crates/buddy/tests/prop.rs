//! Property tests for the buddy space manager: after every operation the
//! directory must satisfy the full invariant set (canonical coalescing,
//! count-array consistency, full coverage), allocations must never
//! overlap, and freeing everything must coalesce the space back to its
//! initial decomposition.

use eos_buddy::{Error, Geometry, SpaceDir};
use proptest::prelude::*;

/// Default case count, overridable via PROPTEST_CASES for deep soaks.
fn prop_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

#[derive(Debug, Clone)]
enum Op {
    Alloc { pages: u64 },
    AllocAt { at: u64, pages: u64 },
    FreeOne { idx: usize },
    FreePartial { idx: usize, skip: u64, len: u64 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (1u64..200).prop_map(|pages| Op::Alloc { pages }),
            1 => (any::<u64>(), 1u64..32).prop_map(|(at, pages)| Op::AllocAt { at, pages }),
            3 => any::<usize>().prop_map(|idx| Op::FreeOne { idx }),
            2 => (any::<usize>(), any::<u64>(), 1u64..64).prop_map(|(idx, skip, len)| {
                Op::FreePartial { idx, skip, len }
            }),
        ],
        1..80,
    )
}

/// Shadow model: the set of live allocations as (start, len) pairs.
fn run(space_pages: u64, page_size: usize, ops: Vec<Op>) {
    let g = Geometry::for_page_size(page_size);
    let mut dir = SpaceDir::create(g, space_pages);
    dir.check_invariants().unwrap();
    let initial_counts: Vec<u16> = dir.counts().to_vec();
    let mut live: Vec<(u64, u64)> = Vec::new();

    for op in ops {
        match op {
            Op::Alloc { pages } => match dir.alloc_any(pages) {
                Ok(start) => {
                    // Never overlapping any live allocation.
                    for &(s, l) in &live {
                        assert!(
                            start + pages <= s || s + l <= start,
                            "overlap: new [{start},+{pages}) vs live [{s},+{l})"
                        );
                    }
                    assert!(start + pages <= space_pages);
                    live.push((start, pages));
                }
                Err(Error::NoSpace { .. }) => {
                    // Legal under fragmentation; nothing changed.
                }
                Err(e) => panic!("unexpected alloc error: {e}"),
            },
            Op::AllocAt { at, pages } => {
                let at = at % space_pages;
                let pages = pages.min(space_pages - at);
                // Succeeds iff the whole range is free in the model.
                let free_in_model = live.iter().all(|&(s, l)| at + pages <= s || s + l <= at);
                match dir.alloc_at(at, pages) {
                    Ok(()) => {
                        assert!(free_in_model, "alloc_at granted an occupied range");
                        live.push((at, pages));
                    }
                    Err(Error::NoSpace { .. }) => {
                        assert!(!free_in_model, "alloc_at refused a free range");
                    }
                    Err(e) => panic!("unexpected alloc_at error: {e}"),
                }
            }
            Op::FreeOne { idx } => {
                if live.is_empty() {
                    continue;
                }
                let (s, l) = live.remove(idx % live.len());
                dir.free_range(s, l).unwrap();
            }
            Op::FreePartial { idx, skip, len } => {
                if live.is_empty() {
                    continue;
                }
                let i = idx % live.len();
                let (s, l) = live[i];
                let skip = skip % l;
                let len = len.min(l - skip);
                // Free a middle slice of a live allocation; keep both
                // fringes in the model.
                dir.free_range(s + skip, len).unwrap();
                live.remove(i);
                if skip > 0 {
                    live.push((s, skip));
                }
                if skip + len < l {
                    live.push((s + skip + len, l - skip - len));
                }
            }
        }
        dir.check_invariants()
            .unwrap_or_else(|e| panic!("invariants after {op:?}: {e}"));
        let used: u64 = live.iter().map(|&(_, l)| l).sum();
        assert_eq!(
            dir.free_pages(),
            space_pages - used,
            "free-page accounting drifted"
        );
    }

    // Free everything: the map must coalesce back to the initial state.
    for (s, l) in live {
        dir.free_range(s, l).unwrap();
    }
    dir.check_invariants().unwrap();
    assert_eq!(dir.free_pages(), space_pages);
    assert_eq!(dir.counts(), &initial_counts[..], "not fully coalesced");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: prop_cases(), ..ProptestConfig::default() })]

    #[test]
    fn power_of_two_space(ops in ops()) {
        run(256, 512, ops);
    }

    #[test]
    fn odd_sized_space(ops in ops()) {
        run(301, 512, ops);
    }

    #[test]
    fn paper_4k_geometry(ops in ops()) {
        run(1000, 4096, ops);
    }

    #[test]
    fn serialization_survives_any_state(ops in ops()) {
        let g = Geometry::for_page_size(512);
        let mut dir = SpaceDir::create(g, 300);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc { pages } => {
                    if let Ok(s) = dir.alloc_any(pages) {
                        live.push((s, pages));
                    }
                }
                Op::AllocAt { .. } => {}
                Op::FreeOne { idx } | Op::FreePartial { idx, .. } => {
                    if !live.is_empty() {
                        let (s, l) = live.remove(idx % live.len());
                        dir.free_range(s, l).unwrap();
                    }
                }
            }
            let page = dir.to_page();
            let back = SpaceDir::from_page(g, 300, &page).unwrap();
            prop_assert_eq!(&back, &dir);
        }
    }
}
