//! Error type for the buddy space manager.

use std::fmt;

/// Result alias used throughout `eos-buddy`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by buddy spaces and the multi-space manager.
#[derive(Debug)]
pub enum Error {
    /// No free segment large enough for the request exists (in this
    /// space, or in any space for manager-level allocation).
    NoSpace {
        /// Pages the caller asked for.
        requested_pages: u64,
    },
    /// A zero-page allocation or free was requested.
    ZeroPages,
    /// A page in the freed range was already free.
    DoubleFree {
        /// First already-free page encountered.
        page: u64,
    },
    /// A page range fell outside the space.
    OutOfSpaceBounds {
        /// First page of the range.
        start: u64,
        /// Length of the range.
        pages: u64,
    },
    /// The directory page failed validation on load.
    CorruptDirectory {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// The requested space index does not exist.
    NoSuchSpace {
        /// Space index asked for.
        space: usize,
    },
    /// An underlying volume error.
    Pager(eos_pager::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoSpace { requested_pages } => {
                write!(f, "no free segment of {requested_pages} pages available")
            }
            Error::ZeroPages => write!(f, "zero-page request"),
            Error::DoubleFree { page } => write!(f, "page {page} is already free"),
            Error::OutOfSpaceBounds { start, pages } => {
                write!(f, "range [{start}, {}) outside the space", start + pages)
            }
            Error::CorruptDirectory { reason } => {
                write!(f, "corrupt buddy directory: {reason}")
            }
            Error::NoSuchSpace { space } => write!(f, "no buddy space #{space}"),
            Error::Pager(e) => write!(f, "volume error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pager(e) => Some(e),
            _ => None,
        }
    }
}

impl From<eos_pager::Error> for Error {
    fn from(e: eos_pager::Error) -> Self {
        Error::Pager(e)
    }
}
