//! The in-memory superdirectory (§3.3).
//!
//! "To avoid [visiting the directory block of each buddy space], we make
//! use of a superdirectory that contains the size of the largest free
//! segment in each buddy space. … Initially, it indicates that each
//! buddy space contains a free segment of the maximum size possible.
//! This information may be erroneous; the first wrong guess will
//! correct it." The structure is protected by a short-duration latch —
//! not a transaction lock — exactly as the paper prescribes.

use parking_lot::Mutex;

/// Effectiveness counters for experiment E8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperDirStats {
    /// Space directories that were probed.
    pub probes_made: u64,
    /// Space directories skipped thanks to the superdirectory.
    pub probes_avoided: u64,
}

#[derive(Debug)]
struct Inner {
    /// Optimistic upper bound on the largest free segment type per
    /// space; `None` means "known full".
    max_type: Vec<Option<u8>>,
    stats: SuperDirStats,
}

/// Latch-protected cache of the largest free segment type per space.
#[derive(Debug)]
pub struct SuperDirectory {
    // lock-class: inner = buddy.superdir rank = 40 io = forbidden
    inner: Mutex<Inner>,
}

impl SuperDirectory {
    /// Create a superdirectory for `spaces` buddy spaces, optimistically
    /// assuming each holds a free segment of type `optimistic_max`.
    pub fn new(spaces: usize, optimistic_max: u8) -> SuperDirectory {
        SuperDirectory {
            inner: Mutex::new(Inner {
                max_type: vec![Some(optimistic_max); spaces],
                stats: SuperDirStats::default(),
            }),
        }
    }

    /// Number of spaces tracked.
    pub fn len(&self) -> usize {
        self.inner.lock().max_type.len()
    }

    /// True when no spaces are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Register one more space (e.g. a volume extension).
    pub fn add_space(&self, optimistic_max: u8) {
        self.inner.lock().max_type.push(Some(optimistic_max));
    }

    /// Would space `space` possibly satisfy a type-`t` request? Counts a
    /// probe (if `true`) or an avoided probe (if `false`) for E8.
    pub fn should_probe(&self, space: usize, t: u8) -> bool {
        let mut g = self.inner.lock();
        let possible = g.max_type[space].is_some_and(|m| m >= t);
        if possible {
            g.stats.probes_made += 1;
        } else {
            g.stats.probes_avoided += 1;
        }
        possible
    }

    /// Unconditionally count one probe — used when the superdirectory is
    /// disabled so the E8 baseline still reports how many directories
    /// were examined.
    pub fn count_probe(&self) {
        self.inner.lock().stats.probes_made += 1;
    }

    /// Record the true largest free type observed while a space's
    /// directory was in hand (allocation or deallocation path).
    pub fn record(&self, space: usize, largest_free: Option<u8>) {
        self.inner.lock().max_type[space] = largest_free;
    }

    /// Current belief about a space.
    pub fn belief(&self, space: usize) -> Option<u8> {
        self.inner.lock().max_type[space]
    }

    /// Probe counters.
    pub fn stats(&self) -> SuperDirStats {
        self.inner.lock().stats
    }

    /// Zero the probe counters.
    pub fn reset_stats(&self) {
        self.inner.lock().stats = SuperDirStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_optimistic_and_learns() {
        let sd = SuperDirectory::new(3, 13);
        assert!(sd.should_probe(0, 13), "initially everything looks big");
        sd.record(0, Some(4));
        assert!(!sd.should_probe(0, 5));
        assert!(sd.should_probe(0, 4));
        assert!(sd.should_probe(0, 3));
        sd.record(0, None); // space is full
        assert!(!sd.should_probe(0, 0));
    }

    #[test]
    fn probe_stats_accumulate() {
        let sd = SuperDirectory::new(2, 10);
        sd.record(0, Some(2));
        assert!(!sd.should_probe(0, 8));
        assert!(sd.should_probe(1, 8));
        let s = sd.stats();
        assert_eq!(s.probes_avoided, 1);
        assert_eq!(s.probes_made, 1);
        sd.reset_stats();
        assert_eq!(sd.stats(), SuperDirStats::default());
    }

    #[test]
    fn add_space_extends_tracking() {
        let sd = SuperDirectory::new(1, 5);
        assert_eq!(sd.len(), 1);
        sd.add_space(5);
        assert_eq!(sd.len(), 2);
        assert_eq!(sd.belief(1), Some(5));
    }
}
