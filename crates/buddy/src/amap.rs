//! The page allocation map (*amap*) byte encoding of Figure 2.
//!
//! Each byte `B` of the map describes the four pages `4B .. 4B+3`:
//!
//! * **Big form** (`1·s·tttttt`): a segment of size `2^t ≥ 4` pages starts
//!   at page `4B`; bit 6 (`s`) is its status (1 = allocated, 0 = free) and
//!   the low six bits are its type `t`. Every subsequent byte covered by
//!   the segment is all-zero.
//! * **Individual form** (`0···abcd`): the status of pages `4B..4B+3` is
//!   given by the last four bits, one per page (bit 3 = page `4B`,
//!   1 = allocated). Segments of size 1 and 2 live in this form; their
//!   size needs no explicit type because (a) frees pass an explicit page
//!   range and (b) a *free* page's segment size is implied by the buddy
//!   coalescing invariant.
//! * **Continuation** (`00000000`): the four pages belong to a big
//!   segment described "in the first nonzero byte on the left" (§3.1).
//!
//! The map maintains the invariant that free space is always maximally
//! coalesced, which is also what makes the encoding unambiguous: four
//! aligned free pages can never sit in individual form (they would be a
//! free big segment), so an individual byte always has at least one
//! allocated page and can never collide with the all-zero continuation
//! byte.

/// Bit 7: the byte is a big-segment header.
pub const BIG_FLAG: u8 = 0x80;
/// Bit 6 of a big header: segment is allocated.
pub const ALLOC_FLAG: u8 = 0x40;
/// Low six bits of a big header: the segment type.
pub const TYPE_MASK: u8 = 0x3F;

/// Allocation state of a segment or page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegState {
    /// The pages are free.
    Free,
    /// The pages are allocated.
    Allocated,
}

/// A decoded segment: `pages` physically contiguous pages starting at
/// data page `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegDesc {
    /// First data page of the segment.
    pub start: u64,
    /// Length in pages (a power of two).
    pub pages: u64,
    /// Allocation state.
    pub state: SegState,
}

/// The allocation map over `data_pages` pages.
///
/// This type performs raw encode/decode and marking; the directory
/// ([`crate::dir::SpaceDir`]) layers the count array, the free-segment
/// search and buddy coalescing on top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AMap {
    bytes: Vec<u8>,
    data_pages: u64,
}

impl AMap {
    /// Create a map in which every existing page is marked allocated
    /// (individual form). [`crate::dir::SpaceDir::create`] then frees the
    /// whole range through the regular coalescing path, which yields the
    /// canonical initial state. Trailing pages of a partial final byte
    /// (when `data_pages` is not a multiple of 4) stay permanently
    /// "allocated" so they can never be handed out.
    pub fn new_all_allocated(data_pages: u64) -> AMap {
        let nbytes = data_pages.div_ceil(4) as usize;
        AMap {
            bytes: vec![0x0F; nbytes],
            data_pages,
        }
    }

    /// Rehydrate a map from directory-page bytes.
    pub fn from_bytes(bytes: Vec<u8>, data_pages: u64) -> AMap {
        assert!(bytes.len() as u64 * 4 >= data_pages);
        AMap { bytes, data_pages }
    }

    /// Raw map bytes (for directory serialization).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of data pages covered.
    pub fn data_pages(&self) -> u64 {
        self.data_pages
    }

    #[inline]
    fn bit_of(page: u64) -> u8 {
        1u8 << (3 - (page % 4) as u8)
    }

    /// Raw byte `i` of the map (used by the Fig 3 reproduction).
    pub fn byte(&self, i: usize) -> u8 {
        self.bytes[i]
    }

    /// Is `page` allocated? (Interior pages of big segments inherit the
    /// segment's state.)
    pub fn page_allocated(&self, page: u64) -> bool {
        self.seg_containing(page).state == SegState::Allocated
    }

    /// Decode the segment that *starts* at `page`.
    ///
    /// # Panics
    /// In debug builds, if `page` is the interior of a big segment.
    pub fn seg_at_start(&self, page: u64) -> SegDesc {
        debug_assert!(page < self.data_pages);
        let b = self.bytes[(page / 4) as usize];
        if b & BIG_FLAG != 0 {
            debug_assert_eq!(page % 4, 0, "big segments start at their header byte");
            let t = b & TYPE_MASK;
            let state = if b & ALLOC_FLAG != 0 {
                SegState::Allocated
            } else {
                SegState::Free
            };
            return SegDesc {
                start: page,
                pages: 1u64 << t,
                state,
            };
        }
        debug_assert_ne!(b, 0, "segment start cannot be a continuation byte");
        // Individual form.
        if b & Self::bit_of(page) != 0 {
            return SegDesc {
                start: page,
                pages: 1,
                state: SegState::Allocated,
            };
        }
        // Free page: a canonical free 2-segment iff the page is even and
        // its pair partner is also free.
        let pages = if page.is_multiple_of(2)
            && page + 1 < self.data_pages
            && b & Self::bit_of(page + 1) == 0
        {
            2
        } else {
            1
        };
        SegDesc {
            start: page,
            pages,
            state: SegState::Free,
        }
    }

    /// Decode the segment *containing* `page`, following continuation
    /// bytes left to the nearest header ("the first nonzero byte on the
    /// left of B", §3.1).
    pub fn seg_containing(&self, page: u64) -> SegDesc {
        assert!(page < self.data_pages, "page out of space");
        let bi = (page / 4) as usize;
        let b = self.bytes[bi];
        if b & BIG_FLAG != 0 {
            let d = self.seg_at_start(4 * bi as u64);
            debug_assert!(page < d.start + d.pages);
            return d;
        }
        if b == 0 {
            // Continuation: scan left for the header.
            let mut i = bi;
            loop {
                assert!(i > 0, "continuation byte with no header on the left");
                i -= 1;
                if self.bytes[i] != 0 {
                    break;
                }
            }
            let hb = self.bytes[i];
            assert!(
                hb & BIG_FLAG != 0,
                "continuation must belong to a big segment"
            );
            let d = self.seg_at_start(4 * i as u64);
            assert!(
                page < d.start + d.pages,
                "page {page} past the end of covering segment"
            );
            return d;
        }
        // Individual form: find the start of the (1- or 2-page) segment.
        if b & Self::bit_of(page) != 0 {
            return SegDesc {
                start: page,
                pages: 1,
                state: SegState::Allocated,
            };
        }
        // Free page: part of a pair iff its 2-aligned partner is free.
        if page % 2 == 1 && b & Self::bit_of(page - 1) == 0 {
            return SegDesc {
                start: page - 1,
                pages: 2,
                state: SegState::Free,
            };
        }
        self.seg_at_start(page)
    }

    /// Zero the marking of a segment of `2^t` pages at `start` (big
    /// header + continuations, or individual bits).
    pub fn erase(&mut self, start: u64, t: u8) {
        let pages = 1u64 << t;
        debug_assert!(start.is_multiple_of(pages), "segments are size-aligned");
        debug_assert!(start + pages <= self.data_pages);
        if t >= 2 {
            let first = (start / 4) as usize;
            let last = ((start + pages - 1) / 4) as usize;
            for b in &mut self.bytes[first..=last] {
                *b = 0;
            }
        } else {
            for p in start..start + pages {
                self.bytes[(p / 4) as usize] &= !Self::bit_of(p);
            }
        }
    }

    /// Mark a segment of `2^t` pages at `start` with the given state.
    ///
    /// The range's current marking must be all-zero (freshly erased);
    /// for `t < 2` a free marking is therefore a no-op (free individual
    /// bits are zero).
    pub fn mark(&mut self, start: u64, t: u8, state: SegState) {
        let pages = 1u64 << t;
        debug_assert!(start.is_multiple_of(pages), "segments are size-aligned");
        debug_assert!(start + pages <= self.data_pages);
        if t >= 2 {
            let header = BIG_FLAG
                | if state == SegState::Allocated {
                    ALLOC_FLAG
                } else {
                    0
                }
                | t;
            let first = (start / 4) as usize;
            debug_assert_eq!(self.bytes[first], 0, "marking over live bytes");
            self.bytes[first] = header;
            // Continuation bytes are already zero.
        } else if state == SegState::Allocated {
            for p in start..start + pages {
                self.bytes[(p / 4) as usize] |= Self::bit_of(p);
            }
        }
    }

    /// Is there a *free* segment of exactly `2^t` pages starting at
    /// `start`? Used for the buddy check during coalescing.
    ///
    /// For `t < 2` the buddy always lies in the same 4-page quad as the
    /// segment being freed, where a continuation byte cannot occur (big
    /// segments are quad-aligned and cover whole bytes), so an all-zero
    /// byte simply means "all four pages free" mid-rebuild and the bit
    /// test alone is decisive.
    pub fn is_free_exact(&self, start: u64, t: u8) -> bool {
        if start + (1u64 << t) > self.data_pages {
            return false;
        }
        let b = self.bytes[(start / 4) as usize];
        match t {
            0 => b & BIG_FLAG == 0 && b & Self::bit_of(start) == 0,
            1 => {
                b & BIG_FLAG == 0
                    && b & Self::bit_of(start) == 0
                    && b & Self::bit_of(start + 1) == 0
            }
            _ => b == BIG_FLAG | t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the Figure 3 map by hand and check the exact byte values
    /// and decodes the paper gives.
    fn fig3_map() -> AMap {
        let mut m = AMap::new_all_allocated(80);
        for b in 0..20 {
            m.bytes[b] = 0; // start from a blank slate
        }
        m.mark(0, 6, SegState::Allocated); // allocated 64-seg at page 0
        m.mark(65, 0, SegState::Allocated); // pages 65, 66 allocated
        m.mark(66, 0, SegState::Allocated); // (64 and 67 stay free bits)
        m.mark(68, 2, SegState::Free); // free 4-seg at page 68
        m.mark(72, 3, SegState::Free); // free 8-seg at page 72
        m
    }

    #[test]
    fn figure3_byte_values() {
        let m = fig3_map();
        // Byte 0: big, allocated, type 6.
        assert_eq!(m.byte(0), BIG_FLAG | ALLOC_FLAG | 6);
        // Bytes 1..=15: continuation of the 64-page segment.
        for i in 1..=15 {
            assert_eq!(m.byte(i), 0, "byte {i}");
        }
        // Byte 16: pages 64 free, 65 alloc, 66 alloc, 67 free → 0110.
        assert_eq!(m.byte(16), 0b0000_0110);
        // Byte 17: free 4-seg (big, free, type 2).
        assert_eq!(m.byte(17), BIG_FLAG | 2);
        // Byte 18: free 8-seg (big, free, type 3).
        assert_eq!(m.byte(18), BIG_FLAG | 3);
        // Byte 19: continuation of the 8-seg.
        assert_eq!(m.byte(19), 0);
    }

    #[test]
    fn figure3_decodes() {
        let m = fig3_map();
        assert_eq!(
            m.seg_at_start(0),
            SegDesc {
                start: 0,
                pages: 64,
                state: SegState::Allocated
            }
        );
        // Interior page resolves through continuation bytes.
        assert_eq!(m.seg_containing(63).start, 0);
        assert_eq!(m.seg_containing(63).pages, 64);
        // Individual pages.
        assert_eq!(m.seg_at_start(64).pages, 1);
        assert_eq!(m.seg_at_start(64).state, SegState::Free);
        assert_eq!(m.seg_at_start(65).state, SegState::Allocated);
        assert_eq!(m.seg_at_start(67).state, SegState::Free);
        assert_eq!(m.seg_at_start(67).pages, 1);
        // Free 4- and 8-segments.
        assert_eq!(m.seg_at_start(68).pages, 4);
        assert_eq!(m.seg_at_start(68).state, SegState::Free);
        assert_eq!(m.seg_at_start(72).pages, 8);
        assert_eq!(m.seg_containing(79).start, 72);
    }

    #[test]
    fn free_pair_decodes_as_two_page_segment() {
        let mut m = AMap::new_all_allocated(8);
        m.bytes[0] = 0;
        m.bytes[1] = 0;
        m.mark(0, 0, SegState::Allocated);
        m.mark(1, 0, SegState::Allocated);
        // pages 2,3 free → canonical free 2-seg at 2.
        m.mark(4, 2, SegState::Allocated);
        assert_eq!(
            m.seg_at_start(2),
            SegDesc {
                start: 2,
                pages: 2,
                state: SegState::Free
            }
        );
        assert_eq!(m.seg_containing(3).start, 2);
        assert_eq!(m.seg_containing(3).pages, 2);
    }

    #[test]
    fn odd_free_page_is_a_one_segment() {
        let mut m = AMap::new_all_allocated(4);
        m.bytes[0] = 0;
        m.mark(0, 0, SegState::Allocated);
        m.mark(2, 0, SegState::Allocated);
        m.mark(3, 0, SegState::Allocated);
        // Page 1 free, pair partner (page 0) allocated.
        let d = m.seg_at_start(1);
        assert_eq!(d.pages, 1);
        assert_eq!(d.state, SegState::Free);
    }

    #[test]
    fn erase_and_remark_roundtrip() {
        let mut m = AMap::new_all_allocated(16);
        for b in 0..4 {
            m.bytes[b] = 0;
        }
        m.mark(0, 4, SegState::Free);
        assert!(m.is_free_exact(0, 4));
        m.erase(0, 4);
        m.mark(0, 3, SegState::Allocated);
        m.mark(8, 3, SegState::Free);
        assert!(!m.is_free_exact(0, 3));
        assert!(m.is_free_exact(8, 3));
        assert_eq!(m.seg_containing(5).start, 0);
        assert_eq!(m.seg_containing(12).start, 8);
    }

    #[test]
    fn is_free_exact_rejects_wrong_sizes() {
        let mut m = AMap::new_all_allocated(16);
        for b in 0..4 {
            m.bytes[b] = 0;
        }
        m.mark(0, 2, SegState::Free);
        m.mark(4, 2, SegState::Allocated);
        m.mark(8, 3, SegState::Free);
        assert!(m.is_free_exact(0, 2));
        assert!(!m.is_free_exact(0, 3), "type mismatch");
        assert!(!m.is_free_exact(4, 2), "allocated");
        assert!(m.is_free_exact(8, 3));
        assert!(!m.is_free_exact(8, 2), "type mismatch");
        // Out of bounds is simply "no".
        assert!(!m.is_free_exact(12, 3));
    }

    #[test]
    fn trailing_partial_byte_pages_stay_allocated() {
        let m = AMap::new_all_allocated(6);
        // Pages 6,7 do not exist; their bits were initialized allocated
        // so nothing will ever coalesce into them.
        assert_eq!(m.byte(1) & 0b0011, 0b0011);
    }
}
