//! # eos-buddy — the binary buddy disk space manager of EOS
//!
//! Implements §3 of Biliris, *"An Efficient Database Storage Structure
//! for Large Dynamic Objects"* (ICDE 1992):
//!
//! * [`Geometry`] — page-size-derived limits (max segment type, map
//!   length, maximum buddy-space size).
//! * [`AMap`] — the Figure 2 allocation-map byte encoding: big-segment
//!   headers, individual page bits, continuation bytes.
//! * [`SpaceDir`] — one buddy space's directory page (count array +
//!   amap) with the §3.1 free-segment walk, §3.2 power-of-two
//!   split/coalesce, any-size allocation (Fig 4) and partial frees.
//! * [`BuddySpace`] — a directory bound to a volume region; every
//!   mutation costs exactly one directory-page write, data pages are
//!   never touched (§3.3).
//! * [`SuperDirectory`] — the latch-protected in-memory cache of the
//!   largest free segment per space (§3.3).
//! * [`BuddyManager`] — multi-space allocation with superdirectory
//!   routing and deferred frees (the §4.5 "release locks").
//!
//! ## Example
//!
//! ```
//! use eos_buddy::BuddyManager;
//! use eos_pager::{DiskProfile, MemVolume};
//!
//! let vol = MemVolume::with_profile(4096, 2048, DiskProfile::FREE).shared();
//! let mut mgr = BuddyManager::create(vol, 2, 1000).unwrap();
//!
//! // Any-size allocation with one-page precision (Fig 4).
//! let ext = mgr.allocate(11).unwrap();
//! assert_eq!(ext.pages, 11);
//!
//! // Free any portion of it.
//! mgr.free(ext.start + 3, 7).unwrap();
//! mgr.free(ext.start, 3).unwrap();
//! mgr.free(ext.start + 10, 1).unwrap();
//! assert_eq!(mgr.total_free_pages(), 2000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amap;
mod dir;
mod error;
mod geometry;
mod manager;
mod space;
mod superdir;

pub use amap::{AMap, SegDesc, SegState, ALLOC_FLAG, BIG_FLAG, TYPE_MASK};
pub use dir::SpaceDir;
pub use error::{Error, Result};
pub use geometry::Geometry;
pub use manager::{BuddyManager, Extent, Fragmentation, FreeBatch};
pub use space::BuddySpace;
pub use superdir::{SuperDirStats, SuperDirectory};
