//! Multi-space buddy manager: lays out a sequence of buddy spaces on a
//! volume, routes allocations through the superdirectory, and provides
//! the deferred-free ("release lock", §4.5) mechanism.
//!
//! Concurrency model: each space sits behind its **own** directory
//! latch (`buddy.space`, DESIGN.md §13/§17), so allocations and frees
//! in different spaces proceed in parallel — the superdirectory stays
//! a lock-free-ish belief cache consulted *before* a space latch is
//! taken, never while one is held (its class ranks above the space
//! class, §13). Callers can express **space affinity**: an allocation
//! hinted at space `i` probes `i` first and spills to the others only
//! under pressure, which is what keeps disjoint-object workloads on
//! disjoint latches.

use std::time::{Duration, Instant};

use eos_obs::Metrics;
use eos_pager::{PageId, SharedVolume};
use parking_lot::{Mutex, MutexGuard};

use crate::error::{Error, Result};
use crate::geometry::Geometry;
use crate::space::BuddySpace;
use crate::superdir::{SuperDirStats, SuperDirectory};

/// A run of physically contiguous allocated pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First volume page of the run.
    pub start: PageId,
    /// Length in pages.
    pub pages: u64,
}

impl Extent {
    /// One-past-the-last volume page.
    #[inline]
    pub fn end(&self) -> PageId {
        self.start + self.pages
    }
}

/// Token identifying a batch of deferred frees (one per transaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FreeBatch(u64);

/// The disk space manager: several buddy spaces on one volume plus the
/// superdirectory. All allocation paths take `&self` — the per-space
/// latches and the pending-free latch carry the synchronization.
pub struct BuddyManager {
    // One directory latch per space (§17): a guard is held across the
    // space's in-memory directory work *and* its single dir-page write
    // (io = allowed), and is always dropped before the superdirectory
    // (rank 40) is updated — the belief is recorded from a value read
    // under the guard. Never hold two space guards at once.
    // lock-class: spaces = buddy.space rank = 50 io = allowed
    spaces: Vec<Mutex<BuddySpace>>,
    superdir: SuperDirectory,
    use_superdir: bool,
    geometry: Geometry,
    pages_per_space: u64,
    // lock-class: pending = buddy.pending rank = 45 io = forbidden
    pending: Mutex<PendingFrees>,
    obs: Option<ObsHandles>,
}

/// Pre-resolved observability instruments. Resolving a handle takes the
/// registry's registration latch, so it happens once in
/// [`BuddyManager::set_metrics`]; recording afterwards is pure atomics
/// and therefore safe even around the `pending` latch (§4.5: record
/// *after* dropping the guard, never under it).
struct ObsHandles {
    alloc_pages: eos_obs::Histogram,
    free_pages: eos_obs::Histogram,
    nospace: eos_obs::Counter,
    coalesce_depth: eos_obs::Histogram,
    latch_wait_us: eos_obs::Histogram,
    latch_hold_us: eos_obs::Histogram,
    /// Per-space directory-latch wait times, indexed by space:
    /// `buddy.latch.wait_us.space.<i>` (§17 sharding evidence).
    space_latch_wait_us: Vec<eos_obs::Histogram>,
    pending_extents: eos_obs::Gauge,
}

#[derive(Debug, Default)]
struct PendingFrees {
    next_batch: u64,
    batches: Vec<(u64, Vec<Extent>)>,
}

impl BuddyManager {
    /// Format `num_spaces` spaces of `pages_per_space` data pages each,
    /// laid out back to back from volume page 0 (each space owns
    /// `pages_per_space + 1` volume pages, the first being its
    /// directory).
    // Constructors take the volume handle by value: callers hand over
    // their clone even though internally each space gets its own.
    #[allow(clippy::needless_pass_by_value)]
    pub fn create(
        volume: SharedVolume,
        num_spaces: usize,
        pages_per_space: u64,
    ) -> Result<BuddyManager> {
        let geometry = Geometry::for_page_size(volume.page_size());
        assert!(num_spaces > 0, "need at least one buddy space");
        let span = pages_per_space + 1;
        assert!(
            span * num_spaces as u64 <= volume.num_pages(),
            "volume too small for {num_spaces} spaces of {pages_per_space} pages"
        );
        let mut spaces = Vec::with_capacity(num_spaces);
        for i in 0..num_spaces {
            spaces.push(BuddySpace::create(
                volume.clone(),
                i as u64 * span,
                pages_per_space,
            )?);
        }
        let optimistic = spaces[0].dir().space_max_type();
        Ok(BuddyManager {
            spaces: spaces.into_iter().map(Mutex::new).collect(),
            superdir: SuperDirectory::new(num_spaces, optimistic),
            use_superdir: true,
            geometry,
            pages_per_space,
            pending: Mutex::new(PendingFrees::default()),
            obs: None,
        })
    }

    /// Reopen a previously formatted manager by reading every space
    /// directory. The superdirectory starts optimistic, exactly as the
    /// paper describes for start-up (§3.3).
    #[allow(clippy::needless_pass_by_value)]
    pub fn open(
        volume: SharedVolume,
        num_spaces: usize,
        pages_per_space: u64,
    ) -> Result<BuddyManager> {
        let geometry = Geometry::for_page_size(volume.page_size());
        let span = pages_per_space + 1;
        let mut spaces = Vec::with_capacity(num_spaces);
        for i in 0..num_spaces {
            spaces.push(BuddySpace::open(
                volume.clone(),
                i as u64 * span,
                pages_per_space,
            )?);
        }
        let optimistic = spaces[0].dir().space_max_type();
        Ok(BuddyManager {
            spaces: spaces.into_iter().map(Mutex::new).collect(),
            superdir: SuperDirectory::new(num_spaces, optimistic),
            use_superdir: true,
            geometry,
            pages_per_space,
            pending: Mutex::new(PendingFrees::default()),
            obs: None,
        })
    }

    /// Attach an observability domain: allocation/free size histograms
    /// (`buddy.alloc.pages` / `buddy.free.pages`), coalesce depth
    /// (`buddy.coalesce.depth`), directory-latch wait/hold times
    /// (`buddy.latch.wait_us` / `buddy.latch.hold_us` aggregate plus
    /// `buddy.latch.wait_us.space.<i>` per space, §4.5/§17), the
    /// pending-free backlog gauge (`buddy.pending.extents`) and the
    /// exhaustion counter (`buddy.alloc.nospace`).
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.obs = Some(ObsHandles {
            alloc_pages: metrics.histogram("buddy.alloc.pages"),
            free_pages: metrics.histogram("buddy.free.pages"),
            nospace: metrics.counter("buddy.alloc.nospace"),
            coalesce_depth: metrics.histogram("buddy.coalesce.depth"),
            latch_wait_us: metrics.histogram("buddy.latch.wait_us"),
            latch_hold_us: metrics.histogram("buddy.latch.hold_us"),
            space_latch_wait_us: (0..self.spaces.len())
                .map(|i| metrics.histogram(&format!("buddy.latch.wait_us.space.{i}")))
                .collect(),
            pending_extents: metrics.gauge("buddy.pending.extents"),
        });
    }

    /// Record one latch acquisition (the pending latch, or a space
    /// latch with `space = Some(i)`): how long the caller waited for
    /// the latch and how long it then held it. Called after the guard
    /// is dropped — the recording itself is atomics-only.
    fn note_latch(&self, space: Option<usize>, waited: Duration, total: Duration) {
        if let Some(obs) = &self.obs {
            let wait = duration_us(waited);
            obs.latch_wait_us.record(wait);
            obs.latch_hold_us
                .record(duration_us(total).saturating_sub(wait));
            if let Some(i) = space {
                if let Some(h) = obs.space_latch_wait_us.get(i) {
                    h.record(wait);
                }
            }
        }
    }

    /// Lock space `i`'s directory latch, timing the wait. Returns the
    /// guard plus the acquisition instant and wait, for `note_latch`
    /// once the guard is dropped.
    fn lock_space(&self, i: usize) -> (MutexGuard<'_, BuddySpace>, Instant, Duration) {
        let t0 = Instant::now();
        let g = self.spaces[i].lock();
        let waited = t0.elapsed();
        (g, t0, waited)
    }

    /// Disable the superdirectory (every allocation probes each space in
    /// turn) — the baseline of experiment E8.
    pub fn set_use_superdirectory(&mut self, on: bool) {
        self.use_superdir = on;
    }

    /// Geometry shared by all spaces.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Largest segment (in pages) this manager can ever hand out.
    pub fn max_extent_pages(&self) -> u64 {
        self.geometry.max_seg_pages().min(self.pages_per_space)
    }

    /// Allocate `pages` physically contiguous pages from some space
    /// (probing from space 0 — use [`Self::allocate_near`] to express
    /// affinity).
    pub fn allocate(&self, pages: u64) -> Result<Extent> {
        self.allocate_near(pages, 0)
    }

    /// Allocate `pages` physically contiguous pages, probing space
    /// `preferred` first and wrapping through the others only on
    /// pressure. This is the §17 affinity path: callers that shard
    /// their objects across spaces keep disjoint workloads on disjoint
    /// space latches.
    pub fn allocate_near(&self, pages: u64, preferred: usize) -> Result<Extent> {
        if pages == 0 {
            return Err(Error::ZeroPages);
        }
        if pages > self.max_extent_pages() {
            if let Some(obs) = &self.obs {
                obs.nospace.inc();
            }
            return Err(Error::NoSpace {
                requested_pages: pages,
            });
        }
        let t = self.geometry.type_for(pages);
        let n = self.spaces.len();
        for k in 0..n {
            let i = (preferred + k) % n;
            if self.use_superdir {
                if !self.superdir.should_probe(i, t) {
                    continue;
                }
            } else {
                // Count the probe for the E8 baseline.
                self.superdir.count_probe();
            }
            // The space guard covers the probe and the belief read; it
            // drops before the superdirectory (rank 40) is touched.
            let (mut sp, t0, waited) = self.lock_space(i);
            let r = sp.allocate(pages);
            let belief = sp.largest_free_type();
            drop(sp);
            self.note_latch(Some(i), waited, t0.elapsed());
            self.superdir.record(i, belief);
            match r {
                Ok(start) => {
                    if let Some(obs) = &self.obs {
                        obs.alloc_pages.record(pages);
                    }
                    return Ok(Extent { start, pages });
                }
                Err(Error::NoSpace { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        if let Some(obs) = &self.obs {
            obs.nospace.inc();
        }
        Err(Error::NoSpace {
            requested_pages: pages,
        })
    }

    /// Allocate at most `pages`, falling back to successively halved
    /// requests (used by the object growth policy when the database is
    /// nearly full). Returns the extent actually obtained.
    pub fn allocate_up_to(&self, pages: u64) -> Result<Extent> {
        self.allocate_up_to_near(pages, 0)
    }

    /// [`Self::allocate_up_to`] with a preferred space (§17 affinity).
    pub fn allocate_up_to_near(&self, pages: u64, preferred: usize) -> Result<Extent> {
        let mut want = pages.min(self.max_extent_pages());
        loop {
            match self.allocate_near(want, preferred) {
                Ok(e) => return Ok(e),
                Err(Error::NoSpace { .. }) if want > 1 => want /= 2,
                Err(e) => return Err(e),
            }
        }
    }

    /// The space whose page range contains volume page `start`.
    pub fn space_of(&self, start: PageId) -> usize {
        (start / (self.pages_per_space + 1)) as usize
    }

    /// Allocate a specific free range (fixed-location structures such
    /// as a boot page). The range must lie inside one space.
    pub fn allocate_at(&self, start: PageId, pages: u64) -> Result<Extent> {
        let i = self.space_of(start);
        if i >= self.spaces.len() {
            return Err(Error::NoSuchSpace { space: i });
        }
        let (mut sp, t0, waited) = self.lock_space(i);
        let r = sp.allocate_at(start, pages);
        let belief = sp.largest_free_type();
        drop(sp);
        self.note_latch(Some(i), waited, t0.elapsed());
        self.superdir.record(i, belief);
        r?;
        Ok(Extent { start, pages })
    }

    /// Free part or all of an allocated extent immediately.
    pub fn free(&self, start: PageId, pages: u64) -> Result<()> {
        let i = self.space_of(start);
        if i >= self.spaces.len() {
            return Err(Error::NoSuchSpace { space: i });
        }
        let (mut sp, t0, waited) = self.lock_space(i);
        let merges_before = sp.dir().coalesce_merges();
        let r = sp.free(start, pages);
        let belief = sp.largest_free_type();
        let merges = sp.dir().coalesce_merges() - merges_before;
        drop(sp);
        self.note_latch(Some(i), waited, t0.elapsed());
        self.superdir.record(i, belief);
        r?;
        if let Some(obs) = &self.obs {
            obs.free_pages.record(pages);
            obs.coalesce_depth.record(merges);
        }
        Ok(())
    }

    /// Open a new batch of deferred frees. Segments freed into a batch
    /// stay allocated on disk — the §4.5 "release lock": nobody can
    /// reuse them — until the batch is committed.
    pub fn begin_free_batch(&self) -> FreeBatch {
        let t0 = Instant::now();
        let mut g = self.pending.lock();
        let waited = t0.elapsed();
        g.next_batch += 1;
        let id = g.next_batch;
        g.batches.push((id, Vec::new()));
        drop(g);
        self.note_latch(None, waited, t0.elapsed());
        FreeBatch(id)
    }

    /// Defer freeing an extent until `batch` commits.
    pub fn defer_free(&self, batch: FreeBatch, extent: Extent) {
        let t0 = Instant::now();
        let mut g = self.pending.lock();
        let waited = t0.elapsed();
        let slot = g
            .batches
            .iter_mut()
            .find(|(id, _)| *id == batch.0)
            .expect("unknown free batch");
        slot.1.push(extent);
        drop(g);
        self.note_latch(None, waited, t0.elapsed());
        if let Some(obs) = &self.obs {
            obs.pending_extents.add(1);
        }
    }

    /// Apply every deferred free in the batch (transaction commit).
    pub fn commit_frees(&self, batch: FreeBatch) -> Result<()> {
        let t0 = Instant::now();
        let mut g = self.pending.lock();
        let waited = t0.elapsed();
        let idx = g
            .batches
            .iter()
            .position(|(id, _)| *id == batch.0)
            .expect("unknown free batch");
        let extents = g.batches.remove(idx).1;
        // The latch is short-duration by construction: it is released
        // here, before any of the directory-page I/O the frees incur.
        drop(g);
        self.note_latch(None, waited, t0.elapsed());
        if let Some(obs) = &self.obs {
            obs.pending_extents.sub(extents.len() as u64);
        }
        for e in extents {
            self.free(e.start, e.pages)?;
        }
        Ok(())
    }

    /// Drop the batch without freeing anything (transaction abort — the
    /// segments remain allocated, which undoes the logical free).
    pub fn abort_frees(&self, batch: FreeBatch) {
        let t0 = Instant::now();
        let mut g = self.pending.lock();
        let waited = t0.elapsed();
        let dropped = g
            .batches
            .iter()
            .position(|(id, _)| *id == batch.0)
            .map(|idx| g.batches.remove(idx).1.len())
            .unwrap_or(0);
        drop(g);
        self.note_latch(None, waited, t0.elapsed());
        if let Some(obs) = &self.obs {
            obs.pending_extents.sub(dropped as u64);
        }
    }

    /// Total free pages across all spaces.
    pub fn total_free_pages(&self) -> u64 {
        self.spaces.iter().map(|s| s.lock().free_pages()).sum()
    }

    /// Total data pages across all spaces.
    pub fn total_data_pages(&self) -> u64 {
        self.pages_per_space * self.spaces.len() as u64
    }

    /// Superdirectory probe counters (experiment E8).
    pub fn superdir_stats(&self) -> SuperDirStats {
        self.superdir.stats()
    }

    /// The superdirectory's cached belief about the largest free
    /// segment type in space `i` (§3.2: optimistic, possibly stale —
    /// exposed so `eos-check` can compare it against recomputed truth).
    pub fn superdir_belief(&self, i: usize) -> Option<u8> {
        self.superdir.belief(i)
    }

    /// Total pages deferred into one open batch — what an MVCC
    /// reclaimer reports as "held back for readers" before deciding
    /// whether committing the batch is worth parking. Zero for a batch
    /// that was already committed or aborted.
    pub fn batch_page_count(&self, batch: FreeBatch) -> u64 {
        let g = self.pending.lock();
        g.batches
            .iter()
            .find(|(id, _)| *id == batch.0)
            .map_or(0, |(_, v)| v.iter().map(|e| e.pages).sum())
    }

    /// Every extent sitting in an open (uncommitted) free batch. These
    /// are logically free but still allocated on disk (§4.5 release
    /// locks), so a consistency census must not count them as leaked.
    pub fn pending_free_extents(&self) -> Vec<Extent> {
        let g = self.pending.lock();
        g.batches
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }

    /// Zero the superdirectory probe counters.
    pub fn reset_superdir_stats(&self) {
        self.superdir.reset_stats();
    }

    /// Lock a space for direct mutation, *bypassing* the superdirectory
    /// (its belief about the space goes stale). A fault-injection hook
    /// for consistency-check tests; regular allocation must go through
    /// the manager. Never hold two space guards at once.
    pub fn space_mut(&self, i: usize) -> MutexGuard<'_, BuddySpace> {
        self.spaces[i].lock()
    }

    /// Lock a space for inspection. Never hold two space guards at
    /// once, and drop the guard before calling back into the manager.
    pub fn space(&self, i: usize) -> MutexGuard<'_, BuddySpace> {
        self.spaces[i].lock()
    }

    /// Number of spaces.
    pub fn num_spaces(&self) -> usize {
        self.spaces.len()
    }

    /// Verify every space directory (test/diagnostic hook).
    pub fn check_invariants(&self) -> Result<()> {
        for s in &self.spaces {
            s.lock().dir().check_invariants()?;
        }
        Ok(())
    }

    /// External-fragmentation summary across all spaces: the free-space
    /// histogram by segment type, the largest allocatable run, and the
    /// fraction of free space usable for a maximum-size request. (EOS
    /// has no internal fragmentation by construction — "the unused
    /// portion of an allocated segment is always less than a page" —
    /// so external fragmentation is the quantity worth watching.)
    pub fn fragmentation(&self) -> Fragmentation {
        let entries = self.geometry.count_entries();
        let mut by_type = vec![0u64; entries];
        let mut largest = 0u64;
        for s in &self.spaces {
            let sp = s.lock();
            for (t, &c) in sp.dir().counts().iter().enumerate() {
                by_type[t] += c as u64;
                if c > 0 {
                    largest = largest.max(1u64 << t);
                }
            }
        }
        let free_pages: u64 = by_type.iter().enumerate().map(|(t, &c)| c << t).sum();
        Fragmentation {
            free_pages,
            largest_free_run: largest,
            free_segments_by_type: by_type,
        }
    }
}

/// Microseconds of a `Duration`, clamped to `u64`.
fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Snapshot of free-space shape (see [`BuddyManager::fragmentation`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragmentation {
    /// Total free pages.
    pub free_pages: u64,
    /// Largest contiguous power-of-two run available.
    pub largest_free_run: u64,
    /// `free_segments_by_type[t]` = free segments of `2^t` pages.
    pub free_segments_by_type: Vec<u64>,
}

impl Fragmentation {
    /// Fraction of free space sitting in runs of at least `pages`
    /// (1.0 = perfectly coalesced for such requests).
    pub fn usable_for(&self, pages: u64) -> f64 {
        if self.free_pages == 0 {
            return 1.0;
        }
        let usable: u64 = self
            .free_segments_by_type
            .iter()
            .enumerate()
            .filter(|&(t, _)| (1u64 << t) >= pages)
            .map(|(t, &c)| c << t)
            .sum();
        usable as f64 / self.free_pages as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eos_pager::{DiskProfile, MemVolume};

    fn manager(spaces: usize, pages: u64) -> BuddyManager {
        let vol = MemVolume::with_profile(512, (pages + 1) * spaces as u64 + 8, DiskProfile::FREE)
            .shared();
        BuddyManager::create(vol, spaces, pages).unwrap()
    }

    #[test]
    fn allocations_spill_to_later_spaces() {
        let m = manager(3, 64);
        let a = m.allocate(64).unwrap();
        let b = m.allocate(64).unwrap();
        let c = m.allocate(64).unwrap();
        assert_eq!(a.start, 1);
        assert_eq!(b.start, 66); // space 1: dir at 65
        assert_eq!(c.start, 131);
        assert!(matches!(m.allocate(1), Err(Error::NoSpace { .. })));
        m.free(b.start, b.pages).unwrap();
        let d = m.allocate(32).unwrap();
        assert_eq!(d.start, 66);
        m.check_invariants().unwrap();
    }

    #[test]
    fn affinity_hint_routes_to_preferred_space() {
        let m = manager(3, 64);
        let a = m.allocate_near(8, 2).unwrap();
        assert_eq!(m.space_of(a.start), 2, "hinted space honored");
        let b = m.allocate_near(8, 1).unwrap();
        assert_eq!(m.space_of(b.start), 1);
        // Pressure spills past the hint: fill space 0, then hint at it.
        m.allocate_near(64, 0).unwrap();
        let c = m.allocate_near(32, 0).unwrap();
        assert_ne!(m.space_of(c.start), 0, "full space spills to the next");
        m.check_invariants().unwrap();
    }

    #[test]
    fn superdirectory_learns_and_avoids_probes() {
        let m = manager(4, 64);
        // Fill spaces 0 and 1.
        m.allocate(64).unwrap();
        m.allocate(64).unwrap();
        m.reset_superdir_stats();
        // A fresh 64-page request should skip spaces 0 and 1 entirely.
        m.allocate(64).unwrap();
        let s = m.superdir_stats();
        assert_eq!(s.probes_avoided, 2);
        assert_eq!(s.probes_made, 1);
    }

    #[test]
    fn without_superdirectory_every_space_is_probed() {
        let mut m = manager(4, 64);
        m.set_use_superdirectory(false);
        m.allocate(64).unwrap();
        m.allocate(64).unwrap();
        m.reset_superdir_stats();
        m.allocate(64).unwrap();
        let s = m.superdir_stats();
        assert_eq!(s.probes_made, 3, "spaces 0, 1 and 2 all probed");
        assert_eq!(s.probes_avoided, 0);
    }

    #[test]
    fn allocate_up_to_halves_on_pressure() {
        let m = manager(1, 64);
        m.allocate(48).unwrap(); // leaves 16 free
        let e = m.allocate_up_to(64).unwrap();
        assert_eq!(e.pages, 16);
    }

    #[test]
    fn oversized_requests_are_rejected() {
        let m = manager(1, 64);
        assert!(matches!(m.allocate(65), Err(Error::NoSpace { .. })));
        assert!(matches!(m.allocate(0), Err(Error::ZeroPages)));
    }

    #[test]
    fn deferred_frees_hold_space_until_commit() {
        let m = manager(1, 64);
        let e = m.allocate(64).unwrap();
        let batch = m.begin_free_batch();
        m.defer_free(batch, e);
        // The pages are still held: release locks block reallocation.
        assert!(matches!(m.allocate(1), Err(Error::NoSpace { .. })));
        m.commit_frees(batch).unwrap();
        assert_eq!(m.total_free_pages(), 64);
        m.allocate(1).unwrap();
    }

    #[test]
    fn aborted_batch_keeps_segments_allocated() {
        let m = manager(1, 64);
        let e = m.allocate(32).unwrap();
        let batch = m.begin_free_batch();
        m.defer_free(batch, e);
        m.abort_frees(batch);
        assert_eq!(m.total_free_pages(), 32, "the free never happened");
        // The extent is still valid and can be freed for real later.
        m.free(e.start, e.pages).unwrap();
        assert_eq!(m.total_free_pages(), 64);
    }

    #[test]
    fn fragmentation_reports_free_shape() {
        let m = manager(1, 64);
        let f = m.fragmentation();
        assert_eq!(f.free_pages, 64);
        assert_eq!(f.largest_free_run, 64);
        assert_eq!(f.usable_for(64), 1.0);
        // Punch holes: allocate 32, then 8, free the 32.
        let a = m.allocate(32).unwrap();
        let _b = m.allocate(8).unwrap();
        m.free(a.start, a.pages).unwrap();
        let f = m.fragmentation();
        assert_eq!(f.free_pages, 56);
        assert_eq!(f.largest_free_run, 32);
        assert!(f.usable_for(64) == 0.0);
        assert!(f.usable_for(32) > 0.5);
        assert_eq!(f.usable_for(1), 1.0);
    }

    #[test]
    fn metrics_capture_alloc_free_and_latch_activity() {
        let mut m = manager(1, 64);
        let metrics = Metrics::new();
        m.set_metrics(&metrics);
        let a = m.allocate(8).unwrap();
        let b = m.allocate(8).unwrap();
        m.free(a.start, a.pages).unwrap();
        // Freeing b's 8 pages next to a's free 8 coalesces at least once.
        m.free(b.start, b.pages).unwrap();
        let batch = m.begin_free_batch();
        let c = m.allocate(4).unwrap();
        m.defer_free(batch, c);
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("buddy.pending.extents"), Some(1));
        m.commit_frees(batch).unwrap();
        assert!(matches!(m.allocate(1000), Err(Error::NoSpace { .. })));
        let snap = metrics.snapshot();
        assert_eq!(snap.histogram("buddy.alloc.pages").unwrap().count, 3);
        assert_eq!(snap.histogram("buddy.alloc.pages").unwrap().sum, 20);
        assert_eq!(snap.histogram("buddy.free.pages").unwrap().sum, 20);
        assert_eq!(snap.counter("buddy.alloc.nospace"), Some(1));
        assert_eq!(snap.gauge("buddy.pending.extents"), Some(0));
        assert!(snap.histogram("buddy.coalesce.depth").unwrap().sum >= 1);
        assert!(snap.histogram("buddy.latch.wait_us").unwrap().count >= 3);
        // Per-space latch traffic lands on the space-indexed histogram.
        assert!(
            snap.histogram("buddy.latch.wait_us.space.0")
                .map(|h| h.count)
                .unwrap_or(0)
                >= 3
        );
    }

    #[test]
    fn free_routes_to_the_right_space() {
        let m = manager(2, 64);
        let a = m.allocate(10).unwrap();
        let b = m.allocate(64).unwrap();
        assert!(b.start > 64);
        m.free(b.start, 64).unwrap();
        m.free(a.start, 10).unwrap();
        assert_eq!(m.total_free_pages(), 128);
        m.check_invariants().unwrap();
    }
}
