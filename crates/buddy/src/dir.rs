//! The buddy-space directory: count array + allocation map (Fig 1), and
//! the allocation/deallocation algorithms of §3.1–§3.2.
//!
//! "The entire process of allocating and deallocating segments is
//! performed on the directory page only." [`SpaceDir`] is the decoded
//! in-memory image of that one page; [`crate::space::BuddySpace`] reads
//! it once and writes it back after each mutation, so the volume-level
//! I/O counters show exactly the one-page cost the paper claims (§3.3).

use crate::amap::{AMap, SegDesc, SegState};
use crate::error::{Error, Result};
use crate::geometry::Geometry;

/// Each count-array entry is a little-endian u16 (paper §3: "two bytes
/// per count").
pub const COUNT_ENTRY_BYTES: usize = 2; // format-anchor: DIR_COUNT_ENTRY_BYTES
/// Allocation-map density: 2 bits per page, 4 pages per byte.
pub const AMAP_PAGES_PER_BYTE: u64 = 4; // format-anchor: AMAP_PAGES_PER_BYTE

/// Decoded directory of one buddy space.
#[derive(Debug, Clone)]
pub struct SpaceDir {
    geometry: Geometry,
    /// `count[t]` = number of free segments of type `t` (size `2^t`).
    counts: Vec<u16>,
    amap: AMap,
    /// Largest type a segment in this space may have
    /// (`min(geometry.max_type, ⌊log₂ data_pages⌋)`).
    space_max_type: u8,
    /// Cumulative buddy merges performed by the coalescing path since
    /// this directory was decoded. Purely an in-memory diagnostic (the
    /// observability layer reads deltas of it); never persisted to the
    /// directory page.
    merges: u64,
}

/// Equality compares the *persisted* state only — `merges` is an
/// in-memory diagnostic that a decode/encode roundtrip does not carry.
impl PartialEq for SpaceDir {
    fn eq(&self, other: &Self) -> bool {
        self.geometry == other.geometry
            && self.counts == other.counts
            && self.amap == other.amap
            && self.space_max_type == other.space_max_type
    }
}

impl Eq for SpaceDir {}

impl SpaceDir {
    /// Create a directory for a fresh space of `data_pages` pages, all
    /// free. The initial state is produced by marking everything
    /// allocated and then freeing the whole range through the regular
    /// coalescing path, which yields the canonical decomposition.
    pub fn create(geometry: Geometry, data_pages: u64) -> SpaceDir {
        assert!(data_pages > 0, "empty buddy space");
        assert!(
            data_pages <= geometry.max_space_pages,
            "space of {data_pages} pages exceeds the {} the directory page can map",
            geometry.max_space_pages
        );
        assert!(
            data_pages <= u16::MAX as u64,
            "count entries are 2 bytes (paper §3); space too large"
        );
        let space_max_type = std::cmp::min(geometry.max_type, data_pages.ilog2() as u8);
        let mut dir = SpaceDir {
            geometry,
            counts: vec![0; geometry.count_entries()],
            amap: AMap::new_all_allocated(data_pages),
            space_max_type,
            merges: 0,
        };
        // Free the whole range: erase the individual "allocated" bits and
        // lay down the canonical aligned decomposition.
        let mut cursor = 0u64;
        let mut remaining = data_pages;
        while remaining > 0 {
            let t = dir.chunk_type(cursor, remaining);
            dir.amap.erase(cursor, t); // clear the init bits
            dir.free_pow2(cursor, t);
            cursor += 1 << t;
            remaining -= 1 << t;
        }
        dir
    }

    /// Largest power-of-two chunk that starts aligned at `cursor`, fits
    /// in `remaining` pages and respects the space's maximum type.
    fn chunk_type(&self, cursor: u64, remaining: u64) -> u8 {
        debug_assert!(remaining > 0);
        let align = if cursor == 0 {
            u8::MAX
        } else {
            cursor.trailing_zeros() as u8
        };
        let fit = remaining.ilog2() as u8;
        align.min(fit).min(self.space_max_type)
    }

    /// The geometry this directory was created with.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Number of data pages managed.
    pub fn data_pages(&self) -> u64 {
        self.amap.data_pages()
    }

    /// Largest segment type possible in this space.
    pub fn space_max_type(&self) -> u8 {
        self.space_max_type
    }

    /// `count[t]`: free segments of size `2^t`.
    pub fn count(&self, t: u8) -> u16 {
        self.counts[t as usize]
    }

    /// The full count array (Fig 1).
    pub fn counts(&self) -> &[u16] {
        &self.counts
    }

    /// Read-only view of the allocation map.
    pub fn amap(&self) -> &AMap {
        &self.amap
    }

    /// Cumulative buddy merges performed by the coalescing path (§3.2,
    /// Fig 4.d) since this directory was decoded. Observability reads
    /// deltas of this around each free to get the coalesce depth.
    pub fn coalesce_merges(&self) -> u64 {
        self.merges
    }

    /// Type of the largest free segment, or `None` if the space is full.
    pub fn largest_free_type(&self) -> Option<u8> {
        (0..=self.space_max_type)
            .rev()
            .find(|&t| self.counts[t as usize] > 0)
    }

    /// Total free pages (Σ count\[t\]·2ᵗ).
    pub fn free_pages(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(t, &c)| (c as u64) << t)
            .sum()
    }

    /// Locate a free segment of size `2^t` with the §3.1 walk: start at
    /// segment 0 and hop `S ← S + max(n, m)` until the desired segment
    /// is found, never touching map bytes between segment starts.
    ///
    /// Returns the start page and the number of map probes the walk made
    /// (the probe count feeds experiment E8).
    pub fn find_free(&self, t: u8) -> Option<(u64, u32)> {
        let n = 1u64 << t;
        let mut s = 0u64;
        let mut probes = 0u32;
        while s < self.data_pages() {
            probes += 1;
            let d = self.amap.seg_at_start(s);
            if d.state == SegState::Free && d.pages == n {
                return Some((s, probes));
            }
            s += n.max(d.pages);
        }
        None
    }

    /// Allocate a segment of exactly `2^t` pages (§3.2): take a free
    /// segment of that size if one exists, otherwise split the smallest
    /// larger free segment in half recursively.
    pub fn alloc_pow2(&mut self, t: u8) -> Result<u64> {
        if t > self.space_max_type {
            return Err(Error::NoSpace {
                requested_pages: 1u64 << t,
            });
        }
        if self.counts[t as usize] > 0 {
            let (s, _) = self
                .find_free(t)
                .expect("count[t] > 0 but no free segment found");
            self.amap.erase(s, t);
            self.amap.mark(s, t, SegState::Allocated);
            self.counts[t as usize] -= 1;
            return Ok(s);
        }
        // Find the smallest j > t with a free segment and split.
        let j = ((t + 1)..=self.space_max_type)
            .find(|&j| self.counts[j as usize] > 0)
            .ok_or(Error::NoSpace {
                requested_pages: 1u64 << t,
            })?;
        let (s, _) = self
            .find_free(j)
            .expect("count[j] > 0 but no free segment found");
        self.amap.erase(s, j);
        self.counts[j as usize] -= 1;
        // Keep the left half at each level; free the right halves.
        for l in (t..j).rev() {
            let half = s + (1u64 << l);
            self.amap.mark(half, l, SegState::Free);
            self.counts[l as usize] += 1;
        }
        self.amap.mark(s, t, SegState::Allocated);
        Ok(s)
    }

    /// Free a segment of `2^t` pages at `start`, coalescing with free
    /// buddies iteratively (§3.2, Fig 4.d). The range's map marking must
    /// already be erased; this lays down the final free marking.
    fn free_pow2(&mut self, start: u64, mut t: u8) {
        let mut s = start;
        while t < self.space_max_type {
            let buddy = s ^ (1u64 << t);
            if !self.amap.is_free_exact(buddy, t) {
                break;
            }
            self.amap.erase(buddy, t);
            self.counts[t as usize] -= 1;
            s = s.min(buddy);
            t += 1;
            self.merges += 1;
        }
        self.amap.mark(s, t, SegState::Free);
        self.counts[t as usize] += 1;
    }

    /// Allocate `pages` physically contiguous pages, any size (§3.2,
    /// Fig 4): take a free segment of the next power of two, mark the
    /// binary decomposition of `pages` allocated from the left, and give
    /// the remainder back as free segments (low types first).
    pub fn alloc_any(&mut self, pages: u64) -> Result<u64> {
        if pages == 0 {
            return Err(Error::ZeroPages);
        }
        let t = self.geometry.type_for(pages);
        if pages == 1u64 << t {
            return self.alloc_pow2(t);
        }
        let s = self.alloc_pow2(t)?;
        self.amap.erase(s, t);
        // Allocated chunks: high bits of `pages`, left to right.
        let mut cursor = s;
        for b in (0..64u8).rev() {
            if pages & (1u64 << b) != 0 {
                self.amap.mark(cursor, b, SegState::Allocated);
                cursor += 1u64 << b;
            }
        }
        // Remainder: low bits first ("in reverse order", Fig 4.b).
        let rem = (1u64 << t) - pages;
        for b in 0..64u8 {
            if rem & (1u64 << b) != 0 {
                self.free_pow2(cursor, b);
                cursor += 1u64 << b;
            }
        }
        Ok(s)
    }

    /// Allocate a *specific* page range `[start, start+pages)`, which
    /// must currently be free (used to claim fixed-location structures
    /// like a boot page). The inverse of [`Self::free_range`]: free
    /// fringes of the covered segments stay free, the range itself is
    /// marked allocated with the aligned decomposition.
    pub fn alloc_at(&mut self, start: u64, pages: u64) -> Result<()> {
        if pages == 0 {
            return Err(Error::ZeroPages);
        }
        let end = start
            .checked_add(pages)
            .filter(|&e| e <= self.data_pages())
            .ok_or(Error::OutOfSpaceBounds { start, pages })?;
        // Collect the free segments overlapping the range.
        let mut segs: Vec<SegDesc> = Vec::new();
        let mut p = start;
        while p < end {
            let d = self.amap.seg_containing(p);
            if d.state == SegState::Allocated {
                return Err(Error::NoSpace {
                    requested_pages: pages,
                });
            }
            p = d.start + d.pages;
            segs.push(d);
        }
        for d in segs {
            let t = d.pages.ilog2() as u8;
            self.amap.erase(d.start, t);
            self.counts[t as usize] -= 1;
            let seg_end = d.start + d.pages;
            // The range itself becomes allocated.
            self.mark_alloc_decomp(start.max(d.start), end.min(seg_end));
            // Free fringes go back through the coalescing path.
            for (a, b) in [(d.start, start.max(d.start)), (end.min(seg_end), seg_end)] {
                let mut cursor = a;
                while cursor < b {
                    let ct = self.chunk_type(cursor, b - cursor);
                    self.free_pow2(cursor, ct);
                    cursor += 1u64 << ct;
                }
            }
        }
        Ok(())
    }

    /// Free an arbitrary page range `[start, start+pages)`, which may
    /// cover several marked segments and/or parts of them ("a client may
    /// selectively free any portion of a previously allocated segment",
    /// §3.2). Remaining allocated fringes are re-marked with the aligned
    /// binary decomposition; freed chunks coalesce with their buddies.
    pub fn free_range(&mut self, start: u64, pages: u64) -> Result<()> {
        if pages == 0 {
            return Err(Error::ZeroPages);
        }
        let end = start
            .checked_add(pages)
            .filter(|&e| e <= self.data_pages())
            .ok_or(Error::OutOfSpaceBounds { start, pages })?;
        // Collect the marked segments overlapping the range; all must be
        // allocated.
        let mut segs: Vec<SegDesc> = Vec::new();
        let mut p = start;
        while p < end {
            let d = self.amap.seg_containing(p);
            if d.state == SegState::Free {
                return Err(Error::DoubleFree { page: p });
            }
            p = d.start + d.pages;
            segs.push(d);
        }
        for d in segs {
            self.amap.erase(d.start, d.pages.ilog2() as u8);
            let seg_end = d.start + d.pages;
            // Left fringe stays allocated.
            self.mark_alloc_decomp(d.start, start.max(d.start));
            // Right fringe stays allocated.
            self.mark_alloc_decomp(end.min(seg_end), seg_end);
            // Interior is freed with coalescing.
            let f0 = start.max(d.start);
            let f1 = end.min(seg_end);
            let mut cursor = f0;
            while cursor < f1 {
                let t = self.chunk_type(cursor, f1 - cursor);
                self.free_pow2(cursor, t);
                cursor += 1u64 << t;
            }
        }
        Ok(())
    }

    /// Mark `[a, b)` allocated as a sequence of aligned power-of-two
    /// segments (the canonical decomposition).
    fn mark_alloc_decomp(&mut self, a: u64, b: u64) {
        let mut cursor = a;
        while cursor < b {
            let t = self.chunk_type(cursor, b - cursor);
            self.amap.mark(cursor, t, SegState::Allocated);
            cursor += 1u64 << t;
        }
    }

    /// Serialize to directory-page bytes: the count array (2-byte
    /// entries) followed by the allocation map (Fig 1).
    pub fn to_page(&self) -> Vec<u8> {
        let mut page = Vec::with_capacity(self.geometry.page_size);
        for &c in &self.counts {
            page.extend_from_slice(&c.to_le_bytes());
        }
        page.extend_from_slice(self.amap.as_bytes());
        page.resize(self.geometry.page_size, 0);
        page
    }

    /// Decode a directory page written by [`Self::to_page`].
    pub fn from_page(geometry: Geometry, data_pages: u64, page: &[u8]) -> Result<SpaceDir> {
        if page.len() != geometry.page_size {
            return Err(Error::CorruptDirectory {
                reason: "directory page has wrong length".into(),
            });
        }
        let entries = geometry.count_entries();
        let mut counts = Vec::with_capacity(entries);
        for i in 0..entries {
            let at = COUNT_ENTRY_BYTES * i;
            counts.push(u16::from_le_bytes([page[at], page[at + 1]]));
        }
        let off = COUNT_ENTRY_BYTES * entries;
        let nbytes = data_pages.div_ceil(AMAP_PAGES_PER_BYTE) as usize;
        if off + nbytes > geometry.page_size {
            return Err(Error::CorruptDirectory {
                reason: "map does not fit the directory page".into(),
            });
        }
        let amap = AMap::from_bytes(page[off..off + nbytes].to_vec(), data_pages);
        let space_max_type = std::cmp::min(geometry.max_type, data_pages.ilog2() as u8);
        let dir = SpaceDir {
            geometry,
            counts,
            amap,
            space_max_type,
            merges: 0,
        };
        dir.check_invariants()?;
        Ok(dir)
    }

    /// Decode a directory page *without* validating its invariants —
    /// the loader for offline analysis (`eos-check`), which must be
    /// able to hold a corrupt directory in memory in order to report
    /// exactly what is wrong with it. Only the geometry is checked
    /// (page length, map fits the page).
    pub fn from_page_unchecked(
        geometry: Geometry,
        data_pages: u64,
        page: &[u8],
    ) -> Result<SpaceDir> {
        if page.len() != geometry.page_size {
            return Err(Error::CorruptDirectory {
                reason: "directory page has wrong length".into(),
            });
        }
        let entries = geometry.count_entries();
        let mut counts = Vec::with_capacity(entries);
        for i in 0..entries {
            let at = COUNT_ENTRY_BYTES * i;
            counts.push(u16::from_le_bytes([page[at], page[at + 1]]));
        }
        let off = COUNT_ENTRY_BYTES * entries;
        let nbytes = data_pages.div_ceil(AMAP_PAGES_PER_BYTE) as usize;
        if off + nbytes > geometry.page_size {
            return Err(Error::CorruptDirectory {
                reason: "map does not fit the directory page".into(),
            });
        }
        let amap = AMap::from_bytes(page[off..off + nbytes].to_vec(), data_pages);
        let space_max_type = std::cmp::min(geometry.max_type, data_pages.ilog2() as u8);
        Ok(SpaceDir {
            geometry,
            counts,
            amap,
            space_max_type,
            merges: 0,
        })
    }

    /// Exhaustively verify the directory invariants: the map decodes into
    /// non-overlapping, size-aligned segments covering every page; free
    /// space is maximally coalesced; the count array matches the map.
    /// Used by property tests after every operation and when opening a
    /// directory page from disk.
    pub fn check_invariants(&self) -> Result<()> {
        let mut counted = vec![0u64; self.counts.len()];
        let mut s = 0u64;
        while s < self.data_pages() {
            let d = self.amap.seg_at_start(s);
            if !d.start.is_multiple_of(d.pages) {
                return Err(Error::CorruptDirectory {
                    reason: format!("segment at {s} not aligned to its size {}", d.pages),
                });
            }
            if d.state == SegState::Free {
                let t = d.pages.ilog2() as u8;
                if t > self.space_max_type {
                    return Err(Error::CorruptDirectory {
                        reason: format!("free segment of type {t} too large"),
                    });
                }
                counted[t as usize] += 1;
                // Maximal coalescing: the buddy must not be free of the
                // same size.
                if t < self.space_max_type {
                    let buddy = d.start ^ d.pages;
                    if self.amap.is_free_exact(buddy, t) {
                        return Err(Error::CorruptDirectory {
                            reason: format!(
                                "free buddies {} and {buddy} of size {} not coalesced",
                                d.start, d.pages
                            ),
                        });
                    }
                }
            }
            s += d.pages;
        }
        if s != self.data_pages() {
            return Err(Error::CorruptDirectory {
                reason: format!("segments cover {s} pages, space has {}", self.data_pages()),
            });
        }
        for (t, (&have, &want)) in self.counts.iter().zip(counted.iter()).enumerate() {
            if have as u64 != want {
                return Err(Error::CorruptDirectory {
                    reason: format!("count[{t}] = {have}, map has {want}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir16() -> SpaceDir {
        SpaceDir::create(Geometry::for_page_size(4096), 16)
    }

    #[test]
    fn create_coalesces_to_one_segment() {
        let d = dir16();
        d.check_invariants().unwrap();
        assert_eq!(d.count(4), 1);
        assert_eq!(d.free_pages(), 16);
        assert_eq!(d.largest_free_type(), Some(4));
    }

    #[test]
    fn create_non_power_of_two_space() {
        let d = SpaceDir::create(Geometry::for_page_size(4096), 13);
        d.check_invariants().unwrap();
        // 13 = 8 + 4 + 1.
        assert_eq!(d.count(3), 1);
        assert_eq!(d.count(2), 1);
        assert_eq!(d.count(0), 1);
        assert_eq!(d.free_pages(), 13);
    }

    #[test]
    fn alloc_pow2_splits_larger_segments() {
        let mut d = dir16();
        let s = d.alloc_pow2(1).unwrap();
        assert_eq!(s, 0);
        d.check_invariants().unwrap();
        // 16 split → halves freed at 8(t3), 4(t2), 2(t1); 2@0 allocated.
        assert_eq!(d.count(3), 1);
        assert_eq!(d.count(2), 1);
        assert_eq!(d.count(1), 1);
        assert_eq!(d.free_pages(), 14);
    }

    #[test]
    fn alloc_then_free_restores_one_segment() {
        let mut d = dir16();
        let s = d.alloc_pow2(2).unwrap();
        d.free_range(s, 4).unwrap();
        d.check_invariants().unwrap();
        assert_eq!(d.count(4), 1);
        assert_eq!(d.free_pages(), 16);
    }

    #[test]
    fn figure4_walkthrough() {
        // (a) A free segment of size 16 exists.
        let mut d = dir16();
        assert_eq!(d.count(4), 1);

        // (b) Allocate 11 pages: allocated 8@0, 2@8, 1@10;
        //     free 1@11 and 4@12.
        let s = d.alloc_any(11).unwrap();
        assert_eq!(s, 0);
        d.check_invariants().unwrap();
        assert_eq!(d.count(0), 1);
        assert_eq!(d.count(2), 1);
        assert_eq!(d.free_pages(), 5);
        let m = d.amap();
        assert_eq!(m.seg_at_start(0).pages, 8);
        assert_eq!(m.seg_at_start(0).state, SegState::Allocated);
        assert_eq!(m.seg_at_start(8).pages, 1); // individual bits
        assert_eq!(m.seg_at_start(8).state, SegState::Allocated);
        assert_eq!(m.seg_at_start(11).pages, 1);
        assert_eq!(m.seg_at_start(11).state, SegState::Free);
        assert_eq!(m.seg_at_start(12).pages, 4);
        assert_eq!(m.seg_at_start(12).state, SegState::Free);

        // (c) Free 7 pages starting from page 3.
        d.free_range(3, 7).unwrap();
        d.check_invariants().unwrap();
        // Allocated left: pages 0-2 (as 2@0 + 1@2) and page 10.
        let m = d.amap();
        assert!(m.page_allocated(0));
        assert!(m.page_allocated(1));
        assert!(m.page_allocated(2));
        assert!(!m.page_allocated(3));
        assert_eq!(m.seg_at_start(4).pages, 4);
        assert_eq!(m.seg_at_start(4).state, SegState::Free);
        assert_eq!(m.seg_at_start(8).pages, 2);
        assert_eq!(m.seg_at_start(8).state, SegState::Free);
        assert!(m.page_allocated(10));
        assert!(!m.page_allocated(11));
        assert_eq!(d.free_pages(), 12);

        // (d) Free page 10: iterative coalescing 10+11 → 2@10,
        //     2@10+2@8 → 4@8, 4@8+4@12 → 8@8. Segment 0 of size 8 is not
        //     free, so coalescing stops there.
        d.free_range(10, 1).unwrap();
        d.check_invariants().unwrap();
        let m = d.amap();
        assert_eq!(m.seg_at_start(8).pages, 8);
        assert_eq!(m.seg_at_start(8).state, SegState::Free);
        assert_eq!(d.count(3), 1);
        assert_eq!(d.free_pages(), 13);
        assert!(m.page_allocated(0));
        assert!(m.page_allocated(2));
        assert!(!m.page_allocated(3));
    }

    #[test]
    fn double_free_is_detected() {
        let mut d = dir16();
        let s = d.alloc_pow2(2).unwrap();
        d.free_range(s, 4).unwrap();
        assert!(matches!(d.free_range(s, 4), Err(Error::DoubleFree { .. })));
        // Freeing a range that straddles free space also fails.
        let s2 = d.alloc_pow2(1).unwrap();
        assert!(matches!(d.free_range(s2, 4), Err(Error::DoubleFree { .. })));
    }

    #[test]
    fn no_space_is_reported() {
        let mut d = dir16();
        assert!(matches!(d.alloc_pow2(5), Err(Error::NoSpace { .. })));
        d.alloc_pow2(4).unwrap();
        assert!(matches!(d.alloc_pow2(0), Err(Error::NoSpace { .. })));
    }

    #[test]
    fn walk_probe_counts_match_figure3_example() {
        // §3.1: searching for the free 8-segment in the Fig 3 map starts
        // at segment 0 (64 pages), hops to 64, then to 72 — three probes.
        let g = Geometry::for_page_size(4096);
        let mut d = SpaceDir::create(g, 128);
        // Carve the Fig 3 layout: alloc 64@0, pages 65,66; leave 68..72
        // and 72..80 free; allocate the rest (80..128 = 48 pages).
        assert_eq!(d.alloc_pow2(6).unwrap(), 0);
        assert_eq!(d.alloc_any(4).unwrap(), 64); // 64..68 temporarily
        d.free_range(64, 1).unwrap();
        d.free_range(67, 1).unwrap();
        assert_eq!(d.alloc_pow2(4).unwrap(), 80);
        assert_eq!(d.alloc_pow2(5).unwrap(), 96);
        d.check_invariants().unwrap();
        let (s, probes) = d.find_free(3).unwrap();
        assert_eq!(s, 72);
        assert_eq!(probes, 3, "visits segments 0, 64(..65,66,67?), ...");
    }

    #[test]
    fn serialization_roundtrip() {
        let g = Geometry::for_page_size(512);
        let mut d = SpaceDir::create(g, 300);
        d.alloc_any(37).unwrap();
        d.alloc_pow2(3).unwrap();
        d.free_range(5, 20).unwrap();
        let page = d.to_page();
        assert_eq!(page.len(), 512);
        let d2 = SpaceDir::from_page(g, 300, &page).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn from_page_rejects_corruption() {
        let g = Geometry::for_page_size(512);
        let d = SpaceDir::create(g, 64);
        let mut page = d.to_page();
        page[0] = page[0].wrapping_add(1); // corrupt count[0]
        assert!(matches!(
            SpaceDir::from_page(g, 64, &page),
            Err(Error::CorruptDirectory { .. })
        ));
    }

    #[test]
    fn exhaust_space_and_refill() {
        let mut d = SpaceDir::create(Geometry::for_page_size(4096), 64);
        let mut got = Vec::new();
        for _ in 0..16 {
            got.push(d.alloc_pow2(2).unwrap());
        }
        assert_eq!(d.free_pages(), 0);
        assert_eq!(d.largest_free_type(), None);
        d.check_invariants().unwrap();
        for s in got {
            d.free_range(s, 4).unwrap();
        }
        d.check_invariants().unwrap();
        assert_eq!(d.count(6), 1, "everything coalesced back");
    }
}
