//! A buddy space bound to a volume: the 1-page directory plus its run of
//! data pages (Fig 1).
//!
//! All allocation state lives in the directory page; data pages are
//! never touched by the allocator. The directory is decoded once when
//! the space is opened and written back (one page write) after every
//! mutation, so the volume's I/O counters exhibit the paper's §3.3
//! claim: one disk access per allocation or deallocation, regardless of
//! segment size.

use eos_pager::{PageId, SharedVolume};

use crate::dir::SpaceDir;
use crate::error::{Error, Result};
use crate::geometry::Geometry;

/// A buddy segment space on a volume.
pub struct BuddySpace {
    volume: SharedVolume,
    /// Volume page holding the directory.
    dir_page: PageId,
    /// Volume page of data page 0 (`dir_page + 1`).
    data_base: PageId,
    dir: SpaceDir,
}

impl BuddySpace {
    /// Format a fresh space: directory at `base_page`, `data_pages` data
    /// pages directly after it. Writes the initial directory page.
    pub fn create(volume: SharedVolume, base_page: PageId, data_pages: u64) -> Result<BuddySpace> {
        let geometry = Geometry::for_page_size(volume.page_size());
        let dir = SpaceDir::create(geometry, data_pages);
        let mut space = BuddySpace {
            volume,
            dir_page: base_page,
            data_base: base_page + 1,
            dir,
        };
        space.flush()?;
        Ok(space)
    }

    /// Open an existing space by reading and validating its directory
    /// page (one page read).
    pub fn open(volume: SharedVolume, base_page: PageId, data_pages: u64) -> Result<BuddySpace> {
        let geometry = Geometry::for_page_size(volume.page_size());
        let page = volume.read_pages(base_page, 1)?;
        let dir = SpaceDir::from_page(geometry, data_pages, &page)?;
        Ok(BuddySpace {
            volume,
            dir_page: base_page,
            data_base: base_page + 1,
            dir,
        })
    }

    /// Write the directory page back to the volume.
    pub fn flush(&mut self) -> Result<()> {
        self.volume
            .write_pages(self.dir_page, &self.dir.to_page())?;
        Ok(())
    }

    /// Allocate `pages` physically contiguous pages (any size, page
    /// precision). Returns the first **volume** page of the run.
    pub fn allocate(&mut self, pages: u64) -> Result<PageId> {
        let data_page = self.dir.alloc_any(pages)?;
        self.flush()?;
        Ok(self.data_base + data_page)
    }

    /// Allocate a specific free range starting at **volume** page
    /// `start` (fixed-location structures like boot pages).
    pub fn allocate_at(&mut self, start: PageId, pages: u64) -> Result<()> {
        let data_page = self.to_data_page(start)?;
        self.dir.alloc_at(data_page, pages)?;
        self.flush()?;
        Ok(())
    }

    /// Free `pages` pages starting at **volume** page `start` (any
    /// portion of previously allocated segments).
    pub fn free(&mut self, start: PageId, pages: u64) -> Result<()> {
        let data_page = self.to_data_page(start)?;
        self.dir.free_range(data_page, pages)?;
        self.flush()?;
        Ok(())
    }

    /// Translate a volume page into this space's data-page numbering.
    fn to_data_page(&self, volume_page: PageId) -> Result<u64> {
        if volume_page < self.data_base || volume_page >= self.data_base + self.dir.data_pages() {
            return Err(Error::OutOfSpaceBounds {
                start: volume_page,
                pages: 1,
            });
        }
        Ok(volume_page - self.data_base)
    }

    /// Volume page of the directory.
    pub fn dir_page(&self) -> PageId {
        self.dir_page
    }

    /// Volume page of data page 0.
    pub fn data_base(&self) -> PageId {
        self.data_base
    }

    /// Total volume pages occupied (directory + data).
    pub fn span_pages(&self) -> u64 {
        1 + self.dir.data_pages()
    }

    /// The decoded directory (for inspection and experiments).
    pub fn dir(&self) -> &SpaceDir {
        &self.dir
    }

    /// Type of the largest free segment, or `None` when full.
    pub fn largest_free_type(&self) -> Option<u8> {
        self.dir.largest_free_type()
    }

    /// Free pages remaining.
    pub fn free_pages(&self) -> u64 {
        self.dir.free_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eos_pager::{DiskProfile, MemVolume};

    fn mem(pages: u64) -> SharedVolume {
        MemVolume::with_profile(512, pages, DiskProfile::FREE).shared()
    }

    #[test]
    fn create_allocate_free_roundtrip() {
        let vol = mem(200);
        let mut s = BuddySpace::create(vol.clone(), 0, 128).unwrap();
        let a = s.allocate(11).unwrap();
        assert_eq!(a, 1, "first data page sits right after the directory");
        let b = s.allocate(5).unwrap();
        assert!(b >= a + 11);
        s.free(a, 11).unwrap();
        s.free(b, 5).unwrap();
        assert_eq!(s.free_pages(), 128);
        s.dir().check_invariants().unwrap();
    }

    #[test]
    fn one_page_write_per_allocation_regardless_of_size() {
        // §3.3: "at most one disk access is needed to serve block
        // allocation (and deallocation) requests, regardless of the
        // segment size."
        let vol = mem(2000);
        let mut s = BuddySpace::create(vol.clone(), 0, 1024).unwrap();
        for req in [1u64, 7, 64, 512] {
            let before = vol.stats();
            let p = s.allocate(req).unwrap();
            let after = vol.stats();
            assert_eq!(after.page_writes - before.page_writes, 1, "alloc {req}");
            assert_eq!(after.page_reads, before.page_reads);
            let before = vol.stats();
            s.free(p, req).unwrap();
            let after = vol.stats();
            assert_eq!(after.page_writes - before.page_writes, 1, "free {req}");
        }
    }

    #[test]
    fn open_rehydrates_state() {
        let vol = mem(200);
        let a;
        {
            let mut s = BuddySpace::create(vol.clone(), 3, 64).unwrap();
            a = s.allocate(10).unwrap();
        }
        let mut s = BuddySpace::open(vol.clone(), 3, 64).unwrap();
        assert_eq!(s.free_pages(), 54);
        s.free(a, 10).unwrap();
        assert_eq!(s.free_pages(), 64);
    }

    #[test]
    fn free_of_foreign_page_is_rejected() {
        let vol = mem(200);
        let mut s = BuddySpace::create(vol.clone(), 10, 64).unwrap();
        assert!(matches!(s.free(5, 1), Err(Error::OutOfSpaceBounds { .. })));
        assert!(matches!(
            s.free(10, 1), // the directory page itself
            Err(Error::OutOfSpaceBounds { .. })
        ));
    }

    #[test]
    fn allocator_never_touches_data_pages() {
        let vol = mem(600);
        let mut s = BuddySpace::create(vol.clone(), 0, 512).unwrap();
        vol.reset_stats();
        let mut extents = Vec::new();
        for i in 1..20u64 {
            extents.push((s.allocate(i).unwrap(), i));
        }
        for (p, n) in extents {
            s.free(p, n).unwrap();
        }
        let stats = vol.stats();
        // Every write was the single directory page.
        assert_eq!(stats.page_writes, 19 + 19);
        assert_eq!(stats.page_reads, 0);
    }
}
