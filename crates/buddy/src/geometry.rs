//! Buddy-space geometry derived from the page size (paper §3).
//!
//! "Since the directory is always 1 page, the maximum buddy space size,
//! as well as the maximum segment size within the buddy space, depend on
//! the page size. For a given page size PS the maximum segment size is
//! 2·PS pages." With 4 KiB pages this gives segment types 0..=13 (max
//! segment 2¹³ pages = 32 MB), a 4096 − 2·14 = 4068-byte allocation map,
//! and buddy spaces of at most 4068·4 = 16,272 pages (≈ 63.5 MB).

/// Derived sizing constants for buddy spaces with a given page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Disk page size in bytes.
    pub page_size: usize,
    /// Maximum segment type `k`: segments range from 2⁰ to 2ᵏ pages.
    pub max_type: u8,
    /// Bytes available for the allocation map in the 1-page directory.
    pub amap_len: usize,
    /// Maximum number of data pages one buddy space can manage.
    pub max_space_pages: u64,
}

impl Geometry {
    /// Compute the geometry for a page size, per §3 of the paper.
    ///
    /// `max_type = ⌊log₂(2·PS)⌋`, the count array has `max_type + 1`
    /// two-byte entries, and the allocation map gets the rest of the
    /// directory page, each byte covering 4 pages.
    ///
    /// # Panics
    /// If the page size is too small to hold a count array and a
    /// non-empty map (anything ≥ 32 bytes is fine).
    pub fn for_page_size(page_size: usize) -> Geometry {
        assert!(page_size >= 32, "page size too small for a directory");
        let max_type = (2 * page_size as u64).ilog2() as u8;
        let count_bytes = 2 * (max_type as usize + 1);
        assert!(page_size > count_bytes, "page size too small");
        let amap_len = page_size - count_bytes;
        Geometry {
            page_size,
            max_type,
            amap_len,
            max_space_pages: 4 * amap_len as u64,
        }
    }

    /// Largest segment size in pages (2^max_type).
    #[inline]
    pub fn max_seg_pages(&self) -> u64 {
        1u64 << self.max_type
    }

    /// Number of entries in the directory's count array.
    #[inline]
    pub fn count_entries(&self) -> usize {
        self.max_type as usize + 1
    }

    /// Smallest segment type whose size is ≥ `pages`
    /// (i.e. `⌈log₂ pages⌉`), used when an any-size request must be
    /// carved out of one power-of-two segment (§3.2, Fig 4).
    #[inline]
    pub fn type_for(&self, pages: u64) -> u8 {
        debug_assert!(pages > 0);
        if pages == 1 {
            0
        } else {
            (64 - (pages - 1).leading_zeros()) as u8
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Geometry;

    #[test]
    fn paper_numbers_for_4k_pages() {
        // §3: "with 4K-byte disk pages, the maximum segment size that can
        // be supported is 2¹³ pages (32 megabytes) ... the allocation map
        // can be at most 4096−2×14=4068 bytes long; this allows the
        // support of buddy spaces of at most 4068×4=16,272 pages".
        let g = Geometry::for_page_size(4096);
        assert_eq!(g.max_type, 13);
        assert_eq!(g.max_seg_pages(), 8192);
        assert_eq!(g.max_seg_pages() * 4096, 32 << 20); // 32 MB
        assert_eq!(g.amap_len, 4068);
        assert_eq!(g.max_space_pages, 16_272);
        assert_eq!(g.count_entries(), 14);
    }

    #[test]
    fn didactic_100_byte_pages() {
        // The paper's Fig 5 examples use 100-byte pages.
        let g = Geometry::for_page_size(100);
        assert_eq!(g.max_type, 7); // ⌊log₂ 200⌋
        assert_eq!(g.amap_len, 100 - 16);
        assert_eq!(g.max_space_pages, 336);
    }

    #[test]
    fn type_for_rounds_up_to_power_of_two() {
        let g = Geometry::for_page_size(4096);
        assert_eq!(g.type_for(1), 0);
        assert_eq!(g.type_for(2), 1);
        assert_eq!(g.type_for(3), 2);
        assert_eq!(g.type_for(4), 2);
        assert_eq!(g.type_for(5), 3);
        assert_eq!(g.type_for(11), 4); // Fig 4: 11 pages carved from a 16
        assert_eq!(g.type_for(16), 4);
        assert_eq!(g.type_for(8192), 13);
    }

    #[test]
    #[should_panic(expected = "page size too small")]
    fn tiny_pages_rejected() {
        Geometry::for_page_size(8);
    }
}
