//! Model-based property tests for the baseline stores: every store that
//! claims an operation must match the `Vec<u8>` reference byte for byte.

use eos_baselines::{ExodusStore, StarburstStore, SystemRStore, WissStore};
use eos_core::BlobStore;
use eos_pager::{DiskProfile, MemVolume, SharedVolume};
use proptest::prelude::*;

/// Default case count, overridable via PROPTEST_CASES for deep soaks.
fn prop_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
}

#[derive(Debug, Clone)]
enum Op {
    Append { len: usize },
    Insert { at: u64, len: usize },
    Delete { at: u64, len: u64 },
    Replace { at: u64, len: usize },
    Read { at: u64, len: u64 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0usize..1_200).prop_map(|len| Op::Append { len }),
            3 => (any::<u64>(), 0usize..900).prop_map(|(at, len)| Op::Insert { at, len }),
            3 => (any::<u64>(), any::<u64>()).prop_map(|(at, len)| Op::Delete { at, len: len % 2_000 }),
            2 => (any::<u64>(), 0usize..700).prop_map(|(at, len)| Op::Replace { at, len }),
            2 => (any::<u64>(), any::<u64>()).prop_map(|(at, len)| Op::Read { at, len: len % 1_500 }),
        ],
        1..35,
    )
}

fn fill(seed: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| seed.wrapping_add((i % 239) as u8))
        .collect()
}

fn vol() -> SharedVolume {
    MemVolume::with_profile(256, 4 * 902 + 2, DiskProfile::FREE).shared()
}

/// Drive a store through the op sequence; `partial_updates` gates the
/// insert/delete checks (System R lacks them).
fn run<S: BlobStore>(mut store: S, ops: Vec<Op>, partial_updates: bool, cap: usize) {
    let mut model: Vec<u8> = Vec::new();
    let mut h = store.create(&[], false).unwrap();
    for (i, op) in ops.into_iter().enumerate() {
        let seed = i as u8;
        let size = model.len() as u64;
        match op {
            Op::Append { len } => {
                if model.len() + len > cap {
                    continue;
                }
                let data = fill(seed, len);
                store.append(&mut h, &data).unwrap();
                model.extend_from_slice(&data);
            }
            Op::Insert { at, len } => {
                if !partial_updates || model.len() + len > cap {
                    continue;
                }
                let at = if size == 0 { 0 } else { at % (size + 1) };
                let data = fill(seed.wrapping_add(7), len);
                store.insert(&mut h, at, &data).unwrap();
                model.splice(at as usize..at as usize, data.iter().copied());
            }
            Op::Delete { at, len } => {
                if !partial_updates || size == 0 {
                    continue;
                }
                let at = at % size;
                let len = len.min(size - at);
                if len == 0 {
                    continue;
                }
                store.delete(&mut h, at, len).unwrap();
                model.drain(at as usize..(at + len) as usize);
            }
            Op::Replace { at, len } => {
                if size == 0 {
                    continue;
                }
                let at = at % size;
                let len = (len as u64).min(size - at) as usize;
                let data = fill(seed.wrapping_add(31), len);
                store.replace(&mut h, at, &data).unwrap();
                model[at as usize..at as usize + len].copy_from_slice(&data);
            }
            Op::Read { at, len } => {
                if size == 0 {
                    continue;
                }
                let at = at % size;
                let len = len.min(size - at);
                assert_eq!(
                    store.read(&h, at, len).unwrap(),
                    &model[at as usize..(at + len) as usize]
                );
                continue;
            }
        }
        assert_eq!(store.size(&h), model.len() as u64, "size after op {i}");
        assert_eq!(
            store.read(&h, 0, model.len() as u64).unwrap(),
            model,
            "content after op {i}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: prop_cases(), ..ProptestConfig::default() })]

    #[test]
    fn exodus_leaf1_matches_model(ops in ops()) {
        run(ExodusStore::create(vol(), 4, 901, 1).unwrap(), ops, true, 30_000);
    }

    #[test]
    fn exodus_leaf4_matches_model(ops in ops()) {
        run(ExodusStore::create(vol(), 4, 901, 4).unwrap(), ops, true, 30_000);
    }

    #[test]
    fn starburst_matches_model(ops in ops()) {
        run(StarburstStore::create(vol(), 4, 901).unwrap(), ops, true, 30_000);
    }

    #[test]
    fn wiss_matches_model(ops in ops()) {
        // WiSS caps at 25 slices × 256 bytes on this geometry; stay low.
        run(WissStore::create(vol(), 4, 901).unwrap(), ops, true, 4_000);
    }

    #[test]
    fn systemr_matches_model(ops in ops()) {
        run(SystemRStore::create(vol(), 4, 901).unwrap(), ops, false, 30_000);
    }
}
