//! # eos-baselines — the large-object stores EOS is compared against
//!
//! Reimplementations of the §2 "related work" systems of Biliris 1992,
//! all behind the [`eos_core::BlobStore`] trait so the benchmark harness
//! (experiment E7, the \[Bili91b\] comparison) can drive them uniformly:
//!
//! * [`ExodusStore`] — the Exodus large object manager \[Care86\]:
//!   the same positional B-tree as EOS but with **fixed-size** leaf data
//!   pages, read-modify-written in place, split/merged at half full.
//! * [`StarburstStore`] — the Starburst long field manager \[Lehm89\]:
//!   buddy-allocated doubling segments addressed straight from the
//!   descriptor; fast creates and scans, but inserts and deletes copy
//!   every segment from the update point to the end.
//! * [`WissStore`] — WiSS slices \[Chou85\]: ≤ 1-page slices under a
//!   one-page directory (≈ 400 slices with 4 KiB pages), scattered on
//!   disk.
//! * [`SystemRStore`] — System R long fields \[Astr76\]: a linear
//!   linked list of small segments; no partial updates, reads chase the
//!   chain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exodus;
mod starburst;
mod systemr;
mod wiss;

pub use exodus::{ExodusObject, ExodusStore};
pub use starburst::{LongField, StarburstStore};
pub use systemr::{ChainField, SystemRStore};
pub use wiss::{SliceDir, WissStore};
