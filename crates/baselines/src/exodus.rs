//! The Exodus large object manager \[Care86\], §2 of the paper.
//!
//! Exodus pioneered the positional B-tree that EOS adopts, but its
//! leaves are **fixed-size data pages**: "clients can set the size of
//! data pages of all large objects within a file to be some fixed
//! number of disk blocks". Every leaf is one unit of `leaf_pages`
//! contiguous blocks; leaves may be anywhere from half full to full, so
//! the design trades search time against storage utilization through a
//! single knob — "large pages waste too much space at the end of
//! partially full pages (but offer good search time), and small pages
//! offer good storage utilization (but require doing many I/O's for
//! reads)". That tension is exactly what experiment E7 measures.
//!
//! The tree layout (cumulative byte counts in internal nodes) is
//! identical to EOS — the paper says so explicitly — so this module
//! reuses `eos_core::Node`. Updates differ: Exodus reads and rewrites
//! leaf pages in place, splits an overflowing leaf into two half-full
//! leaves, and merges/rebalances underflowing leaves with a sibling
//! (within the same parent; Exodus' published algorithm also handles
//! cousins, a case this reimplementation resolves by leaving the leaf
//! slightly underfull, as real Exodus files may after mixed workloads).

use eos_buddy::BuddyManager;
use eos_core::{node_capacity, node_min, BlobStore, Entry, Error, Node, Result};
use eos_pager::{IoStats, PageId, SharedVolume};

/// Handle to an Exodus large object: the client-held root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExodusObject {
    root: Node,
}

impl ExodusObject {
    /// Object size in bytes.
    pub fn len(&self) -> u64 {
        self.root.total_bytes()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.root.entries.is_empty()
    }

    /// Tree height (1 = root points at leaves).
    pub fn height(&self) -> u16 {
        self.root.level
    }
}

struct Step {
    page: Option<PageId>,
    node: Node,
    child: usize,
}

/// The Exodus-style large object store.
pub struct ExodusStore {
    volume: SharedVolume,
    buddy: BuddyManager,
    leaf_pages: u64,
}

impl ExodusStore {
    /// Format a store whose data pages are `leaf_pages` disk blocks.
    pub fn create(
        volume: SharedVolume,
        num_spaces: usize,
        pages_per_space: u64,
        leaf_pages: u64,
    ) -> Result<ExodusStore> {
        assert!(leaf_pages >= 1);
        let buddy = BuddyManager::create(volume.clone(), num_spaces, pages_per_space)?;
        Ok(ExodusStore {
            volume,
            buddy,
            leaf_pages,
        })
    }

    fn ps(&self) -> u64 {
        self.volume.page_size() as u64
    }

    /// Leaf capacity in bytes.
    pub fn leaf_cap(&self) -> u64 {
        self.leaf_pages * self.ps()
    }

    fn leaf_min(&self) -> u64 {
        self.leaf_cap() / 2
    }

    fn node_cap(&self) -> usize {
        node_capacity(self.volume.page_size())
    }

    /// The buddy manager (experiments).
    pub fn buddy(&self) -> &BuddyManager {
        &self.buddy
    }

    // ---- node and leaf I/O ----------------------------------------------

    fn read_node(&self, page: PageId) -> Result<Node> {
        Node::from_page(&self.volume.read_pages(page, 1)?)
    }

    fn write_node(&mut self, page: PageId, node: &Node) -> Result<()> {
        self.volume
            .write_pages(page, &node.to_page(self.volume.page_size()))?;
        Ok(())
    }

    fn alloc_node(&mut self, node: &Node) -> Result<PageId> {
        let ext = self.buddy.allocate(1)?;
        self.write_node(ext.start, node)?;
        Ok(ext.start)
    }

    fn read_leaf(&self, ptr: PageId, bytes: u64) -> Result<Vec<u8>> {
        let pages = bytes.div_ceil(self.ps()).max(1);
        let buf = self.volume.read_pages(ptr, pages)?;
        Ok(buf[..bytes as usize].to_vec())
    }

    fn write_leaf(&mut self, ptr: PageId, data: &[u8]) -> Result<()> {
        let ps = self.ps() as usize;
        let mut buf = data.to_vec();
        buf.resize(data.len().div_ceil(ps).max(1) * ps, 0);
        self.volume.write_pages(ptr, &buf)?;
        Ok(())
    }

    fn alloc_leaf(&mut self) -> Result<PageId> {
        Ok(self.buddy.allocate(self.leaf_pages)?.start)
    }

    fn free_leaf(&mut self, ptr: PageId) -> Result<()> {
        self.buddy.free(ptr, self.leaf_pages)?;
        Ok(())
    }

    // ---- tree plumbing ----------------------------------------------------

    fn descend(&self, obj: &ExodusObject, b: u64) -> Result<(Vec<Step>, u64)> {
        if b >= obj.len() {
            return Err(Error::OutOfObjectBounds {
                offset: b,
                len: 1,
                object_size: obj.len(),
            });
        }
        let mut path = Vec::new();
        let mut node = obj.root.clone();
        let mut page = None;
        let mut rel = b;
        loop {
            let (child, inner) = node.find_child(rel);
            let level = node.level;
            let ptr = node.entries[child].ptr;
            path.push(Step { page, node, child });
            if level == 1 {
                return Ok((path, inner));
            }
            node = self.read_node(ptr)?;
            page = Some(ptr);
            rel = inner;
        }
    }

    fn advance(&self, path: &mut Vec<Step>) -> Result<()> {
        loop {
            let top = path.last_mut().ok_or_else(|| Error::CorruptObject {
                reason: "advanced past the last leaf".into(),
            })?;
            if top.child + 1 < top.node.entries.len() {
                top.child += 1;
                break;
            }
            path.pop();
        }
        while path.last().expect("non-empty").node.level > 1 {
            let top = path.last().unwrap();
            let ptr = top.node.entries[top.child].ptr;
            let node = self.read_node(ptr)?;
            path.push(Step {
                page: Some(ptr),
                node,
                child: 0,
            });
        }
        Ok(())
    }

    /// Write the bottom node of the path back (splitting on overflow)
    /// and propagate counts/pointers up to the root.
    fn propagate(&mut self, obj: &mut ExodusObject, mut path: Vec<Step>) -> Result<()> {
        let mut step = path.pop().expect("empty path");
        while let Some(page) = step.page {
            let repl = self.finalize(page, &step.node)?;
            step = path.pop().expect("path ends at the root");
            let child = step.child;
            step.node.entries.splice(child..child + 1, repl);
        }
        obj.root = step.node;
        self.normalize_root(obj)
    }

    fn finalize(&mut self, page: PageId, node: &Node) -> Result<Vec<Entry>> {
        let cap = self.node_cap();
        if node.entries.is_empty() {
            self.buddy.free(page, 1)?;
            return Ok(Vec::new());
        }
        if node.entries.len() <= cap {
            self.write_node(page, node)?;
            return Ok(vec![Entry {
                bytes: node.total_bytes(),
                ptr: page,
            }]);
        }
        let chunks = split_chunks(&node.entries, cap);
        let mut out = Vec::with_capacity(chunks.len());
        for (k, chunk) in chunks.into_iter().enumerate() {
            let n = Node {
                level: node.level,
                entries: chunk,
            };
            let p = if k == 0 {
                self.write_node(page, &n)?;
                page
            } else {
                self.alloc_node(&n)?
            };
            out.push(Entry {
                bytes: n.total_bytes(),
                ptr: p,
            });
        }
        Ok(out)
    }

    fn normalize_root(&mut self, obj: &mut ExodusObject) -> Result<()> {
        let cap = self.node_cap();
        while obj.root.entries.len() > cap {
            let level = obj.root.level;
            let num = obj.root.entries.len().div_ceil(cap).max(2);
            let chunks = split_into(&obj.root.entries, num);
            let mut entries = Vec::with_capacity(chunks.len());
            for chunk in chunks {
                let n = Node {
                    level,
                    entries: chunk,
                };
                let p = self.alloc_node(&n)?;
                entries.push(Entry {
                    bytes: n.total_bytes(),
                    ptr: p,
                });
            }
            obj.root = Node {
                level: level + 1,
                entries,
            };
        }
        while obj.root.level > 1 && obj.root.entries.len() == 1 {
            let ptr = obj.root.entries[0].ptr;
            let child = self.read_node(ptr)?;
            self.buddy.free(ptr, 1)?;
            obj.root = child;
        }
        Ok(())
    }

    fn free_subtree(&mut self, node: &Node) -> Result<()> {
        if node.level == 1 {
            for e in &node.entries {
                self.free_leaf(e.ptr)?;
            }
            return Ok(());
        }
        for e in &node.entries {
            let child = self.read_node(e.ptr)?;
            self.free_subtree(&child)?;
            self.buddy.free(e.ptr, 1)?;
        }
        Ok(())
    }

    /// Write `data` into fresh leaves: full leaves, with the final two
    /// rebalanced so none is under half full.
    fn fresh_leaves(&mut self, data: &[u8]) -> Result<Vec<Entry>> {
        let cap = self.leaf_cap() as usize;
        let min = self.leaf_min() as usize;
        let mut sizes: Vec<usize> = Vec::new();
        let mut rest = data.len();
        while rest > 0 {
            let take = rest.min(cap);
            sizes.push(take);
            rest -= take;
        }
        if sizes.len() >= 2 {
            let last = *sizes.last().unwrap();
            if last < min {
                // Rebalance the final two leaves.
                let prev = sizes[sizes.len() - 2];
                let total = prev + last;
                let half = total / 2;
                let n = sizes.len();
                sizes[n - 2] = total - half;
                sizes[n - 1] = half;
            }
        }
        let mut out = Vec::with_capacity(sizes.len());
        let mut off = 0;
        for s in sizes {
            let ptr = self.alloc_leaf()?;
            self.write_leaf(ptr, &data[off..off + s])?;
            off += s;
            out.push(Entry {
                bytes: s as u64,
                ptr,
            });
        }
        Ok(out)
    }

    fn bounds(&self, obj: &ExodusObject, offset: u64, len: u64) -> Result<()> {
        if offset.checked_add(len).is_none_or(|e| e > obj.len()) {
            return Err(Error::OutOfObjectBounds {
                offset,
                len,
                object_size: obj.len(),
            });
        }
        Ok(())
    }
}

fn split_chunks(entries: &[Entry], cap: usize) -> Vec<Vec<Entry>> {
    split_into(entries, entries.len().div_ceil(cap))
}

fn split_into(entries: &[Entry], chunks: usize) -> Vec<Vec<Entry>> {
    let n = entries.len();
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut it = entries.iter().copied();
    for i in 0..chunks {
        let take = base + usize::from(i < extra);
        out.push(it.by_ref().take(take).collect());
    }
    out
}

impl BlobStore for ExodusStore {
    type Handle = ExodusObject;

    fn name(&self) -> &'static str {
        "exodus"
    }

    fn create(&mut self, data: &[u8], _known_size: bool) -> Result<ExodusObject> {
        let mut obj = ExodusObject { root: Node::new(1) };
        if !data.is_empty() {
            obj.root.entries = self.fresh_leaves(data)?;
            self.normalize_root(&mut obj)?;
        }
        Ok(obj)
    }

    fn size(&self, h: &ExodusObject) -> u64 {
        h.len()
    }

    fn read(&self, h: &ExodusObject, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.bounds(h, offset, len)?;
        if len == 0 {
            return Ok(Vec::new());
        }
        let ps = self.ps();
        let (mut path, mut rel) = self.descend(h, offset)?;
        let mut out = Vec::with_capacity(len as usize);
        let mut remaining = len;
        loop {
            let last = path.last().unwrap();
            let e = last.node.entries[last.child];
            let take = (e.bytes - rel).min(remaining);
            let p0 = rel / ps;
            let p1 = (rel + take - 1) / ps;
            let buf = self.volume.read_pages(e.ptr + p0, p1 - p0 + 1)?;
            let skip = (rel - p0 * ps) as usize;
            out.extend_from_slice(&buf[skip..skip + take as usize]);
            remaining -= take;
            if remaining == 0 {
                return Ok(out);
            }
            self.advance(&mut path)?;
            rel = 0;
        }
    }

    fn append(&mut self, h: &mut ExodusObject, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        if h.is_empty() {
            h.root.entries = self.fresh_leaves(data)?;
            return self.normalize_root(h);
        }
        let cap = self.leaf_cap();
        let (mut path, _) = self.descend(h, h.len() - 1)?;
        let bottom = path.last_mut().unwrap();
        let last = *bottom.node.entries.last().unwrap();
        let mut rest = data;
        // Top up the final leaf in place.
        if last.bytes < cap {
            let mut leaf = self.read_leaf(last.ptr, last.bytes)?;
            let fit = ((cap - last.bytes) as usize).min(rest.len());
            leaf.extend_from_slice(&rest[..fit]);
            self.write_leaf(last.ptr, &leaf)?;
            bottom.node.entries.last_mut().unwrap().bytes += fit as u64;
            rest = &rest[fit..];
        }
        if !rest.is_empty() {
            let fresh = self.fresh_leaves(rest)?;
            bottom.node.entries.extend(fresh);
        }
        self.propagate(h, path)
    }

    fn replace(&mut self, h: &mut ExodusObject, offset: u64, data: &[u8]) -> Result<()> {
        self.bounds(h, offset, data.len() as u64)?;
        if data.is_empty() {
            return Ok(());
        }
        let ps = self.ps();
        let (mut path, mut rel) = self.descend(h, offset)?;
        let mut src = data;
        loop {
            let last = path.last().unwrap();
            let e = last.node.entries[last.child];
            let take = ((e.bytes - rel) as usize).min(src.len());
            let p0 = rel / ps;
            let p1 = (rel + take as u64 - 1) / ps;
            let mut buf = self.volume.read_pages(e.ptr + p0, p1 - p0 + 1)?;
            let head = (rel - p0 * ps) as usize;
            buf[head..head + take].copy_from_slice(&src[..take]);
            self.volume.write_pages(e.ptr + p0, &buf)?;
            src = &src[take..];
            if src.is_empty() {
                return Ok(());
            }
            self.advance(&mut path)?;
            rel = 0;
        }
    }

    fn insert(&mut self, h: &mut ExodusObject, offset: u64, data: &[u8]) -> Result<()> {
        let size = h.len();
        if offset > size {
            return Err(Error::OutOfObjectBounds {
                offset,
                len: data.len() as u64,
                object_size: size,
            });
        }
        if data.is_empty() {
            return Ok(());
        }
        if offset == size {
            return self.append(h, data);
        }
        let cap = self.leaf_cap() as usize;
        let (mut path, rel) = self.descend(h, offset)?;
        let bottom = path.last_mut().unwrap();
        let e = bottom.node.entries[bottom.child];
        let leaf = self.read_leaf(e.ptr, e.bytes)?;
        let mut combined = Vec::with_capacity(leaf.len() + data.len());
        combined.extend_from_slice(&leaf[..rel as usize]);
        combined.extend_from_slice(data);
        combined.extend_from_slice(&leaf[rel as usize..]);
        let repl = if combined.len() <= cap {
            self.write_leaf(e.ptr, &combined)?;
            vec![Entry {
                bytes: combined.len() as u64,
                ptr: e.ptr,
            }]
        } else {
            // Split into ⌈n/cap⌉ leaves of nearly equal size (≥ half).
            let pieces = combined.len().div_ceil(cap);
            let base = combined.len() / pieces;
            let extra = combined.len() % pieces;
            let mut out = Vec::with_capacity(pieces);
            let mut off = 0;
            for k in 0..pieces {
                let take = base + usize::from(k < extra);
                let ptr = if k == 0 { e.ptr } else { self.alloc_leaf()? };
                self.write_leaf(ptr, &combined[off..off + take])?;
                off += take;
                out.push(Entry {
                    bytes: take as u64,
                    ptr,
                });
            }
            out
        };
        let child = bottom.child;
        bottom.node.entries.splice(child..child + 1, repl);
        self.propagate(h, path)
    }

    fn delete(&mut self, h: &mut ExodusObject, offset: u64, len: u64) -> Result<()> {
        self.bounds(h, offset, len)?;
        if len == 0 {
            return Ok(());
        }
        if offset == 0 && len == h.len() {
            let root = std::mem::replace(&mut h.root, Node::new(1));
            return self.free_subtree(&root);
        }
        let mut root = std::mem::replace(&mut h.root, Node::new(1));
        self.delete_in_node(&mut root, offset, offset + len)?;
        h.root = root;
        self.normalize_root(h)
    }

    fn storage_pages(&self, h: &ExodusObject) -> Result<u64> {
        let mut pages = 0u64;
        let mut stack = vec![h.root.clone()];
        while let Some(node) = stack.pop() {
            if node.level == 1 {
                pages += node.entries.len() as u64 * self.leaf_pages;
            } else {
                for e in &node.entries {
                    pages += 1;
                    stack.push(self.read_node(e.ptr)?);
                }
            }
        }
        Ok(pages)
    }

    fn io_stats(&self) -> IoStats {
        self.volume.stats()
    }

    fn reset_io(&self) {
        self.volume.reset_stats();
    }
}

enum Slot {
    Done(Entry),
    Pending { page: PageId, node: Node },
}

impl ExodusStore {
    fn delete_in_node(&mut self, node: &mut Node, d0: u64, d1: u64) -> Result<()> {
        let mut slots: Vec<Slot> = Vec::with_capacity(node.entries.len());
        let mut acc = 0u64;
        for e in std::mem::take(&mut node.entries) {
            let (lo, hi) = (acc, acc + e.bytes);
            acc = hi;
            if hi <= d0 || lo >= d1 {
                slots.push(Slot::Done(e));
                continue;
            }
            if node.level == 1 {
                if lo >= d0 && hi <= d1 {
                    self.free_leaf(e.ptr)?;
                    continue;
                }
                // Boundary leaf: cut the range out in place.
                let leaf = self.read_leaf(e.ptr, e.bytes)?;
                let a = d0.saturating_sub(lo) as usize;
                let b = (d1.min(hi) - lo) as usize;
                let mut rest = Vec::with_capacity(leaf.len() - (b - a));
                rest.extend_from_slice(&leaf[..a]);
                rest.extend_from_slice(&leaf[b..]);
                if rest.is_empty() {
                    self.free_leaf(e.ptr)?;
                } else {
                    self.write_leaf(e.ptr, &rest)?;
                    slots.push(Slot::Done(Entry {
                        bytes: rest.len() as u64,
                        ptr: e.ptr,
                    }));
                }
            } else if lo >= d0 && hi <= d1 {
                let child = self.read_node(e.ptr)?;
                self.free_subtree(&child)?;
                self.buddy.free(e.ptr, 1)?;
            } else {
                let mut child = self.read_node(e.ptr)?;
                self.delete_in_node(&mut child, d0.saturating_sub(lo), (d1 - lo).min(e.bytes))?;
                if child.entries.is_empty() {
                    self.buddy.free(e.ptr, 1)?;
                } else {
                    slots.push(Slot::Pending {
                        page: e.ptr,
                        node: child,
                    });
                }
            }
        }

        if node.level == 1 {
            // Merge/rebalance underfull boundary leaves with a sibling
            // leaf in this node.
            self.repair_leaves(&mut slots, d0, d1)?;
        } else {
            self.repair_nodes(&mut slots)?;
        }

        let mut entries = Vec::with_capacity(slots.len());
        for s in slots {
            match s {
                Slot::Done(e) => entries.push(e),
                Slot::Pending { page, node: n } => {
                    entries.extend(self.finalize(page, &n)?);
                }
            }
        }
        node.entries = entries;
        Ok(())
    }

    fn repair_leaves(&mut self, slots: &mut Vec<Slot>, d0: u64, d1: u64) -> Result<()> {
        let min = self.leaf_min();
        let cap = self.leaf_cap() as usize;
        // Only the (at most two) boundary leaves can be underfull; find
        // and fix them.
        let _ = (d0, d1);
        loop {
            let pos = slots.iter().position(|s| match s {
                Slot::Done(e) => e.bytes < min,
                Slot::Pending { .. } => false,
            });
            let Some(i) = pos else { break };
            if slots.len() == 1 {
                break; // nothing to merge with; root collapse handles it
            }
            let j = if i > 0 { i - 1 } else { i + 1 };
            let (a, b) = (i.min(j), i.max(j));
            let (Slot::Done(ea), Slot::Done(eb)) = (&slots[a], &slots[b]) else {
                break;
            };
            let (ea, eb) = (*ea, *eb);
            let left = self.read_leaf(ea.ptr, ea.bytes)?;
            let right = self.read_leaf(eb.ptr, eb.bytes)?;
            let mut combined = left;
            combined.extend_from_slice(&right);
            if combined.len() <= cap {
                self.write_leaf(ea.ptr, &combined)?;
                self.free_leaf(eb.ptr)?;
                slots.remove(b);
                slots[a] = Slot::Done(Entry {
                    bytes: combined.len() as u64,
                    ptr: ea.ptr,
                });
            } else {
                let half = combined.len() / 2;
                self.write_leaf(ea.ptr, &combined[..half])?;
                self.write_leaf(eb.ptr, &combined[half..])?;
                slots[a] = Slot::Done(Entry {
                    bytes: half as u64,
                    ptr: ea.ptr,
                });
                slots[b] = Slot::Done(Entry {
                    bytes: (combined.len() - half) as u64,
                    ptr: eb.ptr,
                });
            }
        }
        Ok(())
    }

    fn repair_nodes(&mut self, slots: &mut Vec<Slot>) -> Result<()> {
        let min = node_min(self.volume.page_size());
        let cap = self.node_cap();
        loop {
            let pos = slots.iter().position(|s| match s {
                Slot::Pending { node, .. } => node.entries.len() < min,
                Slot::Done(_) => false,
            });
            let Some(i) = pos else { break };
            if slots.len() == 1 {
                break;
            }
            let j = if i > 0
                && (i + 1 >= slots.len() || matches!(slots[i - 1], Slot::Pending { .. }))
            {
                i - 1
            } else {
                i + 1
            };
            let (a, b) = (i.min(j), i.max(j));
            let right = self.slot_node(slots.remove(b))?;
            let left = self.slot_node(slots.remove(a))?;
            let level = left.1.level;
            let mut combined = left.1.entries;
            combined.extend(right.1.entries);
            if combined.len() <= cap {
                self.buddy.free(right.0, 1)?;
                slots.insert(
                    a,
                    Slot::Pending {
                        page: left.0,
                        node: Node {
                            level,
                            entries: combined,
                        },
                    },
                );
            } else {
                let halves = split_into(&combined, 2);
                let mut halves = halves.into_iter();
                slots.insert(
                    a,
                    Slot::Pending {
                        page: left.0,
                        node: Node {
                            level,
                            entries: halves.next().unwrap(),
                        },
                    },
                );
                slots.insert(
                    a + 1,
                    Slot::Pending {
                        page: right.0,
                        node: Node {
                            level,
                            entries: halves.next().unwrap(),
                        },
                    },
                );
            }
        }
        Ok(())
    }

    fn slot_node(&self, slot: Slot) -> Result<(PageId, Node)> {
        match slot {
            Slot::Done(e) => Ok((e.ptr, self.read_node(e.ptr)?)),
            Slot::Pending { page, node } => Ok((page, node)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eos_pager::{DiskProfile, MemVolume};

    fn store(leaf_pages: u64) -> ExodusStore {
        let vol = MemVolume::with_profile(256, 4200, DiskProfile::FREE).shared();
        ExodusStore::create(vol, 4, 900, leaf_pages).unwrap()
    }

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 239) as u8).collect()
    }

    #[test]
    fn roundtrip_small_and_large() {
        for leaf_pages in [1u64, 4] {
            let mut s = store(leaf_pages);
            let data = pattern(20_000);
            let h = s.create(&data, false).unwrap();
            assert_eq!(s.read(&h, 0, h.len()).unwrap(), data);
            assert_eq!(s.read(&h, 12_345, 500).unwrap(), &data[12_345..12_845]);
        }
    }

    #[test]
    fn ops_match_model() {
        let mut s = store(2);
        let mut model = pattern(10_000);
        let mut h = s.create(&model, false).unwrap();
        s.insert(&mut h, 3_000, &pattern(1_500)).unwrap();
        model.splice(3_000..3_000, pattern(1_500));
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
        s.delete(&mut h, 500, 6_000).unwrap();
        model.drain(500..6_500);
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
        s.replace(&mut h, 100, &[7u8; 2_000]).unwrap();
        model[100..2_100].copy_from_slice(&[7u8; 2_000]);
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
        s.append(&mut h, &pattern(4_000)).unwrap();
        model.extend(pattern(4_000));
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
    }

    #[test]
    fn deterministic_soak_against_model() {
        let mut s = store(2);
        let mut model = pattern(5_000);
        let mut h = s.create(&model, false).unwrap();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..120 {
            let size = model.len() as u64;
            match next() % 4 {
                0 if model.len() < 40_000 => {
                    let data = pattern((next() % 1200) as usize);
                    let at = if size == 0 { 0 } else { next() % (size + 1) };
                    s.insert(&mut h, at, &data).unwrap();
                    model.splice(at as usize..at as usize, data);
                }
                1 if size > 0 => {
                    let at = next() % size;
                    let len = (next() % 2_000).min(size - at);
                    if len > 0 {
                        s.delete(&mut h, at, len).unwrap();
                        model.drain(at as usize..(at + len) as usize);
                    }
                }
                2 if size > 0 => {
                    let at = next() % size;
                    let len = ((next() % 600).min(size - at)) as usize;
                    let data = pattern(len);
                    s.replace(&mut h, at, &data).unwrap();
                    model[at as usize..at as usize + len].copy_from_slice(&data);
                }
                _ => {
                    if model.len() < 40_000 {
                        let data = pattern((next() % 900) as usize);
                        s.append(&mut h, &data).unwrap();
                        model.extend(data);
                    }
                }
            }
            assert_eq!(s.read(&h, 0, h.len()).unwrap(), model, "step {i}");
        }
    }

    #[test]
    fn leaves_between_half_and_full_after_fresh_create() {
        let mut s = store(4);
        let cap = s.leaf_cap();
        let h = s.create(&pattern(9 * 256 + 77), false).unwrap();
        // Collect leaf entry sizes through the root (height 1 here).
        assert_eq!(h.height(), 1);
        for e in &h.root.entries {
            assert!(e.bytes >= cap / 2 || h.root.entries.len() == 1);
            assert!(e.bytes <= cap);
        }
    }

    #[test]
    fn delete_everything_frees_all_pages() {
        let mut s = store(2);
        let free0 = s.buddy().total_free_pages();
        let mut h = s.create(&pattern(30_000), false).unwrap();
        let len = h.len();
        s.delete(&mut h, 0, len).unwrap();
        assert!(h.is_empty());
        assert_eq!(s.buddy().total_free_pages(), free0);
    }

    #[test]
    fn fixed_leaves_pay_reads_proportional_to_leaf_count() {
        // Small leaves → many extents → many seeks on a long scan.
        let mut small = store(1);
        let mut big = store(8);
        let data = pattern(30_000);
        let hs = small.create(&data, false).unwrap();
        let hb = big.create(&data, false).unwrap();
        small.reset_io();
        big.reset_io();
        let _ = small.read(&hs, 0, hs.len()).unwrap();
        let _ = big.read(&hb, 0, hb.len()).unwrap();
        assert!(
            small.io_stats().read_calls > 4 * big.io_stats().read_calls,
            "1-page leaves: {} calls, 8-page leaves: {} calls",
            small.io_stats().read_calls,
            big.io_stats().read_calls
        );
    }
}
