//! WiSS large objects \[Chou85\], §2 of the paper: objects are stored in
//! *slices* of at most one page, addressed by a one-page directory "of
//! the address and size of each slice" kept as a regular record. "With
//! 4K-byte pages, the directory can accommodate approximately 400
//! slices, which gives an upper limit of 1.6 Megabytes to the object
//! size." Slices are allocated page by page, so logically consecutive
//! slices are scattered on disk — every slice read is its own seek,
//! which is precisely the "loss of sequentiality" §2 criticizes.

use eos_buddy::BuddyManager;
use eos_core::{BlobStore, Error, Result};
use eos_pager::{IoStats, PageId, SharedVolume};

/// Directory entry bytes: an 8-byte slice address + 2-byte length —
/// with 4 KiB pages that allows ⌊4096/10⌋ = 409 slices, matching the
/// paper's "approximately 400".
const DIR_ENTRY_BYTES: usize = 10;

/// A WiSS large-object directory (the "regular small record").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SliceDir {
    /// (page, bytes) per slice; every slice ≤ one page.
    slices: Vec<(PageId, u32)>,
}

impl SliceDir {
    /// Object size in bytes.
    pub fn len(&self) -> u64 {
        self.slices.iter().map(|&(_, b)| b as u64).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Number of slices (for experiments).
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }
}

/// The WiSS-style slice store.
pub struct WissStore {
    volume: SharedVolume,
    buddy: BuddyManager,
}

impl WissStore {
    /// Format the store.
    pub fn create(
        volume: SharedVolume,
        num_spaces: usize,
        pages_per_space: u64,
    ) -> Result<WissStore> {
        let buddy = BuddyManager::create(volume.clone(), num_spaces, pages_per_space)?;
        Ok(WissStore { volume, buddy })
    }

    fn ps(&self) -> usize {
        self.volume.page_size()
    }

    /// Maximum slices the one-page directory can hold.
    pub fn max_slices(&self) -> usize {
        self.ps() / DIR_ENTRY_BYTES
    }

    fn check_dir(&self, slices: usize) -> Result<()> {
        if slices > self.max_slices() {
            return Err(Error::Unsupported {
                op: "grow",
                reason: format!(
                    "object needs {slices} slices; the one-page directory holds {}",
                    self.max_slices()
                ),
            });
        }
        Ok(())
    }

    fn locate(&self, h: &SliceDir, offset: u64) -> (usize, usize) {
        let mut acc = 0u64;
        for (i, &(_, b)) in h.slices.iter().enumerate() {
            if offset < acc + b as u64 {
                return (i, (offset - acc) as usize);
            }
            acc += b as u64;
        }
        panic!("offset {offset} beyond object of {acc} bytes");
    }

    fn read_slice(&self, h: &SliceDir, i: usize) -> Result<Vec<u8>> {
        let (page, bytes) = h.slices[i];
        let buf = self.volume.read_pages(page, 1)?;
        Ok(buf[..bytes as usize].to_vec())
    }

    fn write_slice(&mut self, page: PageId, data: &[u8]) -> Result<()> {
        let mut buf = data.to_vec();
        buf.resize(self.ps(), 0);
        Ok(self.volume.write_pages(page, &buf)?)
    }

    fn alloc_slice(&mut self) -> Result<PageId> {
        Ok(self.buddy.allocate(1)?.start)
    }

    fn bounds(&self, h: &SliceDir, offset: u64, len: u64) -> Result<()> {
        if offset.checked_add(len).is_none_or(|e| e > h.len()) {
            return Err(Error::OutOfObjectBounds {
                offset,
                len,
                object_size: h.len(),
            });
        }
        Ok(())
    }

    /// The buddy manager (experiments).
    pub fn buddy(&self) -> &BuddyManager {
        &self.buddy
    }
}

impl BlobStore for WissStore {
    type Handle = SliceDir;

    fn name(&self) -> &'static str {
        "wiss"
    }

    fn create(&mut self, data: &[u8], _known_size: bool) -> Result<SliceDir> {
        let ps = self.ps();
        self.check_dir(data.len().div_ceil(ps))?;
        let mut h = SliceDir::default();
        for chunk in data.chunks(ps) {
            let page = self.alloc_slice()?;
            self.write_slice(page, chunk)?;
            h.slices.push((page, chunk.len() as u32));
        }
        Ok(h)
    }

    fn size(&self, h: &SliceDir) -> u64 {
        h.len()
    }

    fn read(&self, h: &SliceDir, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.bounds(h, offset, len)?;
        if len == 0 {
            return Ok(Vec::new());
        }
        let (mut i, mut rel) = self.locate(h, offset);
        let mut out = Vec::with_capacity(len as usize);
        let mut remaining = len as usize;
        while remaining > 0 {
            let slice = self.read_slice(h, i)?; // one page, one seek
            let take = (slice.len() - rel).min(remaining);
            out.extend_from_slice(&slice[rel..rel + take]);
            remaining -= take;
            rel = 0;
            i += 1;
        }
        Ok(out)
    }

    fn append(&mut self, h: &mut SliceDir, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let ps = self.ps();
        let mut rest = data;
        // Top up the last slice.
        if let Some(&(page, bytes)) = h.slices.last() {
            if (bytes as usize) < ps {
                let mut slice = self.read_slice(h, h.slices.len() - 1)?;
                let fit = (ps - bytes as usize).min(rest.len());
                slice.extend_from_slice(&rest[..fit]);
                self.write_slice(page, &slice)?;
                h.slices.last_mut().unwrap().1 = slice.len() as u32;
                rest = &rest[fit..];
            }
        }
        self.check_dir(h.slices.len() + rest.len().div_ceil(ps))?;
        for chunk in rest.chunks(ps) {
            let page = self.alloc_slice()?;
            self.write_slice(page, chunk)?;
            h.slices.push((page, chunk.len() as u32));
        }
        Ok(())
    }

    fn replace(&mut self, h: &mut SliceDir, offset: u64, data: &[u8]) -> Result<()> {
        self.bounds(h, offset, data.len() as u64)?;
        let (mut i, mut rel) = self.locate(h, offset);
        let mut src = data;
        while !src.is_empty() {
            let (page, _) = h.slices[i];
            let mut slice = self.read_slice(h, i)?;
            let take = (slice.len() - rel).min(src.len());
            slice[rel..rel + take].copy_from_slice(&src[..take]);
            self.write_slice(page, &slice)?;
            src = &src[take..];
            rel = 0;
            i += 1;
        }
        Ok(())
    }

    fn insert(&mut self, h: &mut SliceDir, offset: u64, data: &[u8]) -> Result<()> {
        let size = h.len();
        if offset > size {
            return Err(Error::OutOfObjectBounds {
                offset,
                len: data.len() as u64,
                object_size: size,
            });
        }
        if data.is_empty() {
            return Ok(());
        }
        if offset == size {
            return self.append(h, data);
        }
        // Record-style insert: splice into the covering slice, splitting
        // it into as many ≤-page slices as needed.
        let ps = self.ps();
        let (i, rel) = self.locate(h, offset);
        let old = self.read_slice(h, i)?;
        let mut combined = Vec::with_capacity(old.len() + data.len());
        combined.extend_from_slice(&old[..rel]);
        combined.extend_from_slice(data);
        combined.extend_from_slice(&old[rel..]);
        let extra = combined.len().div_ceil(ps) - 1;
        self.check_dir(h.slices.len() + extra)?;
        let (page0, _) = h.slices[i];
        let mut new_slices = Vec::new();
        for (k, chunk) in combined.chunks(ps).enumerate() {
            let page = if k == 0 { page0 } else { self.alloc_slice()? };
            self.write_slice(page, chunk)?;
            new_slices.push((page, chunk.len() as u32));
        }
        h.slices.splice(i..i + 1, new_slices);
        Ok(())
    }

    fn delete(&mut self, h: &mut SliceDir, offset: u64, len: u64) -> Result<()> {
        self.bounds(h, offset, len)?;
        if len == 0 {
            return Ok(());
        }
        let (d0, d1) = (offset, offset + len);
        let mut acc = 0u64;
        let mut keep = Vec::with_capacity(h.slices.len());
        for i in 0..h.slices.len() {
            let (page, bytes) = h.slices[i];
            let (lo, hi) = (acc, acc + bytes as u64);
            acc = hi;
            if hi <= d0 || lo >= d1 {
                keep.push((page, bytes));
                continue;
            }
            if lo >= d0 && hi <= d1 {
                // Fully covered: free the page, drop the entry.
                self.buddy.free(page, 1)?;
                continue;
            }
            // Boundary slice: trim in place.
            let slice = self.read_slice(h, i)?;
            let a = d0.saturating_sub(lo) as usize;
            let b = (d1.min(hi) - lo) as usize;
            let mut rest = Vec::with_capacity(slice.len() - (b - a));
            rest.extend_from_slice(&slice[..a]);
            rest.extend_from_slice(&slice[b..]);
            if rest.is_empty() {
                self.buddy.free(page, 1)?;
            } else {
                self.write_slice(page, &rest)?;
                keep.push((page, rest.len() as u32));
            }
        }
        h.slices = keep;
        Ok(())
    }

    fn storage_pages(&self, h: &SliceDir) -> Result<u64> {
        // One page per slice plus the directory page.
        Ok(h.slices.len() as u64 + 1)
    }

    fn io_stats(&self) -> IoStats {
        self.volume.stats()
    }

    fn reset_io(&self) {
        self.volume.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eos_pager::{DiskProfile, MemVolume};

    fn store() -> WissStore {
        let vol = MemVolume::with_profile(256, 1200, DiskProfile::VINTAGE_1992).shared();
        WissStore::create(vol, 1, 900).unwrap()
    }

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 241) as u8).collect()
    }

    #[test]
    fn roundtrip_and_partial_ops() {
        let mut s = store();
        let mut model = pattern(2000);
        let mut h = s.create(&model, false).unwrap();
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
        s.insert(&mut h, 300, b"wedge").unwrap();
        model.splice(300..300, *b"wedge");
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
        s.delete(&mut h, 100, 700).unwrap();
        model.drain(100..800);
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
        s.replace(&mut h, 50, &[3u8; 400]).unwrap();
        model[50..450].copy_from_slice(&[3u8; 400]);
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
    }

    #[test]
    fn every_slice_read_seeks() {
        let mut s = store();
        let h = s.create(&pattern(2560), false).unwrap(); // 10 slices
        s.reset_io();
        let _ = s.read(&h, 0, h.len()).unwrap();
        let io = s.io_stats();
        assert_eq!(io.page_reads, 10);
        // Slices were allocated page-at-a-time; buddy hands them out
        // contiguously at first, so sequential slices may not all seek —
        // but each is still an individual one-page call.
        assert_eq!(io.read_calls, 10);
    }

    #[test]
    fn directory_capacity_is_enforced() {
        let mut s = store();
        // 256-byte pages → 25 slices max → 6400-byte objects.
        assert_eq!(s.max_slices(), 25);
        assert!(s.create(&pattern(6400), false).is_ok());
        assert!(matches!(
            s.create(&pattern(6401), false),
            Err(Error::Unsupported { .. })
        ));
        let mut h = s.create(&pattern(6000), false).unwrap();
        assert!(matches!(
            s.append(&mut h, &pattern(600)),
            Err(Error::Unsupported { .. })
        ));
    }

    #[test]
    fn inserts_fragment_slices() {
        // Repeated inserts split slices: slice count grows well beyond
        // ⌈size/page⌉ — the fragmentation §2 complains about.
        let mut s = store();
        let mut h = s.create(&pattern(2000), false).unwrap();
        for i in 0..8 {
            s.insert(&mut h, (i * 251) % 1800, b"xy").unwrap();
        }
        assert!(h.slice_count() > (h.len() as usize).div_ceil(256));
    }

    #[test]
    fn delete_frees_slices() {
        let mut s = store();
        let free0 = s.buddy().total_free_pages();
        let mut h = s.create(&pattern(4000), false).unwrap();
        let len = h.len();
        s.delete(&mut h, 0, len).unwrap();
        assert!(h.is_empty());
        assert_eq!(s.buddy().total_free_pages(), free0);
    }
}
