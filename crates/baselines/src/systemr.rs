//! System R long fields \[Astr76\], §2 of the paper: "the long field was
//! implemented as a linear linked list of small segments … with the long
//! field descriptor pointing to the head of the list. Partial reads or
//! updates were not supported."
//!
//! We model the list at page granularity: each page holds a next-page
//! pointer and a payload. Locating byte *k* requires chasing the chain —
//! the cost the paper's "rules out solutions based on chaining" remark
//! is about — and every hop is a separate scattered page (one seek
//! each). Byte inserts and deletes are unsupported, exactly as in
//! System R; `append` walks to the tail (the descriptor generously
//! caches the tail pointer).

use eos_buddy::BuddyManager;
use eos_core::{BlobStore, Error, Result};
use eos_pager::{IoStats, PageId, SharedVolume};

const NO_PAGE: u64 = u64::MAX;

/// Descriptor of a chained long field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainField {
    head: PageId,
    tail: PageId,
    len: u64,
    pages: u64,
}

impl ChainField {
    /// Field length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the field holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The System R-style chained long field store.
pub struct SystemRStore {
    volume: SharedVolume,
    buddy: BuddyManager,
}

impl SystemRStore {
    /// Format the store.
    pub fn create(
        volume: SharedVolume,
        num_spaces: usize,
        pages_per_space: u64,
    ) -> Result<SystemRStore> {
        let buddy = BuddyManager::create(volume.clone(), num_spaces, pages_per_space)?;
        Ok(SystemRStore { volume, buddy })
    }

    fn payload(&self) -> usize {
        self.volume.page_size() - 8 // 8-byte next pointer
    }

    fn read_page(&self, page: PageId) -> Result<(PageId, Vec<u8>)> {
        let buf = self.volume.read_pages(page, 1)?;
        let next = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        Ok((next, buf[8..].to_vec()))
    }

    fn write_page(&self, page: PageId, next: PageId, payload: &[u8]) -> Result<()> {
        let mut buf = vec![0u8; self.volume.page_size()];
        buf[0..8].copy_from_slice(&next.to_le_bytes());
        buf[8..8 + payload.len()].copy_from_slice(payload);
        Ok(self.volume.write_pages(page, &buf)?)
    }

    /// Allocate one chain page (pages are allocated one at a time, so
    /// consecutive pages of the field end up scattered).
    fn alloc_page(&mut self) -> Result<PageId> {
        Ok(self.buddy.allocate(1)?.start)
    }

    /// The buddy manager (experiments).
    pub fn buddy(&self) -> &BuddyManager {
        &self.buddy
    }
}

impl BlobStore for SystemRStore {
    type Handle = ChainField;

    fn name(&self) -> &'static str {
        "system-r"
    }

    fn create(&mut self, data: &[u8], _known_size: bool) -> Result<ChainField> {
        let mut h = ChainField {
            head: NO_PAGE,
            tail: NO_PAGE,
            len: 0,
            pages: 0,
        };
        self.append(&mut h, data)?;
        Ok(h)
    }

    fn size(&self, h: &ChainField) -> u64 {
        h.len
    }

    fn read(&self, h: &ChainField, offset: u64, len: u64) -> Result<Vec<u8>> {
        if offset.checked_add(len).is_none_or(|e| e > h.len) {
            return Err(Error::OutOfObjectBounds {
                offset,
                len,
                object_size: h.len,
            });
        }
        if len == 0 {
            return Ok(Vec::new());
        }
        let payload = self.payload() as u64;
        // Chase the chain from the head — no random access.
        let mut page = h.head;
        let mut skip_pages = offset / payload;
        while skip_pages > 0 {
            let (next, _) = self.read_page(page)?;
            page = next;
            skip_pages -= 1;
        }
        let mut rel = (offset % payload) as usize;
        let mut out = Vec::with_capacity(len as usize);
        let mut remaining = len as usize;
        while remaining > 0 {
            let (next, data) = self.read_page(page)?;
            let take = (data.len() - rel).min(remaining);
            out.extend_from_slice(&data[rel..rel + take]);
            remaining -= take;
            rel = 0;
            page = next;
        }
        Ok(out)
    }

    fn append(&mut self, h: &mut ChainField, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let payload = self.payload() as u64;
        let mut rest = data;
        // Top up the tail page.
        if h.tail != NO_PAGE {
            let used = ((h.len - 1) % payload + 1) as usize;
            if used < payload as usize {
                let (next, mut buf) = self.read_page(h.tail)?;
                let fit = (payload as usize - used).min(rest.len());
                buf[used..used + fit].copy_from_slice(&rest[..fit]);
                self.write_page(h.tail, next, &buf)?;
                h.len += fit as u64;
                rest = &rest[fit..];
            }
        }
        while !rest.is_empty() {
            let page = self.alloc_page()?;
            let take = (payload as usize).min(rest.len());
            let mut buf = vec![0u8; payload as usize];
            buf[..take].copy_from_slice(&rest[..take]);
            self.write_page(page, NO_PAGE, &buf)?;
            if h.tail != NO_PAGE {
                // Fix the old tail's next pointer.
                let (_, old) = self.read_page(h.tail)?;
                self.write_page(h.tail, page, &old)?;
            } else {
                h.head = page;
            }
            h.tail = page;
            h.pages += 1;
            h.len += take as u64;
            rest = &rest[take..];
        }
        Ok(())
    }

    fn replace(&mut self, h: &mut ChainField, offset: u64, data: &[u8]) -> Result<()> {
        if offset
            .checked_add(data.len() as u64)
            .is_none_or(|e| e > h.len)
        {
            return Err(Error::OutOfObjectBounds {
                offset,
                len: data.len() as u64,
                object_size: h.len,
            });
        }
        let payload = self.payload() as u64;
        let mut page = h.head;
        let mut skip = offset / payload;
        while skip > 0 {
            let (next, _) = self.read_page(page)?;
            page = next;
            skip -= 1;
        }
        let mut rel = (offset % payload) as usize;
        let mut src = data;
        while !src.is_empty() {
            let (next, mut buf) = self.read_page(page)?;
            let take = (buf.len() - rel).min(src.len());
            buf[rel..rel + take].copy_from_slice(&src[..take]);
            self.write_page(page, next, &buf)?;
            src = &src[take..];
            rel = 0;
            page = next;
        }
        Ok(())
    }

    fn insert(&mut self, _h: &mut ChainField, _offset: u64, _data: &[u8]) -> Result<()> {
        Err(Error::Unsupported {
            op: "insert",
            reason: "System R long fields support no partial updates".into(),
        })
    }

    fn delete(&mut self, h: &mut ChainField, offset: u64, len: u64) -> Result<()> {
        // Only whole-field deletion existed.
        if offset == 0 && len == h.len {
            let mut page = h.head;
            while page != NO_PAGE {
                let (next, _) = self.read_page(page)?;
                self.buddy.free(page, 1)?;
                page = next;
            }
            *h = ChainField {
                head: NO_PAGE,
                tail: NO_PAGE,
                len: 0,
                pages: 0,
            };
            return Ok(());
        }
        Err(Error::Unsupported {
            op: "delete",
            reason: "System R long fields support no partial updates".into(),
        })
    }

    fn storage_pages(&self, h: &ChainField) -> Result<u64> {
        Ok(h.pages)
    }

    fn io_stats(&self) -> IoStats {
        self.volume.stats()
    }

    fn reset_io(&self) {
        self.volume.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eos_pager::{DiskProfile, MemVolume};

    fn store() -> SystemRStore {
        let vol = MemVolume::with_profile(256, 1200, DiskProfile::VINTAGE_1992).shared();
        SystemRStore::create(vol, 1, 900).unwrap()
    }

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 247) as u8).collect()
    }

    #[test]
    fn roundtrip_and_append() {
        let mut s = store();
        let mut model = pattern(3000);
        let mut h = s.create(&model, false).unwrap();
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
        s.append(&mut h, b"more").unwrap();
        model.extend_from_slice(b"more");
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
        assert_eq!(s.read(&h, 2998, 6).unwrap(), &model[2998..3004]);
    }

    #[test]
    fn reads_chase_the_chain() {
        let mut s = store();
        let h = s.create(&pattern(4000), false).unwrap();
        s.reset_io();
        // Reading the last byte walks every page: one seek per hop.
        let _ = s.read(&h, h.len() - 1, 1).unwrap();
        let io = s.io_stats();
        // The chain must be walked page by page: one read call per hop
        // (physically the pages may happen to be contiguous, but they
        // can only be discovered one pointer at a time).
        assert!(io.page_reads >= 16, "chain walk reads: {}", io.page_reads);
        assert!(io.read_calls >= 16, "one call per hop: {}", io.read_calls);
    }

    #[test]
    fn replace_works_partial_updates_do_not() {
        let mut s = store();
        let mut model = pattern(1000);
        let mut h = s.create(&model, false).unwrap();
        s.replace(&mut h, 500, b"zzz").unwrap();
        model[500..503].copy_from_slice(b"zzz");
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
        assert!(matches!(
            s.insert(&mut h, 10, b"x"),
            Err(Error::Unsupported { .. })
        ));
        assert!(matches!(
            s.delete(&mut h, 10, 5),
            Err(Error::Unsupported { .. })
        ));
    }

    #[test]
    fn whole_field_delete_frees_chain() {
        let mut s = store();
        let free0 = s.buddy().total_free_pages();
        let mut h = s.create(&pattern(5000), false).unwrap();
        let len = h.len();
        s.delete(&mut h, 0, len).unwrap();
        assert!(h.is_empty());
        assert_eq!(s.buddy().total_free_pages(), free0);
    }
}
