//! The Starburst long field manager \[Lehm89\], as described in §2 of the
//! paper.
//!
//! * Extent-based allocation organized as a binary buddy system (we use
//!   `eos-buddy` — Starburst is where EOS took the idea from).
//! * Unknown eventual size: "successive segments allocated for storage
//!   double in size until the maximum segment size is reached; then, a
//!   sequence of maximum size segments is used". Known size: maximum
//!   size segments. Either way the last segment is trimmed.
//! * The long field descriptor holds the segment pointers directly (no
//!   tree); it lives with the record, so reads cost no index I/O.
//! * "Starburst does not gracefully handle byte inserts and deletes …
//!   these operations require all segments to the right of and
//!   including the segment on which the update is performed to be
//!   copied into new segments." Implemented with exactly that cost.

use eos_buddy::BuddyManager;
use eos_core::{BlobStore, Error, Result};
use eos_pager::{IoStats, SharedVolume};

/// A long field descriptor: the ordered segments of the field.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LongField {
    /// (first page, byte length) per segment.
    segments: Vec<(u64, u64)>,
    /// Allocated pages of the last segment (≥ its used pages): the
    /// doubling reservation still to be filled by future appends. The
    /// paper trims it "at the end of these multi-append operations";
    /// [`StarburstStore::trim`] does so explicitly, and
    /// [`BlobStore::create`] trims before returning.
    tail_alloc_pages: u64,
}

impl LongField {
    /// Field size in bytes.
    pub fn len(&self) -> u64 {
        self.segments.iter().map(|&(_, b)| b).sum()
    }

    /// True when the field is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Number of segments (for experiments).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

/// The Starburst-style long field store.
pub struct StarburstStore {
    volume: SharedVolume,
    buddy: BuddyManager,
}

impl StarburstStore {
    /// Format `num_spaces` buddy spaces of `pages_per_space` pages.
    pub fn create(
        volume: SharedVolume,
        num_spaces: usize,
        pages_per_space: u64,
    ) -> Result<StarburstStore> {
        let buddy = BuddyManager::create(volume.clone(), num_spaces, pages_per_space)?;
        Ok(StarburstStore { volume, buddy })
    }

    fn ps(&self) -> u64 {
        self.volume.page_size() as u64
    }

    /// Write `data` as a fresh run of segments under the growth policy.
    /// The last segment keeps its full (doubling) reservation — trim it
    /// with [`Self::trim`] when the multi-append phase is over.
    fn write_fresh(&mut self, data: &[u8], known_size: bool, grow_from: u64) -> Result<LongField> {
        let ps = self.ps();
        let max = self.buddy.max_extent_pages();
        let mut field = LongField::default();
        let mut rest = data;
        let mut last_alloc = grow_from;
        while !rest.is_empty() {
            let want = if known_size {
                ((rest.len() as u64).div_ceil(ps)).min(max)
            } else {
                (last_alloc * 2).clamp(1, max)
            };
            let ext = self.buddy.allocate_up_to(want)?;
            last_alloc = ext.pages;
            let take = ((ext.pages * ps) as usize).min(rest.len());
            let (chunk, r) = rest.split_at(take);
            rest = r;
            let used = (take as u64).div_ceil(ps);
            let mut buf = chunk.to_vec();
            buf.resize((used * ps) as usize, 0);
            self.volume.write_pages(ext.start, &buf)?;
            field.segments.push((ext.start, take as u64));
            field.tail_alloc_pages = ext.pages;
        }
        Ok(field)
    }

    /// Give the unused pages at the right end of the last segment back
    /// to the free space ("the last segment is trimmed").
    pub fn trim(&mut self, h: &mut LongField) -> Result<()> {
        let ps = self.ps();
        if let Some(&(start, bytes)) = h.segments.last() {
            let used = bytes.div_ceil(ps);
            if used < h.tail_alloc_pages {
                self.buddy.free(start + used, h.tail_alloc_pages - used)?;
            }
            h.tail_alloc_pages = used;
        }
        Ok(())
    }

    fn free_field(&mut self, h: &LongField) -> Result<()> {
        let ps = self.ps();
        let n = h.segments.len();
        for (i, &(start, bytes)) in h.segments.iter().enumerate() {
            let pages = if i + 1 == n {
                h.tail_alloc_pages.max(bytes.div_ceil(ps))
            } else {
                bytes.div_ceil(ps)
            };
            self.buddy.free(start, pages)?;
        }
        Ok(())
    }

    /// Locate the segment holding byte `offset`.
    fn locate(&self, h: &LongField, offset: u64) -> (usize, u64) {
        let mut acc = 0;
        for (i, &(_, b)) in h.segments.iter().enumerate() {
            if offset < acc + b {
                return (i, offset - acc);
            }
            acc += b;
        }
        panic!("offset {offset} beyond field of {acc} bytes");
    }

    fn bounds(&self, h: &LongField, offset: u64, len: u64) -> Result<()> {
        if offset.checked_add(len).is_none_or(|e| e > h.len()) {
            return Err(Error::OutOfObjectBounds {
                offset,
                len,
                object_size: h.len(),
            });
        }
        Ok(())
    }

    /// Free a run of removed segments whose final entry carried the
    /// tail reservation of `tail_alloc` pages.
    fn free_segments(&mut self, removed: &[(u64, u64)], tail_alloc: u64) -> Result<()> {
        let ps = self.ps();
        let n = removed.len();
        for (i, &(start, bytes)) in removed.iter().enumerate() {
            let pages = if i + 1 == n {
                tail_alloc.max(bytes.div_ceil(ps))
            } else {
                bytes.div_ceil(ps)
            };
            self.buddy.free(start, pages)?;
        }
        Ok(())
    }

    /// The buddy manager (experiments).
    pub fn buddy(&self) -> &BuddyManager {
        &self.buddy
    }
}

impl BlobStore for StarburstStore {
    type Handle = LongField;

    fn name(&self) -> &'static str {
        "starburst"
    }

    fn create(&mut self, data: &[u8], known_size: bool) -> Result<LongField> {
        let mut h = self.write_fresh(data, known_size, 0)?;
        self.trim(&mut h)?;
        Ok(h)
    }

    fn size(&self, h: &LongField) -> u64 {
        h.len()
    }

    fn read(&self, h: &LongField, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.bounds(h, offset, len)?;
        if len == 0 {
            return Ok(Vec::new());
        }
        let ps = self.ps();
        let (mut i, mut rel) = self.locate(h, offset);
        let mut out = Vec::with_capacity(len as usize);
        let mut remaining = len;
        while remaining > 0 {
            let (start, bytes) = h.segments[i];
            let take = (bytes - rel).min(remaining);
            let p0 = rel / ps;
            let p1 = (rel + take - 1) / ps;
            let buf = self.volume.read_pages(start + p0, p1 - p0 + 1)?;
            let skip = (rel - p0 * ps) as usize;
            out.extend_from_slice(&buf[skip..skip + take as usize]);
            remaining -= take;
            i += 1;
            rel = 0;
        }
        Ok(out)
    }

    fn append(&mut self, h: &mut LongField, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let ps = self.ps();
        let mut rest = data;
        // Fill the last segment's reservation in place: the partial page
        // (read-modify-write) and any still-unfilled allocated pages.
        if let Some(&(start, bytes)) = h.segments.last() {
            let cap = h.tail_alloc_pages * ps;
            if bytes < cap {
                let fit = ((cap - bytes) as usize).min(rest.len());
                let p0 = bytes / ps;
                let sm = (bytes % ps) as usize;
                let p1 = (bytes + fit as u64 - 1) / ps;
                let npages = (p1 - p0 + 1) as usize;
                let mut buf = vec![0u8; npages * ps as usize];
                if sm != 0 {
                    let page = self.volume.read_pages(start + p0, 1)?;
                    buf[..ps as usize].copy_from_slice(&page);
                }
                buf[sm..sm + fit].copy_from_slice(&rest[..fit]);
                self.volume.write_pages(start + p0, &buf)?;
                h.segments.last_mut().unwrap().1 += fit as u64;
                rest = &rest[fit..];
            }
        }
        if !rest.is_empty() {
            let grow_from = h.tail_alloc_pages;
            let tail = self.write_fresh(rest, false, grow_from)?;
            h.tail_alloc_pages = tail.tail_alloc_pages;
            h.segments.extend(tail.segments);
        }
        Ok(())
    }

    fn replace(&mut self, h: &mut LongField, offset: u64, data: &[u8]) -> Result<()> {
        self.bounds(h, offset, data.len() as u64)?;
        if data.is_empty() {
            return Ok(());
        }
        let ps = self.ps();
        let (mut i, mut rel) = self.locate(h, offset);
        let mut src = data;
        while !src.is_empty() {
            let (start, bytes) = h.segments[i];
            let take = ((bytes - rel) as usize).min(src.len());
            let p0 = rel / ps;
            let p1 = (rel + take as u64 - 1) / ps;
            let npages = p1 - p0 + 1;
            let mut buf = self.volume.read_pages(start + p0, npages)?;
            let head = (rel - p0 * ps) as usize;
            buf[head..head + take].copy_from_slice(&src[..take]);
            self.volume.write_pages(start + p0, &buf)?;
            src = &src[take..];
            i += 1;
            rel = 0;
        }
        Ok(())
    }

    fn insert(&mut self, h: &mut LongField, offset: u64, data: &[u8]) -> Result<()> {
        let size = h.len();
        if offset > size {
            return Err(Error::OutOfObjectBounds {
                offset,
                len: data.len() as u64,
                object_size: size,
            });
        }
        if data.is_empty() {
            return Ok(());
        }
        if offset == size {
            return self.append(h, data);
        }
        // "All segments to the right of and including the segment on
        // which the update is performed [are] copied into new segments."
        let (i, _) = self.locate(h, offset);
        let seg_start_off: u64 = h.segments[..i].iter().map(|&(_, b)| b).sum();
        let tail = self.read(h, seg_start_off, size - seg_start_off)?;
        let mut new_tail = Vec::with_capacity(tail.len() + data.len());
        let split = (offset - seg_start_off) as usize;
        new_tail.extend_from_slice(&tail[..split]);
        new_tail.extend_from_slice(data);
        new_tail.extend_from_slice(&tail[split..]);
        let removed: Vec<_> = h.segments.drain(i..).collect();
        let old_tail_alloc = h.tail_alloc_pages;
        let mut rewritten = self.write_fresh(&new_tail, true, 0)?;
        self.trim(&mut rewritten)?;
        h.tail_alloc_pages = rewritten.tail_alloc_pages;
        h.segments.extend(rewritten.segments);
        self.free_segments(&removed, old_tail_alloc)?;
        Ok(())
    }

    fn delete(&mut self, h: &mut LongField, offset: u64, len: u64) -> Result<()> {
        self.bounds(h, offset, len)?;
        if len == 0 {
            return Ok(());
        }
        let size = h.len();
        if offset == 0 && len == size {
            self.free_field(&h.clone())?;
            h.segments.clear();
            h.tail_alloc_pages = 0;
            return Ok(());
        }
        let (i, _) = self.locate(h, offset);
        let seg_start_off: u64 = h.segments[..i].iter().map(|&(_, b)| b).sum();
        // Copy everything right of (and including) the touched segment,
        // minus the deleted range.
        let tail = self.read(h, seg_start_off, size - seg_start_off)?;
        let a = (offset - seg_start_off) as usize;
        let b = a + len as usize;
        let mut new_tail = Vec::with_capacity(tail.len() - len as usize);
        new_tail.extend_from_slice(&tail[..a]);
        new_tail.extend_from_slice(&tail[b..]);
        let removed: Vec<_> = h.segments.drain(i..).collect();
        let old_tail_alloc = h.tail_alloc_pages;
        if new_tail.is_empty() {
            // The surviving last segment was never the reserved tail.
            h.tail_alloc_pages = h.segments.last().map_or(0, |&(_, b)| b.div_ceil(self.ps()));
        } else {
            let mut rewritten = self.write_fresh(&new_tail, true, 0)?;
            self.trim(&mut rewritten)?;
            h.tail_alloc_pages = rewritten.tail_alloc_pages;
            h.segments.extend(rewritten.segments);
        }
        self.free_segments(&removed, old_tail_alloc)?;
        Ok(())
    }

    fn storage_pages(&self, h: &LongField) -> Result<u64> {
        let ps = self.ps();
        Ok(h.segments.iter().map(|&(_, b)| b.div_ceil(ps)).sum())
    }

    fn io_stats(&self) -> IoStats {
        self.volume.stats()
    }

    fn reset_io(&self) {
        self.volume.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eos_pager::{DiskProfile, MemVolume};

    fn store() -> StarburstStore {
        let vol = MemVolume::with_profile(256, 2100, DiskProfile::FREE).shared();
        StarburstStore::create(vol, 2, 900).unwrap()
    }

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 249) as u8).collect()
    }

    #[test]
    fn create_known_size_uses_few_segments() {
        let mut s = store();
        let data = pattern(10 * 256);
        let h = s.create(&data, true).unwrap();
        assert_eq!(h.segment_count(), 1);
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), data);
    }

    #[test]
    fn create_unknown_size_doubles() {
        let mut s = store();
        let mut h = s.create(b"", false).unwrap();
        for chunk in pattern(15 * 256).chunks(100) {
            s.append(&mut h, chunk).unwrap();
        }
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), pattern(15 * 256));
        // Far fewer segments than appends.
        assert!(h.segment_count() <= 6, "{}", h.segment_count());
    }

    #[test]
    fn insert_copies_the_tail() {
        let mut s = store();
        let data = pattern(5000);
        let mut h = s.create(&data, true).unwrap();
        s.reset_io();
        s.insert(&mut h, 10, b"XX").unwrap();
        let io = s.io_stats();
        // Essentially the whole object was read and rewritten.
        assert!(io.page_reads >= 19, "reads: {}", io.page_reads);
        assert!(io.page_writes >= 19, "writes: {}", io.page_writes);
        let mut model = data;
        model.splice(10..10, *b"XX");
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
    }

    #[test]
    fn delete_and_replace_match_model() {
        let mut s = store();
        let mut model = pattern(4000);
        let mut h = s.create(&model, false).unwrap();
        s.delete(&mut h, 100, 900).unwrap();
        model.drain(100..1000);
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
        s.replace(&mut h, 50, &[9u8; 500]).unwrap();
        model[50..550].copy_from_slice(&[9u8; 500]);
        assert_eq!(s.read(&h, 0, h.len()).unwrap(), model);
        s.delete(&mut h, 0, model.len() as u64).unwrap();
        assert!(h.is_empty());
    }

    #[test]
    fn no_space_leak_across_rewrites() {
        let mut s = store();
        let free0 = s.buddy().total_free_pages();
        let mut h = s.create(&pattern(3000), false).unwrap();
        for i in 0..10 {
            s.insert(&mut h, (i * 97) % 2000, b"abc").unwrap();
        }
        let len = h.len();
        s.delete(&mut h, 0, len).unwrap();
        assert_eq!(s.buddy().total_free_pages(), free0);
    }

    #[test]
    fn bounds_checked() {
        let mut s = store();
        let mut h = s.create(&pattern(100), true).unwrap();
        assert!(s.read(&h, 90, 11).is_err());
        assert!(s.insert(&mut h, 101, b"x").is_err());
        assert!(s.delete(&mut h, 0, 101).is_err());
        assert!(s.replace(&mut h, 100, b"x").is_err());
    }
}
