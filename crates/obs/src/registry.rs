//! Named instruments: counters, gauges, log2-bucketed histograms.
//!
//! Handles are resolved once (a map lookup under a short registration
//! latch) and then recorded through with pure atomics, so instrumented
//! code can pre-resolve its handles and record while holding its own
//! locks without violating the §4.5 latch discipline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log2 buckets in a [`Histogram`] (covers the full `u64`
/// range: bucket `i` holds values in `[2^i, 2^(i+1))`, zero lands in
/// bucket 0).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing named counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub(crate) fn from_cell(cell: Arc<AtomicU64>) -> Counter {
        Counter(cell)
    }

    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge: a value that can move both ways (e.g. cache
/// occupancy, pending-free backlog).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub(crate) fn from_cell(cell: Arc<AtomicU64>) -> Gauge {
        Gauge(cell)
    }

    /// Overwrite the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Add `n` to the gauge.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` (saturating at zero under a single writer; under
    /// racing writers the subtraction is applied blindly).
    pub fn sub(&self, n: u64) {
        let current = self.0.load(Ordering::Relaxed);
        self.0.store(current.saturating_sub(n), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

pub(crate) struct HistogramInner {
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramInner {
    pub(crate) fn new() -> HistogramInner {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A named histogram with power-of-two buckets, good for size and
/// latency distributions where relative error beats fixed bounds.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    pub(crate) fn from_cell(cell: Arc<HistogramInner>) -> Histogram {
        Histogram(cell)
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

/// `floor(log2(value))`, with 0 mapped to bucket 0.
pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::from_cell(Arc::default());
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::from_cell(Arc::default());
        g.set(10);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 8);
        g.sub(100);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_records_count_sum_and_bucket() {
        let h = Histogram(Arc::new(HistogramInner::new()));
        h.record(0);
        h.record(7);
        h.record(8);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 15);
        assert_eq!(h.0.buckets[0].load(Ordering::Relaxed), 1); // 0
        assert_eq!(h.0.buckets[2].load(Ordering::Relaxed), 1); // 7
        assert_eq!(h.0.buckets[3].load(Ordering::Relaxed), 1); // 8
    }
}
