//! The [`OpSpan`] scope guard — delta-of-snapshots attribution.

use std::time::Instant;

use eos_pager::{IoStats, SharedVolume};

use crate::{saturating_io_delta, Metrics, OpKind};

/// The per-span accounting unit: the fields of an [`IoStats`] delta
/// this crate attributes (calls are folded into seeks/transfers), plus
/// the span's wall clock — carried here so a parent frame can subtract
/// its children's inclusive wall and report an exclusive share.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct IoDelta {
    pub(crate) seeks: u64,
    pub(crate) page_reads: u64,
    pub(crate) page_writes: u64,
    pub(crate) elapsed_us: u64,
    pub(crate) faults: u64,
    pub(crate) wall_ns: u64,
}

impl IoDelta {
    pub(crate) fn from_stats(delta: IoStats) -> IoDelta {
        IoDelta {
            seeks: delta.seeks,
            page_reads: delta.page_reads,
            page_writes: delta.page_writes,
            elapsed_us: delta.elapsed_us,
            faults: delta.faults(),
            wall_ns: 0,
        }
    }

    pub(crate) fn add(&mut self, other: &IoDelta) {
        self.seeks = self.seeks.saturating_add(other.seeks);
        self.page_reads = self.page_reads.saturating_add(other.page_reads);
        self.page_writes = self.page_writes.saturating_add(other.page_writes);
        self.elapsed_us = self.elapsed_us.saturating_add(other.elapsed_us);
        self.faults = self.faults.saturating_add(other.faults);
        self.wall_ns = self.wall_ns.saturating_add(other.wall_ns);
    }

    pub(crate) fn saturating_sub(&self, other: &IoDelta) -> IoDelta {
        IoDelta {
            seeks: self.seeks.saturating_sub(other.seeks),
            page_reads: self.page_reads.saturating_sub(other.page_reads),
            page_writes: self.page_writes.saturating_sub(other.page_writes),
            elapsed_us: self.elapsed_us.saturating_sub(other.elapsed_us),
            faults: self.faults.saturating_sub(other.faults),
            wall_ns: self.wall_ns.saturating_sub(other.wall_ns),
        }
    }
}

/// A scope guard attributing one volume's I/O delta to one [`OpKind`].
///
/// On open the span snapshots `volume.stats()`; on drop it snapshots
/// again and takes the saturating difference — its *inclusive* cost.
/// Spans nest LIFO within a thread: each completed child folds its
/// inclusive cost into the parent's frame, and the parent records only
/// its *exclusive* share (inclusive minus children). Wall time is
/// recorded under **both** conventions: `wall_ns_inclusive` answers
/// "how long did this operation take" (and so double-counts nested
/// spans when summed), `wall_ns_exclusive` subtracts the children's
/// inclusive wall and sums cleanly, like the I/O columns.
///
/// Dropping is atomics-plus-one-short-latch: no volume I/O happens in
/// the drop path beyond the `stats()` counter read.
#[must_use = "an OpSpan attributes I/O only for as long as it is held"]
pub struct OpSpan {
    metrics: Metrics,
    volume: SharedVolume,
    kind: OpKind,
    entry: IoStats,
    started: Instant,
    armed: bool,
}

impl OpSpan {
    pub(crate) fn open(metrics: Metrics, kind: OpKind, volume: SharedVolume) -> OpSpan {
        let armed = metrics.enabled();
        if armed {
            metrics.push_frame();
        }
        OpSpan {
            entry: if armed {
                volume.stats()
            } else {
                IoStats::default()
            },
            started: Instant::now(),
            metrics,
            volume,
            kind,
            armed,
        }
    }

    /// The operation this span attributes to.
    pub fn kind(&self) -> OpKind {
        self.kind
    }
}

impl Drop for OpSpan {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let wall_ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut inclusive =
            IoDelta::from_stats(saturating_io_delta(self.volume.stats(), self.entry));
        inclusive.wall_ns = wall_ns;
        let children = self.metrics.pop_frame(&inclusive);
        // `exclusive.wall_ns` is this span's own wall share: inclusive
        // minus the children's inclusive wall (satellite convention —
        // see `TraceEvent::wall_ns_exclusive`).
        let exclusive = inclusive.saturating_sub(&children);
        self.metrics.record_op(self.kind, &exclusive, wall_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eos_pager::MemVolume;

    #[test]
    fn delta_arithmetic_saturates() {
        let a = IoDelta {
            seeks: 1,
            page_reads: 2,
            page_writes: 3,
            elapsed_us: 4,
            faults: 5,
            wall_ns: 6,
        };
        let mut b = IoDelta::default();
        b.add(&a);
        assert_eq!(b, a);
        assert_eq!(IoDelta::default().saturating_sub(&a), IoDelta::default());
    }

    #[test]
    fn sequential_spans_partition_the_global_delta() {
        let m = Metrics::new();
        let v: SharedVolume = MemVolume::new(128, 64).shared();
        {
            let _s = m.span(OpKind::Create, &v);
            v.write_pages(0, &[7u8; 512]).unwrap();
        }
        {
            let _s = m.span(OpKind::Read, &v);
            v.read_pages(0, 4).unwrap();
        }
        let snap = m.snapshot();
        let global = v.stats();
        assert_eq!(snap.attributed_transfers(), global.transfers());
        assert_eq!(snap.attributed_seeks(), global.seeks);
        assert_eq!(snap.op("create").unwrap().page_writes, 4);
        assert_eq!(snap.op("read").unwrap().page_reads, 4);
    }

    #[test]
    fn wall_time_has_both_conventions_io_is_exclusive() {
        let m = Metrics::new();
        let v: SharedVolume = MemVolume::new(128, 64).shared();
        {
            let _outer = m.span(OpKind::Delete, &v);
            let _inner = m.span(OpKind::WalCommit, &v);
            v.write_pages(0, &[1u8; 128]).unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap.op("delete").unwrap().page_writes, 0);
        assert_eq!(snap.op("wal.commit").unwrap().page_writes, 1);
        assert_eq!(snap.op("delete").unwrap().count, 1);
        // Single-threaded, perfectly nested: the outer span's exclusive
        // wall plus the inner span's inclusive wall reconstructs the
        // outer inclusive wall exactly.
        let outer = snap.op("delete").unwrap();
        let inner = snap.op("wal.commit").unwrap();
        assert!(outer.wall_ns_exclusive <= outer.wall_ns_inclusive);
        assert_eq!(
            outer.wall_ns_exclusive + inner.wall_ns_inclusive,
            outer.wall_ns_inclusive
        );
        // A leaf span has no children: both conventions coincide.
        assert_eq!(inner.wall_ns_exclusive, inner.wall_ns_inclusive);
    }
}
