//! eos-trace — wait-free, thread-aware structured pipeline events.
//!
//! The [`crate::TraceEvent`] ring answers "what did completed spans
//! cost"; this module answers "where did a commit's wall time go". A
//! [`PipeEvent`] is a begin/end/instant mark on a causal timeline: it
//! carries a `trace_id` (the TxnId of a committing scope, or a snapshot
//! pin's epoch with [`PIN_TRACE_BIT`] set), the group-commit `batch_id`
//! linking a leader's phase spans to every follower it retired, a
//! small per-process thread ordinal, and a static phase label
//! (`commit.phase_a`, `wal.force`, `lock.block`, …).
//!
//! Recording follows the trace ring's wait-free design: one atomic
//! sequence allocation picks the slot, each slot has its own tiny
//! latch, overflow overwrites the oldest event. Timestamps are
//! nanoseconds since the owning [`crate::Metrics`] domain was created,
//! so events from different threads order on one clock. DESIGN.md §16
//! documents the schema and the trace_id propagation rules.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::Metrics;

/// Set on `trace_id` when the id is a snapshot-pin epoch rather than a
/// TxnId, so the two id spaces never collide on a timeline.
pub const PIN_TRACE_BIT: u64 = 1 << 63;

/// What a pipeline event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeKind {
    /// A phase opened (matched by an [`PipeKind::End`] with the same
    /// phase label and trace id, later on the timeline).
    Begin,
    /// A phase closed.
    End,
    /// A point event with no duration (frame append, park, wake).
    Instant,
    /// A stall-watchdog firing: the matching phase exceeded the
    /// domain's stall threshold. `ts_ns` is the detection time.
    Stall,
}

impl PipeKind {
    /// Stable label used in dumps (`begin`, `end`, `instant`, `stall`).
    pub fn label(self) -> &'static str {
        match self {
            PipeKind::Begin => "begin",
            PipeKind::End => "end",
            PipeKind::Instant => "instant",
            PipeKind::Stall => "stall",
        }
    }

    /// The Chrome `trace_event` phase code (`B`, `E`, `i`).
    pub fn chrome_ph(self) -> &'static str {
        match self {
            PipeKind::Begin => "B",
            PipeKind::End => "E",
            PipeKind::Instant | PipeKind::Stall => "i",
        }
    }
}

/// One structured pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeEvent {
    /// Global sequence number (0-based, monotonically increasing).
    pub seq: u64,
    /// Nanoseconds since the owning metrics domain was created.
    pub ts_ns: u64,
    /// Begin/end/instant/stall.
    pub kind: PipeKind,
    /// Static phase label (`commit.phase_a`, `wal.force`, …).
    pub phase: &'static str,
    /// TxnId of the scope, or pin epoch with [`PIN_TRACE_BIT`] set;
    /// 0 when the event belongs to no transaction (a checkpoint, say).
    pub trace_id: u64,
    /// Group-commit batch the event belongs to; 0 when unknown or not
    /// applicable (a follower learns its batch id only on retirement).
    pub batch_id: u64,
    /// Small per-process thread ordinal (first use assigns 1, 2, …).
    pub thread: u64,
}

/// Wait-free overwrite-oldest ring of [`PipeEvent`]s — same shape as
/// the completed-span [`crate::TraceEvent`] ring, one rank above it.
pub(crate) struct PipeRing {
    next: AtomicU64,
    // lock-class: slots = obs.pipe rank = 65 io = forbidden
    slots: Vec<Mutex<Option<PipeEvent>>>,
}

impl PipeRing {
    pub(crate) fn new(capacity: usize) -> PipeRing {
        let capacity = capacity.max(1);
        PipeRing {
            next: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (may exceed capacity).
    pub(crate) fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    pub(crate) fn record(&self, mut ev: PipeEvent) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        ev.seq = seq;
        let idx = (seq % self.slots.len() as u64) as usize;
        *self.slots[idx].lock() = Some(ev);
    }

    /// The retained events, oldest first (best-effort consistent under
    /// concurrent writers; ordering restored by `seq`).
    pub(crate) fn events(&self) -> Vec<PipeEvent> {
        let mut out: Vec<PipeEvent> = self.slots.iter().filter_map(|slot| *slot.lock()).collect();
        out.sort_by_key(|ev| ev.seq);
        out
    }
}

/// The per-thread ordinal stamped into [`PipeEvent::thread`]: stable
/// for the thread's lifetime, assigned 1, 2, … on first use.
pub(crate) fn thread_ordinal() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: Cell<u64> = const { Cell::new(0) };
    }
    ORDINAL.with(|cell| {
        let v = cell.get();
        if v != 0 {
            return v;
        }
        let v = NEXT.fetch_add(1, Ordering::Relaxed);
        cell.set(v);
        v
    })
}

/// A scope guard emitting a [`PipeKind::Begin`] on creation and the
/// matching [`PipeKind::End`] on drop, with the stall watchdog applied
/// to the span's wall time. Disabled domains make it a no-op.
#[must_use = "a PipeSpan emits its End event only when dropped"]
pub struct PipeSpan {
    metrics: Metrics,
    phase: &'static str,
    trace_id: u64,
    batch_id: u64,
    started: Instant,
    armed: bool,
}

impl PipeSpan {
    pub(crate) fn open(
        metrics: Metrics,
        phase: &'static str,
        trace_id: u64,
        batch_id: u64,
    ) -> PipeSpan {
        let armed = metrics.enabled();
        if armed {
            metrics.pipe_event(PipeKind::Begin, phase, trace_id, batch_id);
        }
        PipeSpan {
            metrics,
            phase,
            trace_id,
            batch_id,
            started: Instant::now(),
            armed,
        }
    }
}

impl Drop for PipeSpan {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.metrics
            .pipe_event(PipeKind::End, self.phase, self.trace_id, self.batch_id);
        let wall_ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.metrics
            .check_stall(self.phase, self.trace_id, self.batch_id, wall_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(phase: &'static str) -> PipeEvent {
        PipeEvent {
            seq: 0,
            ts_ns: 1,
            kind: PipeKind::Instant,
            phase,
            trace_id: 7,
            batch_id: 3,
            thread: 1,
        }
    }

    #[test]
    fn ring_retains_most_recent_on_overflow() {
        let ring = PipeRing::new(4);
        for _ in 0..9 {
            ring.record(ev("commit.phase_a"));
        }
        assert_eq!(ring.recorded(), 9);
        let seqs: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7, 8]);
    }

    #[test]
    fn thread_ordinals_are_stable_and_distinct() {
        let here = thread_ordinal();
        assert_eq!(here, thread_ordinal());
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(here, 0);
        assert_ne!(other, 0);
        assert_ne!(here, other);
    }

    #[test]
    fn kind_labels_and_chrome_phases() {
        assert_eq!(PipeKind::Begin.label(), "begin");
        assert_eq!(PipeKind::Begin.chrome_ph(), "B");
        assert_eq!(PipeKind::End.chrome_ph(), "E");
        assert_eq!(PipeKind::Instant.chrome_ph(), "i");
        assert_eq!(PipeKind::Stall.label(), "stall");
        assert_eq!(PipeKind::Stall.chrome_ph(), "i");
    }
}
