//! # eos-obs — per-operation cost attribution for the EOS stack
//!
//! The paper states every cost in observable units — §4.2 quotes "3
//! disk seeks plus the cost to transfer 6 pages" for a search, and the
//! §5 evaluation is entirely seek/transfer tables — but a raw
//! [`IoStats`] snapshot is *volume-global*: it cannot say which logical
//! operation paid for which I/O. This crate closes that gap in the
//! house style (hand-rolled, zero external dependencies, like
//! `eos-check` and `eos-lint`):
//!
//! * [`Metrics`] — a shareable registry of named atomic
//!   [`Counter`]s, [`Gauge`]s and log2-bucketed [`Histogram`]s, plus a
//!   fixed table of per-operation I/O aggregates.
//! * [`OpSpan`] — a scope guard that snapshots the volume's
//!   [`IoStats`] at entry and exit and attributes the *delta* (seeks,
//!   page reads/writes, simulated µs, faults) plus wall time to one
//!   [`OpKind`]. Spans nest: a child's I/O is subtracted from its
//!   parent, so summing the per-op attributed transfers over a
//!   single-threaded workload reproduces the volume-global delta
//!   exactly (see `tests/paper_costs.rs` at the workspace root).
//! * [`TraceEvent`] ring — a fixed-capacity buffer of the most recent
//!   span completions for post-mortem dumps (`eos stats --trace`).
//! * [`PipeEvent`] ring (eos-trace, DESIGN.md §16) — wait-free
//!   begin/end/instant events carrying a trace id, batch id, thread
//!   ordinal and phase label, for causal timelines of the concurrent
//!   commit pipeline (`eos trace summary|export|dump`), plus the
//!   flight recorder ([`Metrics::flight_dump`]) and a stall watchdog.
//!
//! All recording paths are atomics-only; the few `parking_lot` locks
//! (registry maps, the span stack, ring slots) guard pure in-memory
//! state and are never held across volume I/O, which `eos-lint`'s L3
//! rule enforces for this crate. Overhead is documented in DESIGN.md
//! §11 (<2% on the `compare` bench with metrics on) and §16 for the
//! pipeline events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flight;
mod registry;
mod snapshot;
mod span;
mod trace;
mod tracer;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use eos_pager::{IoStats, SharedVolume};
use parking_lot::Mutex;

pub use flight::{chrome_trace_json, install_flight_panic_hook, pipe_doc_json, FLIGHT_PATH_ENV};
pub use registry::{Counter, Gauge, Histogram};
pub use snapshot::{render_trace, HistogramSnapshot, MetricsSnapshot, OpSnapshot};
pub use span::OpSpan;
pub use trace::TraceEvent;
pub use tracer::{PipeEvent, PipeKind, PipeSpan, PIN_TRACE_BIT};

use registry::HistogramInner;
use span::IoDelta;
use trace::TraceRing;
use tracer::{thread_ordinal, PipeRing};

/// The logical operations I/O can be attributed to.
///
/// These are the entry points of the object manager plus the three
/// "infrastructure" operations (WAL commit/checkpoint and restart
/// recovery) whose I/O would otherwise pollute the per-op numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `ObjectStore::create_with` — initial object load.
    Create,
    /// `ObjectStore::append` / a public append session.
    Append,
    /// `ObjectStore::read` / `read_all`.
    Read,
    /// `ObjectStore::replace` — in-place overwrite.
    Replace,
    /// `ObjectStore::insert` — mid-object byte insertion.
    Insert,
    /// `ObjectStore::delete` / `truncate` / `delete_object`.
    Delete,
    /// Whole-object compaction (`ObjectStore::compact`); local §4.4
    /// reshuffles stay attributed to the insert/delete that triggered
    /// them and are tracked by the `reshuffle.*` counters instead.
    Reshuffle,
    /// Transaction commit: log frames, data-before-log syncs, deferred
    /// frees published at commit.
    WalCommit,
    /// WAL checkpoint (half-flip + superblock publication).
    WalCheckpoint,
    /// Restart recovery inside `ObjectStore::open_durable`.
    Recovery,
}

impl OpKind {
    /// Every kind, in display order.
    pub const ALL: [OpKind; 10] = [
        OpKind::Create,
        OpKind::Append,
        OpKind::Read,
        OpKind::Replace,
        OpKind::Insert,
        OpKind::Delete,
        OpKind::Reshuffle,
        OpKind::WalCommit,
        OpKind::WalCheckpoint,
        OpKind::Recovery,
    ];

    /// Stable label used in tables, JSON and trace events.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::Append => "append",
            OpKind::Read => "read",
            OpKind::Replace => "replace",
            OpKind::Insert => "insert",
            OpKind::Delete => "delete",
            OpKind::Reshuffle => "reshuffle",
            OpKind::WalCommit => "wal.commit",
            OpKind::WalCheckpoint => "wal.checkpoint",
            OpKind::Recovery => "recovery",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Per-operation atomic aggregates (one row of the fixed op table).
#[derive(Default)]
pub(crate) struct OpAgg {
    pub(crate) count: AtomicU64,
    pub(crate) seeks: AtomicU64,
    pub(crate) page_reads: AtomicU64,
    pub(crate) page_writes: AtomicU64,
    pub(crate) elapsed_us: AtomicU64,
    pub(crate) faults: AtomicU64,
    pub(crate) wall_ns_inclusive: AtomicU64,
    pub(crate) wall_ns_exclusive: AtomicU64,
}

pub(crate) struct OpTable {
    aggs: [OpAgg; OpKind::ALL.len()],
}

impl OpTable {
    fn new() -> Self {
        OpTable {
            aggs: std::array::from_fn(|_| OpAgg::default()),
        }
    }

    pub(crate) fn agg(&self, kind: OpKind) -> &OpAgg {
        &self.aggs[kind.index()]
    }
}

/// Default capacity of the trace ring (events retained for a dump).
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// Default capacity of the pipeline-event ring (eos-trace, §16).
pub const DEFAULT_PIPE_CAPACITY: usize = 4096;

/// Default stall-watchdog threshold: a phase or lock wait longer than
/// this many microseconds records a [`PipeKind::Stall`] event and bumps
/// the `trace.stalls` counter. Override per domain with
/// [`Metrics::set_stall_threshold_us`], or for [`global`] with the
/// `EOS_TRACE_STALL_US` environment variable.
pub const DEFAULT_STALL_THRESHOLD_US: u64 = 100_000;

struct Inner {
    enabled: AtomicBool,
    /// Domain birth instant — the zero point of [`PipeEvent::ts_ns`].
    born: Instant,
    ops: OpTable,
    // lock-class: counters = obs.counters rank = 60 io = forbidden
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    // lock-class: gauges = obs.gauges rank = 61 io = forbidden
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    // lock-class: histograms = obs.histograms rank = 62 io = forbidden
    histograms: Mutex<BTreeMap<String, Arc<HistogramInner>>>,
    /// One frame per live span (LIFO); each frame accumulates the
    /// *inclusive* I/O of completed child spans so the parent can
    /// report its own exclusive share.
    // lock-class: stack = obs.stack rank = 63 io = forbidden
    stack: Mutex<Vec<IoDelta>>,
    ring: TraceRing,
    pipe: PipeRing,
    /// Stall-watchdog threshold in µs (0 disables the watchdog).
    stall_threshold_us: AtomicU64,
}

/// A shareable handle to one metrics domain.
///
/// Cloning is cheap (an `Arc` bump); every [`ObjectStore`] gets its own
/// fresh `Metrics` so tests stay isolated, while the CLI threads
/// [`global()`] through every store it opens so counts accumulate
/// across subcommands within one process.
///
/// [`ObjectStore`]: https://docs.rs/eos-core
#[derive(Clone)]
pub struct Metrics {
    inner: Arc<Inner>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// A fresh, enabled metrics domain with the default trace capacity.
    pub fn new() -> Metrics {
        Metrics::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A fresh, enabled metrics domain retaining up to `capacity` trace
    /// events (clamped to at least 1) and the default pipeline-event
    /// capacity.
    pub fn with_trace_capacity(capacity: usize) -> Metrics {
        Metrics::with_capacities(capacity, DEFAULT_PIPE_CAPACITY)
    }

    /// A fresh, enabled metrics domain with explicit trace-ring and
    /// pipeline-ring capacities (each clamped to at least 1).
    pub fn with_capacities(trace_capacity: usize, pipe_capacity: usize) -> Metrics {
        Metrics {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                born: Instant::now(),
                ops: OpTable::new(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                stack: Mutex::new(Vec::new()),
                ring: TraceRing::new(trace_capacity),
                pipe: PipeRing::new(pipe_capacity),
                stall_threshold_us: AtomicU64::new(DEFAULT_STALL_THRESHOLD_US),
            }),
        }
    }

    /// Turn recording on or off. Disabled spans skip the entry/exit
    /// stats snapshots entirely, which is what the DESIGN.md §11
    /// overhead measurement toggles.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is recording currently enabled?
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Do these two handles share one domain?
    pub fn same_domain(&self, other: &Metrics) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Open a span attributing `volume`'s I/O delta to `kind` until the
    /// returned guard drops. See [`OpSpan`] for the nesting rules.
    pub fn span(&self, kind: OpKind, volume: &SharedVolume) -> OpSpan {
        OpSpan::open(self.clone(), kind, volume.clone())
    }

    /// Named monotonic counter (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock();
        Counter::from_cell(map.entry(name.to_string()).or_default().clone())
    }

    /// Named gauge (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock();
        Gauge::from_cell(map.entry(name.to_string()).or_default().clone())
    }

    /// Named log2-bucketed histogram (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock();
        Histogram::from_cell(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(HistogramInner::new()))
                .clone(),
        )
    }

    /// Point-in-time copy of every aggregate in this domain.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let ops = OpKind::ALL
            .iter()
            .map(|&kind| OpSnapshot::load(kind.label(), self.inner.ops.agg(kind)))
            .collect();
        let (counters, gauges, histograms) = {
            let counters_g = self.inner.counters.lock();
            // lint: allow(latch, reason = "registry maps guard pure in-memory atomics; holding all three yields one consistent snapshot and no volume I/O ever happens under them")
            let gauges_g = self.inner.gauges.lock();
            // lint: allow(latch, reason = "third registry map of the same pure in-memory snapshot; still no volume I/O under any guard")
            let hists_g = self.inner.histograms.lock();
            (
                counters_g
                    .iter()
                    .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                    .collect(),
                gauges_g
                    .iter()
                    .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                    .collect(),
                hists_g
                    .iter()
                    .map(|(k, v)| HistogramSnapshot::load(k, v))
                    .collect(),
            )
        };
        MetricsSnapshot {
            ops,
            counters,
            gauges,
            histograms,
            trace_recorded: self.inner.ring.recorded(),
            trace_capacity: self.inner.ring.capacity() as u64,
            pipe_recorded: self.inner.pipe.recorded(),
            pipe_capacity: self.inner.pipe.capacity() as u64,
        }
    }

    /// The retained trace events, oldest first.
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.inner.ring.events()
    }

    // ---- eos-trace: structured pipeline events (DESIGN.md §16) -----------

    /// Nanoseconds since this domain was created — the timebase of
    /// every [`PipeEvent::ts_ns`], shared across threads.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.born.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Record one pipeline event stamped "now" on the current thread.
    /// No-op when the domain is disabled.
    pub fn pipe_event(&self, kind: PipeKind, phase: &'static str, trace_id: u64, batch_id: u64) {
        if !self.enabled() {
            return;
        }
        self.pipe_event_at(self.now_ns(), kind, phase, trace_id, batch_id);
    }

    /// Record one pipeline event with an explicit timestamp — how the
    /// group-commit leader emits Phase A–D spans sharing exact
    /// boundary instants (phase N's end *is* phase N+1's begin, so the
    /// timeline is contiguous by construction).
    pub fn pipe_event_at(
        &self,
        ts_ns: u64,
        kind: PipeKind,
        phase: &'static str,
        trace_id: u64,
        batch_id: u64,
    ) {
        if !self.enabled() {
            return;
        }
        self.inner.pipe.record(PipeEvent {
            seq: 0,
            ts_ns,
            kind,
            phase,
            trace_id,
            batch_id,
            thread: thread_ordinal(),
        });
    }

    /// Open a begin/end span on the pipeline timeline; the guard's
    /// drop emits the end event and applies the stall watchdog.
    pub fn pipe_span(&self, phase: &'static str, trace_id: u64, batch_id: u64) -> PipeSpan {
        PipeSpan::open(self.clone(), phase, trace_id, batch_id)
    }

    /// The retained pipeline events, oldest first.
    pub fn pipe_events(&self) -> Vec<PipeEvent> {
        self.inner.pipe.events()
    }

    /// Pipeline events recorded since creation (may exceed capacity).
    pub fn pipe_recorded(&self) -> u64 {
        self.inner.pipe.recorded()
    }

    /// Pipeline ring capacity.
    pub fn pipe_capacity(&self) -> usize {
        self.inner.pipe.capacity()
    }

    /// The stall-watchdog threshold in microseconds (0 = off).
    pub fn stall_threshold_us(&self) -> u64 {
        self.inner.stall_threshold_us.load(Ordering::Relaxed)
    }

    /// Set the stall-watchdog threshold in microseconds (0 disables).
    pub fn set_stall_threshold_us(&self, us: u64) {
        self.inner.stall_threshold_us.store(us, Ordering::Relaxed);
    }

    /// Apply the stall watchdog to a measured wall time: past the
    /// threshold, record a [`PipeKind::Stall`] event for `phase` and
    /// bump the `trace.stalls` counter. Returns whether it fired.
    pub fn check_stall(
        &self,
        phase: &'static str,
        trace_id: u64,
        batch_id: u64,
        wall_ns: u64,
    ) -> bool {
        let threshold_us = self.stall_threshold_us();
        if !self.enabled() || threshold_us == 0 || wall_ns / 1000 < threshold_us {
            return false;
        }
        self.pipe_event(PipeKind::Stall, phase, trace_id, batch_id);
        self.counter("trace.stalls").inc();
        true
    }

    pub(crate) fn push_frame(&self) {
        self.inner.stack.lock().push(IoDelta::default());
    }

    /// Close the current frame: pop it, fold this span's *inclusive*
    /// delta into the parent frame (if any), and return the children's
    /// accumulated inclusive I/O.
    pub(crate) fn pop_frame(&self, inclusive: &IoDelta) -> IoDelta {
        let mut stack = self.inner.stack.lock();
        let children = stack.pop().unwrap_or_default();
        if let Some(parent) = stack.last_mut() {
            parent.add(inclusive);
        }
        children
    }

    pub(crate) fn record_op(&self, kind: OpKind, exclusive: &IoDelta, wall_ns: u64) {
        let agg = self.inner.ops.agg(kind);
        agg.count.fetch_add(1, Ordering::Relaxed);
        agg.seeks.fetch_add(exclusive.seeks, Ordering::Relaxed);
        agg.page_reads
            .fetch_add(exclusive.page_reads, Ordering::Relaxed);
        agg.page_writes
            .fetch_add(exclusive.page_writes, Ordering::Relaxed);
        agg.elapsed_us
            .fetch_add(exclusive.elapsed_us, Ordering::Relaxed);
        agg.faults.fetch_add(exclusive.faults, Ordering::Relaxed);
        agg.wall_ns_inclusive.fetch_add(wall_ns, Ordering::Relaxed);
        agg.wall_ns_exclusive
            .fetch_add(exclusive.wall_ns, Ordering::Relaxed);
        self.inner.ring.record(trace::TraceEvent {
            seq: 0,
            op: kind.label(),
            seeks: exclusive.seeks,
            page_reads: exclusive.page_reads,
            page_writes: exclusive.page_writes,
            elapsed_us: exclusive.elapsed_us,
            wall_ns_inclusive: wall_ns,
            wall_ns_exclusive: exclusive.wall_ns,
        });
    }
}

/// The process-global metrics domain used by the `eos` CLI, so counts
/// accumulate across subcommand invocations within one process.
///
/// Setting `EOS_OBS_DISABLED=1` in the environment starts the domain
/// disabled — the hook DESIGN.md §11's overhead measurement uses to
/// run an experiment binary with span recording off.
pub fn global() -> &'static Metrics {
    static GLOBAL: OnceLock<Metrics> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let m = Metrics::new();
        if std::env::var_os("EOS_OBS_DISABLED").is_some_and(|v| v == "1") {
            m.set_enabled(false);
        }
        if let Some(us) = std::env::var("EOS_TRACE_STALL_US")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            m.set_stall_threshold_us(us);
        }
        m
    })
}

/// Saturating per-field difference `now - entry` of two [`IoStats`]
/// snapshots. Saturating because `reset_stats` may race a live span;
/// attribution then loses that span's I/O instead of panicking.
pub fn saturating_io_delta(now: IoStats, entry: IoStats) -> IoStats {
    IoStats {
        seeks: now.seeks.saturating_sub(entry.seeks),
        page_reads: now.page_reads.saturating_sub(entry.page_reads),
        page_writes: now.page_writes.saturating_sub(entry.page_writes),
        read_calls: now.read_calls.saturating_sub(entry.read_calls),
        write_calls: now.write_calls.saturating_sub(entry.write_calls),
        elapsed_us: now.elapsed_us.saturating_sub(entry.elapsed_us),
        read_faults: now.read_faults.saturating_sub(entry.read_faults),
        write_faults: now.write_faults.saturating_sub(entry.write_faults),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eos_pager::MemVolume;

    fn vol() -> SharedVolume {
        MemVolume::new(128, 256).shared()
    }

    #[test]
    fn span_attributes_io_to_its_op() {
        let m = Metrics::new();
        let v = vol();
        {
            let _s = m.span(OpKind::Read, &v);
            v.read_pages(0, 3).unwrap();
        }
        let snap = m.snapshot();
        let read = snap.op("read").unwrap();
        assert_eq!(read.count, 1);
        assert_eq!(read.page_reads, 3);
        assert_eq!(read.page_writes, 0);
        assert!(read.seeks >= 1);
        assert_eq!(snap.op("append").unwrap().count, 0);
    }

    #[test]
    fn nested_spans_attribute_exclusively() {
        let m = Metrics::new();
        let v = vol();
        {
            let _outer = m.span(OpKind::Insert, &v);
            v.write_pages(0, &[1u8; 128]).unwrap();
            {
                let _inner = m.span(OpKind::WalCommit, &v);
                v.write_pages(10, &[2u8; 256]).unwrap();
            }
            v.write_pages(20, &[3u8; 128]).unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap.op("insert").unwrap().page_writes, 2);
        assert_eq!(snap.op("wal.commit").unwrap().page_writes, 2);
        // Exclusive attribution sums back to the global delta.
        assert_eq!(snap.attributed_transfers(), v.stats().transfers());
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let m = Metrics::new();
        m.set_enabled(false);
        assert!(!m.enabled());
        let v = vol();
        {
            let _s = m.span(OpKind::Read, &v);
            v.read_pages(0, 2).unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap.op("read").unwrap().count, 0);
        assert_eq!(snap.trace_recorded, 0);
    }

    #[test]
    fn registry_handles_are_shared_by_name() {
        let m = Metrics::new();
        m.counter("x").add(2);
        m.counter("x").add(3);
        m.gauge("g").set(7);
        m.histogram("h").record(5);
        m.histogram("h").record(900);
        let snap = m.snapshot();
        assert_eq!(snap.counter("x"), Some(5));
        assert_eq!(snap.gauge("g"), Some(7));
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 905);
    }

    #[test]
    fn saturating_delta_survives_reset() {
        let entry = IoStats {
            seeks: 10,
            page_reads: 10,
            ..IoStats::default()
        };
        let now = IoStats::default(); // reset_stats happened mid-span
        let d = saturating_io_delta(now, entry);
        assert_eq!(d.seeks, 0);
        assert_eq!(d.page_reads, 0);
    }

    #[test]
    fn global_is_one_domain() {
        assert!(global().same_domain(&global().clone()));
    }

    #[test]
    fn pipe_span_emits_matched_events_on_one_timeline() {
        let m = Metrics::new();
        {
            let _s = m.pipe_span("commit.phase_a", 7, 2);
        }
        let events = m.pipe_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, PipeKind::Begin);
        assert_eq!(events[1].kind, PipeKind::End);
        assert_eq!(events[0].phase, "commit.phase_a");
        assert_eq!(events[0].trace_id, 7);
        assert_eq!(events[1].batch_id, 2);
        assert_eq!(events[0].thread, events[1].thread);
        assert!(events[0].ts_ns <= events[1].ts_ns);
        let snap = m.snapshot();
        assert_eq!(snap.pipe_recorded, 2);
        assert_eq!(snap.pipe_capacity, DEFAULT_PIPE_CAPACITY as u64);
    }

    #[test]
    fn disabled_domain_records_no_pipe_events() {
        let m = Metrics::new();
        m.set_enabled(false);
        m.pipe_event(PipeKind::Instant, "wal.frame", 1, 0);
        {
            let _s = m.pipe_span("commit.phase_b", 1, 1);
        }
        assert_eq!(m.pipe_recorded(), 0);
    }

    #[test]
    fn stall_watchdog_fires_past_threshold_only() {
        let m = Metrics::new();
        assert_eq!(m.stall_threshold_us(), DEFAULT_STALL_THRESHOLD_US);
        m.set_stall_threshold_us(1000);
        assert!(!m.check_stall("commit.phase_c", 3, 1, 999_000));
        assert!(m.check_stall("commit.phase_c", 3, 1, 1_000_000));
        let events = m.pipe_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, PipeKind::Stall);
        assert_eq!(m.snapshot().counter("trace.stalls"), Some(1));
        // Threshold 0 disables the watchdog entirely.
        m.set_stall_threshold_us(0);
        assert!(!m.check_stall("commit.phase_c", 3, 1, u64::MAX));
    }

    #[test]
    fn explicit_timestamps_make_contiguous_phases() {
        let m = Metrics::new();
        let t0 = m.now_ns();
        let t1 = t0 + 10;
        m.pipe_event_at(t0, PipeKind::Begin, "commit.phase_a", 1, 1);
        m.pipe_event_at(t1, PipeKind::End, "commit.phase_a", 1, 1);
        m.pipe_event_at(t1, PipeKind::Begin, "commit.phase_b", 1, 1);
        let events = m.pipe_events();
        assert_eq!(events[1].ts_ns, events[2].ts_ns);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = OpKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec![
                "create",
                "append",
                "read",
                "replace",
                "insert",
                "delete",
                "reshuffle",
                "wal.commit",
                "wal.checkpoint",
                "recovery"
            ]
        );
    }
}
