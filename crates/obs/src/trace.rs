//! Fixed-capacity ring of completed-span trace events.
//!
//! The ring is wait-free for writers on the hot path: a single atomic
//! sequence allocation picks the slot, and each slot has its own tiny
//! latch so concurrent writers never contend on a shared guard. On
//! overflow the oldest event is overwritten — post-mortem dumps always
//! show the *most recent* `capacity` completions, and the snapshot's
//! `trace_recorded` count says how many were recorded in total (so a
//! reader can tell that `recorded - capacity` events were dropped).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// One completed span, as retained for post-mortem dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (0-based, monotonically increasing).
    pub seq: u64,
    /// The operation label (see [`crate::OpKind::label`]).
    pub op: &'static str,
    /// Seeks attributed exclusively to this span.
    pub seeks: u64,
    /// Pages read, exclusive.
    pub page_reads: u64,
    /// Pages written, exclusive.
    pub page_writes: u64,
    /// Simulated microseconds, exclusive.
    pub elapsed_us: u64,
    /// Wall-clock nanoseconds **inclusive** of child spans — "how long
    /// did the caller wait". Note the convention differs from the I/O
    /// fields above, which are exclusive; use
    /// [`TraceEvent::wall_ns_exclusive`] when summing rows so nested
    /// spans are not double-counted.
    pub wall_ns_inclusive: u64,
    /// Wall-clock nanoseconds **exclusive** of child spans (inclusive
    /// minus the children's inclusive wall) — the same convention as
    /// the I/O fields, safe to sum across rows.
    pub wall_ns_exclusive: u64,
}

pub(crate) struct TraceRing {
    next: AtomicU64,
    // lock-class: slots = obs.trace rank = 64 io = forbidden
    slots: Vec<Mutex<Option<TraceEvent>>>,
}

impl TraceRing {
    pub(crate) fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            next: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (may exceed capacity).
    pub(crate) fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    pub(crate) fn record(&self, mut ev: TraceEvent) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        ev.seq = seq;
        let idx = (seq % self.slots.len() as u64) as usize;
        *self.slots[idx].lock() = Some(ev);
    }

    /// The retained events, oldest first. Under concurrent writers the
    /// result is a best-effort consistent view (each slot is read
    /// atomically; ordering is restored by `seq`).
    pub(crate) fn events(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self.slots.iter().filter_map(|slot| *slot.lock()).collect();
        out.sort_by_key(|ev| ev.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: &'static str) -> TraceEvent {
        TraceEvent {
            seq: 0,
            op,
            seeks: 1,
            page_reads: 2,
            page_writes: 3,
            elapsed_us: 4,
            wall_ns_inclusive: 5,
            wall_ns_exclusive: 5,
        }
    }

    #[test]
    fn retains_most_recent_on_overflow() {
        let ring = TraceRing::new(4);
        for _ in 0..10 {
            ring.record(ev("read"));
        }
        assert_eq!(ring.recorded(), 10);
        let events = ring.events();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = TraceRing::new(0);
        ring.record(ev("append"));
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.events().len(), 1);
    }

    #[test]
    fn events_come_back_oldest_first() {
        let ring = TraceRing::new(8);
        ring.record(ev("create"));
        ring.record(ev("read"));
        let events = ring.events();
        assert_eq!(events[0].op, "create");
        assert_eq!(events[1].op, "read");
    }
}
