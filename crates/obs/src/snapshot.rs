//! Point-in-time snapshots and their three renderings: human table,
//! JSON (the `metrics` payload of the shared report envelope), and
//! Prometheus text exposition.

use crate::registry::{HistogramInner, HISTOGRAM_BUCKETS};
use crate::trace::TraceEvent;
use crate::OpAgg;
use std::sync::atomic::Ordering;

/// One operation row of a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Stable operation label (`create`, `wal.commit`, …).
    pub op: &'static str,
    /// Completed spans.
    pub count: u64,
    /// Seeks attributed exclusively to this operation.
    pub seeks: u64,
    /// Pages read, exclusive.
    pub page_reads: u64,
    /// Pages written, exclusive.
    pub page_writes: u64,
    /// Simulated microseconds, exclusive.
    pub elapsed_us: u64,
    /// Injected faults observed, exclusive.
    pub faults: u64,
    /// Wall-clock nanoseconds **inclusive** of child spans — unlike
    /// the I/O fields above, which are exclusive. Summing this column
    /// double-counts nested spans; see
    /// [`OpSnapshot::wall_ns_exclusive`].
    pub wall_ns_inclusive: u64,
    /// Wall-clock nanoseconds **exclusive** of child spans — the same
    /// convention as the I/O fields, safe to sum across rows.
    pub wall_ns_exclusive: u64,
}

impl OpSnapshot {
    pub(crate) fn load(op: &'static str, agg: &OpAgg) -> OpSnapshot {
        OpSnapshot {
            op,
            count: agg.count.load(Ordering::Relaxed),
            seeks: agg.seeks.load(Ordering::Relaxed),
            page_reads: agg.page_reads.load(Ordering::Relaxed),
            page_writes: agg.page_writes.load(Ordering::Relaxed),
            elapsed_us: agg.elapsed_us.load(Ordering::Relaxed),
            faults: agg.faults.load(Ordering::Relaxed),
            wall_ns_inclusive: agg.wall_ns_inclusive.load(Ordering::Relaxed),
            wall_ns_exclusive: agg.wall_ns_exclusive.load(Ordering::Relaxed),
        }
    }

    /// Pages transferred in either direction.
    pub fn transfers(&self) -> u64 {
        self.page_reads + self.page_writes
    }
}

/// One histogram of a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Non-empty buckets as `(log2 exponent, count)`, ascending; a
    /// value `v` lands in the bucket with exponent `floor(log2(v))`
    /// (zero in exponent 0).
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    pub(crate) fn load(name: &str, inner: &HistogramInner) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in inner.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        HistogramSnapshot {
            name: name.to_string(),
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) from the log2 buckets:
    /// the upper bound of the bucket the rank-`ceil(q·count)`
    /// observation falls in (so the answer over-estimates by at most
    /// 2× — the bucket resolution). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(k, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return if k >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (k + 1)) - 1
                };
            }
        }
        u64::MAX
    }
}

/// A point-in-time copy of every aggregate in one [`crate::Metrics`]
/// domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All ten operation rows, in [`crate::OpKind::ALL`] order
    /// (including zero rows, so the schema is stable).
    pub ops: Vec<OpSnapshot>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Named gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Named histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Trace events recorded since creation (may exceed capacity).
    pub trace_recorded: u64,
    /// Trace ring capacity.
    pub trace_capacity: u64,
    /// Pipeline events (eos-trace, §16) recorded since creation.
    pub pipe_recorded: u64,
    /// Pipeline-event ring capacity.
    pub pipe_capacity: u64,
}

impl MetricsSnapshot {
    /// The row for `label`, if it is a known operation.
    pub fn op(&self, label: &str) -> Option<&OpSnapshot> {
        self.ops.iter().find(|o| o.op == label)
    }

    /// Value of a named counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a named gauge.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A named histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Sum of counters whose name starts with `prefix`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|&(_, v)| v)
            .sum()
    }

    /// Total page transfers attributed across all operations. On a
    /// single-threaded workload where every I/O happens under a span,
    /// this equals the volume-global `IoStats` transfer delta.
    pub fn attributed_transfers(&self) -> u64 {
        self.ops.iter().map(OpSnapshot::transfers).sum()
    }

    /// Total seeks attributed across all operations.
    pub fn attributed_seeks(&self) -> u64 {
        self.ops.iter().map(|o| o.seeks).sum()
    }

    /// Total simulated microseconds attributed across all operations.
    pub fn attributed_elapsed_us(&self) -> u64 {
        self.ops.iter().map(|o| o.elapsed_us).sum()
    }

    /// Human-readable table (the body of `eos stats`).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>7} {:>8} {:>8} {:>8} {:>10} {:>7} {:>10} {:>10}\n",
            "OPERATION",
            "COUNT",
            "SEEKS",
            "READS",
            "WRITES",
            "SIM-MS",
            "FAULTS",
            "WALL-MS",
            "XWALL-MS"
        ));
        let mut any = false;
        for o in &self.ops {
            if o.count == 0 && o.transfers() == 0 {
                continue;
            }
            any = true;
            out.push_str(&format!(
                "{:<16} {:>7} {:>8} {:>8} {:>8} {:>10.3} {:>7} {:>10.3} {:>10.3}\n",
                o.op,
                o.count,
                o.seeks,
                o.page_reads,
                o.page_writes,
                o.elapsed_us as f64 / 1000.0,
                o.faults,
                o.wall_ns_inclusive as f64 / 1.0e6,
                o.wall_ns_exclusive as f64 / 1.0e6,
            ));
        }
        if !any {
            out.push_str("(no operations recorded)\n");
        }
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push('\n');
            out.push_str(&format!("{:<44} {:>12}\n", "COUNTER/GAUGE", "VALUE"));
            for (name, value) in &self.counters {
                out.push_str(&format!("{name:<44} {value:>12}\n"));
            }
            for (name, value) in &self.gauges {
                out.push_str(&format!("{:<44} {value:>12}\n", format!("{name} (gauge)")));
            }
        }
        if !self.histograms.is_empty() {
            out.push('\n');
            out.push_str(&format!(
                "{:<32} {:>8} {:>12}  {}\n",
                "HISTOGRAM", "COUNT", "SUM", "DISTRIBUTION (2^k: n)"
            ));
            for h in &self.histograms {
                let dist = h
                    .buckets
                    .iter()
                    .map(|&(k, n)| format!("2^{k}:{n}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                out.push_str(&format!(
                    "{:<32} {:>8} {:>12}  {dist}\n",
                    h.name, h.count, h.sum
                ));
            }
        }
        out.push('\n');
        out.push_str(&format!(
            "trace: {} event(s) recorded (ring capacity {})\n",
            self.trace_recorded, self.trace_capacity
        ));
        out.push_str(&format!(
            "pipeline: {} event(s) recorded (ring capacity {})\n",
            self.pipe_recorded, self.pipe_capacity
        ));
        out
    }

    /// JSON object carrying the whole snapshot — the `"metrics"` member
    /// of the shared `eos check` / `eos stats` report envelope.
    pub fn to_json_object(&self) -> String {
        let mut out = String::from("{\"ops\":[");
        for (i, o) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"op\":{},\"count\":{},\"seeks\":{},\"page_reads\":{},\
                 \"page_writes\":{},\"elapsed_us\":{},\"faults\":{},\
                 \"wall_ns_inclusive\":{},\"wall_ns_exclusive\":{}}}",
                json_string(o.op),
                o.count,
                o.seeks,
                o.page_reads,
                o.page_writes,
                o.elapsed_us,
                o.faults,
                o.wall_ns_inclusive,
                o.wall_ns_exclusive
            ));
        }
        out.push_str("],\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{value}", json_string(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{value}", json_string(name)));
        }
        out.push_str("},\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets = h
                .buckets
                .iter()
                .map(|&(k, n)| format!("[{k},{n}]"))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"name\":{},\"count\":{},\"sum\":{},\"buckets\":[{buckets}]}}",
                json_string(&h.name),
                h.count,
                h.sum
            ));
        }
        out.push_str(&format!(
            "],\"trace\":{{\"recorded\":{},\"capacity\":{},\
             \"pipe_recorded\":{},\"pipe_capacity\":{}}}}}",
            self.trace_recorded, self.trace_capacity, self.pipe_recorded, self.pipe_capacity
        ));
        out
    }

    /// Prometheus text exposition format (`eos stats --prom`).
    ///
    /// Every registry name is mapped to a legal metric name
    /// (`[a-zA-Z_:][a-zA-Z0-9_:]*`) by one rule — non-alphanumerics
    /// become `_` under an `eos_` prefix — and dynamic per-instance
    /// tails (`….space.<i>`, `….stripe.<i>`) are lifted into a
    /// `space`/`stripe` **label** on the base family instead of
    /// minting one family per index, so a 16-space store exports one
    /// `eos_buddy_latch_wait_us` family, not seventeen. Each family
    /// gets exactly one `# TYPE` line.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (metric, get) in OP_FIELDS {
            out.push_str(&format!("# TYPE eos_op_{metric} counter\n"));
            for o in &self.ops {
                out.push_str(&format!("eos_op_{metric}{{op=\"{}\"}} {}\n", o.op, get(o)));
            }
        }
        for (name, value) in &self.counters {
            let (fam, label) = prom_family(name);
            if typed.insert(fam.clone()) {
                out.push_str(&format!("# TYPE eos_{fam} counter\n"));
            }
            match label {
                Some((key, idx)) => {
                    out.push_str(&format!("eos_{fam}{{{key}=\"{idx}\"}} {value}\n"));
                }
                None => out.push_str(&format!("eos_{fam} {value}\n")),
            }
        }
        for (name, value) in &self.gauges {
            let (fam, label) = prom_family(name);
            if typed.insert(fam.clone()) {
                out.push_str(&format!("# TYPE eos_{fam} gauge\n"));
            }
            match label {
                Some((key, idx)) => {
                    out.push_str(&format!("eos_{fam}{{{key}=\"{idx}\"}} {value}\n"));
                }
                None => out.push_str(&format!("eos_{fam} {value}\n")),
            }
        }
        for h in &self.histograms {
            let (fam, label) = prom_family(&h.name);
            if typed.insert(fam.clone()) {
                out.push_str(&format!("# TYPE eos_{fam} histogram\n"));
            }
            // A lifted label is prepended to every sample's label set
            // (`{space="3",le="8"}`); the plain family has none.
            let (sep, tag) = match label {
                Some((key, idx)) => (",".to_string(), format!("{key}=\"{idx}\"")),
                None => (String::new(), String::new()),
            };
            let mut cumulative = 0u64;
            for &(k, n) in &h.buckets {
                cumulative += n;
                let le = 1u128 << u32::min(k + 1, HISTOGRAM_BUCKETS as u32);
                out.push_str(&format!(
                    "eos_{fam}_bucket{{{tag}{sep}le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "eos_{fam}_bucket{{{tag}{sep}le=\"+Inf\"}} {}\n",
                h.count
            ));
            let braces = if tag.is_empty() {
                String::new()
            } else {
                format!("{{{tag}}}")
            };
            out.push_str(&format!("eos_{fam}_sum{braces} {}\n", h.sum));
            out.push_str(&format!("eos_{fam}_count{braces} {}\n", h.count));
        }
        out.push_str(&format!(
            "# TYPE eos_trace_recorded counter\neos_trace_recorded {}\n",
            self.trace_recorded
        ));
        out.push_str(&format!(
            "# TYPE eos_pipe_recorded counter\neos_pipe_recorded {}\n",
            self.pipe_recorded
        ));
        out
    }
}

/// Map one registry name to its Prometheus family plus an optional
/// lifted `(label, index)` pair: `buddy.latch.wait_us.space.3` →
/// (`buddy_latch_wait_us`, `Some(("space", "3"))`); anything without a
/// recognised dynamic tail maps to its sanitized self.
fn prom_family(name: &str) -> (String, Option<(&'static str, String)>) {
    for key in ["space", "stripe"] {
        if let Some((head, idx)) = name.rsplit_once('.') {
            if !idx.is_empty() && idx.bytes().all(|b| b.is_ascii_digit()) {
                if let Some((base, tail)) = head.rsplit_once('.') {
                    if tail == key {
                        return (sanitize(base), Some((key, idx.to_string())));
                    }
                }
            }
        }
    }
    (sanitize(name), None)
}

/// One per-op numeric column: Prometheus metric suffix and accessor.
type OpField = (&'static str, fn(&OpSnapshot) -> u64);

/// The per-op numeric columns, for the Prometheus rendering.
const OP_FIELDS: [OpField; 8] = [
    ("count", |o| o.count),
    ("seeks", |o| o.seeks),
    ("page_reads", |o| o.page_reads),
    ("page_writes", |o| o.page_writes),
    ("sim_us", |o| o.elapsed_us),
    ("faults", |o| o.faults),
    ("wall_ns_inclusive", |o| o.wall_ns_inclusive),
    ("wall_ns_exclusive", |o| o.wall_ns_exclusive),
];

/// Human-readable dump of retained trace events (`eos stats --trace`),
/// with the ring accounting the window needs to be read honestly:
/// `recorded - capacity` events were dropped by overwrite, and any
/// sequence gap *inside* the retained window means a torn view (a slot
/// was overwritten between the reader's two passes).
pub fn render_trace(events: &[TraceEvent], recorded: u64, capacity: u64) -> String {
    let mut out = String::new();
    if events.is_empty() {
        out.push_str("(no trace events retained)\n");
    } else {
        out.push_str(&format!(
            "{:>8} {:<16} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10}\n",
            "SEQ", "OPERATION", "SEEKS", "READS", "WRITES", "SIM-MS", "WALL-MS", "XWALL-MS"
        ));
        for ev in events {
            out.push_str(&format!(
                "{:>8} {:<16} {:>8} {:>8} {:>8} {:>10.3} {:>10.3} {:>10.3}\n",
                ev.seq,
                ev.op,
                ev.seeks,
                ev.page_reads,
                ev.page_writes,
                ev.elapsed_us as f64 / 1000.0,
                ev.wall_ns_inclusive as f64 / 1.0e6,
                ev.wall_ns_exclusive as f64 / 1.0e6,
            ));
        }
    }
    let dropped = recorded.saturating_sub(capacity);
    out.push_str(&format!(
        "dropped: {dropped} event(s) overwritten ({recorded} recorded, ring capacity {capacity})\n"
    ));
    let mut gaps = 0u64;
    let mut largest = 0u64;
    for pair in events.windows(2) {
        let gap = pair[1].seq.saturating_sub(pair[0].seq + 1);
        if gap > 0 {
            gaps += 1;
            largest = largest.max(gap);
        }
    }
    if gaps > 0 {
        out.push_str(&format!(
            "sequence gaps: {gaps} inside the retained window (largest {largest}) — \
             events were overwritten while this dump was read\n"
        ));
    } else {
        out.push_str("sequence gaps: none — the retained window is contiguous\n");
    }
    out
}

/// Metric-name sanitizer for the Prometheus rendering: anything outside
/// `[A-Za-z0-9_]` becomes `_` (so `buddy.alloc.pages` →
/// `buddy_alloc_pages`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Minimal JSON string encoder (same dialect as eos-check's reports).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use crate::{Metrics, OpKind};
    use eos_pager::{MemVolume, SharedVolume};

    fn populated() -> Metrics {
        let m = Metrics::new();
        let v: SharedVolume = MemVolume::new(128, 64).shared();
        {
            let _s = m.span(OpKind::Create, &v);
            v.write_pages(0, &[1u8; 256]).unwrap();
        }
        m.counter("reshuffle.triggers.t8").add(3);
        m.gauge("cache.size").set(12);
        m.histogram("buddy.alloc.pages").record(4);
        m
    }

    #[test]
    fn table_lists_active_ops_and_registry() {
        let text = populated().snapshot().render_table();
        assert!(text.contains("create"));
        assert!(
            !text.contains("wal.commit"),
            "zero rows are hidden:\n{text}"
        );
        assert!(text.contains("reshuffle.triggers.t8"));
        assert!(text.contains("cache.size (gauge)"));
        assert!(text.contains("2^2:1"));
        assert!(text.contains("trace: 1 event(s)"));
        assert!(text.contains("pipeline: 0 event(s)"));
        assert!(text.contains("XWALL-MS"));
    }

    #[test]
    fn empty_table_says_so() {
        let text = Metrics::new().snapshot().render_table();
        assert!(text.contains("(no operations recorded)"));
    }

    #[test]
    fn json_object_is_well_formed() {
        let json = populated().snapshot().to_json_object();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"op\":\"create\""));
        assert!(json.contains("\"counters\":{\"reshuffle.triggers.t8\":3}"));
        assert!(json.contains("\"buckets\":[[2,1]]"));
        assert!(json.contains("\"trace\":{\"recorded\":1"));
        assert!(json.contains("\"wall_ns_inclusive\""));
        assert!(json.contains("\"wall_ns_exclusive\""));
        assert!(json.contains("\"pipe_recorded\":0"));
    }

    #[test]
    fn prometheus_rendering_sanitizes_names() {
        let prom = populated().snapshot().render_prometheus();
        assert!(prom.contains("eos_op_page_writes{op=\"create\"} 2"));
        assert!(prom.contains("eos_reshuffle_triggers_t8 3"));
        assert!(prom.contains("# TYPE eos_cache_size gauge"));
        assert!(prom.contains("eos_buddy_alloc_pages_bucket{le=\"8\"} 1"));
        assert!(prom.contains("eos_buddy_alloc_pages_count 1"));
    }

    /// Is `name` a legal Prometheus metric name
    /// (`[a-zA-Z_:][a-zA-Z0-9_:]*`)?
    fn prom_legal(name: &str) -> bool {
        let ok = |c: char, first: bool| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (!first && c.is_ascii_digit())
        };
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if ok(c, true) => chars.all(|c| ok(c, false)),
            _ => false,
        }
    }

    /// Round-trip: every metric name the exposition emits — dotted
    /// registry names, dynamic per-space / per-stripe series, the op
    /// table — must parse back as a legal Prometheus name, each family
    /// must carry exactly one `# TYPE` line, and the dynamic tails
    /// must come back as `space="i"` / `stripe="i"` labels on the base
    /// family rather than one family per index.
    #[test]
    fn prometheus_round_trip_is_legal_and_label_lifted() {
        let m = populated();
        // The dynamic shapes the sharded paths register (§17).
        m.histogram("buddy.latch.wait_us").record(7);
        for i in 0..3 {
            m.histogram(&format!("buddy.latch.wait_us.space.{i}"))
                .record(i);
            m.counter(&format!("wal.force.stripe.{i}")).inc();
        }
        m.gauge("mvcc.deferred_pages").set(5);
        // Not a dynamic tail (index is not numeric): stays a family.
        m.counter("odd.space.name").inc();
        let prom = m.snapshot().render_prometheus();

        let mut families = std::collections::HashSet::new();
        for line in prom.lines().filter(|l| !l.is_empty()) {
            let name = if let Some(rest) = line.strip_prefix("# TYPE ") {
                let fam = rest.split_whitespace().next().unwrap();
                assert!(
                    families.insert(fam.to_string()),
                    "duplicate # TYPE for {fam}:\n{prom}"
                );
                fam
            } else {
                line.split(['{', ' ']).next().unwrap()
            };
            assert!(prom_legal(name), "illegal metric name {name:?} in:\n{line}");
        }
        // One family, indexed by label — not three families.
        assert!(prom.contains("eos_buddy_latch_wait_us_bucket{space=\"2\",le=\"4\"} 1"));
        assert!(prom.contains("eos_buddy_latch_wait_us_count{space=\"1\"} 1"));
        assert!(prom.contains("eos_wal_force{stripe=\"0\"} 1"));
        assert!(!prom.contains("eos_buddy_latch_wait_us_space_2"));
        assert!(!prom.contains("eos_wal_force_stripe_0 "));
        // The aggregate (unlabelled) series coexists in the family.
        assert!(prom.contains("eos_buddy_latch_wait_us_count 1"));
        assert!(prom.contains("eos_odd_space_name 1"));
    }

    #[test]
    fn trace_rendering_includes_each_event_and_the_accounting() {
        let m = populated();
        let snap = m.snapshot();
        let text = super::render_trace(&m.trace(), snap.trace_recorded, snap.trace_capacity);
        assert!(text.contains("create"));
        assert!(text.contains("dropped: 0 event(s)"));
        assert!(text.contains("sequence gaps: none"));
        assert!(super::render_trace(&[], 0, 8).contains("no trace events"));
    }

    #[test]
    fn trace_rendering_reports_drops_and_gaps() {
        let m = Metrics::with_capacities(2, 4);
        let v: SharedVolume = MemVolume::new(128, 64).shared();
        for _ in 0..5 {
            let _s = m.span(OpKind::Read, &v);
        }
        let snap = m.snapshot();
        let text = super::render_trace(&m.trace(), snap.trace_recorded, snap.trace_capacity);
        assert!(text.contains("dropped: 3 event(s) overwritten (5 recorded, ring capacity 2)"));
        // A synthetic torn window: seqs 3 and 7 with 4, 5, 6 missing.
        let mut torn = m.trace();
        torn[0].seq = 3;
        torn[1].seq = 7;
        let text = super::render_trace(&torn, 8, 2);
        assert!(text.contains("sequence gaps: 1 inside the retained window (largest 3)"));
    }

    #[test]
    fn quantile_reads_the_log2_buckets() {
        let m = Metrics::new();
        let h = m.histogram("q");
        for _ in 0..99 {
            h.record(3); // bucket 2^1, upper bound 3
        }
        h.record(1000); // bucket 2^9, upper bound 1023
        let snap = m.snapshot();
        let q = snap.histogram("q").unwrap();
        assert_eq!(q.quantile(0.5), 3);
        assert_eq!(q.quantile(0.99), 3);
        assert_eq!(q.quantile(1.0), 1023);
        assert_eq!(
            crate::HistogramSnapshot {
                name: "empty".into(),
                count: 0,
                sum: 0,
                buckets: vec![]
            }
            .quantile(0.5),
            0
        );
    }
}
