//! Flight recorder and timeline exporters.
//!
//! Three JSON surfaces, all in the house dialect (hand-rolled, no
//! dependencies, parseable by `eos-check`'s `schema::parse`):
//!
//! * [`pipe_doc_json`] — the raw pipeline-event document
//!   (`{"events":[…],"recorded":N,"capacity":N,"dropped":N}`) that
//!   `eos trace summary`/`export` consume.
//! * [`chrome_trace_json`] — the same events as Chrome `trace_event`
//!   JSON (`{"traceEvents":[…]}`), loadable in Perfetto or
//!   `chrome://tracing` (timestamps in microseconds, `B`/`E`/`i`
//!   phases, thread ordinals as `tid`).
//! * [`Metrics::flight_json`] — the flight-recorder dump: the last N
//!   pipeline events plus the completed-span trace and a full metrics
//!   snapshot, stamped with the reason (`commit_failed`, `recovery`,
//!   `panic`). [`Metrics::flight_dump`] writes it to the path named by
//!   `EOS_FLIGHT_PATH`, and [`install_flight_panic_hook`] arms a panic
//!   hook that dumps the global domain on the way down.

use std::path::PathBuf;

use crate::tracer::PipeEvent;
use crate::Metrics;

/// Environment variable naming the flight-recorder output file. When
/// unset, [`Metrics::flight_dump`] is a no-op.
pub const FLIGHT_PATH_ENV: &str = "EOS_FLIGHT_PATH";

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn pipe_event_json(ev: &PipeEvent) -> String {
    format!(
        "{{\"seq\":{},\"ts_ns\":{},\"kind\":{},\"phase\":{},\
         \"trace_id\":{},\"batch_id\":{},\"thread\":{}}}",
        ev.seq,
        ev.ts_ns,
        json_string(ev.kind.label()),
        json_string(ev.phase),
        ev.trace_id,
        ev.batch_id,
        ev.thread
    )
}

/// The raw pipeline-event document for one domain: every retained
/// event (oldest first) plus the ring accounting a reader needs to
/// know whether the window is complete.
pub fn pipe_doc_json(m: &Metrics) -> String {
    let events = m.pipe_events();
    let recorded = m.pipe_recorded();
    let capacity = m.pipe_capacity() as u64;
    let mut out = String::from("{\"events\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&pipe_event_json(ev));
    }
    out.push_str(&format!(
        "],\"recorded\":{recorded},\"capacity\":{capacity},\"dropped\":{}}}",
        recorded.saturating_sub(capacity)
    ));
    out
}

/// Render events as Chrome `trace_event` JSON (the "JSON Array Format"
/// with a `traceEvents` wrapper). Begin/End pairs become `B`/`E` phase
/// events nested per thread; instants and stalls become thread-scoped
/// `i` events. Timestamps convert from ns-since-domain-birth to the
/// microsecond floats the format requires.
pub fn chrome_trace_json(events: &[PipeEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let scope = if ev.kind.chrome_ph() == "i" {
            ",\"s\":\"t\""
        } else {
            ""
        };
        out.push_str(&format!(
            "{{\"name\":{},\"ph\":{},\"ts\":{}.{:03},\"pid\":1,\"tid\":{}{scope},\
             \"args\":{{\"seq\":{},\"kind\":{},\"trace_id\":{},\"batch_id\":{}}}}}",
            json_string(ev.phase),
            json_string(ev.kind.chrome_ph()),
            ev.ts_ns / 1000,
            ev.ts_ns % 1000,
            ev.thread,
            ev.seq,
            json_string(ev.kind.label()),
            ev.trace_id,
            ev.batch_id
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

impl Metrics {
    /// The flight-recorder dump: reason, the retained pipeline events,
    /// the completed-span trace, and a full metrics snapshot — enough
    /// to reconstruct the last moments before a `CommitFailed`,
    /// recovery, or panic.
    pub fn flight_json(&self, reason: &str) -> String {
        let mut out = String::from("{\"flight\":");
        out.push_str(&format!(
            "{{\"reason\":{},\"pipe\":{},\"spans\":[",
            json_string(reason),
            pipe_doc_json(self)
        ));
        for (i, ev) in self.trace().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"op\":{},\"seeks\":{},\"page_reads\":{},\"page_writes\":{},\
                 \"elapsed_us\":{},\"wall_ns_inclusive\":{},\"wall_ns_exclusive\":{}}}",
                ev.seq,
                json_string(ev.op),
                ev.seeks,
                ev.page_reads,
                ev.page_writes,
                ev.elapsed_us,
                ev.wall_ns_inclusive,
                ev.wall_ns_exclusive
            ));
        }
        out.push_str(&format!(
            "],\"metrics\":{}}}}}",
            self.snapshot().to_json_object()
        ));
        out
    }

    /// Write [`Metrics::flight_json`] to the file named by
    /// [`FLIGHT_PATH_ENV`]. Returns the path on success; `None` when
    /// the variable is unset or the write failed (the dump is
    /// best-effort — it must never turn a failing commit into a second
    /// failure).
    pub fn flight_dump(&self, reason: &str) -> Option<PathBuf> {
        let path = PathBuf::from(std::env::var_os(FLIGHT_PATH_ENV)?);
        std::fs::write(&path, self.flight_json(reason)).ok()?;
        Some(path)
    }
}

/// Chain a panic hook that dumps the [`crate::global`] domain's flight
/// recorder (reason `panic`) before the previous hook runs. Installed
/// by the CLI and the bench binaries; harmless to call more than once
/// (each call chains, dumps overwrite the same file).
pub fn install_flight_panic_hook() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = crate::global().flight_dump("panic");
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::PipeKind;

    fn sample() -> Metrics {
        let m = Metrics::new();
        m.pipe_event(PipeKind::Begin, "commit.phase_a", 4, 2);
        m.pipe_event(PipeKind::End, "commit.phase_a", 4, 2);
        m.pipe_event(PipeKind::Instant, "wal.frame", 4, 0);
        m
    }

    #[test]
    fn pipe_doc_carries_every_event_and_the_accounting() {
        let doc = pipe_doc_json(&sample());
        assert!(doc.contains("\"phase\":\"commit.phase_a\""));
        assert!(doc.contains("\"kind\":\"begin\""));
        assert!(doc.contains("\"recorded\":3"));
        assert!(doc.contains("\"dropped\":0"));
    }

    #[test]
    fn chrome_export_has_matched_phases_and_thread_scoped_instants() {
        let m = sample();
        let chrome = chrome_trace_json(&m.pipe_events());
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"B\""));
        assert!(chrome.contains("\"ph\":\"E\""));
        assert!(chrome.contains("\"ph\":\"i\",") || chrome.contains("\"ph\":\"i\"}"));
        assert!(chrome.contains("\"s\":\"t\""));
        assert!(chrome.contains("\"batch_id\":2"));
    }

    #[test]
    fn flight_json_wraps_reason_events_and_metrics() {
        let dump = sample().flight_json("commit_failed");
        assert!(dump.starts_with("{\"flight\":{\"reason\":\"commit_failed\""));
        assert!(dump.contains("\"pipe\":{\"events\":["));
        assert!(dump.contains("\"metrics\":{\"ops\":["));
        assert!(dump.ends_with("}}"));
    }

    #[test]
    fn flight_dump_without_env_is_a_noop() {
        // The test runner may not have EOS_FLIGHT_PATH set; if it does,
        // skip rather than clobber whatever CI pointed it at.
        if std::env::var_os(FLIGHT_PATH_ENV).is_none() {
            assert!(sample().flight_dump("recovery").is_none());
        }
    }
}
