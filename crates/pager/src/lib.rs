//! # eos-pager — paged volumes and a simulated disk cost model
//!
//! This crate is the storage substrate of the EOS reproduction
//! (Biliris, *An Efficient Database Storage Structure for Large Dynamic
//! Objects*, ICDE 1992). It provides:
//!
//! * [`Volume`] — a fixed-geometry array of pages with multi-page
//!   (physically contiguous) reads and writes, implemented in memory
//!   ([`MemVolume`]) and on a file ([`FileVolume`]).
//! * [`DiskModel`] — a deterministic cost model that counts **disk seeks**
//!   and **page transfers**, the two units in which the paper states every
//!   I/O cost ("the cost of 3 disk seeks plus the cost to transfer 6
//!   pages", §4.2), and converts them to simulated time via a
//!   [`DiskProfile`].
//! * [`IoStats`] — cumulative counters with snapshot/delta arithmetic so
//!   experiments can report the cost of a single operation.
//!
//! The paper evaluated on raw disks of 1992 SunOS SparcStations; the disk
//! model substitutes a parametric simulation that preserves exactly the
//! quantities the paper reasons about (seek counts, transfer counts,
//! utilization), as documented in `DESIGN.md`.
//!
//! ## Example
//!
//! ```
//! use eos_pager::{MemVolume, Volume};
//!
//! let vol = MemVolume::new(4096, 1024); // 1024 pages of 4 KiB
//! vol.write_pages(10, &vec![7u8; 3 * 4096]).unwrap();
//! let back = vol.read_pages(10, 3).unwrap();
//! assert!(back.iter().all(|&b| b == 7));
//!
//! let stats = vol.stats();
//! assert_eq!(stats.page_writes, 3);
//! assert_eq!(stats.page_reads, 3);
//! // One seek to write, one to come back and read (the head moved on).
//! assert_eq!(stats.seeks, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod crashpoint;
mod disk;
mod error;
mod faulty;
mod mutate;
mod stats;
mod throttle;
mod volume;

pub use cache::{CacheStats, CachedVolume};
pub use crashpoint::{CrashPointVolume, WriteRecord};
pub use disk::{DiskModel, DiskProfile};
pub use error::{Error, Result};
pub use faulty::FaultyVolume;
pub use mutate::MutatingVolume;
pub use stats::IoStats;
pub use throttle::ThrottledVolume;
pub use volume::{FileVolume, MemVolume, SharedVolume, Volume};

/// Identifier of a page within a volume (zero-based).
pub type PageId = u64;

/// Number of pages a byte string of length `len` occupies when stored
/// with "no holes" (every page full except possibly the last, paper §4):
/// `ceil(len / page_size)`.
#[inline]
pub fn pages_for(len: u64, page_size: usize) -> u64 {
    let ps = page_size as u64;
    len.div_ceil(ps)
}

#[cfg(test)]
mod tests {
    use super::pages_for;

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0, 100), 0);
        assert_eq!(pages_for(1, 100), 1);
        assert_eq!(pages_for(100, 100), 1);
        assert_eq!(pages_for(101, 100), 2);
        assert_eq!(pages_for(1820, 100), 19); // Fig 5.a: ⌈1820/100⌉ = 19
    }
}
