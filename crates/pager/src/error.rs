//! Error type shared by the pager substrate.

use std::fmt;

/// Result alias used throughout `eos-pager`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by volumes and the disk model.
#[derive(Debug)]
pub enum Error {
    /// A page access fell outside the volume geometry.
    OutOfBounds {
        /// First page of the offending access.
        start: u64,
        /// Number of pages in the offending access.
        pages: u64,
        /// Total pages in the volume.
        volume_pages: u64,
    },
    /// The byte buffer handed to a multi-page write was not a whole
    /// number of pages.
    UnalignedBuffer {
        /// Length of the buffer in bytes.
        len: usize,
        /// Page size of the volume.
        page_size: usize,
    },
    /// An underlying operating-system I/O failure (file-backed volumes).
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfBounds {
                start,
                pages,
                volume_pages,
            } => write!(
                f,
                "page access [{start}, {}) outside volume of {volume_pages} pages",
                start + pages
            ),
            Error::UnalignedBuffer { len, page_size } => write!(
                f,
                "buffer of {len} bytes is not a whole number of {page_size}-byte pages"
            ),
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}
