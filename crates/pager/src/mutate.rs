//! Barrier-mutation injection — the runtime half of eos-crashdep.
//!
//! [`CrashPointVolume`] proves recovery holds at every *I/O point*;
//! [`MutatingVolume`] proves every *sync* is load-bearing. It journals
//! each write into per-sync-epoch **groups** (group *i* holds the
//! writes issued between sync *i−1* and sync *i*), optionally elides
//! exactly the *k*-th sync (the call is swallowed, not forwarded), and
//! can afterwards reconstruct the worst-case crash image for that
//! elision: every group sealed by a real sync is on disk, the elided
//! group is not — the OS was free to reorder across the missing
//! barrier, and the machine died before its writes landed.
//!
//! The barrier-mutation sweep (`tests/barrier_mutation.rs`) runs the
//! canonical crash workload once per enumerated sync site with that
//! site elided and asserts at least one crash image fails recovery or
//! the committed-prefix check — a machine-checked proof that each
//! declared barrier in the L6 contract (DESIGN.md §15) is actually
//! guarding something.
//!
//! All I/O passes through to the inner volume (an elided sync still
//! returns `Ok`), so the workload itself always runs to completion;
//! the mutation only shows up in the reconstructed images.

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::Result;
use crate::stats::IoStats;
use crate::volume::{SharedVolume, Volume};
use crate::PageId;

/// One journaled write call.
#[derive(Debug, Clone)]
struct JournaledWrite {
    start: PageId,
    data: Vec<u8>,
}

#[derive(Debug)]
struct MutState {
    /// Disk image at construction time.
    initial: Vec<u8>,
    /// `groups[i]` = writes issued after sync `i-1` and before sync
    /// `i`. The last entry is the open group (not yet sealed).
    groups: Vec<Vec<JournaledWrite>>,
    /// Sync indices that were swallowed instead of forwarded.
    elided: BTreeSet<usize>,
    /// Sync index to elide next (0-based, counted from the last
    /// [`MutatingVolume::reset`]).
    elide: Option<usize>,
    syncs_seen: usize,
}

/// A pass-through volume wrapper that journals write groups per sync
/// epoch and can elide exactly one sync. See the [module docs](self).
pub struct MutatingVolume {
    inner: SharedVolume,
    // Journal maintenance only; sits with the other injection wrappers
    // between the cache (70) and the volume bottom (80).
    // lock-class: state = pager.mutate rank = 76 io = allowed
    state: Mutex<MutState>,
}

impl MutatingVolume {
    /// Wrap `inner`, snapshotting its current image as the base every
    /// crash reconstruction starts from.
    pub fn new(inner: SharedVolume) -> Result<Arc<MutatingVolume>> {
        let initial = inner.read_pages(0, inner.num_pages())?;
        Ok(Arc::new(MutatingVolume {
            inner,
            state: Mutex::new(MutState {
                initial,
                groups: vec![Vec::new()],
                elided: BTreeSet::new(),
                elide: None,
                syncs_seen: 0,
            }),
        }))
    }

    /// Clear the journal and re-snapshot the inner volume; the next
    /// sync is index 0 again. Use between workload runs.
    pub fn reset(&self) -> Result<()> {
        let initial = self.inner.read_pages(0, self.inner.num_pages())?;
        let mut st = self.state.lock();
        st.initial = initial;
        st.groups = vec![Vec::new()];
        st.elided.clear();
        st.elide = None;
        st.syncs_seen = 0;
        Ok(())
    }

    /// Arm the mutation: the `k`-th sync (0-based) after the last
    /// [`Self::reset`] is swallowed — recorded as elided, not
    /// forwarded to the inner volume.
    pub fn elide(&self, k: usize) {
        self.state.lock().elide = Some(k);
    }

    /// Syncs observed (forwarded or elided) since the last reset.
    pub fn sync_count(&self) -> usize {
        self.state.lock().syncs_seen
    }

    /// Number of sealed write groups (= syncs observed).
    pub fn sealed_groups(&self) -> usize {
        let st = self.state.lock();
        st.groups.len() - 1
    }

    /// Write calls journaled in each sealed group, in sync order.
    pub fn group_sizes(&self) -> Vec<usize> {
        let st = self.state.lock();
        // lint: allow(panic, reason = "groups always holds at least the open tail group")
        st.groups[..st.groups.len() - 1]
            .iter()
            .map(Vec::len)
            .collect()
    }

    /// The crash image "power died after sync `after` fired": the
    /// initial snapshot plus every group `0..=after`, minus the groups
    /// whose sync was elided — their writes were still queued behind
    /// the missing barrier when the machine died. The open (unsealed)
    /// tail group is never applied.
    pub fn crash_image(&self, after: usize) -> Vec<u8> {
        self.rebuild(after, |_| false)
    }

    /// Like [`Self::crash_image`], but each elided group contributes
    /// its *last* write only — the OS reordered the queue and the most
    /// recent write jumped the dead barrier while the rest never
    /// landed. A second, adversarial ordering for sweeps where the
    /// all-or-nothing image happens to recover.
    pub fn crash_image_reordered(&self, after: usize) -> Vec<u8> {
        self.rebuild(after, |group| !group.is_empty())
    }

    fn rebuild(&self, after: usize, keep_last: impl Fn(&[JournaledWrite]) -> bool) -> Vec<u8> {
        let st = self.state.lock();
        let ps = self.inner.page_size();
        let mut image = st.initial.clone();
        let sealed = st.groups.len() - 1;
        // lint: allow(panic, reason = "slice end is min-clamped to the sealed group count")
        for (i, group) in st.groups[..sealed.min(after + 1)].iter().enumerate() {
            if st.elided.contains(&i) {
                if keep_last(group) {
                    if let Some(w) = group.last() {
                        apply(&mut image, ps, w);
                    }
                }
                continue;
            }
            for w in group {
                apply(&mut image, ps, w);
            }
        }
        image
    }
}

fn apply(image: &mut [u8], ps: usize, w: &JournaledWrite) {
    let at = w.start as usize * ps;
    // lint: allow(panic, reason = "journaled writes were accepted by the inner volume, so they fit its image")
    image[at..at + w.data.len()].copy_from_slice(&w.data);
}

impl Volume for MutatingVolume {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_into(&self, start: PageId, pages: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_into(start, pages, buf)
    }

    fn write_pages(&self, start: PageId, data: &[u8]) -> Result<()> {
        self.inner.write_pages(start, data)?;
        let mut st = self.state.lock();
        let open = st.groups.len() - 1;
        st.groups[open].push(JournaledWrite {
            start,
            data: data.to_vec(),
        });
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        let forward = {
            let mut st = self.state.lock();
            let k = st.syncs_seen;
            st.syncs_seen += 1;
            st.groups.push(Vec::new());
            if st.elide == Some(k) {
                st.elided.insert(k);
                false
            } else {
                true
            }
        };
        if forward {
            self.inner.sync()?;
        }
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::MemVolume;
    use crate::DiskProfile;

    fn setup() -> (Arc<MutatingVolume>, SharedVolume) {
        let mem = MemVolume::new(16, 8).shared();
        let mv = MutatingVolume::new(Arc::clone(&mem)).unwrap();
        (mv, mem)
    }

    fn page(b: u8) -> Vec<u8> {
        vec![b; 16]
    }

    #[test]
    fn journals_groups_and_passes_writes_through() {
        let (mv, mem) = setup();
        mv.write_pages(0, &page(1)).unwrap();
        mv.sync().unwrap();
        mv.write_pages(1, &page(2)).unwrap();
        mv.write_pages(2, &page(3)).unwrap();
        mv.sync().unwrap();
        mv.write_pages(3, &page(4)).unwrap(); // open tail, unsealed
        assert_eq!(mv.sync_count(), 2);
        assert_eq!(mv.group_sizes(), vec![1, 2]);
        // Pass-through: the inner volume has everything.
        assert_eq!(mem.read_pages(3, 1).unwrap(), page(4));
        // Crash after sync 1: groups 0 and 1, not the open tail.
        let img = mv.crash_image(1);
        assert_eq!(&img[16..32], &page(2)[..]);
        assert_eq!(&img[48..64], &[0u8; 16][..]);
    }

    #[test]
    fn elided_sync_drops_its_group_from_the_image() {
        let (mv, mem) = setup();
        mv.elide(0);
        mv.write_pages(0, &page(9)).unwrap();
        mv.sync().unwrap(); // elided
        mv.write_pages(1, &page(7)).unwrap();
        mv.sync().unwrap(); // real
                            // The live run is unaffected …
        assert_eq!(mem.read_pages(0, 1).unwrap(), page(9));
        // … but the crash image lost exactly the elided group.
        let img = mv.crash_image(1);
        assert_eq!(&img[0..16], &[0u8; 16][..]);
        assert_eq!(&img[16..32], &page(7)[..]);
        // Reordered variant: the elided group's last write landed.
        let img = mv.crash_image_reordered(1);
        assert_eq!(&img[0..16], &page(9)[..]);
    }

    #[test]
    fn reset_clears_journal_and_resnapshots() {
        let (mv, _mem) = setup();
        mv.write_pages(0, &page(5)).unwrap();
        mv.sync().unwrap();
        mv.reset().unwrap();
        assert_eq!(mv.sync_count(), 0);
        assert_eq!(mv.sealed_groups(), 0);
        // The new baseline includes the pre-reset write.
        assert_eq!(&mv.crash_image(0)[0..16], &page(5)[..]);
    }

    #[test]
    fn works_under_a_disk_profile() {
        let mem = MemVolume::with_profile(16, 4, DiskProfile::FREE).shared();
        let mv = MutatingVolume::new(mem).unwrap();
        mv.write_pages(0, &page(1)).unwrap();
        mv.sync().unwrap();
        assert_eq!(mv.group_sizes(), vec![1]);
    }
}
