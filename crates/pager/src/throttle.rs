//! A volume wrapper that charges real wall-clock time for `sync()`.
//!
//! [`MemVolume`](crate::MemVolume) is trivially stable, so its `sync`
//! is free — which makes any commit protocol that amortizes fsyncs
//! (group commit) look like a no-op in benchmarks. [`ThrottledVolume`]
//! sleeps for a configurable duration on every `sync()`, modeling the
//! rotational/flush latency a durable commit actually pays. Reads and
//! writes pass straight through (the [`DiskModel`](crate::DiskModel)
//! of the inner volume already accounts for them in simulated time).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::error::Result;
use crate::stats::IoStats;
use crate::volume::{SharedVolume, Volume};
use crate::{CacheStats, PageId};

/// Delegates everything to an inner volume but sleeps on `sync()`.
pub struct ThrottledVolume {
    inner: SharedVolume,
    sync_delay: Duration,
    syncs: AtomicU64,
}

impl ThrottledVolume {
    /// Wrap `inner`, charging `sync_delay` of wall-clock time per sync.
    pub fn new(inner: SharedVolume, sync_delay: Duration) -> ThrottledVolume {
        ThrottledVolume {
            inner,
            sync_delay,
            syncs: AtomicU64::new(0),
        }
    }

    /// Wrap in an [`std::sync::Arc`].
    pub fn shared(self) -> SharedVolume {
        std::sync::Arc::new(self)
    }

    /// Number of syncs charged so far.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }
}

impl Volume for ThrottledVolume {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_into(&self, start: PageId, pages: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_into(start, pages, buf)
    }

    fn write_pages(&self, start: PageId, data: &[u8]) -> Result<()> {
        self.inner.write_pages(start, data)
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()?;
        self.syncs.fetch_add(1, Ordering::Relaxed);
        if !self.sync_delay.is_zero() {
            std::thread::sleep(self.sync_delay);
        }
        Ok(())
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::MemVolume;
    use crate::DiskProfile;
    use std::time::Instant;

    #[test]
    fn passes_io_through_and_charges_syncs() {
        let inner = MemVolume::with_profile(64, 8, DiskProfile::FREE).shared();
        let t = ThrottledVolume::new(inner, Duration::from_millis(5));
        t.write_pages(1, &[7u8; 64]).unwrap();
        assert_eq!(t.read_pages(1, 1).unwrap()[0], 7);
        let t0 = Instant::now();
        t.sync().unwrap();
        t.sync().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert_eq!(t.syncs(), 2);
    }
}
