//! I/O accounting in the units the paper uses: seeks and page transfers.

use std::ops::Sub;

/// Cumulative I/O counters for a volume.
///
/// The paper states every cost as *seeks + page transfers* (e.g. §4.2:
/// "3 disk seeks plus the cost to transfer 6 pages"). `IoStats` counts
/// exactly those, split by direction, plus the number of distinct
/// multi-page calls and the simulated elapsed time derived from the
/// volume's [`DiskProfile`](crate::DiskProfile).
///
/// Snapshots subtract (`b - a`) to give the cost of the operations
/// performed between two points in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Disk head seeks: accesses that did not start at the page where
    /// the previous access ended.
    pub seeks: u64,
    /// Pages transferred from disk.
    pub page_reads: u64,
    /// Pages transferred to disk.
    pub page_writes: u64,
    /// Multi-page read calls issued.
    pub read_calls: u64,
    /// Multi-page write calls issued.
    pub write_calls: u64,
    /// Simulated elapsed microseconds under the volume's disk profile.
    pub elapsed_us: u64,
    /// Read calls rejected by a fault-injection layer
    /// ([`FaultyVolume`](crate::FaultyVolume) /
    /// [`CrashPointVolume`](crate::CrashPointVolume)); zero on real
    /// volumes.
    pub read_faults: u64,
    /// Write calls rejected by a fault-injection layer.
    pub write_faults: u64,
}

impl IoStats {
    /// Total pages transferred in either direction.
    #[inline]
    pub fn transfers(&self) -> u64 {
        self.page_reads + self.page_writes
    }

    /// Total calls in either direction.
    #[inline]
    pub fn calls(&self) -> u64 {
        self.read_calls + self.write_calls
    }

    /// Total injected faults in either direction.
    #[inline]
    pub fn faults(&self) -> u64 {
        self.read_faults + self.write_faults
    }

    /// Simulated elapsed time in milliseconds (floating point).
    #[inline]
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_us as f64 / 1000.0
    }
}

impl Sub for IoStats {
    type Output = IoStats;

    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            seeks: self.seeks - rhs.seeks,
            page_reads: self.page_reads - rhs.page_reads,
            page_writes: self.page_writes - rhs.page_writes,
            read_calls: self.read_calls - rhs.read_calls,
            write_calls: self.write_calls - rhs.write_calls,
            elapsed_us: self.elapsed_us - rhs.elapsed_us,
            read_faults: self.read_faults - rhs.read_faults,
            write_faults: self.write_faults - rhs.write_faults,
        }
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} seeks, {} page reads, {} page writes, {} read faults, \
             {} write faults ({:.3} ms simulated)",
            self.seeks,
            self.page_reads,
            self.page_writes,
            self.read_faults,
            self.write_faults,
            self.elapsed_ms()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::IoStats;

    #[test]
    fn delta_arithmetic() {
        let a = IoStats {
            seeks: 2,
            page_reads: 10,
            page_writes: 4,
            read_calls: 3,
            write_calls: 1,
            elapsed_us: 5000,
            read_faults: 1,
            write_faults: 0,
        };
        let b = IoStats {
            seeks: 5,
            page_reads: 16,
            page_writes: 9,
            read_calls: 5,
            write_calls: 3,
            elapsed_us: 9000,
            read_faults: 2,
            write_faults: 2,
        };
        let d = b - a;
        assert_eq!(d.seeks, 3);
        assert_eq!(d.transfers(), 11);
        assert_eq!(d.calls(), 4);
        assert_eq!(d.elapsed_us, 4000);
        assert_eq!(d.faults(), 3);
    }

    #[test]
    fn display_is_human_readable() {
        let s = IoStats {
            seeks: 3,
            page_reads: 6,
            ..IoStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("3 seeks"));
        assert!(text.contains("6 page reads"));
    }

    #[test]
    fn display_includes_fault_counts() {
        let s = IoStats {
            seeks: 1,
            page_reads: 2,
            page_writes: 3,
            read_faults: 4,
            write_faults: 5,
            ..IoStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("4 read faults"), "got: {text}");
        assert!(text.contains("5 write faults"), "got: {text}");
        // Fault-free stats still render the (zero) counts so the shape
        // of the line is stable for log scrapers.
        let clean = IoStats::default().to_string();
        assert!(clean.contains("0 read faults"), "got: {clean}");
    }
}
