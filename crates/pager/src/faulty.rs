//! Fault injection: a volume wrapper that starts failing after a
//! configurable number of operations. Used by the failure-injection
//! tests to prove that a mid-operation I/O error surfaces as an error
//! (never a panic) and that, under a transaction scope, the committed
//! state survives (§4.5).
//!
//! Reads and writes can share one budget ([`FaultyVolume::new`], the
//! historical behaviour) or be budgeted independently
//! ([`FaultyVolume::with_budgets`]) — the crash sweep needs a volume
//! that keeps serving reads while refusing writes. Every rejected call
//! is counted and surfaced through [`IoStats::read_faults`] /
//! [`IoStats::write_faults`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::stats::IoStats;
use crate::volume::{SharedVolume, Volume};
use crate::PageId;

/// A volume that injects I/O errors once an operation budget is
/// exhausted. Further operations keep failing until
/// [`FaultyVolume::heal`] (or [`FaultyVolume::heal_rw`]) is called.
pub struct FaultyVolume {
    inner: SharedVolume,
    /// One combined counter (historical behaviour) or two independent
    /// ones. Fixed at construction.
    shared_budget: bool,
    reads_left: AtomicU64,
    writes_left: AtomicU64,
    read_faults: AtomicU64,
    write_faults: AtomicU64,
}

impl FaultyVolume {
    /// Wrap `inner` with a single combined budget: the first `budget`
    /// operations (reads and writes both count) succeed.
    pub fn new(inner: SharedVolume, budget: u64) -> Arc<FaultyVolume> {
        Arc::new(FaultyVolume {
            inner,
            shared_budget: true,
            reads_left: AtomicU64::new(0),
            writes_left: AtomicU64::new(budget),
            read_faults: AtomicU64::new(0),
            write_faults: AtomicU64::new(0),
        })
    }

    /// Wrap `inner` with independent budgets: the first `reads` read
    /// calls and the first `writes` write calls succeed.
    pub fn with_budgets(inner: SharedVolume, reads: u64, writes: u64) -> Arc<FaultyVolume> {
        Arc::new(FaultyVolume {
            inner,
            shared_budget: false,
            reads_left: AtomicU64::new(reads),
            writes_left: AtomicU64::new(writes),
            read_faults: AtomicU64::new(0),
            write_faults: AtomicU64::new(0),
        })
    }

    /// Allow `budget` more operations (both directions on a
    /// combined-budget volume, each direction on a split one).
    pub fn heal(&self, budget: u64) {
        self.reads_left.store(budget, Ordering::SeqCst);
        self.writes_left.store(budget, Ordering::SeqCst);
    }

    /// Set the two budgets independently. On a combined-budget volume
    /// only `writes` takes effect (it is the shared counter).
    pub fn heal_rw(&self, reads: u64, writes: u64) {
        self.reads_left.store(reads, Ordering::SeqCst);
        self.writes_left.store(writes, Ordering::SeqCst);
    }

    /// Operations left before the next failure: the shared counter on a
    /// combined-budget volume, the sum of both otherwise.
    pub fn remaining(&self) -> u64 {
        if self.shared_budget {
            self.writes_left.load(Ordering::SeqCst)
        } else {
            self.reads_left.load(Ordering::SeqCst) + self.writes_left.load(Ordering::SeqCst)
        }
    }

    /// Injected fault counts so far, as `(read_faults, write_faults)`.
    pub fn fault_counts(&self) -> (u64, u64) {
        (
            self.read_faults.load(Ordering::SeqCst),
            self.write_faults.load(Ordering::SeqCst),
        )
    }

    fn charge(counter: &AtomicU64, faults: &AtomicU64, what: &str) -> Result<()> {
        // Decrement-if-positive; at zero every operation fails.
        let mut cur = counter.load(Ordering::SeqCst);
        loop {
            if cur == 0 {
                faults.fetch_add(1, Ordering::SeqCst);
                return Err(Error::Io(std::io::Error::other(format!(
                    "injected fault: {what} budget exhausted"
                ))));
            }
            match counter.compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    fn charge_read(&self) -> Result<()> {
        let counter = if self.shared_budget {
            &self.writes_left
        } else {
            &self.reads_left
        };
        Self::charge(counter, &self.read_faults, "I/O")
    }

    fn charge_write(&self) -> Result<()> {
        Self::charge(&self.writes_left, &self.write_faults, "I/O")
    }
}

impl Volume for FaultyVolume {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_into(&self, start: PageId, pages: u64, buf: &mut [u8]) -> Result<()> {
        self.charge_read()?;
        self.inner.read_into(start, pages, buf)
    }

    fn write_pages(&self, start: PageId, data: &[u8]) -> Result<()> {
        self.charge_write()?;
        self.inner.write_pages(start, data)
    }

    fn stats(&self) -> IoStats {
        let mut s = self.inner.stats();
        s.read_faults += self.read_faults.load(Ordering::SeqCst);
        s.write_faults += self.write_faults.load(Ordering::SeqCst);
        s
    }

    fn reset_stats(&self) {
        self.read_faults.store(0, Ordering::SeqCst);
        self.write_faults.store(0, Ordering::SeqCst);
        self.inner.reset_stats();
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::MemVolume;
    use crate::DiskProfile;

    #[test]
    fn fails_after_budget_and_heals() {
        let inner = MemVolume::with_profile(128, 16, DiskProfile::FREE).shared();
        let f = FaultyVolume::new(inner, 2);
        f.write_pages(0, &[1u8; 128]).unwrap();
        assert_eq!(f.read_pages(0, 1).unwrap()[0], 1);
        assert!(f.read_pages(0, 1).is_err(), "budget exhausted");
        assert!(f.write_pages(0, &[2u8; 128]).is_err());
        f.heal(1);
        assert_eq!(f.read_pages(0, 1).unwrap()[0], 1, "healed");
        assert!(f.read_pages(0, 1).is_err());
        assert_eq!(f.fault_counts(), (2, 1));
    }

    #[test]
    fn split_budgets_are_independent() {
        let inner = MemVolume::with_profile(128, 16, DiskProfile::FREE).shared();
        let f = FaultyVolume::with_budgets(inner, u64::MAX, 1);
        f.write_pages(0, &[7u8; 128]).unwrap();
        assert!(f.write_pages(1, &[7u8; 128]).is_err(), "writes exhausted");
        // Reads keep working — exactly what a crashed-then-reopened
        // volume needs.
        for _ in 0..10 {
            assert_eq!(f.read_pages(0, 1).unwrap()[0], 7);
        }
        assert!(f.write_pages(1, &[7u8; 128]).is_err());
        assert_eq!(f.fault_counts(), (0, 2));
        let s = f.stats();
        assert_eq!(s.read_faults, 0);
        assert_eq!(s.write_faults, 2);
        f.heal_rw(0, 5);
        assert!(f.read_pages(0, 1).is_err(), "reads now exhausted");
        f.write_pages(1, &[8u8; 128]).unwrap();
    }

    #[test]
    fn reset_stats_clears_fault_counters() {
        let inner = MemVolume::with_profile(128, 16, DiskProfile::FREE).shared();
        let f = FaultyVolume::with_budgets(inner, 0, 0);
        assert!(f.read_pages(0, 1).is_err());
        assert!(f.write_pages(0, &[0u8; 128]).is_err());
        assert_eq!(f.stats().faults(), 2);
        f.reset_stats();
        assert_eq!(f.stats().faults(), 0);
    }
}
