//! Fault injection: a volume wrapper that starts failing after a
//! configurable number of operations. Used by the failure-injection
//! tests to prove that a mid-operation I/O error surfaces as an error
//! (never a panic) and that, under a transaction scope, the committed
//! state survives (§4.5).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::stats::IoStats;
use crate::volume::{SharedVolume, Volume};
use crate::PageId;

/// A volume that injects an I/O error after `budget` successful
/// operations (reads and writes both count). Further operations keep
/// failing until [`FaultyVolume::heal`] is called.
pub struct FaultyVolume {
    inner: SharedVolume,
    remaining: AtomicU64,
}

impl FaultyVolume {
    /// Wrap `inner`; the first `budget` operations succeed.
    pub fn new(inner: SharedVolume, budget: u64) -> Arc<FaultyVolume> {
        Arc::new(FaultyVolume {
            inner,
            remaining: AtomicU64::new(budget),
        })
    }

    /// Allow `budget` more operations.
    pub fn heal(&self, budget: u64) {
        self.remaining.store(budget, Ordering::SeqCst);
    }

    /// Operations left before the next failure.
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::SeqCst)
    }

    fn charge(&self) -> Result<()> {
        // Decrement-if-positive; at zero every operation fails.
        let mut cur = self.remaining.load(Ordering::SeqCst);
        loop {
            if cur == 0 {
                return Err(Error::Io(std::io::Error::other(
                    "injected fault: I/O budget exhausted",
                )));
            }
            match self
                .remaining
                .compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }
}

impl Volume for FaultyVolume {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_into(&self, start: PageId, pages: u64, buf: &mut [u8]) -> Result<()> {
        self.charge()?;
        self.inner.read_into(start, pages, buf)
    }

    fn write_pages(&self, start: PageId, data: &[u8]) -> Result<()> {
        self.charge()?;
        self.inner.write_pages(start, data)
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::MemVolume;
    use crate::DiskProfile;

    #[test]
    fn fails_after_budget_and_heals() {
        let inner = MemVolume::with_profile(128, 16, DiskProfile::FREE).shared();
        let f = FaultyVolume::new(inner, 2);
        f.write_pages(0, &[1u8; 128]).unwrap();
        assert_eq!(f.read_pages(0, 1).unwrap()[0], 1);
        assert!(f.read_pages(0, 1).is_err(), "budget exhausted");
        assert!(f.write_pages(0, &[2u8; 128]).is_err());
        f.heal(1);
        assert_eq!(f.read_pages(0, 1).unwrap()[0], 1, "healed");
        assert!(f.read_pages(0, 1).is_err());
    }
}
