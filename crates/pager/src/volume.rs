//! Paged volumes: fixed arrays of pages with contiguous multi-page I/O.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::{on_volume_io, LockClass, TrackedMutex};

use crate::disk::{DiskModel, DiskProfile};
use crate::error::{Error, Result};
use crate::stats::IoStats;
use crate::PageId;

/// A shareable handle to a volume.
pub type SharedVolume = Arc<dyn Volume>;

/// A fixed-geometry array of pages supporting physically contiguous
/// multi-page reads and writes.
///
/// All methods take `&self`; implementations use interior mutability so
/// a volume can be shared between the buddy manager and the large object
/// manager. Every access goes through the volume's [`DiskModel`], which
/// is how the workspace measures the seek/transfer costs the paper
/// reports.
pub trait Volume: Send + Sync {
    /// Size of one page in bytes.
    fn page_size(&self) -> usize;

    /// Total number of pages in the volume.
    fn num_pages(&self) -> u64;

    /// Read `pages` physically contiguous pages starting at `start`
    /// into `buf` (which must be exactly `pages * page_size` bytes).
    fn read_into(&self, start: PageId, pages: u64, buf: &mut [u8]) -> Result<()>;

    /// Write a whole number of pages starting at `start`.
    fn write_pages(&self, start: PageId, data: &[u8]) -> Result<()>;

    /// Snapshot of the cumulative I/O counters.
    fn stats(&self) -> IoStats;

    /// Zero the I/O counters and park the simulated head.
    fn reset_stats(&self);

    /// Force all completed writes to stable storage (the commit-point
    /// barrier of a write-ahead log). In-memory volumes are trivially
    /// stable, so the default is a no-op; [`FileVolume`] issues a real
    /// fsync.
    fn sync(&self) -> Result<()> {
        Ok(())
    }

    /// Read `pages` contiguous pages starting at `start` into a fresh
    /// buffer.
    fn read_pages(&self, start: PageId, pages: u64) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; (pages as usize) * self.page_size()];
        self.read_into(start, pages, &mut buf)?;
        Ok(buf)
    }

    /// Hit/miss counters of a caching layer, if this volume has one.
    /// Bare volumes report `None`; [`crate::CachedVolume`] overrides.
    /// This lets upper layers (the observability snapshots) surface
    /// cache effectiveness without downcasting.
    fn cache_stats(&self) -> Option<crate::CacheStats> {
        None
    }
}

fn check_access(start: PageId, pages: u64, volume_pages: u64) -> Result<()> {
    if start
        .checked_add(pages)
        .is_none_or(|end| end > volume_pages)
    {
        return Err(Error::OutOfBounds {
            start,
            pages,
            volume_pages,
        });
    }
    Ok(())
}

fn check_buffer(len: usize, page_size: usize) -> Result<u64> {
    if !len.is_multiple_of(page_size) {
        return Err(Error::UnalignedBuffer { len, page_size });
    }
    Ok((len / page_size) as u64)
}

/// An in-memory volume: the default substrate for experiments, where the
/// [`DiskModel`] supplies the simulated cost.
pub struct MemVolume {
    page_size: usize,
    num_pages: u64,
    // Bottom of the lock hierarchy (DESIGN.md §13): the volume mutex
    // *is* the I/O lock, so it is the only class that may cover disk
    // work and nothing may be acquired under it.
    // lock-class: inner = pager.volume rank = 80 io = allowed
    inner: TrackedMutex<MemInner>,
}

struct MemInner {
    data: Vec<u8>,
    disk: DiskModel,
}

impl MemVolume {
    /// Create a zero-filled volume of `num_pages` pages of `page_size`
    /// bytes, with the default (1992-vintage) disk profile.
    pub fn new(page_size: usize, num_pages: u64) -> Self {
        Self::with_profile(page_size, num_pages, DiskProfile::default())
    }

    /// Create a volume with an explicit disk timing profile.
    pub fn with_profile(page_size: usize, num_pages: u64, profile: DiskProfile) -> Self {
        assert!(page_size > 0, "page size must be positive");
        let bytes = (page_size as u64)
            .checked_mul(num_pages)
            .expect("volume size overflows");
        MemVolume {
            page_size,
            num_pages,
            inner: TrackedMutex::new(
                LockClass::allows_io("pager.volume"),
                MemInner {
                    data: vec![0u8; bytes as usize],
                    disk: DiskModel::new(profile),
                },
            ),
        }
    }

    /// Rebuild a volume from a raw byte image (e.g. the disk image a
    /// [`crate::CrashPointVolume`] captured at its crash point). The
    /// image length must be a whole number of pages.
    pub fn from_bytes(page_size: usize, image: Vec<u8>, profile: DiskProfile) -> Self {
        assert!(page_size > 0, "page size must be positive");
        assert!(
            image.len().is_multiple_of(page_size),
            "image of {} bytes is not a whole number of {page_size}-byte pages",
            image.len()
        );
        let num_pages = (image.len() / page_size) as u64;
        MemVolume {
            page_size,
            num_pages,
            inner: TrackedMutex::new(
                LockClass::allows_io("pager.volume"),
                MemInner {
                    data: image,
                    disk: DiskModel::new(profile),
                },
            ),
        }
    }

    /// Wrap in an [`Arc`] for sharing.
    pub fn shared(self) -> SharedVolume {
        Arc::new(self)
    }
}

impl Volume for MemVolume {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn read_into(&self, start: PageId, pages: u64, buf: &mut [u8]) -> Result<()> {
        on_volume_io("read");
        check_access(start, pages, self.num_pages)?;
        let want = (pages as usize) * self.page_size;
        assert_eq!(buf.len(), want, "read buffer size mismatch");
        let mut inner = self.inner.lock();
        inner.disk.record_read(start, pages);
        let off = (start as usize) * self.page_size;
        buf.copy_from_slice(&inner.data[off..off + want]);
        Ok(())
    }

    fn write_pages(&self, start: PageId, data: &[u8]) -> Result<()> {
        on_volume_io("write");
        let pages = check_buffer(data.len(), self.page_size)?;
        check_access(start, pages, self.num_pages)?;
        let mut inner = self.inner.lock();
        inner.disk.record_write(start, pages);
        let off = (start as usize) * self.page_size;
        inner.data[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.inner.lock().disk.stats()
    }

    fn reset_stats(&self) {
        self.inner.lock().disk.reset();
    }

    fn sync(&self) -> Result<()> {
        // Trivially stable, but the lockdep witness still checks that
        // no I/O-forbidding latch covers the barrier.
        on_volume_io("sync");
        Ok(())
    }
}

/// A file-backed volume, for runs that should survive the process or
/// exceed memory. Uses ordinary seek+read/write on a preallocated file;
/// the [`DiskModel`] still supplies the *simulated* cost so experiment
/// output is deterministic across machines.
pub struct FileVolume {
    page_size: usize,
    num_pages: u64,
    // lock-class: inner = pager.volume rank = 80 io = allowed
    inner: TrackedMutex<FileInner>,
}

struct FileInner {
    file: File,
    disk: DiskModel,
}

impl FileVolume {
    /// Create (truncating) a file-backed volume of the given geometry.
    pub fn create<P: AsRef<Path>>(
        path: P,
        page_size: usize,
        num_pages: u64,
        profile: DiskProfile,
    ) -> Result<Self> {
        assert!(page_size > 0, "page size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(page_size as u64 * num_pages)?;
        Ok(FileVolume {
            page_size,
            num_pages,
            inner: TrackedMutex::new(
                LockClass::allows_io("pager.volume"),
                FileInner {
                    file,
                    disk: DiskModel::new(profile),
                },
            ),
        })
    }

    /// Open an existing volume file with known geometry.
    pub fn open<P: AsRef<Path>>(path: P, page_size: usize, profile: DiskProfile) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let num_pages = len / page_size as u64;
        Ok(FileVolume {
            page_size,
            num_pages,
            inner: TrackedMutex::new(
                LockClass::allows_io("pager.volume"),
                FileInner {
                    file,
                    disk: DiskModel::new(profile),
                },
            ),
        })
    }

    /// Wrap in an [`Arc`] for sharing.
    pub fn shared(self) -> SharedVolume {
        Arc::new(self)
    }
}

impl Volume for FileVolume {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn read_into(&self, start: PageId, pages: u64, buf: &mut [u8]) -> Result<()> {
        on_volume_io("read");
        check_access(start, pages, self.num_pages)?;
        let want = (pages as usize) * self.page_size;
        assert_eq!(buf.len(), want, "read buffer size mismatch");
        let mut inner = self.inner.lock();
        inner.disk.record_read(start, pages);
        inner
            .file
            .seek(SeekFrom::Start(start * self.page_size as u64))?;
        inner.file.read_exact(buf)?;
        Ok(())
    }

    fn write_pages(&self, start: PageId, data: &[u8]) -> Result<()> {
        on_volume_io("write");
        let pages = check_buffer(data.len(), self.page_size)?;
        check_access(start, pages, self.num_pages)?;
        let mut inner = self.inner.lock();
        inner.disk.record_write(start, pages);
        inner
            .file
            .seek(SeekFrom::Start(start * self.page_size as u64))?;
        inner.file.write_all(data)?;
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.inner.lock().disk.stats()
    }

    fn reset_stats(&self) {
        self.inner.lock().disk.reset();
    }

    fn sync(&self) -> Result<()> {
        on_volume_io("sync");
        self.inner.lock().file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_volume_roundtrip() {
        let v = MemVolume::new(128, 64);
        let data: Vec<u8> = (0..128 * 3).map(|i| (i % 251) as u8).collect();
        v.write_pages(5, &data).unwrap();
        assert_eq!(v.read_pages(5, 3).unwrap(), data);
    }

    #[test]
    fn mem_volume_rejects_out_of_bounds() {
        let v = MemVolume::new(128, 4);
        assert!(matches!(v.read_pages(3, 2), Err(Error::OutOfBounds { .. })));
        assert!(matches!(
            v.write_pages(4, &[0u8; 128]),
            Err(Error::OutOfBounds { .. })
        ));
        // Overflow-proof.
        assert!(matches!(
            v.read_pages(u64::MAX, 2),
            Err(Error::OutOfBounds { .. })
        ));
    }

    #[test]
    fn mem_volume_rejects_unaligned_buffers() {
        let v = MemVolume::new(128, 4);
        assert!(matches!(
            v.write_pages(0, &[0u8; 100]),
            Err(Error::UnalignedBuffer { .. })
        ));
    }

    #[test]
    fn stats_count_seeks_and_transfers() {
        let v = MemVolume::new(64, 100);
        v.write_pages(0, &vec![1u8; 64 * 10]).unwrap(); // seek 1
        v.read_pages(0, 5).unwrap(); // seek 2 (head was at 10)
        v.read_pages(5, 5).unwrap(); // sequential, no seek
        v.read_pages(50, 1).unwrap(); // seek 3
        let s = v.stats();
        assert_eq!(s.seeks, 3);
        assert_eq!(s.page_reads, 11);
        assert_eq!(s.page_writes, 10);
        v.reset_stats();
        assert_eq!(v.stats(), IoStats::default());
    }

    #[test]
    fn zero_page_reads_and_writes_are_legal() {
        let v = MemVolume::new(64, 8);
        assert!(v.read_pages(8, 0).unwrap().is_empty());
        v.write_pages(8, &[]).unwrap();
    }

    #[test]
    fn file_volume_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("eos-pager-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("vol.eos");
        {
            let v = FileVolume::create(&path, 256, 32, DiskProfile::FREE).unwrap();
            let data: Vec<u8> = (0..512).map(|i| (i * 7 % 256) as u8).collect();
            v.write_pages(10, &data).unwrap();
            assert_eq!(v.read_pages(10, 2).unwrap(), data);
        }
        {
            let v = FileVolume::open(&path, 256, DiskProfile::FREE).unwrap();
            assert_eq!(v.num_pages(), 32);
            let back = v.read_pages(10, 2).unwrap();
            assert_eq!(back[0], 0);
            assert_eq!(back[1], 7);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_volume_is_object_safe() {
        let v: SharedVolume = MemVolume::new(64, 8).shared();
        v.write_pages(0, &[9u8; 64]).unwrap();
        assert_eq!(v.read_pages(0, 1).unwrap()[0], 9);
    }
}
