//! A write-through LRU page cache layered over any [`Volume`].
//!
//! The paper's cost statements assume a cold buffer ("the cost of the
//! above example operation, *including indices except the root*", §4.2)
//! — the experiments therefore run uncached by default. Real
//! deployments keep hot index and directory pages resident; wrapping
//! the volume in a [`CachedVolume`] shows how much of the index cost
//! disappears (the cache-ablation rows of the bench harness).
//!
//! Policy: only **single-page** accesses are cached. In this workspace
//! single-page traffic is exactly the index-page and buddy-directory
//! traffic, while multi-page calls are leaf-segment streams that would
//! otherwise flush the cache with bytes read once (classic scan
//! pollution).
//!
//! Coherence under sharing: a read miss performs the inner read
//! **outside** the state latch (so concurrent hits are not serialized
//! behind disk I/O), which opens a window where a concurrent
//! `write_pages` can land between the miss and the fill. Every write
//! bumps a global version tick; the miss path re-validates the tick
//! before inserting and discards the (possibly stale) fill if any
//! write intervened.

use std::collections::{BTreeMap, HashMap};

use parking_lot::{LockClass, TrackedMutex};

use crate::error::Result;
use crate::stats::IoStats;
use crate::volume::{SharedVolume, Volume};
use crate::PageId;

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Single-page reads served from memory.
    pub hits: u64,
    /// Single-page reads that went to the volume.
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1].
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

struct CacheState {
    /// page → (data, last-use tick)
    pages: HashMap<PageId, (Vec<u8>, u64)>,
    /// last-use tick → page, kept in step with `pages`: the LRU order.
    /// Eviction pops the smallest tick in O(log n) instead of scanning
    /// the whole map per miss.
    order: BTreeMap<u64, PageId>,
    tick: u64,
    /// Bumped by every `write_pages`; the read-miss fill path compares
    /// against the value it saw at miss time and discards the fill if
    /// any write intervened while the state latch was dropped.
    version: u64,
    stats: CacheStats,
}

impl CacheState {
    /// Record an access to a resident page, keeping `order` in step.
    fn touch(&mut self, page: PageId) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, t)) = self.pages.get_mut(&page) {
            self.order.remove(t);
            *t = tick;
            self.order.insert(tick, page);
        }
    }

    /// Insert (or refresh) a page, keeping `order` in step.
    fn insert(&mut self, page: PageId, data: Vec<u8>) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((old, t)) = self.pages.insert(page, (data, tick)) {
            drop(old);
            self.order.remove(&t);
        }
        self.order.insert(tick, page);
    }

    /// Drop a page, keeping `order` in step.
    fn remove(&mut self, page: PageId) {
        if let Some((_, t)) = self.pages.remove(&page) {
            self.order.remove(&t);
        }
    }

    /// Evict least-recently-used pages until at most `capacity` remain.
    fn evict_if_full(&mut self, capacity: usize) {
        while self.pages.len() > capacity {
            let (_, lru) = self.order.pop_first().expect("order tracks pages");
            self.pages.remove(&lru);
        }
    }
}

/// A write-through LRU cache of single-page accesses.
///
/// ```
/// use eos_pager::{CachedVolume, DiskProfile, MemVolume, Volume};
///
/// let inner = MemVolume::with_profile(128, 32, DiskProfile::FREE).shared();
/// let cached = CachedVolume::new(inner, 8);
/// cached.write_pages(3, &[9u8; 128]).unwrap();
/// for _ in 0..5 {
///     assert_eq!(cached.read_pages(3, 1).unwrap()[0], 9);
/// }
/// assert_eq!(cached.cache_stats().hits, 5);
/// ```
pub struct CachedVolume {
    inner: SharedVolume,
    capacity: usize,
    // Never held across `inner` I/O: the miss path drops it, reads,
    // then re-validates under a fresh acquisition (see module docs).
    // lock-class: state = pager.cache rank = 70 io = forbidden
    state: TrackedMutex<CacheState>,
}

impl CachedVolume {
    /// Wrap `inner` with an LRU cache of `capacity` pages.
    pub fn new(inner: SharedVolume, capacity: usize) -> CachedVolume {
        assert!(capacity > 0, "zero-capacity cache");
        CachedVolume {
            inner,
            capacity,
            state: TrackedMutex::new(
                LockClass::forbids_io("pager.cache"),
                CacheState {
                    pages: HashMap::new(),
                    order: BTreeMap::new(),
                    tick: 0,
                    version: 0,
                    stats: CacheStats::default(),
                },
            ),
        }
    }

    /// Wrap in an [`std::sync::Arc`].
    pub fn shared(self) -> SharedVolume {
        std::sync::Arc::new(self)
    }

    /// Hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Clear the cache and its counters.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.pages.clear();
        st.order.clear();
        st.stats = CacheStats::default();
    }

    /// Resident pages in eviction (least- to most-recently-used) order.
    /// Diagnostics/testing only.
    pub fn lru_order(&self) -> Vec<PageId> {
        self.state.lock().order.values().copied().collect()
    }
}

impl Volume for CachedVolume {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_into(&self, start: PageId, pages: u64, buf: &mut [u8]) -> Result<()> {
        if pages != 1 {
            // Multi-page (leaf-segment) traffic bypasses the cache.
            return self.inner.read_into(start, pages, buf);
        }
        let version = {
            let mut st = self.state.lock();
            if let Some((data, _)) = st.pages.get(&start) {
                buf.copy_from_slice(data);
                st.touch(start);
                st.stats.hits += 1;
                return Ok(());
            }
            st.version
        };
        // Miss: read outside the latch so concurrent hits are not
        // serialized behind the inner volume's I/O.
        self.inner.read_into(start, 1, buf)?;
        let mut st = self.state.lock();
        st.stats.misses += 1;
        if st.version == version {
            st.insert(start, buf.to_vec());
            st.evict_if_full(self.capacity);
        }
        // else: a write landed while the latch was dropped; `buf` may
        // predate it. The caller still gets a consistent point-in-time
        // read, but the fill must not clobber the newer cached copy
        // (or re-instate a page a multi-page write invalidated).
        Ok(())
    }

    fn write_pages(&self, start: PageId, data: &[u8]) -> Result<()> {
        // Write-through; keep cached copies coherent.
        self.inner.write_pages(start, data)?;
        let ps = self.page_size();
        let pages = (data.len() / ps) as u64;
        let mut st = self.state.lock();
        st.version += 1;
        if pages == 1 {
            st.insert(start, data.to_vec());
            st.evict_if_full(self.capacity);
        } else {
            // Invalidate any cached page the multi-page write covers.
            for p in start..start + pages {
                st.remove(p);
            }
        }
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }

    fn sync(&self) -> Result<()> {
        // Write-through cache: nothing buffered here, delegate.
        self.inner.sync()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(CachedVolume::cache_stats(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::MemVolume;
    use crate::DiskProfile;
    use parking_lot::{Condvar, Mutex};
    use std::sync::Arc;

    fn cached(cap: usize) -> (Arc<CachedVolume>, SharedVolume) {
        let inner = MemVolume::with_profile(128, 64, DiskProfile::VINTAGE_1992).shared();
        let c = Arc::new(CachedVolume::new(inner.clone(), cap));
        (c, inner)
    }

    #[test]
    fn repeated_single_page_reads_hit() {
        let (c, inner) = cached(4);
        c.write_pages(5, &[9u8; 128]).unwrap();
        let before = inner.stats().page_reads;
        for _ in 0..10 {
            assert_eq!(c.read_pages(5, 1).unwrap()[0], 9);
        }
        assert_eq!(inner.stats().page_reads, before, "all served from cache");
        let s = c.cache_stats();
        assert_eq!(s.hits, 10);
        assert_eq!(s.misses, 0, "the write primed the cache");
    }

    #[test]
    fn multi_page_reads_bypass_and_writes_invalidate() {
        let (c, inner) = cached(8);
        c.write_pages(0, &[1u8; 128 * 4]).unwrap(); // multi-page: not cached
        let r0 = inner.stats().page_reads;
        let _ = c.read_pages(0, 4).unwrap();
        assert_eq!(inner.stats().page_reads, r0 + 4, "bypassed");
        // Prime page 2, then overwrite it via a multi-page write.
        let _ = c.read_pages(2, 1).unwrap();
        assert_eq!(c.cache_stats().misses, 1);
        c.write_pages(0, &[7u8; 128 * 4]).unwrap();
        assert_eq!(c.read_pages(2, 1).unwrap()[0], 7, "stale copy dropped");
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let (c, inner) = cached(2);
        for p in 0..3u64 {
            let _ = c.read_pages(p, 1).unwrap(); // misses: 0,1,2; evicts 0
        }
        let _ = c.read_pages(2, 1).unwrap(); // hit
        let _ = c.read_pages(1, 1).unwrap(); // hit
        let before = inner.stats().page_reads;
        let _ = c.read_pages(0, 1).unwrap(); // miss again (was evicted)
        assert_eq!(inner.stats().page_reads, before + 1);
        let s = c.cache_stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 4);
    }

    #[test]
    fn lru_order_tracks_touches_and_evicts_in_order() {
        let (c, _) = cached(3);
        for p in 0..3u64 {
            let _ = c.read_pages(p, 1).unwrap();
        }
        assert_eq!(c.lru_order(), vec![0, 1, 2]);
        // Touching 0 moves it to the hot end; 1 becomes the victim.
        let _ = c.read_pages(0, 1).unwrap();
        assert_eq!(c.lru_order(), vec![1, 2, 0]);
        let _ = c.read_pages(3, 1).unwrap(); // evicts 1
        assert_eq!(c.lru_order(), vec![2, 0, 3]);
        // A single-page write refreshes recency too.
        c.write_pages(2, &[5u8; 128]).unwrap();
        assert_eq!(c.lru_order(), vec![0, 3, 2]);
        let _ = c.read_pages(4, 1).unwrap(); // evicts 0
        assert_eq!(c.lru_order(), vec![3, 2, 4]);
        // Invalidation keeps the order map in step with the page map.
        c.write_pages(2, &[6u8; 128 * 2]).unwrap(); // multi-page: drops 2,3
        assert_eq!(c.lru_order(), vec![4]);
    }

    #[test]
    fn hit_ratio_math() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.hit_ratio(), 0.75);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    /// A volume whose next single-page read parks after completing the
    /// inner read — deterministically holding a reader inside the
    /// miss-fill window (state latch dropped, stale bytes in hand).
    struct GateVolume {
        inner: SharedVolume,
        st: Mutex<GateState>,
        cv: Condvar,
    }

    #[derive(Default)]
    struct GateState {
        armed: bool,
        parked: bool,
        released: bool,
    }

    impl GateVolume {
        fn new(inner: SharedVolume) -> Arc<GateVolume> {
            Arc::new(GateVolume {
                inner,
                st: Mutex::new(GateState::default()),
                cv: Condvar::new(),
            })
        }

        /// Arm the gate: the next single-page read parks after reading.
        fn arm(&self) {
            let mut st = self.st.lock();
            st.armed = true;
            st.parked = false;
            st.released = false;
        }

        /// Block until a reader is parked inside the window.
        fn wait_parked(&self) {
            let mut st = self.st.lock();
            while !st.parked {
                self.cv.wait(&mut st);
            }
        }

        /// Let the parked reader continue.
        fn release(&self) {
            let mut st = self.st.lock();
            st.released = true;
            self.cv.notify_all();
        }
    }

    impl Volume for GateVolume {
        fn page_size(&self) -> usize {
            self.inner.page_size()
        }
        fn num_pages(&self) -> u64 {
            self.inner.num_pages()
        }
        fn read_into(&self, start: PageId, pages: u64, buf: &mut [u8]) -> Result<()> {
            self.inner.read_into(start, pages, buf)?;
            if pages == 1 {
                let mut st = self.st.lock();
                if st.armed {
                    st.armed = false;
                    st.parked = true;
                    self.cv.notify_all();
                    while !st.released {
                        self.cv.wait(&mut st);
                    }
                }
            }
            Ok(())
        }
        fn write_pages(&self, start: PageId, data: &[u8]) -> Result<()> {
            self.inner.write_pages(start, data)
        }
        fn stats(&self) -> IoStats {
            self.inner.stats()
        }
        fn reset_stats(&self) {
            self.inner.reset_stats();
        }
    }

    /// Regression for the miss-window race: a write that lands while a
    /// miss-fill holds stale bytes outside the latch must not be
    /// clobbered by the stale insert.
    #[test]
    fn concurrent_write_in_miss_window_is_not_clobbered() {
        let mem = MemVolume::with_profile(128, 16, DiskProfile::FREE).shared();
        mem.write_pages(0, &[1u8; 128]).unwrap(); // pre-write contents
        let gate = GateVolume::new(mem);
        let c = Arc::new(CachedVolume::new(gate.clone(), 8));

        gate.arm();
        let c2 = c.clone();
        let reader = std::thread::spawn(move || c2.read_pages(0, 1).unwrap());

        // The reader is now parked inside the miss window holding the
        // stale pre-write page; land a write in that window.
        gate.wait_parked();
        c.write_pages(0, &[2u8; 128]).unwrap();
        gate.release();

        let stale = reader.join().unwrap();
        // The in-flight read itself may legitimately observe either
        // version (it raced the write) — here the gate ordered it
        // before the write deterministically.
        assert_eq!(stale[0], 1);
        // But the cache must now serve the *post-write* contents: the
        // stale fill may not overwrite the newer copy.
        assert_eq!(
            c.read_pages(0, 1).unwrap()[0],
            2,
            "stale fill clobbered the write"
        );

        // Same window, but the write is multi-page (invalidation): the
        // stale fill must not re-instate the dropped page either.
        gate.arm();
        let c2 = c.clone();
        let reader = std::thread::spawn(move || c2.read_pages(4, 1).unwrap());
        gate.wait_parked();
        c.write_pages(4, &[3u8; 128 * 2]).unwrap();
        gate.release();
        reader.join().unwrap();
        assert_eq!(
            c.read_pages(4, 1).unwrap()[0],
            3,
            "stale fill resurrected an invalidated page"
        );
    }
}
