//! A write-through LRU page cache layered over any [`Volume`].
//!
//! The paper's cost statements assume a cold buffer ("the cost of the
//! above example operation, *including indices except the root*", §4.2)
//! — the experiments therefore run uncached by default. Real
//! deployments keep hot index and directory pages resident; wrapping
//! the volume in a [`CachedVolume`] shows how much of the index cost
//! disappears (the cache-ablation rows of the bench harness).
//!
//! Policy: only **single-page** accesses are cached. In this workspace
//! single-page traffic is exactly the index-page and buddy-directory
//! traffic, while multi-page calls are leaf-segment streams that would
//! otherwise flush the cache with bytes read once (classic scan
//! pollution).

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::error::Result;
use crate::stats::IoStats;
use crate::volume::{SharedVolume, Volume};
use crate::PageId;

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Single-page reads served from memory.
    pub hits: u64,
    /// Single-page reads that went to the volume.
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1].
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

struct CacheState {
    /// page → (data, last-use tick)
    pages: HashMap<PageId, (Vec<u8>, u64)>,
    tick: u64,
    stats: CacheStats,
}

/// A write-through LRU cache of single-page accesses.
///
/// ```
/// use eos_pager::{CachedVolume, DiskProfile, MemVolume, Volume};
///
/// let inner = MemVolume::with_profile(128, 32, DiskProfile::FREE).shared();
/// let cached = CachedVolume::new(inner, 8);
/// cached.write_pages(3, &[9u8; 128]).unwrap();
/// for _ in 0..5 {
///     assert_eq!(cached.read_pages(3, 1).unwrap()[0], 9);
/// }
/// assert_eq!(cached.cache_stats().hits, 5);
/// ```
pub struct CachedVolume {
    inner: SharedVolume,
    capacity: usize,
    state: Mutex<CacheState>,
}

impl CachedVolume {
    /// Wrap `inner` with an LRU cache of `capacity` pages.
    pub fn new(inner: SharedVolume, capacity: usize) -> CachedVolume {
        assert!(capacity > 0, "zero-capacity cache");
        CachedVolume {
            inner,
            capacity,
            state: Mutex::new(CacheState {
                pages: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// Wrap in an [`std::sync::Arc`].
    pub fn shared(self) -> SharedVolume {
        std::sync::Arc::new(self)
    }

    /// Hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Clear the cache and its counters.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.pages.clear();
        st.stats = CacheStats::default();
    }

    fn evict_if_full(st: &mut CacheState, capacity: usize) {
        while st.pages.len() > capacity {
            let lru = st
                .pages
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(&p, _)| p)
                .expect("non-empty");
            st.pages.remove(&lru);
        }
    }
}

impl Volume for CachedVolume {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_into(&self, start: PageId, pages: u64, buf: &mut [u8]) -> Result<()> {
        if pages != 1 {
            // Multi-page (leaf-segment) traffic bypasses the cache.
            return self.inner.read_into(start, pages, buf);
        }
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        if let Some((data, t)) = st.pages.get_mut(&start) {
            buf.copy_from_slice(data);
            *t = tick;
            st.stats.hits += 1;
            return Ok(());
        }
        drop(st);
        self.inner.read_into(start, 1, buf)?;
        let mut st = self.state.lock();
        st.stats.misses += 1;
        let tick = st.tick;
        st.pages.insert(start, (buf.to_vec(), tick));
        Self::evict_if_full(&mut st, self.capacity);
        Ok(())
    }

    fn write_pages(&self, start: PageId, data: &[u8]) -> Result<()> {
        // Write-through; keep cached copies coherent.
        self.inner.write_pages(start, data)?;
        let ps = self.page_size();
        let pages = (data.len() / ps) as u64;
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        if pages == 1 {
            st.pages.insert(start, (data.to_vec(), tick));
            Self::evict_if_full(&mut st, self.capacity);
        } else {
            // Invalidate any cached page the multi-page write covers.
            for p in start..start + pages {
                st.pages.remove(&p);
            }
        }
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }

    fn sync(&self) -> Result<()> {
        // Write-through cache: nothing buffered here, delegate.
        self.inner.sync()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(CachedVolume::cache_stats(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::MemVolume;
    use crate::DiskProfile;

    fn cached(cap: usize) -> (std::sync::Arc<CachedVolume>, SharedVolume) {
        let inner = MemVolume::with_profile(128, 64, DiskProfile::VINTAGE_1992).shared();
        let c = std::sync::Arc::new(CachedVolume::new(inner.clone(), cap));
        (c, inner)
    }

    #[test]
    fn repeated_single_page_reads_hit() {
        let (c, inner) = cached(4);
        c.write_pages(5, &[9u8; 128]).unwrap();
        let before = inner.stats().page_reads;
        for _ in 0..10 {
            assert_eq!(c.read_pages(5, 1).unwrap()[0], 9);
        }
        assert_eq!(inner.stats().page_reads, before, "all served from cache");
        let s = c.cache_stats();
        assert_eq!(s.hits, 10);
        assert_eq!(s.misses, 0, "the write primed the cache");
    }

    #[test]
    fn multi_page_reads_bypass_and_writes_invalidate() {
        let (c, inner) = cached(8);
        c.write_pages(0, &[1u8; 128 * 4]).unwrap(); // multi-page: not cached
        let r0 = inner.stats().page_reads;
        let _ = c.read_pages(0, 4).unwrap();
        assert_eq!(inner.stats().page_reads, r0 + 4, "bypassed");
        // Prime page 2, then overwrite it via a multi-page write.
        let _ = c.read_pages(2, 1).unwrap();
        assert_eq!(c.cache_stats().misses, 1);
        c.write_pages(0, &[7u8; 128 * 4]).unwrap();
        assert_eq!(c.read_pages(2, 1).unwrap()[0], 7, "stale copy dropped");
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let (c, inner) = cached(2);
        for p in 0..3u64 {
            let _ = c.read_pages(p, 1).unwrap(); // misses: 0,1,2; evicts 0
        }
        let _ = c.read_pages(2, 1).unwrap(); // hit
        let _ = c.read_pages(1, 1).unwrap(); // hit
        let before = inner.stats().page_reads;
        let _ = c.read_pages(0, 1).unwrap(); // miss again (was evicted)
        assert_eq!(inner.stats().page_reads, before + 1);
        let s = c.cache_stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 4);
    }

    #[test]
    fn hit_ratio_math() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.hit_ratio(), 0.75);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
