//! Deterministic crash-point injection.
//!
//! [`CrashPointVolume`] generalizes [`crate::FaultyVolume`] from "fail
//! after a budget" to "simulate a power loss after exactly *k* write
//! I/Os": it records every write call, and when armed it lets the first
//! `k` write calls through, then cuts power — the `k`-th write either
//! vanishes entirely or is **torn** (only a prefix of its first page
//! reaches the platter, modelling a sector-granular power loss mid
//! page write). After the crash every read, write and sync fails, and
//! [`CrashPointVolume::image`] hands back the disk image exactly as it
//! stood at the crash, ready to be rehydrated with
//! [`crate::MemVolume::from_bytes`] and reopened through recovery.
//!
//! The crash-sweep harness runs a scripted workload once unarmed to
//! count its writes `N`, then replays it `N` times armed at every
//! `k ∈ [0, N)`, proving that recovery holds at *every* I/O point.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Error, Result};
use crate::stats::IoStats;
use crate::volume::{SharedVolume, Volume};
use crate::PageId;

/// One recorded write call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRecord {
    /// First page of the write.
    pub start: PageId,
    /// Number of pages written.
    pub pages: u64,
}

#[derive(Debug)]
struct CrashState {
    /// Write calls that fully reached the inner volume.
    writes_seen: u64,
    /// When `Some(k)`: the `k`-th write call (0-based) hits the power
    /// loss.
    crash_after: Option<u64>,
    /// Whether the crashing write tears (half of its first page is
    /// applied) or vanishes.
    torn: bool,
    /// Power is out; all subsequent I/O fails.
    crashed: bool,
    log: Vec<WriteRecord>,
    read_faults: u64,
    write_faults: u64,
}

/// A volume wrapper that simulates power loss after exactly *k* write
/// calls. See the [module docs](self).
pub struct CrashPointVolume {
    inner: SharedVolume,
    // The torn-write injector reads and rewrites the victim page under
    // this mutex by design, so I/O is allowed; it sits between the
    // cache (70) and the volume bottom (80).
    // lock-class: state = pager.crash rank = 75 io = allowed
    state: Mutex<CrashState>,
}

impl CrashPointVolume {
    /// Wrap `inner`, unarmed: all I/O passes through, every write call
    /// is recorded (use [`Self::writes_seen`] to size a sweep).
    pub fn new(inner: SharedVolume) -> Arc<CrashPointVolume> {
        Arc::new(CrashPointVolume {
            inner,
            state: Mutex::new(CrashState {
                writes_seen: 0,
                crash_after: None,
                torn: false,
                crashed: false,
                log: Vec::new(),
                read_faults: 0,
                write_faults: 0,
            }),
        })
    }

    /// Arm the crash point: the next `k` write calls succeed, the one
    /// after hits the power loss. With `torn`, that write applies only
    /// the first half of its first page before power dies; without, it
    /// applies nothing. Also clears the write counter and log.
    pub fn arm(&self, k: u64, torn: bool) {
        let mut st = self.state.lock();
        st.writes_seen = 0;
        st.crash_after = Some(k);
        st.torn = torn;
        st.crashed = false;
        st.log.clear();
    }

    /// Disarm and clear the crash flag; the write counter and log keep
    /// recording.
    pub fn disarm(&self) {
        let mut st = self.state.lock();
        st.crash_after = None;
        st.crashed = false;
    }

    /// Write calls that fully reached the inner volume since the last
    /// [`Self::arm`] (or construction).
    pub fn writes_seen(&self) -> u64 {
        self.state.lock().writes_seen
    }

    /// Has the armed crash point fired?
    pub fn has_crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// The recorded write calls, in order.
    pub fn write_log(&self) -> Vec<WriteRecord> {
        self.state.lock().log.clone()
    }

    /// The full disk image as it stands right now — after a crash, the
    /// "disk as of power loss". Bypasses the crash gate (it models an
    /// operator pulling the platters, not the dead machine reading).
    pub fn image(&self) -> Result<Vec<u8>> {
        self.inner.read_pages(0, self.inner.num_pages())
    }

    fn power_failure() -> Error {
        Error::Io(std::io::Error::other(
            "simulated power failure: volume is offline",
        ))
    }
}

impl Volume for CrashPointVolume {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_into(&self, start: PageId, pages: u64, buf: &mut [u8]) -> Result<()> {
        {
            let mut st = self.state.lock();
            if st.crashed {
                st.read_faults += 1;
                return Err(Self::power_failure());
            }
        }
        self.inner.read_into(start, pages, buf)
    }

    fn write_pages(&self, start: PageId, data: &[u8]) -> Result<()> {
        let mut st = self.state.lock();
        if st.crashed {
            st.write_faults += 1;
            return Err(Self::power_failure());
        }
        if st.crash_after == Some(st.writes_seen) {
            // Power loss on this very write.
            st.crashed = true;
            st.write_faults += 1;
            if st.torn && !data.is_empty() {
                // A torn write: the first half of the first page makes
                // it to the platter, the rest of the call does not.
                // (Writes are applied front to back, so a power loss
                // always leaves a prefix.)
                let ps = self.inner.page_size();
                let half = ps / 2;
                let mut page = self.inner.read_pages(start, 1)?;
                page[..half].copy_from_slice(&data[..half]);
                self.inner.write_pages(start, &page)?;
            }
            return Err(Self::power_failure());
        }
        st.writes_seen += 1;
        st.log.push(WriteRecord {
            start,
            pages: (data.len() / self.inner.page_size().max(1)) as u64,
        });
        drop(st);
        self.inner.write_pages(start, data)
    }

    fn stats(&self) -> IoStats {
        let mut s = self.inner.stats();
        let st = self.state.lock();
        s.read_faults += st.read_faults;
        s.write_faults += st.write_faults;
        s
    }

    fn reset_stats(&self) {
        {
            let mut st = self.state.lock();
            st.read_faults = 0;
            st.write_faults = 0;
        }
        self.inner.reset_stats();
    }

    fn sync(&self) -> Result<()> {
        if self.state.lock().crashed {
            return Err(Self::power_failure());
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::MemVolume;
    use crate::DiskProfile;

    fn vol() -> SharedVolume {
        MemVolume::with_profile(128, 16, DiskProfile::FREE).shared()
    }

    #[test]
    fn unarmed_records_and_passes_through() {
        let c = CrashPointVolume::new(vol());
        c.write_pages(3, &[1u8; 128]).unwrap();
        c.write_pages(5, &[2u8; 256]).unwrap();
        assert_eq!(c.writes_seen(), 2);
        assert_eq!(
            c.write_log(),
            vec![
                WriteRecord { start: 3, pages: 1 },
                WriteRecord { start: 5, pages: 2 }
            ]
        );
        assert_eq!(c.read_pages(3, 1).unwrap()[0], 1);
        assert!(!c.has_crashed());
    }

    #[test]
    fn armed_crash_drops_the_kth_write_and_all_io_after() {
        let c = CrashPointVolume::new(vol());
        c.arm(1, false);
        c.write_pages(0, &[1u8; 128]).unwrap(); // write 0: survives
        assert!(c.write_pages(1, &[2u8; 128]).is_err()); // write 1: power loss
        assert!(c.has_crashed());
        assert!(c.read_pages(0, 1).is_err(), "device is offline");
        assert!(c.write_pages(2, &[3u8; 128]).is_err());
        assert!(c.sync().is_err());
        let image = c.image().unwrap();
        assert_eq!(image[0], 1, "write 0 is on the platter");
        assert!(image[128..256].iter().all(|&b| b == 0), "write 1 is not");
        assert_eq!(c.stats().write_faults, 2);
    }

    #[test]
    fn torn_write_applies_half_the_first_page() {
        let c = CrashPointVolume::new(vol());
        c.arm(0, true);
        assert!(c.write_pages(4, &[9u8; 256]).is_err());
        let image = c.image().unwrap();
        let page = &image[4 * 128..5 * 128];
        assert!(page[..64].iter().all(|&b| b == 9), "first half applied");
        assert!(page[64..].iter().all(|&b| b == 0), "second half lost");
        assert!(
            image[5 * 128..6 * 128].iter().all(|&b| b == 0),
            "second page of the call never written"
        );
    }

    #[test]
    fn disarm_restores_service_for_the_next_pass() {
        let c = CrashPointVolume::new(vol());
        c.arm(0, false);
        assert!(c.write_pages(0, &[1u8; 128]).is_err());
        c.disarm();
        c.write_pages(0, &[1u8; 128]).unwrap();
        assert_eq!(c.read_pages(0, 1).unwrap()[0], 1);
    }
}
