//! Deterministic disk cost model.
//!
//! The paper's performance arguments are entirely in terms of *disk
//! seeks* and *page transfers*: good sequential access means "I/O rates
//! close to transfer rates" because "disk seek delays are minimized"
//! (§1). The model below is the substitution (see `DESIGN.md` §6) for
//! the raw disks of the paper's testbed: it tracks the head position,
//! counts a seek whenever an access does not continue where the previous
//! one ended, and charges parametric time per seek and per transferred
//! page.

use crate::stats::IoStats;
use crate::PageId;

/// Timing parameters of the simulated disk.
///
/// Defaults approximate an early-1990s SCSI disk of the kind the paper's
/// SparcStation testbed used (~14 ms average seek + rotational delay,
/// ~2 MB/s sustained transfer, so a 4 KiB page moves in ~2 ms). Absolute
/// values only scale the simulated clock; orderings between algorithms
/// depend only on seek and transfer *counts*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskProfile {
    /// Cost of one head seek (including average rotational delay), µs.
    pub seek_us: u64,
    /// Cost of transferring one page, µs.
    pub transfer_us_per_page: u64,
}

impl DiskProfile {
    /// An early-1990s disk: 14 ms seek+rotation, 2 ms per 4 KiB page.
    pub const VINTAGE_1992: DiskProfile = DiskProfile {
        seek_us: 14_000,
        transfer_us_per_page: 2_000,
    };

    /// A modern 7200 rpm disk: 8 ms seek+rotation, 25 µs per 4 KiB page.
    pub const MODERN_HDD: DiskProfile = DiskProfile {
        seek_us: 8_000,
        transfer_us_per_page: 25,
    };

    /// Free I/O — useful for pure-correctness tests.
    pub const FREE: DiskProfile = DiskProfile {
        seek_us: 0,
        transfer_us_per_page: 0,
    };

    /// Simulated time for an access of `pages` contiguous pages that
    /// requires `seek` head movement.
    #[inline]
    pub fn access_us(&self, seek: bool, pages: u64) -> u64 {
        let seek_cost = if seek { self.seek_us } else { 0 };
        seek_cost + pages * self.transfer_us_per_page
    }
}

impl Default for DiskProfile {
    fn default() -> Self {
        DiskProfile::VINTAGE_1992
    }
}

/// Head-position tracker and seek/transfer accountant.
///
/// A *seek* is charged when an access does not begin at the page right
/// after the previous access's last page. Accesses of physically
/// contiguous page runs — the whole point of the paper's variable-size
/// segments — therefore cost one seek regardless of length, while
/// page-at-a-time scattered layouts (System R, WiSS) pay one seek per
/// page.
#[derive(Debug)]
pub struct DiskModel {
    profile: DiskProfile,
    /// Page the head would read next with zero movement, if any.
    head: Option<PageId>,
    stats: IoStats,
}

impl DiskModel {
    /// Create a model with the given timing profile. The head starts
    /// "parked": the first access always seeks.
    pub fn new(profile: DiskProfile) -> Self {
        DiskModel {
            profile,
            head: None,
            stats: IoStats::default(),
        }
    }

    /// Record a read of `pages` pages starting at `start`.
    pub fn record_read(&mut self, start: PageId, pages: u64) {
        let seek = self.access(start, pages);
        self.stats.page_reads += pages;
        self.stats.read_calls += 1;
        self.stats.elapsed_us += self.profile.access_us(seek, pages);
    }

    /// Record a write of `pages` pages starting at `start`.
    pub fn record_write(&mut self, start: PageId, pages: u64) {
        let seek = self.access(start, pages);
        self.stats.page_writes += pages;
        self.stats.write_calls += 1;
        self.stats.elapsed_us += self.profile.access_us(seek, pages);
    }

    fn access(&mut self, start: PageId, pages: u64) -> bool {
        let seek = self.head != Some(start);
        if seek {
            self.stats.seeks += 1;
        }
        self.head = Some(start + pages);
        seek
    }

    /// Cumulative counters since construction (or the last reset).
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Zero all counters and park the head.
    pub fn reset(&mut self) {
        self.stats = IoStats::default();
        self.head = None;
    }

    /// The timing profile in force.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads_seek_once() {
        let mut d = DiskModel::new(DiskProfile::VINTAGE_1992);
        d.record_read(100, 4);
        d.record_read(104, 4); // continues where the last ended
        d.record_read(108, 1);
        let s = d.stats();
        assert_eq!(s.seeks, 1);
        assert_eq!(s.page_reads, 9);
        assert_eq!(s.read_calls, 3);
    }

    #[test]
    fn scattered_reads_seek_each_time() {
        let mut d = DiskModel::new(DiskProfile::VINTAGE_1992);
        for p in [5u64, 900, 17, 300] {
            d.record_read(p, 1);
        }
        assert_eq!(d.stats().seeks, 4);
    }

    #[test]
    fn write_after_read_at_head_is_seekless() {
        let mut d = DiskModel::new(DiskProfile::VINTAGE_1992);
        d.record_read(0, 2);
        d.record_write(2, 2);
        assert_eq!(d.stats().seeks, 1);
    }

    #[test]
    fn elapsed_time_matches_profile() {
        let p = DiskProfile {
            seek_us: 1000,
            transfer_us_per_page: 10,
        };
        let mut d = DiskModel::new(p);
        d.record_read(0, 5); // seek + 5 transfers
        d.record_read(5, 5); // 5 transfers
        assert_eq!(d.stats().elapsed_us, 1000 + 10 * 10);
    }

    #[test]
    fn reset_parks_head() {
        let mut d = DiskModel::new(DiskProfile::FREE);
        d.record_read(0, 1);
        d.record_read(1, 1);
        assert_eq!(d.stats().seeks, 1);
        d.reset();
        assert_eq!(d.stats(), IoStats::default());
        d.record_read(2, 1);
        assert_eq!(d.stats().seeks, 1, "first access after reset seeks");
    }

    #[test]
    fn profile_constants_are_sane() {
        const { assert!(DiskProfile::VINTAGE_1992.seek_us > DiskProfile::MODERN_HDD.seek_us) };
        assert_eq!(DiskProfile::FREE.access_us(true, 100), 0);
        // A 19-page sequential segment read (Fig 5.a object) is cheaper
        // than 19 scattered single-page reads.
        let p = DiskProfile::VINTAGE_1992;
        let contiguous = p.access_us(true, 19);
        let scattered = 19 * p.access_us(true, 1);
        assert!(contiguous < scattered / 4);
    }
}
