//! I/O-cost contract tests: every §4 cost claim, asserted in the units
//! the paper uses (seeks + page transfers), on a store with no cache.

use eos_core::{ObjectStore, StoreConfig, Threshold};

const PS: usize = 512;

fn store(t: u32) -> ObjectStore {
    ObjectStore::in_memory_with(
        PS,
        8_000,
        StoreConfig {
            threshold: Threshold::Fixed(t),
            ..StoreConfig::default()
        },
    )
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

#[test]
fn random_read_cost_is_height_plus_one_seeks() {
    // "Good random access implies that the cost of locating a given byte
    // within the object is independent of the object size" (§1): one
    // index page per level below the root, then one segment access.
    let mut s = store(8);
    let obj = s.create_with(&pattern(1_000_000), Some(1_000_000)).unwrap();
    assert_eq!(obj.height(), 1, "single-segment object");
    for off in [0u64, 123_456, 999_000] {
        s.reset_io_stats();
        let _ = s.read(&obj, off, 100).unwrap();
        let io = s.io_stats();
        assert_eq!(
            io.seeks, 1,
            "height-1: descend costs nothing, 1 segment seek"
        );
        assert!(io.page_reads <= 2);
    }
}

#[test]
fn sequential_scan_seeks_once_per_segment() {
    let mut s = store(8);
    let mut obj = s.create_object();
    {
        let mut sess = s.open_append(&mut obj, None).unwrap();
        for chunk in pattern(500_000).chunks(9_000) {
            sess.append(chunk).unwrap();
        }
        sess.close().unwrap();
    }
    let segments = s.object_stats(&obj).unwrap().segments;
    s.reset_io_stats();
    let _ = s.read_all(&obj).unwrap();
    let io = s.io_stats();
    // At most one seek per segment — and when the doubling allocations
    // land back to back (as here), physically adjacent segments cost no
    // seek at all. A segment's partial tail page is fetched by its own
    // (seek-free, physically sequential) call, hence ≤ 2 calls each.
    assert!(io.read_calls <= 2 * segments);
    assert!(
        io.seeks <= segments,
        "{} seeks > {segments} segments",
        io.seeks
    );
    assert_eq!(io.page_reads, 500_000u64.div_ceil(PS as u64));
}

#[test]
fn insert_reads_at_most_two_adjacent_leaf_pages() {
    // §4.3.1: "one or two (physically adjacent) pages from the original
    // leaf segment have to be read", in a single call.
    let mut s = store(1); // T=1: no page reshuffling inflates the count
    let data = pattern(200 * PS);
    for off in [0u64, 1, (PS as u64) * 7 + 13, 100 * PS as u64 - 1] {
        let mut obj = s.create_with(&data, Some(data.len() as u64)).unwrap();
        s.reset_io_stats();
        s.insert(&mut obj, off, b"wedge").unwrap();
        let io = s.io_stats();
        assert!(
            io.page_reads <= 2,
            "insert @{off} read {} pages",
            io.page_reads
        );
        assert!(io.read_calls <= 1, "one contiguous read call");
        s.delete_object(&mut obj).unwrap();
    }
}

#[test]
fn insert_adds_at_most_two_parent_entries() {
    // §4.3.1: "the algorithm will add at most two new entries in the
    // parent of the leaf segment" (when N fits one segment).
    let mut s = store(1);
    let data = pattern(100 * PS);
    let mut obj = s.create_with(&data, Some(data.len() as u64)).unwrap();
    let before = s.object_stats(&obj).unwrap().segments;
    s.insert(&mut obj, 31 * PS as u64 + 100, b"x").unwrap();
    let after = s.object_stats(&obj).unwrap().segments;
    assert!(after <= before + 2, "{before} -> {after}");
}

#[test]
fn aligned_delete_touches_no_leaf_page() {
    // §4.3.2: "deletions where the last byte to be deleted happens to be
    // the last byte of a page … can be completed without accessing any
    // segment."
    let mut s = store(1);
    let data = pattern(400 * PS);
    let mut obj = s.create_with(&data, Some(data.len() as u64)).unwrap();
    s.reset_io_stats();
    s.delete(&mut obj, 13 * PS as u64 + 7, 7 * PS as u64 - 7)
        .unwrap();
    let io = s.io_stats();
    assert_eq!(io.page_reads, 0, "no leaf or index page read");
    s.verify_object(&obj).unwrap();
}

#[test]
fn unaligned_delete_reads_one_leaf_page() {
    // "Otherwise and if bytes are not shuffled, one leaf page needs to
    // be accessed (the one that contains the last byte to be deleted)
    // and a new segment needs to be created."
    let mut s = store(1);
    let data = pattern(400 * PS);
    let mut obj = s.create_with(&data, Some(data.len() as u64)).unwrap();
    s.reset_io_stats();
    // Ends mid-page; starts page-aligned, so L needs no byte shuffling.
    s.delete(&mut obj, 13 * PS as u64, 5 * PS as u64 + 100)
        .unwrap();
    let io = s.io_stats();
    assert!(
        io.page_reads <= 2,
        "page Q plus at most one byte-reshuffle donor, read {}",
        io.page_reads
    );
    s.verify_object(&obj).unwrap();
}

#[test]
fn truncation_and_whole_delete_touch_no_leaf() {
    let mut s = store(8);
    let data = pattern(300 * PS);
    let mut obj = s.create_with(&data, Some(data.len() as u64)).unwrap();
    s.reset_io_stats();
    s.truncate(&mut obj, 100 * PS as u64).unwrap();
    assert_eq!(s.io_stats().page_reads, 0, "truncate reads nothing");
    s.reset_io_stats();
    s.delete_object(&mut obj).unwrap();
    assert_eq!(s.io_stats().page_reads, 0, "whole delete reads nothing");
}

#[test]
fn replace_reads_only_partial_boundary_pages() {
    let mut s = store(8);
    let data = pattern(100 * PS);
    let mut obj = s.create_with(&data, Some(data.len() as u64)).unwrap();

    // Fully page-aligned replace: zero reads, one write call.
    s.reset_io_stats();
    s.replace(&mut obj, 10 * PS as u64, &pattern(5 * PS))
        .unwrap();
    let io = s.io_stats();
    assert_eq!(io.page_reads, 0);
    assert_eq!(io.write_calls, 1);

    // Misaligned on both ends: two boundary pages read.
    s.reset_io_stats();
    s.replace(&mut obj, 10 * PS as u64 + 100, &pattern(5 * PS))
        .unwrap();
    let io = s.io_stats();
    assert_eq!(io.page_reads, 2);
}

#[test]
fn append_never_rereads_old_full_pages() {
    let mut s = store(8);
    // Object whose size is a page multiple: append reads nothing.
    let mut obj = s
        .create_with(&pattern(64 * PS), Some(64 * PS as u64))
        .unwrap();
    s.reset_io_stats();
    s.append(&mut obj, &pattern(3 * PS)).unwrap();
    assert_eq!(s.io_stats().page_reads, 0, "no partial tail to absorb");

    // Partial tail: exactly one page (the partial one) is read.
    let mut obj = s
        .create_with(&pattern(64 * PS + 9), Some(64 * PS as u64 + 9))
        .unwrap();
    s.reset_io_stats();
    s.append(&mut obj, &pattern(3 * PS)).unwrap();
    assert_eq!(s.io_stats().page_reads, 1, "only the absorbed partial page");
}

#[test]
fn update_cost_is_independent_of_object_size() {
    // Objective 3 (§1): piece-wise operation cost depends on the bytes
    // involved, not the object size. Compare insert cost on a 50 KiB vs
    // a 2 MiB object (same height here).
    let cost_of = |bytes: usize| {
        let mut s = store(4);
        let mut obj = s.create_with(&pattern(bytes), Some(bytes as u64)).unwrap();
        s.reset_io_stats();
        s.insert(&mut obj, bytes as u64 / 2, &pattern(64)).unwrap();
        let io = s.io_stats();
        io.seeks + io.transfers()
    };
    let small = cost_of(50 * 1024);
    let large = cost_of(2 * 1024 * 1024);
    assert!(
        large <= small + 6,
        "insert cost must not scale with size: {small} vs {large}"
    );
}
