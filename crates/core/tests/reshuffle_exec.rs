//! Directed executor-level tests of the §4.4 page-reshuffling steps:
//! each test drives the store into a specific 3.1–3.4 branch and checks
//! the resulting physical layout, not just the bytes.

use eos_core::{ObjectStore, StoreConfig, Threshold};

const PS: usize = 512;

fn store(t: u32) -> ObjectStore {
    ObjectStore::in_memory_with(
        PS,
        8_000,
        StoreConfig {
            threshold: Threshold::Fixed(t),
            ..StoreConfig::default()
        },
    )
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

/// Pages of each segment, in order.
fn seg_pages(s: &ObjectStore, obj: &eos_core::LargeObject) -> Vec<u64> {
    s.segments(obj)
        .unwrap()
        .iter()
        .map(|&(b, _)| b.div_ceil(PS as u64))
        .collect()
}

#[test]
fn step32_unsafe_l_and_r_merge_into_n() {
    // Insert into a small segment with T much larger than the segment:
    // both the prefix L and the suffix R are unsafe, so 3.2 merges them
    // into N — the object ends up as a single segment.
    let mut s = store(16);
    let data = pattern(6 * PS); // 6 pages < T
    let mut obj = s.create_with(&data, Some(data.len() as u64)).unwrap();
    s.insert(&mut obj, 3 * PS as u64 + 17, &pattern(100))
        .unwrap();
    let segs = seg_pages(&s, &obj);
    assert_eq!(segs.len(), 1, "L and R absorbed: {segs:?}");
    s.verify_object(&obj).unwrap();
    let mut model = data;
    model.splice(3 * PS + 17..3 * PS + 17, pattern(100));
    assert_eq!(s.read_all(&obj).unwrap(), model);
}

#[test]
fn step33_unsafe_n_borrows_whole_pages() {
    // A small insert into a big segment at T=8: N alone would be 1–2
    // pages (unsafe); 3.3 must grow it to T pages by borrowing from the
    // smaller neighbour.
    let mut s = store(8);
    let data = pattern(100 * PS);
    let mut obj = s.create_with(&data, Some(data.len() as u64)).unwrap();
    // Insert near the left edge: L (3 pages) is the smaller donor.
    s.insert(&mut obj, 3 * PS as u64 + 10, &pattern(50))
        .unwrap();
    let segs = seg_pages(&s, &obj);
    // Every resulting segment is safe (≥ T) or the object's only one.
    for (i, &p) in segs.iter().enumerate() {
        assert!(
            p >= 8 || segs.len() == 1,
            "segment {i} of {p} pages unsafe: {segs:?}"
        );
    }
    s.verify_object(&obj).unwrap();
}

#[test]
fn step31c_oversized_merge_is_skipped() {
    // L is unsafe but L+N cannot fit one maximum segment: 3.1.c must
    // fall through to byte reshuffling instead of merging.
    let mut s = store(u32::MAX); // everything is "unsafe"
    let max = s.max_seg_pages();
    let data = pattern((max as usize + 100) * PS);
    let mut obj = s.create_with(&data, Some(data.len() as u64)).unwrap();
    let size = obj.size();
    // Insert in the middle of the second (max-size) segment.
    s.insert(&mut obj, size - 50 * PS as u64, &pattern(30))
        .unwrap();
    s.verify_object(&obj).unwrap();
    let mut model = data;
    let at = model.len() - 50 * PS;
    model.splice(at..at, pattern(30));
    assert_eq!(s.read_all(&obj).unwrap(), model);
}

#[test]
fn step34_byte_reshuffle_eliminates_partial_l_page() {
    // T=1 (no page phase): inserting right after a partially filled page
    // boundary lets 3.4 absorb L's partial last page into N, leaving L
    // page-aligned.
    let mut s = store(1);
    let data = pattern(10 * PS + 100); // last page holds 100 bytes
    let mut obj = s.create_with(&data, Some(data.len() as u64)).unwrap();
    // Insert at the very end of page 4 + 60 bytes: L's last page is
    // partial (60 bytes), N's last page has room.
    s.insert(&mut obj, 4 * PS as u64 + 60, &pattern(80))
        .unwrap();
    let segs = s.segments(&obj).unwrap();
    // L must be a whole number of pages (its partial tail moved to N).
    assert_eq!(
        segs[0].0 % PS as u64,
        0,
        "L's last page was not eliminated: {segs:?}"
    );
    s.verify_object(&obj).unwrap();
}

#[test]
fn delete_reshuffle_spans_two_parents() {
    // Force a delete whose L and R boundary segments live under
    // different leaf-parents (tree of height ≥ 2), exercising the
    // two-stack shape of Fig 7.
    let mut s = store(2);
    let mut obj = s.create_object();
    {
        // Many small appends → many segments → multi-level tree
        // (node cap at 512-byte pages is 31 entries).
        let mut sess = s.open_append(&mut obj, None).unwrap();
        for chunk in pattern(300 * PS).chunks(PS + 37) {
            sess.append(chunk).unwrap();
        }
        sess.close().unwrap();
    }
    // Shatter hard so the tree needs two levels.
    let mut model = pattern(300 * PS);
    for i in 0..80u64 {
        let off = (i * 1979) % (model.len() as u64);
        s.insert(&mut obj, off, b"xx").unwrap();
        model.splice(off as usize..off as usize, *b"xx");
    }
    assert!(obj.height() >= 2, "need a multi-level tree");
    // A wide unaligned delete spanning many segments.
    let (d0, len) = (11 * PS as u64 + 13, 150 * PS as u64 + 29);
    s.delete(&mut obj, d0, len).unwrap();
    model.drain(d0 as usize..(d0 + len) as usize);
    assert_eq!(s.read_all(&obj).unwrap(), model);
    s.verify_object(&obj).unwrap();
}
