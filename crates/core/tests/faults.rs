//! Failure injection: every operation must surface an injected I/O
//! fault as an `Err` (never a panic), and under a transaction scope the
//! committed image must survive any mid-operation failure — the §4.5
//! no-overwrite discipline at work.

use eos_core::{LargeObject, ObjectStore, StoreConfig};
use eos_pager::{DiskProfile, FaultyVolume, MemVolume};
use std::sync::Arc;

fn faulty_store(budget: u64) -> (ObjectStore, Arc<FaultyVolume>) {
    let inner = MemVolume::with_profile(512, 2002, DiskProfile::FREE).shared();
    let f = FaultyVolume::new(inner, u64::MAX);
    let store = ObjectStore::create(f.clone(), 1, 1960, StoreConfig::default()).unwrap();
    f.heal(budget);
    (store, f)
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

#[test]
fn every_op_returns_err_when_io_fails() {
    let (mut store, f) = faulty_store(u64::MAX);
    let mut obj = store.create_with(&pattern(50_000), None).unwrap();

    // Exhaust the budget: each op must fail cleanly.
    f.heal(0);
    assert!(store.read(&obj, 0, 100).is_err());
    assert!(store.replace(&mut obj, 0, b"x").is_err());
    assert!(store.insert(&mut obj, 10, b"x").is_err());
    assert!(store.delete(&mut obj, 10, 5).is_err());
    assert!(store.append(&mut obj, b"x").is_err());
    assert!(
        store.object_stats(&obj).is_ok(),
        "stats on height-1 need no I/O"
    );

    // Heal: the store is usable again (the failed ops may have torn the
    // in-flight object, but fresh objects work).
    f.heal(u64::MAX);
    let fresh = store.create_with(&pattern(1000), None).unwrap();
    assert_eq!(store.read_all(&fresh).unwrap(), pattern(1000));
}

#[test]
fn faults_at_every_budget_never_panic() {
    // Sweep the failure point across an update; whatever happens must be
    // an Err or an Ok, never a panic.
    for budget in 0..60 {
        let (mut store, f) = faulty_store(u64::MAX);
        let mut obj = store.create_with(&pattern(30_000), None).unwrap();
        f.heal(budget);
        let _ = store.insert(&mut obj, 15_000, &pattern(2_000));
        let _ = store.delete(&mut obj, 1_000, 500);
        f.heal(u64::MAX);
    }
}

#[test]
fn committed_image_survives_mid_txn_fault() {
    for budget in [1u64, 2, 3, 4, 5, 6] {
        let (mut store, f) = faulty_store(u64::MAX);
        let content = pattern(40_000);
        let obj = store.create_with(&content, None).unwrap();
        let committed = obj.to_bytes();

        store.begin_txn();
        let mut inflight = obj;
        f.heal(budget);
        // The update fails somewhere in the middle.
        let r1 = store.insert(&mut inflight, 20_000, &pattern(3_000));
        let r2 = store.delete(&mut inflight, 100, 2_000);
        f.heal(u64::MAX);
        store.abort_txn().unwrap();
        if r1.is_ok() && r2.is_ok() {
            continue; // the budget covered both ops; nothing failed
        }

        // The committed tree is untouched: deferred frees + shadowing
        // mean the failed operation only ever wrote fresh pages.
        let recovered = LargeObject::from_bytes(&committed).unwrap();
        assert_eq!(
            store.read_all(&recovered).unwrap(),
            content,
            "committed image damaged at budget {budget}"
        );
        store.verify_object(&recovered).unwrap();
    }
}

#[test]
fn buddy_directory_fault_does_not_corrupt_on_reopen() {
    // A fault while writing the buddy directory: the in-memory image is
    // ahead of disk. Reopening from disk must still validate (the
    // directory page is written atomically per op).
    let inner = MemVolume::with_profile(512, 2002, DiskProfile::FREE).shared();
    let f = FaultyVolume::new(inner.clone(), u64::MAX);
    {
        let mut store = ObjectStore::create(f.clone(), 1, 1960, StoreConfig::default()).unwrap();
        let _keep = store.create_with(&pattern(10_000), None).unwrap();
        f.heal(2);
        let _ = store.create_with(&pattern(50_000), None); // dies mid-way
    }
    // Reopen from the raw volume: every directory page must parse and
    // satisfy the buddy invariants.
    let reopened = eos_buddy::BuddyManager::open(inner, 1, 1960).unwrap();
    reopened.check_invariants().unwrap();
}
