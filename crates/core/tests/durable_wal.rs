//! Durable-store lifecycle tests: create, mutate, reopen, recover.
//!
//! The exhaustive crash-point sweep lives at the workspace root
//! (`tests/crash_sweep.rs`); these tests cover the happy paths and the
//! targeted failure modes of the durable WAL integration.

use eos_core::{ObjectStore, StoreConfig};
use eos_pager::{DiskProfile, MemVolume, SharedVolume};

const PAGE: usize = 512;
const SPACES: usize = 2;
const PPS: u64 = 126;
const WAL_PAGES: u64 = 66;

fn fresh_volume() -> SharedVolume {
    let pages = (PPS + 1) * SPACES as u64 + WAL_PAGES;
    MemVolume::with_profile(PAGE, pages, DiskProfile::FREE).shared()
}

fn create(volume: SharedVolume) -> ObjectStore {
    ObjectStore::create_durable(volume, SPACES, PPS, StoreConfig::default(), WAL_PAGES).unwrap()
}

fn reopen(volume: SharedVolume) -> (ObjectStore, eos_core::RecoveryReport) {
    ObjectStore::open_durable(volume, SPACES, PPS, StoreConfig::default(), WAL_PAGES).unwrap()
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31) ^ salt)
        .collect()
}

#[test]
fn committed_objects_survive_reopen() {
    let vol = fresh_volume();
    let a_bytes = pattern(3000, 1);
    let b_bytes = pattern(700, 2);
    {
        let mut store = create(vol.clone());
        let mut a = store.create_with(&a_bytes, None).unwrap();
        let _b = store.create_with(&b_bytes, None).unwrap();
        store.insert(&mut a, 100, &pattern(40, 3)).unwrap();
        store.delete(&mut a, 0, 100).unwrap();
        store.replace(&mut a, 10, b"REPLACED").unwrap();
    }
    let (store, report) = reopen(vol);
    assert!(!report.torn_tail);
    assert_eq!(report.rolled_back_ops, 0);
    assert_eq!(report.objects.len(), 2);

    // Model what the mutations did.
    let mut model = a_bytes.clone();
    let ins = pattern(40, 3);
    model.splice(100..100, ins.iter().copied());
    model.drain(0..100);
    model[10..18].copy_from_slice(b"REPLACED");

    let a = report.objects.iter().find(|o| o.id() == 1).unwrap();
    let b = report.objects.iter().find(|o| o.id() == 2).unwrap();
    assert_eq!(store.read_all(a).unwrap(), model);
    assert_eq!(store.read_all(b).unwrap(), b_bytes);
    store.verify_object(a).unwrap();
    store.verify_object(b).unwrap();
    store.buddy().check_invariants().unwrap();
}

#[test]
fn deleted_objects_stay_deleted() {
    let vol = fresh_volume();
    {
        let mut store = create(vol.clone());
        let mut a = store.create_with(&pattern(2000, 1), None).unwrap();
        let _b = store.create_with(&pattern(50, 2), None).unwrap();
        store.delete_object(&mut a).unwrap();
    }
    let (_store, report) = reopen(vol);
    assert_eq!(report.objects.len(), 1);
    assert_eq!(report.objects[0].id(), 2);
}

#[test]
fn explicit_txn_groups_ops_and_abort_reverts() {
    let vol = fresh_volume();
    let base = pattern(1500, 7);
    {
        let mut store = create(vol.clone());
        let mut a = store.create_with(&base, None).unwrap();
        let pre_txn = a.clone();

        store.begin_txn();
        store.append(&mut a, &pattern(300, 8)).unwrap();
        store.replace(&mut a, 0, b"xxxx").unwrap();
        store.abort_txn().unwrap();
        a = pre_txn;
        assert_eq!(store.read_all(&a).unwrap(), base, "abort reverted");

        store.begin_txn();
        store.append(&mut a, b"tail").unwrap();
        store.commit_txn().unwrap();
    }
    let (store, report) = reopen(vol);
    let a = &report.objects[0];
    let mut want = base;
    want.extend_from_slice(b"tail");
    assert_eq!(store.read_all(a).unwrap(), want);
}

#[test]
fn uncommitted_replace_rolls_back_on_reopen() {
    let vol = fresh_volume();
    let base = pattern(4 * PAGE, 9);
    {
        let mut store = create(vol.clone());
        let mut a = store.create_with(&base, None).unwrap();
        // Simulate a crash mid-transaction: mutate inside an explicit
        // scope and drop the store without committing.
        store.begin_txn();
        store.replace(&mut a, 100, &pattern(600, 10)).unwrap();
        store.append(&mut a, &pattern(123, 11)).unwrap();
        // no commit — the store (and its in-memory state) just vanish
    }
    let (store, report) = reopen(vol);
    assert_eq!(report.rolled_back_ops, 2);
    assert!(report.restored_pages > 0, "replace images were restored");
    let a = &report.objects[0];
    assert_eq!(store.read_all(a).unwrap(), base, "back to committed state");
    store.buddy().check_invariants().unwrap();
}

#[test]
fn recovered_store_keeps_working() {
    let vol = fresh_volume();
    {
        let mut store = create(vol.clone());
        store.create_with(&pattern(900, 1), None).unwrap();
    }
    let (mut store, report) = reopen(vol.clone());
    let mut a = report.objects[0].clone();
    store.append(&mut a, &pattern(200, 2)).unwrap();
    let mut b = store.create_with(&pattern(80, 3), None).unwrap();
    assert_eq!(b.id(), report.objects[0].id() + 1, "ids keep advancing");
    store.insert(&mut b, 0, b"hdr").unwrap();
    drop(store);

    let (store, report) = reopen(vol);
    assert_eq!(report.objects.len(), 2);
    let a2 = report.objects.iter().find(|o| o.id() == a.id()).unwrap();
    assert_eq!(store.read_all(a2).unwrap().len(), 1100);
}

#[test]
fn reopen_is_idempotent() {
    let vol = fresh_volume();
    {
        let mut store = create(vol.clone());
        let mut a = store.create_with(&pattern(1000, 5), None).unwrap();
        store.begin_txn();
        store.replace(&mut a, 0, &pattern(300, 6)).unwrap();
        // crash with the scope open
    }
    let (_s1, r1) = reopen(vol.clone());
    let (store, r2) = reopen(vol);
    assert_eq!(r1.objects.len(), r2.objects.len());
    assert_eq!(
        r2.rolled_back_ops, 0,
        "first recovery checkpointed the rollback"
    );
    assert_eq!(
        store.read_all(&r2.objects[0]).unwrap(),
        pattern(1000, 5),
        "double recovery lands on the same bytes"
    );
}

// ---- write-ordering barriers --------------------------------------------
//
// The crash sweep cannot catch a missing fsync barrier: its injected
// volume persists writes in order, while a real OS page cache may
// reorder them. These tests pin the barrier protocol itself by
// recording the interleaving of write and sync calls.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Write { start: u64, pages: u64 },
    Sync,
}

struct EventVolume {
    inner: SharedVolume,
    events: std::sync::Mutex<Vec<Event>>,
}

impl EventVolume {
    fn new(inner: SharedVolume) -> std::sync::Arc<EventVolume> {
        std::sync::Arc::new(EventVolume {
            inner,
            events: std::sync::Mutex::new(Vec::new()),
        })
    }

    fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().unwrap())
    }
}

impl eos_pager::Volume for EventVolume {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }
    fn read_into(&self, start: u64, pages: u64, buf: &mut [u8]) -> eos_pager::Result<()> {
        self.inner.read_into(start, pages, buf)
    }
    fn write_pages(&self, start: u64, data: &[u8]) -> eos_pager::Result<()> {
        self.events.lock().unwrap().push(Event::Write {
            start,
            pages: (data.len() / self.inner.page_size()) as u64,
        });
        self.inner.write_pages(start, data)
    }
    fn stats(&self) -> eos_pager::IoStats {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats();
    }
    fn sync(&self) -> eos_pager::Result<()> {
        self.events.lock().unwrap().push(Event::Sync);
        self.inner.sync()
    }
}

const WAL_BASE: u64 = (PPS + 1) * SPACES as u64;

fn is_log_write(e: &Event) -> bool {
    matches!(e, Event::Write { start, .. } if *start >= WAL_BASE)
}

fn is_data_write(e: &Event) -> bool {
    matches!(e, Event::Write { start, .. } if *start < WAL_BASE)
}

/// Index of the first sync strictly after `from`, if any.
fn sync_after(events: &[Event], from: usize) -> Option<usize> {
    events[from + 1..]
        .iter()
        .position(|e| *e == Event::Sync)
        .map(|i| from + 1 + i)
}

#[test]
fn replace_barriers_order_undo_data_and_commit() {
    let recorder = EventVolume::new(fresh_volume());
    let vol: SharedVolume = recorder.clone();
    let mut store = create(vol);
    let mut a = store.create_with(&pattern(4 * PAGE, 1), None).unwrap();
    recorder.take();

    store.replace(&mut a, 100, &pattern(900, 2)).unwrap();
    let events = recorder.take();

    // WAL rule: the Op frame (undo images) is written and *synced*
    // before the first in-place data write.
    let first_log = events.iter().position(is_log_write).expect("an Op frame");
    let first_data = events
        .iter()
        .position(is_data_write)
        .expect("in-place writes");
    assert!(first_log < first_data, "undo frame precedes the overwrite");
    let barrier = sync_after(&events, first_log).expect("a sync after the Op frame");
    assert!(
        barrier < first_data,
        "undo images must be durable before the first in-place byte: {events:?}"
    );

    // Data-before-log: every data write is synced before the Commit
    // frame (the last log write) lands.
    let last_log = events.iter().rposition(is_log_write).unwrap();
    let last_data = events.iter().rposition(is_data_write).unwrap();
    assert!(last_data < last_log, "commit frame is the final frame");
    let commit_barrier = sync_after(&events, last_data).expect("a sync after the data writes");
    assert!(
        commit_barrier < last_log,
        "data pages must be durable before the commit frame: {events:?}"
    );
    assert_eq!(
        events.last(),
        Some(&Event::Sync),
        "the commit frame itself is synced"
    );
}

#[test]
fn abort_syncs_restores_before_the_abort_frame() {
    let recorder = EventVolume::new(fresh_volume());
    let vol: SharedVolume = recorder.clone();
    let mut store = create(vol);
    let mut a = store.create_with(&pattern(4 * PAGE, 1), None).unwrap();

    store.begin_txn();
    store.replace(&mut a, 0, &pattern(700, 3)).unwrap();
    recorder.take();
    store.abort_txn().unwrap();
    let events = recorder.take();

    // The before-image restores (data writes) must be durable before
    // the Abort frame — otherwise a crash can persist the Abort and
    // recovery would skip the undo.
    let last_data = events.iter().rposition(is_data_write).expect("restores");
    let abort_frame = events.iter().rposition(is_log_write).expect("Abort frame");
    assert!(last_data < abort_frame);
    let barrier = sync_after(&events, last_data).expect("a sync after the restores");
    assert!(
        barrier < abort_frame,
        "restores must be durable before the Abort frame: {events:?}"
    );
}

#[test]
fn log_wraps_under_sustained_load() {
    let vol = fresh_volume();
    let mut store = create(vol.clone());
    let mut a = store.create_with(&pattern(2 * PAGE, 1), None).unwrap();
    for i in 0..200u64 {
        store
            .replace(&mut a, (i % 64) * 8, &pattern(64, i as u8))
            .unwrap();
    }
    let wal = store.durable_wal().unwrap();
    assert!(wal.checkpoints_taken() > 0, "the log flipped halves");
    drop(store);
    let (store, report) = reopen(vol);
    assert_eq!(report.objects.len(), 1);
    store.verify_object(&report.objects[0]).unwrap();
}
