//! Directed edge-case tests for the §4.1 append/create path: hint
//! accuracy, tail-page absorption, trim behaviour, growth under space
//! pressure, and threshold changes between sessions.

use eos_core::{ObjectStore, StoreConfig, Threshold};

fn store(pages: u64) -> ObjectStore {
    ObjectStore::in_memory(512, pages)
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

#[test]
fn exact_hint_gives_exact_pages() {
    let mut s = store(4000);
    let data = pattern(10 * 512);
    let obj = s.create_with(&data, Some(data.len() as u64)).unwrap();
    let stats = s.object_stats(&obj).unwrap();
    assert_eq!(stats.leaf_pages, 10);
    assert_eq!(stats.segments, 1);
    assert_eq!(stats.leaf_utilization(512), 1.0);
}

#[test]
fn hint_too_small_still_works() {
    // The hint is advisory: promising 1 KiB but appending 100 KiB must
    // still produce a correct object (just with more segments).
    let mut s = store(4000);
    let data = pattern(100_000);
    let mut obj = s.create_object();
    let mut sess = s.open_append(&mut obj, Some(1024)).unwrap();
    for chunk in data.chunks(10_000) {
        sess.append(chunk).unwrap();
    }
    sess.close().unwrap();
    assert_eq!(s.read_all(&obj).unwrap(), data);
    s.verify_object(&obj).unwrap();
}

#[test]
fn hint_too_large_is_trimmed() {
    // Promising 1 MiB but writing 5 KiB: the close() trim returns the
    // over-allocation, so no pages leak.
    let mut s = store(4000);
    let free0 = s.buddy().total_free_pages();
    let data = pattern(5_000);
    let mut obj = s.create_object();
    let mut sess = s.open_append(&mut obj, Some(1 << 20)).unwrap();
    sess.append(&data).unwrap();
    sess.close().unwrap();
    let stats = s.object_stats(&obj).unwrap();
    assert_eq!(stats.leaf_pages, 5_000u64.div_ceil(512));
    assert_eq!(
        free0 - s.buddy().total_free_pages(),
        stats.leaf_pages,
        "everything beyond ⌈5000/512⌉ pages was trimmed"
    );
    assert_eq!(s.read_all(&obj).unwrap(), data);
}

#[test]
fn empty_session_is_a_noop() {
    let mut s = store(1000);
    let free0 = s.buddy().total_free_pages();
    let mut obj = s.create_object();
    let sess = s.open_append(&mut obj, None).unwrap();
    sess.close().unwrap();
    assert!(obj.is_empty());
    assert_eq!(s.buddy().total_free_pages(), free0);

    // Also on a non-empty object with a partial tail: absorption must
    // not lose bytes even when nothing is appended.
    let mut obj = s.create_with(&pattern(700), None).unwrap();
    let sess = s.open_append(&mut obj, None).unwrap();
    sess.close().unwrap();
    assert_eq!(s.read_all(&obj).unwrap(), pattern(700));
    s.verify_object(&obj).unwrap();
}

#[test]
fn zero_byte_appends_are_harmless() {
    let mut s = store(1000);
    let mut obj = s.create_with(&pattern(100), None).unwrap();
    let mut sess = s.open_append(&mut obj, None).unwrap();
    sess.append(b"").unwrap();
    sess.append(b"x").unwrap();
    sess.append(b"").unwrap();
    sess.close().unwrap();
    assert_eq!(obj.size(), 101);
}

#[test]
fn appended_counter_tracks_session_bytes() {
    let mut s = store(2000);
    let mut obj = s.create_with(&pattern(700), None).unwrap(); // partial tail
    let mut sess = s.open_append(&mut obj, None).unwrap();
    assert_eq!(sess.appended(), 0, "absorbed bytes don't count");
    sess.append(&pattern(1000)).unwrap();
    assert_eq!(sess.appended(), 1000);
    sess.append(&pattern(24)).unwrap();
    assert_eq!(sess.appended(), 1024);
    sess.close().unwrap();
    assert_eq!(obj.size(), 700 + 1024);
}

#[test]
fn doubling_sequence_is_exact() {
    // Small appends, unknown size: allocations go 1, 2, 4, 8, ... pages.
    let mut s = store(4000);
    let mut obj = s.create_object();
    let mut sess = s.open_append(&mut obj, None).unwrap();
    // 31 pages of content = 1+2+4+8+16 fully used.
    sess.append(&pattern(31 * 512)).unwrap();
    sess.close().unwrap();
    let segs = s.segments(&obj).unwrap();
    let sizes: Vec<u64> = segs.iter().map(|&(b, _)| b.div_ceil(512)).collect();
    assert_eq!(sizes, vec![1, 2, 4, 8, 16]);
}

#[test]
fn growth_falls_back_under_space_pressure() {
    // Fill the store so only scattered small runs remain; the doubling
    // allocation falls back to whatever is available.
    let mut s = store(256);
    let hog = s.create_with(&pattern(100 * 512), Some(100 * 512)).unwrap();
    let _hog2 = s.create_with(&pattern(100 * 512), Some(100 * 512)).unwrap();
    // ~55 pages left (minus boot page). Append 20 pages with doubling.
    let data = pattern(20 * 512);
    let mut obj = s.create_object();
    let mut sess = s.open_append(&mut obj, None).unwrap();
    for chunk in data.chunks(512) {
        sess.append(chunk).unwrap();
    }
    sess.close().unwrap();
    assert_eq!(s.read_all(&obj).unwrap(), data);
    s.verify_object(&obj).unwrap();
    s.verify_object(&hog).unwrap();
}

#[test]
fn store_exhaustion_surfaces_as_no_space() {
    let mut s = store(64);
    let data = pattern(200 * 512);
    let err = s.create_with(&data, None).unwrap_err();
    assert!(matches!(err, eos_core::Error::NoSpace { .. }), "{err}");
}

#[test]
fn threshold_can_change_between_sessions() {
    // "Applications … are allowed to change the T value every time the
    // object is opened for updates" (§4.4). Run the same second phase
    // of edits once at T=1 and once at T=16: the raised threshold stops
    // the shattering where T=1 keeps fragmenting.
    let phase2 = |t: Threshold| -> (u64, u64) {
        let mut s = ObjectStore::in_memory_with(
            512,
            8000,
            StoreConfig {
                threshold: Threshold::Fixed(1),
                ..StoreConfig::default()
            },
        );
        let mut obj = s.create_with(&pattern(100_000), Some(100_000)).unwrap();
        let mut model = pattern(100_000);
        for i in 0..30u64 {
            let off = (i * 3001) % (model.len() as u64);
            s.insert(&mut obj, off, b"ab").unwrap();
            model.splice(off as usize..off as usize, *b"ab");
        }
        let shattered = s.object_stats(&obj).unwrap().segments;
        obj.set_threshold(t);
        for i in 0..60u64 {
            let off = (i * 2003) % (model.len() as u64);
            s.insert(&mut obj, off, b"cd").unwrap();
            model.splice(off as usize..off as usize, *b"cd");
        }
        assert_eq!(s.read_all(&obj).unwrap(), model);
        s.verify_object(&obj).unwrap();
        (shattered, s.object_stats(&obj).unwrap().segments)
    };
    let (base1, keep1) = phase2(Threshold::Fixed(1));
    let (base16, keep16) = phase2(Threshold::Fixed(16));
    assert_eq!(base1, base16, "identical first phases");
    assert!(
        keep16 < keep1,
        "raised T must shatter less: T=1 -> {keep1}, T=16 -> {keep16}"
    );
}

#[test]
fn absorption_frees_the_old_tail_page() {
    let mut s = store(2000);
    // A hinted create gives one 2-page segment with 188 bytes in the
    // partial last page.
    let mut obj = s.create_with(&pattern(700), Some(700)).unwrap();
    let (bytes0, ptr0) = s.segments(&obj).unwrap()[0];
    assert_eq!(bytes0, 700);
    s.append(&mut obj, &pattern(300)).unwrap();
    let segs = s.segments(&obj).unwrap();
    // The old segment kept only its full page; the absorbed partial page
    // moved into the new segment along with the appended bytes.
    assert_eq!(segs[0], (512, ptr0));
    assert_eq!(segs.len(), 2);
    assert_eq!(segs.iter().map(|&(b, _)| b).sum::<u64>(), 1000);
    s.verify_object(&obj).unwrap();
}
