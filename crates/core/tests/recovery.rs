//! Recovery tests (§4.5): WAL-protected replace, logical logging of the
//! index-modifying operations, idempotent redo/undo keyed on the LSN in
//! the object root, the transaction scope with deferred frees ("release
//! locks"), and the shadowing guarantee that a crashed transaction
//! leaves the committed image intact.

use eos_core::wal::{redo, undo, LogOp, Wal};
use eos_core::{LargeObject, ObjectStore};

fn store() -> ObjectStore {
    ObjectStore::in_memory(512, 3000)
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 253) as u8).collect()
}

#[test]
fn logged_replace_stamps_lsn() {
    let mut store = store();
    let mut wal = Wal::new();
    let mut obj = store.create_with(&pattern(4000), None).unwrap();
    assert_eq!(obj.lsn(), 0);
    wal.logged_replace(&mut store, &mut obj, 100, b"XYZ")
        .unwrap();
    assert_eq!(obj.lsn(), 1);
    assert_eq!(store.read(&obj, 100, 3).unwrap(), b"XYZ");
    // The record carries the operation and its parameters, §4.5.
    match &wal.records()[0].op {
        LogOp::Replace {
            offset,
            before,
            after,
        } => {
            assert_eq!(*offset, 100);
            assert_eq!(before, &pattern(4000)[100..103].to_vec());
            assert_eq!(after, b"XYZ");
        }
        other => panic!("wrong op logged: {other:?}"),
    }
}

#[test]
fn redo_is_idempotent() {
    let mut store = store();
    let mut wal = Wal::new();
    let mut obj = store.create_with(&pattern(2000), None).unwrap();
    wal.logged_insert(&mut store, &mut obj, 500, b"hello")
        .unwrap();
    wal.logged_delete(&mut store, &mut obj, 0, 100).unwrap();
    wal.logged_replace(&mut store, &mut obj, 10, b"zz").unwrap();
    let want = store.read_all(&obj).unwrap();

    // Re-applying the whole log to the final state changes nothing:
    // every record has lsn ≤ obj.lsn.
    let records: Vec<_> = wal.records().to_vec();
    for r in &records {
        redo(&mut store, &mut obj, r).unwrap();
    }
    assert_eq!(store.read_all(&obj).unwrap(), want);
    assert_eq!(obj.lsn(), 3);
}

#[test]
fn undo_rolls_back_in_reverse_order() {
    let mut store = store();
    let mut wal = Wal::new();
    let base = pattern(3000);
    let mut obj = store.create_with(&base, None).unwrap();
    wal.logged_append(&mut store, &mut obj, b"tail-bytes")
        .unwrap();
    wal.logged_insert(&mut store, &mut obj, 7, b"mid").unwrap();
    wal.logged_delete(&mut store, &mut obj, 100, 50).unwrap();
    wal.logged_replace(&mut store, &mut obj, 0, b"QQQQ")
        .unwrap();

    let records: Vec<_> = wal.records().to_vec();
    for r in records.iter().rev() {
        undo(&mut store, &mut obj, r).unwrap();
    }
    assert_eq!(obj.lsn(), 0);
    assert_eq!(store.read_all(&obj).unwrap(), base);

    // Undo is idempotent too: running it again is a no-op.
    for r in records.iter().rev() {
        undo(&mut store, &mut obj, r).unwrap();
    }
    assert_eq!(store.read_all(&obj).unwrap(), base);
}

#[test]
fn crashed_txn_leaves_committed_image_intact() {
    // The core §4.5 property: insert/delete/append "modify only the
    // internal nodes of the large object tree without overwriting
    // existing leaf pages", and with frees deferred behind release
    // locks, an uncommitted transaction cannot damage the committed
    // tree. Crash = discard the in-flight descriptor; the previously
    // committed descriptor must still read perfectly.
    let mut store = store();
    let committed_content = pattern(20_000);
    let obj = store.create_with(&committed_content, None).unwrap();
    let committed = obj.to_bytes(); // client makes the root durable

    // An uncommitted transaction mutates the object heavily.
    store.begin_txn();
    let mut inflight = obj;
    store.insert(&mut inflight, 5_000, &pattern(3000)).unwrap();
    store.delete(&mut inflight, 100, 2_000).unwrap();
    store.append(&mut inflight, &pattern(1000)).unwrap();
    store.delete(&mut inflight, 0, 50).unwrap();

    // CRASH: the in-flight descriptor and txn state evaporate. (abort
    // returns the txn's allocations; a real recovery would scavenge
    // them from the log.)
    store.abort_txn().unwrap();
    drop(inflight);

    let recovered = LargeObject::from_bytes(&committed).unwrap();
    assert_eq!(
        store.read_all(&recovered).unwrap(),
        committed_content,
        "committed image was damaged by the uncommitted transaction"
    );
    store.verify_object(&recovered).unwrap();
}

#[test]
fn commit_applies_deferred_frees() {
    let mut store = store();
    let mut obj = store.create_with(&pattern(30_000), None).unwrap();
    let free_before = store.buddy().total_free_pages();
    store.begin_txn();
    store.delete(&mut obj, 0, 25_000).unwrap();
    // Release locks: the deleted pages are not reusable yet.
    assert!(
        store.buddy().total_free_pages() <= free_before,
        "deferred frees must not release pages early"
    );
    store.commit_txn().unwrap();
    assert!(
        store.buddy().total_free_pages() > free_before + 20,
        "commit must apply the deferred frees"
    );
    store.verify_object(&obj).unwrap();
    assert_eq!(store.read_all(&obj).unwrap(), &pattern(30_000)[25_000..]);
}

#[test]
fn abort_returns_transaction_allocations() {
    let mut store = store();
    let obj = store.create_with(&pattern(10_000), None).unwrap();
    let free_before = store.buddy().total_free_pages();
    let committed = obj.to_bytes();

    store.begin_txn();
    let mut inflight = obj;
    store.insert(&mut inflight, 500, &pattern(8_000)).unwrap();
    store.append(&mut inflight, &pattern(4_000)).unwrap();
    store.abort_txn().unwrap();

    assert_eq!(
        store.buddy().total_free_pages(),
        free_before,
        "abort must free exactly the transaction's allocations"
    );
    let back = LargeObject::from_bytes(&committed).unwrap();
    assert_eq!(store.read_all(&back).unwrap(), pattern(10_000));
    store.verify_object(&back).unwrap();
}

#[test]
fn log_shipping_replay_rebuilds_replica() {
    // recover()-style replay: apply the full log of an object onto a
    // fresh store (the log contains every operation with parameters,
    // §4.5). The replica ends up byte-identical.
    let mut primary = store();
    let mut wal = Wal::new();
    let mut obj = primary.create_object();
    wal.logged_append(&mut primary, &mut obj, &pattern(6_000))
        .unwrap();
    wal.logged_insert(&mut primary, &mut obj, 123, b"abcdef")
        .unwrap();
    wal.logged_delete(&mut primary, &mut obj, 4_000, 1_500)
        .unwrap();
    wal.logged_replace(&mut primary, &mut obj, 0, b"HDR!")
        .unwrap();
    wal.logged_append(&mut primary, &mut obj, b"fin").unwrap();
    let want = primary.read_all(&obj).unwrap();

    let mut replica = store();
    let mut robj = replica.create_object_with_id(obj.id());
    for r in wal.records() {
        redo(&mut replica, &mut robj, r).unwrap();
    }
    assert_eq!(replica.read_all(&robj).unwrap(), want);
    assert_eq!(robj.lsn(), obj.lsn());
    replica.verify_object(&robj).unwrap();
}

#[test]
fn wal_serialization_roundtrip_and_replay() {
    // Make the log durable as bytes, "restart", and replay it onto a
    // fresh replica — full log shipping across process boundaries.
    let mut primary = store();
    let mut wal = Wal::new();
    let mut obj = primary.create_object();
    wal.logged_append(&mut primary, &mut obj, &pattern(3_000))
        .unwrap();
    wal.logged_insert(&mut primary, &mut obj, 700, b"0123456789")
        .unwrap();
    wal.logged_replace(&mut primary, &mut obj, 0, b"HDR")
        .unwrap();
    wal.logged_delete(&mut primary, &mut obj, 2_000, 400)
        .unwrap();
    let want = primary.read_all(&obj).unwrap();

    let shipped = wal.to_bytes();
    let restored = Wal::from_bytes(&shipped).unwrap();
    assert_eq!(restored.records(), wal.records());

    let mut replica = store();
    let mut robj = replica.create_object_with_id(obj.id());
    for r in restored.records() {
        redo(&mut replica, &mut robj, r).unwrap();
    }
    assert_eq!(replica.read_all(&robj).unwrap(), want);

    // New records appended after a reload keep increasing LSNs.
    let mut w2 = Wal::from_bytes(&shipped).unwrap();
    let mut p2 = store();
    let mut o2 = p2.create_with(&pattern(100), None).unwrap();
    w2.logged_replace(&mut p2, &mut o2, 0, b"z").unwrap();
    assert!(w2.records().last().unwrap().lsn > wal.records().last().unwrap().lsn);
}

#[test]
fn wal_rejects_corruption() {
    let mut store = store();
    let mut wal = Wal::new();
    let mut obj = store.create_with(&pattern(100), None).unwrap();
    wal.logged_replace(&mut store, &mut obj, 0, b"x").unwrap();
    let mut bytes = wal.to_bytes();
    bytes[0] ^= 0xFF;
    assert!(Wal::from_bytes(&bytes).is_err());
    let bytes = wal.to_bytes();
    assert!(Wal::from_bytes(&bytes[..bytes.len() - 2]).is_err());
}

#[test]
fn records_filter_by_object() {
    let mut store = store();
    let mut wal = Wal::new();
    let mut a = store.create_with(&pattern(100), None).unwrap();
    let mut b = store.create_with(&pattern(100), None).unwrap();
    wal.logged_replace(&mut store, &mut a, 0, b"x").unwrap();
    wal.logged_replace(&mut store, &mut b, 0, b"y").unwrap();
    wal.logged_replace(&mut store, &mut a, 1, b"z").unwrap();
    assert_eq!(wal.records_for(a.id()).count(), 2);
    assert_eq!(wal.records_for(b.id()).count(), 1);
    // Redo of a foreign record is a no-op.
    let foreign = wal.records_for(b.id()).next().unwrap().clone();
    let before = store.read_all(&a).unwrap();
    redo(&mut store, &mut a, &foreign).unwrap();
    assert_eq!(store.read_all(&a).unwrap(), before);
}
