//! Integration tests for the §4.5 byte-range lock manager (satellite
//! S3): the full shared/exclusive conflict matrix, blocking on
//! overlapping ranges, the `start..MAX` tail-lock semantics the
//! offset-shifting operations need, strict-2PL release at commit, and
//! a deadlock-free two-transaction interleaving driven through a real
//! [`ObjectStore`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use eos_core::locks::{LockMode, RangeLockManager, TxnId};
use eos_core::ObjectStore;

const OBJ: u64 = 42;

/// The four cells of the S/X conflict matrix, on overlapping ranges.
#[test]
fn conflict_matrix() {
    let cases = [
        (LockMode::Shared, LockMode::Shared, true),
        (LockMode::Shared, LockMode::Exclusive, false),
        (LockMode::Exclusive, LockMode::Shared, false),
        (LockMode::Exclusive, LockMode::Exclusive, false),
    ];
    for (first, second, compatible) in cases {
        let lm = RangeLockManager::new();
        assert!(lm.try_lock(1, OBJ, 0, 100, first));
        assert_eq!(
            lm.try_lock(2, OBJ, 50, 150, second),
            compatible,
            "{first:?} then {second:?}"
        );
        // Disjoint ranges never conflict, whatever the modes.
        assert!(lm.try_lock(2, OBJ, 200, 300, second));
        // Neither do other objects.
        assert!(lm.try_lock(2, OBJ + 1, 0, 100, second));
    }
}

/// Edge-adjacent ranges (`[0,100)` and `[100,200)`) do not overlap;
/// one shared byte does.
#[test]
fn overlap_is_half_open() {
    let lm = RangeLockManager::new();
    assert!(lm.try_lock(1, OBJ, 0, 100, LockMode::Exclusive));
    assert!(lm.try_lock(2, OBJ, 100, 200, LockMode::Exclusive));
    assert!(!lm.try_lock(3, OBJ, 99, 100, LockMode::Shared));
}

/// A blocking `lock` on an overlapping range parks until the holder
/// releases, then proceeds.
#[test]
fn overlapping_range_blocks_until_release() {
    let lm = RangeLockManager::new();
    lm.lock(1, OBJ, 0, 1000, LockMode::Exclusive);
    let done = Arc::new(AtomicUsize::new(0));
    let t = {
        let lm = lm.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            lm.lock(2, OBJ, 500, 600, LockMode::Shared);
            done.store(1, Ordering::SeqCst);
            lm.release_all(2);
        })
    };
    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(done.load(Ordering::SeqCst), 0, "reader must wait");
    lm.release_all(1);
    t.join().unwrap();
    assert_eq!(done.load(Ordering::SeqCst), 1);
}

/// Insert/delete/append shift every byte to their right, so they take
/// `start..u64::MAX`: everything at or past `start` conflicts, while
/// readers strictly to the left are untouched.
#[test]
fn tail_lock_covers_every_shifted_byte() {
    let lm = RangeLockManager::new();
    lm.lock_tail(1, OBJ, 1_000, LockMode::Exclusive);
    // Arbitrarily far to the right still conflicts …
    assert!(!lm.try_lock(2, OBJ, u64::MAX - 1, u64::MAX, LockMode::Shared));
    assert!(!lm.try_lock(2, OBJ, 1_000, 1_001, LockMode::Shared));
    // … the stable prefix does not.
    assert!(lm.try_lock(2, OBJ, 0, 1_000, LockMode::Shared));
    // A second tail lock anywhere overlaps the first (both run to MAX).
    assert!(!lm.try_lock(3, OBJ, u64::MAX - 1, u64::MAX, LockMode::Exclusive));
    lm.release_all(1);
    assert!(lm.try_lock(3, OBJ, 1_000, 1_001, LockMode::Exclusive));
}

/// `lock_object` is the coarse option the paper mentions first: it
/// covers byte 0 onward, so it conflicts with every range.
#[test]
fn whole_object_lock_blocks_all_ranges() {
    let lm = RangeLockManager::new();
    lm.lock_object(1, OBJ, LockMode::Exclusive);
    assert!(!lm.try_lock(2, OBJ, 0, 1, LockMode::Shared));
    assert!(!lm.try_lock(2, OBJ, 1 << 40, (1 << 40) + 1, LockMode::Shared));
    assert!(lm.try_lock(2, OBJ + 1, 0, 1, LockMode::Exclusive));
}

/// Strict 2PL: a transaction accumulates locks while it works and
/// releases them all at commit — nothing leaks, and a waiter sees the
/// whole set vanish at once.
#[test]
fn strict_2pl_releases_everything_at_commit() {
    let lm = RangeLockManager::new();
    lm.lock(1, OBJ, 0, 10, LockMode::Shared);
    lm.lock(1, OBJ, 90, 120, LockMode::Exclusive);
    lm.lock_tail(1, OBJ, 500, LockMode::Exclusive);
    lm.lock(1, OBJ + 1, 0, 10, LockMode::Exclusive);
    assert_eq!(lm.held_count(OBJ), 3);
    assert_eq!(lm.held_count(OBJ + 1), 1);

    // A waiter that needs two of those ranges at once.
    let done = Arc::new(AtomicUsize::new(0));
    let t = {
        let lm = lm.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            lm.lock(2, OBJ, 100, 110, LockMode::Shared);
            lm.lock(2, OBJ, 600, 700, LockMode::Shared);
            done.store(1, Ordering::SeqCst);
            lm.release_all(2);
        })
    };
    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(done.load(Ordering::SeqCst), 0);
    lm.release_all(1); // commit
    t.join().unwrap();
    assert_eq!(lm.held_count(OBJ), 0);
    assert_eq!(lm.held_count(OBJ + 1), 0);
}

/// Two transactions drive interleaved operations against one store,
/// each acquiring its locks *before* calling in (the layering the
/// module docs prescribe) with try-lock + full back-off on conflict —
/// the textbook deadlock-free discipline: no one waits while holding.
#[test]
fn two_txn_interleaving_with_backoff_never_deadlocks() {
    let lm = RangeLockManager::new();
    let mut store = ObjectStore::in_memory(256, 200);
    let mut obj = store.create_with(&[0u8; 2_000], None).unwrap();
    let id = obj.id();

    // Each step: (txn, range, exclusive?) — crafted so the two
    // transactions collide on [500,1500) in opposite acquisition
    // orders, the classic deadlock shape.
    let plan: &[(TxnId, u64, u64)] = &[(1, 500, 1_000), (2, 1_000, 1_500), (1, 900, 1_100)];
    let mut acquired: Vec<TxnId> = Vec::new();
    for &(txn, lo, hi) in plan {
        if lm.try_lock(txn, id, lo, hi, LockMode::Exclusive) {
            acquired.push(txn);
        } else {
            // Conflict: back off completely (release, not wait) — the
            // other transaction can always finish, so progress is
            // guaranteed for one of the two.
            assert_eq!(txn, 1, "only txn 1's second range collides");
            lm.release_all(txn);
            acquired.retain(|&t| t != txn);
        }
    }
    assert_eq!(acquired, vec![2], "txn 1 backed off, txn 2 holds its lock");

    // Txn 2 commits its replace under the lock it holds.
    store.replace(&mut obj, 1_000, &[7u8; 500]).unwrap();
    lm.release_all(2);

    // Txn 1 retries from scratch and now sails through.
    assert!(lm.try_lock(1, id, 500, 1_000, LockMode::Exclusive));
    assert!(lm.try_lock(1, id, 900, 1_100, LockMode::Exclusive));
    store.replace(&mut obj, 500, &[9u8; 400]).unwrap();
    lm.release_all(1);

    let bytes = store.read_all(&obj).unwrap();
    assert_eq!(&bytes[500..900], &[9u8; 400][..]);
    assert_eq!(&bytes[1_000..1_500], &[7u8; 500][..]);
    assert_eq!(lm.held_count(id), 0);
}
