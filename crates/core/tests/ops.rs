//! Directed integration tests for the §4 operations, including the
//! paper's worked examples (Fig 5, §4.2 costs).

use eos_core::{ObjectStore, StoreConfig, Threshold};
use eos_pager::{DiskProfile, MemVolume};

/// A store on the paper's didactic 100-byte pages.
fn store100() -> ObjectStore {
    let vol = MemVolume::with_profile(100, 400, DiskProfile::VINTAGE_1992).shared();
    ObjectStore::create(
        vol,
        1,
        336,
        StoreConfig {
            threshold: Threshold::Fixed(1),
            ..StoreConfig::default()
        },
    )
    .unwrap()
}

fn store4k() -> ObjectStore {
    ObjectStore::in_memory(4096, 4000)
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

#[test]
fn create_known_size_uses_one_segment() {
    // Fig 5.a: a 1820-byte object created with a size hint occupies one
    // 19-page segment and the root has a single pair.
    let mut store = store100();
    let data = pattern(1820);
    let obj = store.create_with(&data, Some(1820)).unwrap();
    assert_eq!(obj.size(), 1820);
    assert_eq!(obj.root_entries(), 1);
    assert_eq!(obj.height(), 1);
    let stats = store.object_stats(&obj).unwrap();
    assert_eq!(stats.segments, 1);
    assert_eq!(stats.leaf_pages, 19);
    store.verify_object(&obj).unwrap();
    assert_eq!(store.read_all(&obj).unwrap(), data);
}

#[test]
fn create_unknown_size_doubles_segments() {
    // Fig 5.b: successive small appends without a size hint grow the
    // object in doubling segments (1, 2, 4, 8, …), last one trimmed.
    let mut store = store100();
    let data = pattern(1820);
    let mut obj = store.create_object();
    {
        let mut s = store.open_append(&mut obj, None).unwrap();
        for chunk in data.chunks(70) {
            s.append(chunk).unwrap();
        }
        s.close().unwrap();
    }
    assert_eq!(obj.size(), 1820);
    store.verify_object(&obj).unwrap();
    let stats = store.object_stats(&obj).unwrap();
    // 1 + 2 + 4 + 8 = 15 pages, then a 16-page segment trimmed to 4
    // (the remaining 320 bytes): five segments, 19 leaf pages.
    assert_eq!(stats.segments, 5);
    assert_eq!(stats.leaf_pages, 19);
    assert_eq!(stats.max_seg_pages, 8);
    assert_eq!(store.read_all(&obj).unwrap(), data);
}

#[test]
fn read_costs_match_section_4_2() {
    // §4.2: reading 320 bytes from byte 1470 of the Fig 5.c object costs
    // 3 seeks + 6 page transfers (indices except the root included);
    // the same read on the Fig 5.a object costs 1 seek + 5 transfers.
    //
    // Build a Fig 5.c-shaped object: counts 1020 | 280,430,90 via insert
    // history is fiddly — instead build it segment by segment through
    // appends with hints, then check the structure before measuring.
    let mut store = store100();
    let data = pattern(1820);

    // Fig 5.a object: single segment.
    let a = store.create_with(&data, Some(1820)).unwrap();
    store.reset_io_stats();
    let got = store.read(&a, 1470, 320).unwrap();
    assert_eq!(got, &data[1470..1790]);
    let s = store.io_stats();
    assert_eq!(s.seeks, 1, "single-segment read seeks once");
    // Bytes 1470..1790 live in pages 14..=17: four transfers. (The
    // paper's prose says "5 pages", counting the page span inclusively;
    // the load-bearing claim is the single seek.)
    assert_eq!(s.page_reads, 4, "pages 14..=17 in one transfer");
}

#[test]
fn insert_preserves_content_everywhere() {
    let mut store = store4k();
    let base = pattern(30_000);
    let mut obj = store.create_with(&base, Some(30_000)).unwrap();
    let mut model = base.clone();
    for (i, &off) in [0u64, 1, 4095, 4096, 12_345, 29_999].iter().enumerate() {
        let ins = vec![b'A' + i as u8; 700 * (i + 1)];
        store.insert(&mut obj, off, &ins).unwrap();
        let off = off as usize;
        model.splice(off..off, ins.iter().copied());
        store.verify_object(&obj).unwrap();
        assert_eq!(store.read_all(&obj).unwrap(), model, "insert #{i}");
    }
}

#[test]
fn insert_at_end_is_append() {
    let mut store = store4k();
    let mut obj = store.create_with(&pattern(5000), None).unwrap();
    store.insert(&mut obj, 5000, b"tail").unwrap();
    assert_eq!(obj.size(), 5004);
    assert_eq!(store.read(&obj, 5000, 4).unwrap(), b"tail");
    store.verify_object(&obj).unwrap();
}

#[test]
fn delete_ranges_everywhere() {
    let mut store = store4k();
    let base = pattern(60_000);
    let mut obj = store.create_with(&base, Some(60_000)).unwrap();
    let mut model = base.clone();
    // Mix of page-aligned, sub-page, cross-segment deletes.
    for &(off, len) in &[
        (0u64, 100u64),
        (4096, 4096),
        (10_000, 13),
        (20_000, 12_000),
        (1, 1),
    ] {
        store.delete(&mut obj, off, len).unwrap();
        let off = off as usize;
        model.drain(off..off + len as usize);
        store.verify_object(&obj).unwrap();
        assert_eq!(store.read_all(&obj).unwrap(), model, "delete {off},{len}");
    }
    assert_eq!(obj.size(), model.len() as u64);
}

#[test]
fn truncate_touches_no_leaf_page() {
    // §4.3.2: "object truncation … does not need to access any segment".
    let mut store = store4k();
    let mut obj = store.create_with(&pattern(100_000), Some(100_000)).unwrap();
    store.reset_io_stats();
    store.truncate(&mut obj, 40_000).unwrap();
    let s = store.io_stats();
    assert_eq!(obj.size(), 40_000);
    // All reads were index pages (at most the tree height + subtree
    // walks); no leaf page of a 100 KB object was transferred. With one
    // segment of 25 pages, there are no index pages at all here.
    assert_eq!(s.page_reads, 0, "no page read at all for this shape");
    store.verify_object(&obj).unwrap();
}

#[test]
fn delete_whole_object_frees_all_space() {
    let mut store = store4k();
    let free0 = store.buddy().total_free_pages();
    let mut obj = store.create_with(&pattern(123_456), None).unwrap();
    assert!(store.buddy().total_free_pages() < free0);
    store.delete_object(&mut obj).unwrap();
    assert!(obj.is_empty());
    assert_eq!(
        store.buddy().total_free_pages(),
        free0,
        "every page returned"
    );
}

#[test]
fn replace_in_place_no_index_writes() {
    let mut store = store4k();
    let base = pattern(50_000);
    let mut obj = store.create_with(&base, Some(50_000)).unwrap();
    store.reset_io_stats();
    let patch = vec![0xEE; 5000];
    store.replace(&mut obj, 7_000, &patch).unwrap();
    let mut model = base;
    model[7_000..12_000].copy_from_slice(&patch);
    assert_eq!(store.read_all(&obj).unwrap(), model);
    store.verify_object(&obj).unwrap();
}

#[test]
fn replace_spanning_segments() {
    let mut store = store100();
    let mut obj = store.create_object();
    {
        let mut s = store.open_append(&mut obj, None).unwrap();
        for chunk in pattern(1500).chunks(90) {
            s.append(chunk).unwrap();
        }
        s.close().unwrap();
    }
    let mut model = pattern(1500);
    let patch = vec![9u8; 600];
    store.replace(&mut obj, 450, &patch).unwrap();
    model[450..1050].copy_from_slice(&patch);
    assert_eq!(store.read_all(&obj).unwrap(), model);
}

#[test]
fn appends_absorb_partial_tail_page() {
    // §4.5: append must not overwrite the existing partial tail page —
    // its bytes are absorbed into the new segment and the old page is
    // freed.
    let mut store = store4k();
    let mut obj = store.create_with(&pattern(5000), None).unwrap();
    let stats0 = store.object_stats(&obj).unwrap();
    assert_eq!(stats0.leaf_pages, 2);
    store.append(&mut obj, &vec![7u8; 3000]).unwrap();
    assert_eq!(obj.size(), 8000);
    let mut model = pattern(5000);
    model.extend(vec![7u8; 3000]);
    assert_eq!(store.read_all(&obj).unwrap(), model);
    store.verify_object(&obj).unwrap();
}

#[test]
fn out_of_bounds_is_reported() {
    let mut store = store4k();
    let mut obj = store.create_with(&pattern(100), None).unwrap();
    assert!(store.read(&obj, 50, 51).is_err());
    assert!(store.read(&obj, 101, 0).is_err());
    assert!(store.insert(&mut obj, 101, b"x").is_err());
    assert!(store.delete(&mut obj, 90, 11).is_err());
    assert!(store.delete(&mut obj, 90, 10).is_ok());
    assert!(store.delete(&mut obj, 90, 1).is_err());
    assert!(store.replace(&mut obj, 89, b"xx").is_err());
    assert!(store.truncate(&mut obj, 91).is_err());
}

#[test]
fn zero_length_ops_are_noops() {
    let mut store = store4k();
    let mut obj = store.create_with(&pattern(100), None).unwrap();
    store.insert(&mut obj, 50, b"").unwrap();
    store.delete(&mut obj, 50, 0).unwrap();
    store.replace(&mut obj, 50, b"").unwrap();
    assert_eq!(store.read(&obj, 0, 0).unwrap(), b"");
    assert_eq!(obj.size(), 100);
}

#[test]
fn large_object_grows_multi_level_tree() {
    // Force tiny nodes (100-byte pages → 5 entries per node) so the tree
    // gains levels quickly.
    let mut store = store100();
    let mut obj = store.create_object();
    let data = pattern(8000);
    {
        let mut s = store.open_append(&mut obj, None).unwrap();
        for chunk in data.chunks(50) {
            s.append(chunk).unwrap();
        }
        s.close().unwrap();
    }
    // Shatter it with small inserts to multiply segments.
    let mut model = data.clone();
    for i in 0..40u64 {
        let off = (i * 197) % model.len() as u64;
        store.insert(&mut obj, off, b"XY").unwrap();
        model.splice(off as usize..off as usize, *b"XY");
    }
    assert!(obj.height() >= 2, "tree must have grown levels");
    store.verify_object(&obj).unwrap();
    assert_eq!(store.read_all(&obj).unwrap(), model);
    // And shrink it back down.
    let len = model.len() as u64;
    store.delete(&mut obj, 10, len - 20).unwrap();
    model.drain(10..model.len() - 10);
    store.verify_object(&obj).unwrap();
    assert_eq!(store.read_all(&obj).unwrap(), model);
}

#[test]
fn threshold_keeps_segments_clustered() {
    // With T=8, small inserts must not shatter the object into 1-page
    // segments (the §4.4 motivation).
    let mut t8 = ObjectStore::create(
        MemVolume::with_profile(4096, 6000, DiskProfile::VINTAGE_1992).shared(),
        1,
        5000,
        StoreConfig {
            threshold: Threshold::Fixed(8),
            ..Default::default()
        },
    )
    .unwrap();
    let mut t1 = ObjectStore::create(
        MemVolume::with_profile(4096, 6000, DiskProfile::VINTAGE_1992).shared(),
        1,
        5000,
        StoreConfig {
            threshold: Threshold::Fixed(1),
            ..Default::default()
        },
    )
    .unwrap();
    let data = pattern(400_000);
    let mut o8 = t8.create_with(&data, Some(data.len() as u64)).unwrap();
    let mut o1 = t1.create_with(&data, Some(data.len() as u64)).unwrap();
    for i in 0..50u64 {
        let off = (i * 7919) % 390_000;
        t8.insert(&mut o8, off, b"0123456789").unwrap();
        t1.insert(&mut o1, off, b"0123456789").unwrap();
    }
    t8.verify_object(&o8).unwrap();
    t1.verify_object(&o1).unwrap();
    let s8 = t8.object_stats(&o8).unwrap();
    let s1 = t1.object_stats(&o1).unwrap();
    assert!(
        s8.segments * 2 < s1.segments,
        "T=8 gives far fewer segments: {} vs {}",
        s8.segments,
        s1.segments
    );
    assert!(s8.min_seg_pages >= 1);
}
