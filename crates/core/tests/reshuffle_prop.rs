//! Property tests for the pure reshuffle planner (§4.3–4.4): byte
//! conservation, monotonic donor shrinkage, maximum-segment respect,
//! and the threshold postcondition that an unsafe neighbour only
//! survives next to N when their merge could not fit one segment.

use eos_core::{pages, reshuffle};
use proptest::prelude::*;

fn prop_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: prop_cases(), ..ProptestConfig::default() })]

    #[test]
    fn reshuffle_invariants(
        l in 0u64..200_000,
        n in 1u64..150_000,
        r in 0u64..200_000,
        ps in prop_oneof![Just(100u64), Just(128), Just(512), Just(4096)],
        t in 1u64..65,
        max in prop_oneof![Just(16u64), Just(128), Just(8192)],
    ) {
        let plan = reshuffle(l, n, r, ps, t, max);

        // Bytes are conserved and donors only shrink.
        prop_assert_eq!(plan.l + plan.n + plan.r, l + n + r);
        prop_assert!(plan.l <= l);
        prop_assert!(plan.r <= r);
        prop_assert_eq!(l - plan.l, plan.from_l);
        prop_assert_eq!(r - plan.r, plan.from_r);
        prop_assert!(plan.n >= n);

        // Reshuffling never grows N past the maximum segment (when the
        // insert itself is already oversized, the executor chunks N into
        // several segments — reshuffle must not make it bigger still).
        prop_assert!(
            pages(plan.n, ps) <= max.max(pages(n, ps)),
            "N grew to {} pages",
            pages(plan.n, ps)
        );

        // Threshold postcondition: a surviving unsafe neighbour beside a
        // nonempty N means the merge could not fit one max segment.
        let unsafe_ = |c: u64| c > 0 && pages(c, ps) < t;
        if plan.n > 0 && unsafe_(plan.l) {
            prop_assert!(
                plan.l + plan.n > max * ps,
                "unsafe L={} kept beside N={} (T={t}, max={max})",
                plan.l, plan.n
            );
        }
        if plan.n > 0 && unsafe_(plan.r) {
            prop_assert!(
                plan.r + plan.n > max * ps,
                "unsafe R={} kept beside N={} (T={t}, max={max})",
                plan.r, plan.n
            );
        }
    }

    #[test]
    fn zero_n_is_identity(
        l in 0u64..100_000,
        r in 0u64..100_000,
        ps in 64u64..8192,
        t in 1u64..65,
    ) {
        let plan = reshuffle(l, 0, r, ps, t, 8192);
        prop_assert_eq!(plan.l, l);
        prop_assert_eq!(plan.n, 0);
        prop_assert_eq!(plan.r, r);
        prop_assert_eq!(plan.from_l, 0);
        prop_assert_eq!(plan.from_r, 0);
    }

    #[test]
    fn t1_never_does_page_moves(
        l in 0u64..50_000,
        n in 1u64..50_000,
        r in 0u64..50_000,
        ps in prop_oneof![Just(100u64), Just(512)],
    ) {
        // With T=1 every nonempty segment is safe: only the §4.3 byte
        // phase may move bytes, which is bounded by one page from each
        // side.
        let plan = reshuffle(l, n, r, ps, 1, 8192);
        prop_assert!(plan.from_l < ps, "byte phase moves < one page from L");
        prop_assert!(plan.from_r <= ps, "R moves only as a single page");
        // If R donated, R must have been a single page.
        if plan.from_r > 0 {
            prop_assert!(r <= ps);
            prop_assert_eq!(plan.r, 0);
        }
    }
}
