//! Model-based property tests: arbitrary operation sequences are applied
//! both to an [`ObjectStore`] object and to a plain `Vec<u8>` reference
//! model; after every step the object must decode to exactly the model
//! bytes and pass the full structural verifier (tree counts, node fill,
//! buddy-map consistency, no-holes rule).

#[allow(unused_imports)]
use eos_buddy::Geometry;
use eos_core::{ObjectStore, StoreConfig, Threshold};
use eos_pager::{DiskProfile, MemVolume};
use proptest::prelude::*;

/// Default case count, overridable via PROPTEST_CASES for deep soaks.
fn prop_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48)
}

#[derive(Debug, Clone)]
enum Op {
    Append { len: usize },
    Insert { at: u64, len: usize },
    Delete { at: u64, len: u64 },
    Replace { at: u64, len: usize },
    Truncate { at: u64 },
    Read { at: u64, len: u64 },
    Compact,
    Consolidate,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0usize..2_000).prop_map(|len| Op::Append { len }),
        3 => (any::<u64>(), 0usize..1_500).prop_map(|(at, len)| Op::Insert { at, len }),
        3 => (any::<u64>(), any::<u64>()).prop_map(|(at, len)| Op::Delete {
            at,
            len: len % 3_000
        }),
        2 => (any::<u64>(), 0usize..1_000).prop_map(|(at, len)| Op::Replace { at, len }),
        1 => any::<u64>().prop_map(|at| Op::Truncate { at }),
        2 => (any::<u64>(), any::<u64>()).prop_map(|(at, len)| Op::Read {
            at,
            len: len % 2_000
        }),
        1 => Just(Op::Compact),
        1 => Just(Op::Consolidate),
    ]
}

fn fill(seed: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| seed.wrapping_add((i % 241) as u8))
        .collect()
}

/// Run one op sequence against the store and the model.
fn run_model(page_size: usize, threshold: Threshold, ops: Vec<Op>) {
    // Enough pages for 60 KB of content plus index pages and slack,
    // split into as many buddy spaces as the directory page can map.
    let data_pages = (200_000 / page_size as u64).max(64);
    let geometry = eos_buddy::Geometry::for_page_size(page_size);
    let pps = geometry.max_space_pages.min(data_pages);
    let spaces = data_pages.div_ceil(pps) as usize;
    let vol = MemVolume::with_profile(page_size, (pps + 1) * spaces as u64 + 4, DiskProfile::FREE)
        .shared();
    let mut store = ObjectStore::create(
        vol,
        spaces,
        pps,
        StoreConfig {
            threshold,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let free0 = store.buddy().total_free_pages();
    let mut obj = store.create_object();
    let mut model: Vec<u8> = Vec::new();

    for (i, op) in ops.into_iter().enumerate() {
        let seed = i as u8;
        let size = model.len() as u64;
        match op {
            Op::Append { len } => {
                // Cap growth so the tiny volume never fills up.
                if model.len() + len > 60_000 {
                    continue;
                }
                let data = fill(seed, len);
                store.append(&mut obj, &data).unwrap();
                model.extend_from_slice(&data);
            }
            Op::Insert { at, len } => {
                if model.len() + len > 60_000 {
                    continue;
                }
                let at = if size == 0 { 0 } else { at % (size + 1) };
                let data = fill(seed.wrapping_add(101), len);
                store.insert(&mut obj, at, &data).unwrap();
                model.splice(at as usize..at as usize, data.iter().copied());
            }
            Op::Delete { at, len } => {
                if size == 0 {
                    continue;
                }
                let at = at % size;
                let len = len.min(size - at);
                if len == 0 {
                    continue;
                }
                store.delete(&mut obj, at, len).unwrap();
                model.drain(at as usize..(at + len) as usize);
            }
            Op::Replace { at, len } => {
                if size == 0 {
                    continue;
                }
                let at = at % size;
                let len = (len as u64).min(size - at) as usize;
                let data = fill(seed.wrapping_add(53), len);
                store.replace(&mut obj, at, &data).unwrap();
                model[at as usize..at as usize + len].copy_from_slice(&data);
            }
            Op::Truncate { at } => {
                let at = if size == 0 { 0 } else { at % (size + 1) };
                store.truncate(&mut obj, at).unwrap();
                model.truncate(at as usize);
            }
            Op::Read { at, len } => {
                if size == 0 {
                    continue;
                }
                let at = at % size;
                let len = len.min(size - at);
                let got = store.read(&obj, at, len).unwrap();
                assert_eq!(got, &model[at as usize..(at + len) as usize]);
                continue; // nothing structural changed
            }
            Op::Compact => {
                store.compact(&mut obj).unwrap();
            }
            Op::Consolidate => {
                store.consolidate(&mut obj).unwrap();
            }
        }
        store.verify_object(&obj).unwrap();
        assert_eq!(obj.size(), model.len() as u64, "size after op {i}");
        let all = store.read_all(&obj).unwrap();
        assert_eq!(all, model, "content after op {i}");
    }

    // The streaming reader agrees with the random-access path.
    let mut streamed = Vec::new();
    for chunk in store.reader(&obj).unwrap() {
        streamed.extend(chunk.unwrap());
    }
    assert_eq!(streamed, model, "reader/read_all divergence");

    // Deleting the object must return every page (no leaks).
    store.delete_object(&mut obj).unwrap();
    assert_eq!(store.buddy().total_free_pages(), free0, "page leak");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: prop_cases(),
        ..ProptestConfig::default()
    })]

    /// Small pages, tiny nodes, aggressive thresholding: exercises tree
    /// growth/collapse, splits, merges, and page reshuffling constantly.
    #[test]
    fn model_small_pages_t4(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_model(128, Threshold::Fixed(4), ops);
    }

    /// No page reshuffling (T=1): pure §4.3 byte reshuffling.
    #[test]
    fn model_small_pages_t1(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_model(128, Threshold::Fixed(1), ops);
    }

    /// The paper's didactic 100-byte pages with adaptive threshold.
    #[test]
    fn model_adaptive_threshold(ops in proptest::collection::vec(op_strategy(), 1..30)) {
        run_model(100, Threshold::Adaptive { base: 2 }, ops);
    }

    /// Realistic 1 KiB pages.
    #[test]
    fn model_1k_pages(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        run_model(1024, Threshold::Fixed(8), ops);
    }
}

/// A long deterministic soak with a fixed seed — cheap to run, deep
/// coverage of interleavings the shorter proptest cases may miss.
#[test]
fn deterministic_soak() {
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut ops = Vec::new();
    for _ in 0..300 {
        let r = next();
        let op = match r % 6 {
            0 => Op::Append {
                len: (next() % 1500) as usize,
            },
            1 => Op::Insert {
                at: next(),
                len: (next() % 900) as usize,
            },
            2 => Op::Delete {
                at: next(),
                len: next() % 2_000,
            },
            3 => Op::Replace {
                at: next(),
                len: (next() % 700) as usize,
            },
            4 => Op::Truncate { at: next() },
            _ => Op::Read {
                at: next(),
                len: next() % 1_000,
            },
        };
        ops.push(op);
    }
    run_model(128, Threshold::Fixed(4), ops);
}
