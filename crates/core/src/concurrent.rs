//! A concurrent front-end over [`ObjectStore`]: shared handles,
//! per-transaction scopes, byte-range locking, and a group-commit WAL
//! pipeline.
//!
//! The paper's engine (§4.5) interleaves many client transactions over
//! one storage manager: each transaction locks the byte ranges it
//! touches, shadowed operations keep the committed image intact, and a
//! single commit point makes each transaction durable. This module is
//! that front-end:
//!
//! * [`ConcurrentStore`] is a cheaply cloneable (`Arc`-shared) handle
//!   around one [`ObjectStore`]. The store itself sits behind a
//!   `RwLock` — reads of committed objects run concurrently, mutations
//!   serialize on the write latch (the latch is held only for the
//!   in-memory/page work of one operation, never across a user stall).
//! * [`Txn`] is one transaction scope. Every operation first acquires
//!   byte-range locks from the shared [`RangeLockManager`] (shared
//!   locks for reads, exclusive for writes, tail locks for
//!   offset-shifting edits), *then* takes the store latch — so lock
//!   waits never hold the latch. Locks follow strict two-phase
//!   locking: they are released only after commit or abort.
//! * Durable commits funnel through a **group-commit pipeline**: each
//!   committing thread enqueues its scope; one thread becomes the
//!   leader, drains the queue, and retires the whole batch with *two*
//!   volume syncs total (one data barrier, one log force) instead of
//!   two per transaction. Batch sizes are recorded in the
//!   `wal.group_commit.batch` histogram.
//!
//! Lock acquisition order is the caller's responsibility: `lock`
//! blocks without deadlock detection, so transactions that touch
//! multiple objects should touch them in a consistent order (or use
//! disjoint objects, as ingest workloads naturally do).

use std::collections::HashMap;
use std::sync::Arc;

use eos_obs::{Counter, Histogram, Metrics};
use eos_pager::SharedVolume;
use parking_lot::{LockClass, TrackedCondvar, TrackedMutex, TrackedRwLock};

use crate::error::{Error, Result};
use crate::locks::{LockMode, RangeLockManager, TxnId};
use crate::object::LargeObject;
use crate::store::ObjectStore;

/// A shareable handle to one [`ObjectStore`]. Clone it freely — all
/// clones see the same store, lock table, and commit pipeline.
#[derive(Clone)]
pub struct ConcurrentStore {
    inner: Arc<Inner>,
}

struct Inner {
    // The store latch legitimately covers page I/O: §4.5 latched
    // commit phases write shadow pages and WAL records under it
    // (`io = allowed`), which is why it ranks *above* the volume
    // mutex and below nothing that forbids I/O. See DESIGN.md §13.
    // lock-class: store = store.latch rank = 30 io = allowed
    store: TrackedRwLock<ObjectStore>,
    locks: RangeLockManager,
    /// The store's volume, retained so the group-commit leader can
    /// issue its barrier/force syncs without holding the store latch.
    volume: SharedVolume,
    group_commit: bool,
    sync_on_commit: bool,
    // Outermost latch in the hierarchy: a committer takes it before
    // anything else and the leader *drops* it across `flush_batch`
    // (release-then-reacquire), so it never covers I/O or the latch.
    // lock-class: group = commit.group rank = 10 io = forbidden
    group: TrackedMutex<GroupState>,
    group_cv: TrackedCondvar,
    /// Mirrors `wal.syncs`: the leader calls `Volume::sync` directly
    /// (bypassing [`crate::durable::DurableWal::sync`]), so it bumps
    /// the same counter by hand to keep the metric honest.
    syncs: Counter,
    group_commits: Counter,
    batch_hist: Histogram,
}

#[derive(Default)]
struct GroupState {
    /// Scopes waiting to be flushed by the next leader.
    queue: Vec<TxnId>,
    /// Finished commits not yet picked up by their owning thread.
    results: HashMap<TxnId, Result<()>>,
    /// Whether a leader is currently flushing a batch (with the group
    /// mutex released); at most one at a time.
    leader_running: bool,
}

impl ConcurrentStore {
    /// Wrap `store` for shared use, with group commit enabled.
    ///
    /// If the caller wants operations recorded in a specific metrics
    /// domain, call [`ObjectStore::set_metrics`] *before* wrapping —
    /// the lock-manager and group-commit instruments are resolved from
    /// the store's domain here.
    pub fn new(store: ObjectStore) -> ConcurrentStore {
        Self::with_group_commit(store, true)
    }

    /// Wrap `store`, choosing whether durable commits batch through
    /// the group-commit pipeline (`true`) or each pay their own pair
    /// of syncs under the write latch (`false`).
    pub fn with_group_commit(store: ObjectStore, group_commit: bool) -> ConcurrentStore {
        let obs: Metrics = store.metrics().clone();
        let volume = store.volume().clone();
        let sync_on_commit = store.config().sync_on_commit;
        let locks = RangeLockManager::new();
        locks.set_metrics(&obs);
        ConcurrentStore {
            inner: Arc::new(Inner {
                store: TrackedRwLock::new(LockClass::allows_io("store.latch"), store),
                locks,
                volume,
                group_commit,
                sync_on_commit,
                group: TrackedMutex::new(
                    LockClass::forbids_io("commit.group"),
                    GroupState::default(),
                ),
                group_cv: TrackedCondvar::new(),
                syncs: obs.counter("wal.syncs"),
                group_commits: obs.counter("wal.group_commits"),
                batch_hist: obs.histogram("wal.group_commit.batch"),
            }),
        }
    }

    /// Open a new transaction scope. The returned handle owns the
    /// scope: dropping it without [`Txn::commit`] aborts it.
    pub fn begin(&self) -> Txn {
        let id = self.inner.store.write().open_scope();
        Txn {
            cs: self.clone(),
            id,
            finished: false,
        }
    }

    /// Run `f` with shared (read) access to the underlying store.
    pub fn with_store<R>(&self, f: impl FnOnce(&ObjectStore) -> R) -> R {
        f(&self.inner.store.read())
    }

    /// Run `f` with exclusive access to the underlying store — for
    /// maintenance outside any transaction (autocommit applies).
    pub fn with_store_mut<R>(&self, f: impl FnOnce(&mut ObjectStore) -> R) -> R {
        f(&mut self.inner.store.write())
    }

    /// Unwrap back to the plain store. Fails (returning `self`) if
    /// other clones of this handle are still alive.
    pub fn try_into_inner(self) -> std::result::Result<ObjectStore, ConcurrentStore> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.store.into_inner()),
            Err(arc) => Err(ConcurrentStore { inner: arc }),
        }
    }

    /// The shared byte-range lock table.
    pub fn locks(&self) -> &RangeLockManager {
        &self.inner.locks
    }

    // ---- the commit pipeline ---------------------------------------------

    fn commit_scope(&self, id: TxnId) -> Result<()> {
        if self.inner.group_commit {
            self.commit_grouped(id)
        } else {
            self.inner.store.write().commit_scope(id)
        }
    }

    /// Group commit: enqueue the scope, then either wait for a leader
    /// to retire it or become the leader and flush the whole queue.
    fn commit_grouped(&self, id: TxnId) -> Result<()> {
        let inner = &*self.inner;
        let mut g = inner.group.lock();
        g.queue.push(id);
        loop {
            if let Some(res) = g.results.remove(&id) {
                return res;
            }
            if !g.leader_running {
                g.leader_running = true;
                let batch = std::mem::take(&mut g.queue);
                drop(g);
                let results = self.flush_batch(&batch);
                g = inner.group.lock();
                g.leader_running = false;
                for (txn, res) in results {
                    g.results.insert(txn, res);
                }
                inner.group_cv.notify_all();
                // Loop around: our own result is now in the map. If
                // more committers queued up meanwhile, one of the
                // woken threads elects itself the next leader.
            } else {
                inner.group_cv.wait(&mut g);
            }
        }
    }

    /// Retire one batch of prepared scopes with two volume syncs
    /// total. Called with the group mutex *released*; takes the store
    /// latch only for the in-memory phases.
    fn flush_batch(&self, batch: &[TxnId]) -> Vec<(TxnId, Result<()>)> {
        let inner = &*self.inner;
        inner.group_commits.inc();
        inner.batch_hist.record(batch.len() as u64);

        // Phase A — one data barrier for the whole batch, outside the
        // latch: shadowed pages and undo images of *every* scope in
        // the batch must be on disk before any commit record.
        if inner.sync_on_commit {
            let dirty = {
                let st = inner.store.read();
                batch.iter().any(|&t| st.scope_dirty(t))
            };
            if dirty {
                if let Err(e) = inner.volume.sync() {
                    return self.fail_batch(batch, &Error::from(e).to_string());
                }
                inner.syncs.inc();
            }
        }

        // Phase B — append each scope's commit record under the write
        // latch, without forcing the log.
        let mut prepared = Vec::with_capacity(batch.len());
        let mut appended_any = false;
        {
            let mut st = inner.store.write();
            for &t in batch {
                let r = st.prepare_commit(t, false);
                if matches!(r, Ok((_, true))) {
                    appended_any = true;
                }
                prepared.push((t, r));
            }
        }

        // Phase C — one log force covers every commit record appended
        // in phase B. No waiter is released before this returns, so a
        // reported commit is durable even though its fsync was shared.
        let mut force_err: Option<String> = None;
        if appended_any && inner.sync_on_commit {
            match inner.volume.sync() {
                Ok(()) => inner.syncs.inc(),
                Err(e) => force_err = Some(Error::from(e).to_string()),
            }
        }

        // Phase D — apply each scope's deferred frees under the latch.
        let mut out = Vec::with_capacity(prepared.len());
        let mut st = inner.store.write();
        for (t, r) in prepared {
            let res = match r {
                // `prepare_commit` already rolled the scope back.
                Err(e) => Err(e),
                Ok((frees, _)) => match &force_err {
                    // The force failed after the records were written:
                    // durability is unknown, so surface an error and
                    // drop the frees (leaking pages is recoverable by
                    // restart; corrupting a possibly-durable commit is
                    // not).
                    Some(msg) => Err(Error::CommitFailed {
                        reason: format!("group log force failed: {msg}"),
                    }),
                    None => st.apply_commit(frees),
                },
            };
            out.push((t, res));
        }
        out
    }

    /// Data barrier failed before anything was logged: roll every
    /// scope in the batch back and report the failure to each waiter.
    fn fail_batch(&self, batch: &[TxnId], msg: &str) -> Vec<(TxnId, Result<()>)> {
        let mut st = self.inner.store.write();
        batch
            .iter()
            .map(|&t| {
                let _ = st.abort_scope(t);
                (
                    t,
                    Err(Error::CommitFailed {
                        reason: format!("group data barrier failed: {msg}"),
                    }),
                )
            })
            .collect()
    }
}

/// One transaction scope on a [`ConcurrentStore`].
///
/// All operations follow strict 2PL: range locks accumulate as the
/// transaction touches bytes and are released only by [`Txn::commit`]
/// or [`Txn::abort`] (or by `Drop`, which aborts). The handle is `Send`
/// — move it into the thread that runs the transaction.
pub struct Txn {
    cs: ConcurrentStore,
    id: TxnId,
    finished: bool,
}

impl Txn {
    /// This scope's identifier (also its lock-table owner id).
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Run `f` on the store with this scope active, under the write
    /// latch. All lock acquisition must happen *before* this.
    fn with_scope<R>(&self, f: impl FnOnce(&mut ObjectStore) -> Result<R>) -> Result<R> {
        let mut st = self.cs.inner.store.write();
        st.set_active_scope(Some(self.id));
        let r = f(&mut st);
        st.set_active_scope(None);
        r
    }

    /// Create an object (optionally with initial bytes). The new
    /// object is exclusively locked by this transaction — no other
    /// transaction can see it before commit anyway, but the lock keeps
    /// the footprint uniform for the lock-table accounting.
    pub fn create(&self, data: &[u8], size_hint: Option<u64>) -> Result<LargeObject> {
        let obj = self.with_scope(|st| st.create_with(data, size_hint))?;
        // Fresh id: guaranteed uncontended, safe to lock after the
        // fact without holding the latch.
        self.cs
            .inner
            .locks
            .lock_object(self.id, obj.id, LockMode::Exclusive);
        Ok(obj)
    }

    /// Read `len` bytes at `offset` under a shared range lock.
    pub fn read(&self, obj: &LargeObject, offset: u64, len: u64) -> Result<Vec<u8>> {
        if len > 0 {
            self.cs
                .inner
                .locks
                .lock(self.id, obj.id, offset, offset + len, LockMode::Shared);
        }
        self.cs.inner.store.read().read(obj, offset, len)
    }

    /// Read the whole object under a shared whole-object lock.
    pub fn read_all(&self, obj: &LargeObject) -> Result<Vec<u8>> {
        self.cs
            .inner
            .locks
            .lock_object(self.id, obj.id, LockMode::Shared);
        self.cs.inner.store.read().read_all(obj)
    }

    /// Overwrite bytes in place under an exclusive lock on exactly the
    /// replaced range (offsets don't shift, §4.5's minimal footprint).
    pub fn replace(&self, obj: &mut LargeObject, offset: u64, data: &[u8]) -> Result<()> {
        if !data.is_empty() {
            self.cs.inner.locks.lock(
                self.id,
                obj.id,
                offset,
                offset + data.len() as u64,
                LockMode::Exclusive,
            );
        }
        self.with_scope(|st| st.replace(obj, offset, data))
    }

    /// Append under an exclusive lock on the tail from the current
    /// size — readers of existing bytes are not blocked.
    pub fn append(&self, obj: &mut LargeObject, data: &[u8]) -> Result<()> {
        self.cs
            .inner
            .locks
            .lock_tail(self.id, obj.id, obj.size(), LockMode::Exclusive);
        self.with_scope(|st| st.append(obj, data))
    }

    /// Insert at `offset`: everything from `offset` onward shifts, so
    /// the exclusive lock covers the tail from `offset`.
    pub fn insert(&self, obj: &mut LargeObject, offset: u64, data: &[u8]) -> Result<()> {
        self.cs
            .inner
            .locks
            .lock_tail(self.id, obj.id, offset, LockMode::Exclusive);
        self.with_scope(|st| st.insert(obj, offset, data))
    }

    /// Delete a byte range: offsets shift from `offset` onward.
    pub fn delete(&self, obj: &mut LargeObject, offset: u64, len: u64) -> Result<()> {
        self.cs
            .inner
            .locks
            .lock_tail(self.id, obj.id, offset, LockMode::Exclusive);
        self.with_scope(|st| st.delete(obj, offset, len))
    }

    /// Truncate to `new_size`: locks the discarded tail.
    pub fn truncate(&self, obj: &mut LargeObject, new_size: u64) -> Result<()> {
        self.cs
            .inner
            .locks
            .lock_tail(self.id, obj.id, new_size, LockMode::Exclusive);
        self.with_scope(|st| st.truncate(obj, new_size))
    }

    /// Delete the whole object under an exclusive whole-object lock.
    pub fn delete_object(&self, obj: &mut LargeObject) -> Result<()> {
        self.cs
            .inner
            .locks
            .lock_object(self.id, obj.id, LockMode::Exclusive);
        self.with_scope(|st| st.delete_object(obj))
    }

    /// Commit the scope (through the group pipeline when enabled) and
    /// release all locks.
    pub fn commit(mut self) -> Result<()> {
        self.finished = true;
        let r = self.cs.commit_scope(self.id);
        self.cs.inner.locks.release_all(self.id);
        r
    }

    /// Abort the scope, rolling back its effects, and release all
    /// locks.
    pub fn abort(mut self) -> Result<()> {
        self.finished = true;
        let r = self.cs.inner.store.write().abort_scope(self.id);
        self.cs.inner.locks.release_all(self.id);
        r
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            // Best effort — a failed rollback is repaired by restart
            // recovery, exactly like a crash at this point.
            let _ = self.cs.inner.store.write().abort_scope(self.id);
            self.cs.inner.locks.release_all(self.id);
        }
    }
}
