//! A concurrent front-end over [`ObjectStore`]: shared handles,
//! per-transaction scopes, byte-range locking, and a group-commit WAL
//! pipeline.
//!
//! The paper's engine (§4.5) interleaves many client transactions over
//! one storage manager: each transaction locks the byte ranges it
//! touches, shadowed operations keep the committed image intact, and a
//! single commit point makes each transaction durable. This module is
//! that front-end:
//!
//! * [`ConcurrentStore`] is a cheaply cloneable (`Arc`-shared) handle
//!   around one [`ObjectStore`]. The store itself sits behind a
//!   `RwLock` — reads of committed objects run concurrently, mutations
//!   serialize on the write latch (the latch is held only for the
//!   in-memory/page work of one operation, never across a user stall).
//! * [`Txn`] is one transaction scope. Every **write** first acquires
//!   exclusive byte-range locks from the shared [`RangeLockManager`]
//!   (tail locks for offset-shifting edits), *then* takes the store
//!   latch — so lock waits never hold the latch. Locks follow strict
//!   two-phase locking: they are released only after commit or abort.
//!   **Reads take no range locks at all**: they pin the committed
//!   root set the last commit published (MVCC snapshot isolation,
//!   DESIGN.md §14) and traverse it while the pin parks any
//!   concurrent reclaim; [`Snapshot`] is the explicit, multi-read
//!   form of the same pin.
//! * Durable commits funnel through a **group-commit pipeline**: each
//!   committing thread enqueues its scope; one thread becomes the
//!   leader, drains the queue, and retires the whole batch with *two*
//!   volume syncs total (one data barrier, one log force) instead of
//!   two per transaction. Batch sizes are recorded in the
//!   `wal.group_commit.batch` histogram. On a striped log
//!   ([`crate::StripedWal`]) the pipeline runs one **lane per stripe**:
//!   scopes enqueue on their home stripe's lane, each lane elects its
//!   own leader, and the lanes' Phase C log forces hold only their own
//!   stripe latches — so commits on disjoint stripes force in
//!   parallel, which is the whole point of striping.
//!
//! Lock acquisition order is the caller's responsibility: `lock`
//! blocks without deadlock detection, so transactions that touch
//! multiple objects should touch them in a consistent order (or use
//! disjoint objects, as ingest workloads naturally do).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use eos_buddy::FreeBatch;
use eos_obs::{Counter, Gauge, Histogram, Metrics, PipeKind, PIN_TRACE_BIT};
use eos_pager::SharedVolume;
use parking_lot::{LockClass, TrackedCondvar, TrackedMutex, TrackedRwLock};

use crate::error::{Error, Result};
use crate::locks::{LockMode, RangeLockManager, TxnId};
use crate::object::LargeObject;
use crate::store::{ObjectStore, PreparedCommit};
use crate::striped::StripedWal;

/// A shareable handle to one [`ObjectStore`]. Clone it freely — all
/// clones see the same store, lock table, and commit pipeline.
#[derive(Clone)]
pub struct ConcurrentStore {
    inner: Arc<Inner>,
}

struct Inner {
    // The store latch legitimately covers page I/O: §4.5 latched
    // commit phases write shadow pages and WAL records under it
    // (`io = allowed`), which is why it ranks *above* the volume
    // mutex and below nothing that forbids I/O. See DESIGN.md §13.
    // lock-class: store = store.latch rank = 30 io = allowed
    store: TrackedRwLock<ObjectStore>,
    locks: RangeLockManager,
    /// The store's volume, retained so the group-commit leader can
    /// issue its barrier/force syncs without holding the store latch.
    volume: SharedVolume,
    /// The store's striped log, retained (shared `Arc`) so Phase C and
    /// the solo commit force stripes without any store latch — the
    /// write-preferring `RwLock` would otherwise let a waiting writer
    /// block the read-latched force and serialize the lanes again.
    wal: Option<Arc<StripedWal>>,
    group_commit: bool,
    sync_on_commit: bool,
    // Outermost latch in the hierarchy: a committer takes it before
    // anything else and the leader *drops* it across `flush_batch`
    // (release-then-reacquire), so it never covers I/O or the latch.
    // One lane per WAL stripe (a single lane when unstriped or
    // volatile); a scope enqueues on its home stripe's lane and the
    // lanes flush independently.
    // lock-class: group = commit.group rank = 10 io = forbidden
    group: Vec<TrackedMutex<GroupState>>,
    group_cv: Vec<TrackedCondvar>,
    // MVCC bookkeeping: the committed root set, reader epoch pins and
    // the parked deferred-free batches. Taken *under* the store latch
    // on the publication path (rank above `store.latch`), and alone on
    // the pin/unpin path; never held while acquiring anything else,
    // and never across volume I/O (reclaims apply after it drops).
    // lock-class: mvcc = mvcc.state rank = 35 io = forbidden
    mvcc: TrackedMutex<MvccState>,
    mvcc_obs: MvccObs,
    /// Mirrors `wal.syncs`: the leader calls `Volume::sync` directly
    /// (bypassing [`crate::durable::DurableWal::sync`]), so it bumps
    /// the same counter by hand to keep the metric honest.
    syncs: Counter,
    group_commits: Counter,
    batch_hist: Histogram,
    /// eos-trace instruments for the commit pipeline (DESIGN.md §16).
    cobs: CommitObs,
    /// Monotonic group-commit batch ids (first batch is 1; 0 in an
    /// event means "batch unknown / not applicable").
    batch_seq: AtomicU64,
}

/// Pre-resolved eos-trace instruments: the pipeline-event domain and
/// the per-phase wall-clock histograms (DESIGN.md §16).
struct CommitObs {
    metrics: Metrics,
    /// Enqueue-to-retirement wait of each committer (leader included:
    /// its wait ends when it assumes leadership).
    queue_wait_us: Histogram,
    /// Wall time of the leader's Phases A–D, one histogram each.
    phase_wall_us: [Histogram; 4],
    /// Pin-to-unpin hold time of MVCC reads and snapshots.
    pin_hold_us: Histogram,
}

/// Microseconds elapsed since `t0`, saturating.
fn us_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The committed-version state readers pin (DESIGN.md §14): writers
/// publish a new root set per commit under a fresh epoch; readers pin
/// the epoch they started at, and superseded pages (deferred-free
/// batches of commits that happened while any older epoch was pinned)
/// are parked until the oldest pin passes them.
struct MvccState {
    /// The current publication epoch — bumped once per committed scope.
    epoch: u64,
    /// Object id → committed root descriptor, as of `epoch`. Shared
    /// out to snapshots by `Arc`; publication clones-and-replaces, so
    /// a pinned snapshot's view is immutable.
    roots: Arc<BTreeMap<u64, Arc<LargeObject>>>,
    /// Live reader pins: epoch → number of pins at that epoch.
    pinned: BTreeMap<u64, usize>,
    /// Deferred-free batches parked behind older reader pins, in
    /// publication order (epochs strictly increase back to front).
    deferred: VecDeque<DeferredFrees>,
}

/// One parked deferred-free batch: the frees of a commit published at
/// `epoch`, reclaimable once no reader pin is older than that epoch.
struct DeferredFrees {
    epoch: u64,
    batch: FreeBatch,
    pages: u64,
}

impl MvccState {
    /// The oldest pinned epoch, if any reader is live.
    fn oldest_pin(&self) -> Option<u64> {
        self.pinned.keys().next().copied()
    }

    /// Pop every parked batch the oldest live pin has passed. A batch
    /// parked at publication epoch `e` superseded pages that were live
    /// at epochs `< e`, so it is reclaimable exactly when no pin is
    /// older than `e`.
    fn drain_reclaimable(&mut self) -> Vec<DeferredFrees> {
        let oldest = self.oldest_pin();
        let mut out = Vec::new();
        while let Some(front) = self.deferred.front() {
            if oldest.is_some_and(|p| p < front.epoch) {
                break;
            }
            if let Some(d) = self.deferred.pop_front() {
                out.push(d);
            }
        }
        out
    }
}

/// Pre-resolved `mvcc.*` instruments ([`ObjectStore::metrics`] domain).
#[derive(Clone)]
struct MvccObs {
    /// Snapshots pinned (named snapshots and per-read implicit pins).
    snapshots: Counter,
    /// Deferred-free batches reclaimed after their parking epoch passed.
    reclaim_batches: Counter,
    /// Pages those reclaimed batches returned to the allocator.
    reclaimed_pages: Counter,
    /// Pages currently parked behind reader pins.
    deferred_pages: Gauge,
    /// Current epoch minus the oldest pinned epoch (0 with no readers).
    oldest_epoch_lag: Gauge,
}

#[derive(Default)]
struct GroupState {
    /// Scopes waiting to be flushed by the next leader.
    queue: Vec<TxnId>,
    /// Finished commits not yet picked up by their owning thread,
    /// tagged with the batch id that retired them so the follower's
    /// trace events link to the leader's phase spans.
    results: HashMap<TxnId, (u64, Result<()>)>,
    /// Whether a leader is currently flushing a batch (with the group
    /// mutex released); at most one at a time.
    leader_running: bool,
}

impl ConcurrentStore {
    /// Wrap `store` for shared use, with group commit enabled.
    ///
    /// If the caller wants operations recorded in a specific metrics
    /// domain, call [`ObjectStore::set_metrics`] *before* wrapping —
    /// the lock-manager and group-commit instruments are resolved from
    /// the store's domain here.
    pub fn new(store: ObjectStore) -> ConcurrentStore {
        Self::with_group_commit(store, true)
    }

    /// Wrap `store`, choosing whether durable commits batch through
    /// the group-commit pipeline (`true`) or each pay their own pair
    /// of syncs under the write latch (`false`).
    pub fn with_group_commit(store: ObjectStore, group_commit: bool) -> ConcurrentStore {
        let obs: Metrics = store.metrics().clone();
        let volume = store.volume().clone();
        let sync_on_commit = store.config().sync_on_commit;
        let locks = RangeLockManager::new();
        locks.set_metrics(&obs);
        // Seed the committed root set from the durable log's committed
        // map, so readers can resolve any object that was committed
        // before this front-end was wrapped around the store. Volatile
        // stores start empty (reads fall back to caller descriptors).
        let seed: BTreeMap<u64, Arc<LargeObject>> = store
            .durable_wal()
            .map(|w| {
                w.committed()
                    .into_iter()
                    .filter_map(|(id, bytes)| {
                        LargeObject::from_bytes(&bytes)
                            .ok()
                            .map(|o| (id, Arc::new(o)))
                    })
                    .collect()
            })
            .unwrap_or_default();
        let wal = store.wal_handle();
        let lanes = wal.as_ref().map_or(1, |w| w.num_stripes());
        ConcurrentStore {
            inner: Arc::new(Inner {
                store: TrackedRwLock::new(LockClass::allows_io("store.latch"), store),
                locks,
                volume,
                wal,
                group_commit,
                sync_on_commit,
                group: (0..lanes)
                    .map(|_| {
                        TrackedMutex::new(
                            LockClass::forbids_io("commit.group"),
                            GroupState::default(),
                        )
                    })
                    .collect(),
                group_cv: (0..lanes).map(|_| TrackedCondvar::new()).collect(),
                mvcc: TrackedMutex::new(
                    LockClass::forbids_io("mvcc.state"),
                    MvccState {
                        epoch: 1,
                        roots: Arc::new(seed),
                        pinned: BTreeMap::new(),
                        deferred: VecDeque::new(),
                    },
                ),
                mvcc_obs: MvccObs {
                    snapshots: obs.counter("mvcc.snapshots"),
                    reclaim_batches: obs.counter("mvcc.reclaim_batches"),
                    reclaimed_pages: obs.counter("mvcc.reclaimed_pages"),
                    deferred_pages: obs.gauge("mvcc.deferred_pages"),
                    oldest_epoch_lag: obs.gauge("mvcc.oldest_epoch_lag"),
                },
                syncs: obs.counter("wal.syncs"),
                group_commits: obs.counter("wal.group_commits"),
                batch_hist: obs.histogram("wal.group_commit.batch"),
                cobs: CommitObs {
                    queue_wait_us: obs.histogram("commit.queue_wait_us"),
                    phase_wall_us: [
                        obs.histogram("commit.phase_a.wall_us"),
                        obs.histogram("commit.phase_b.wall_us"),
                        obs.histogram("commit.phase_c.wall_us"),
                        obs.histogram("commit.phase_d.wall_us"),
                    ],
                    pin_hold_us: obs.histogram("mvcc.pin.hold_us"),
                    metrics: obs,
                },
                batch_seq: AtomicU64::new(0),
            }),
        }
    }

    /// Open a new transaction scope. The returned handle owns the
    /// scope: dropping it without [`Txn::commit`] aborts it.
    pub fn begin(&self) -> Txn {
        let id = self.inner.store.write().open_scope();
        Txn {
            cs: self.clone(),
            id,
            finished: false,
            wrote: RefCell::new(BTreeSet::new()),
        }
    }

    /// Run `f` with shared (read) access to the underlying store.
    pub fn with_store<R>(&self, f: impl FnOnce(&ObjectStore) -> R) -> R {
        f(&self.inner.store.read())
    }

    /// Run `f` with exclusive access to the underlying store — for
    /// maintenance outside any transaction (autocommit applies).
    pub fn with_store_mut<R>(&self, f: impl FnOnce(&mut ObjectStore) -> R) -> R {
        f(&mut self.inner.store.write())
    }

    /// Unwrap back to the plain store. Fails (returning `self`) if
    /// other clones of this handle are still alive.
    pub fn try_into_inner(self) -> std::result::Result<ObjectStore, ConcurrentStore> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.store.into_inner()),
            Err(arc) => Err(ConcurrentStore { inner: arc }),
        }
    }

    /// The shared byte-range lock table.
    pub fn locks(&self) -> &RangeLockManager {
        &self.inner.locks
    }

    // ---- MVCC: pins, publication, reclaim (DESIGN.md §14) ----------------
    //
    // The reclaim path's write-ordering contract (rule L6, DESIGN.md
    // §15): deferred-freed pages must not become reusable before the
    // commit frame that supersedes them is durable.
    //
    // durability-class: mvcc-publish requires = commit-frame

    /// Pin the current epoch and hand back the committed root set as
    /// of that epoch. Every pin MUST be paired with one
    /// [`Self::unpin_and_reclaim`].
    fn pin(&self) -> (u64, Arc<BTreeMap<u64, Arc<LargeObject>>>) {
        let inner = &*self.inner;
        let (epoch, roots) = {
            let mut mv = inner.mvcc.lock();
            let epoch = mv.epoch;
            *mv.pinned.entry(epoch).or_insert(0) += 1;
            inner.mvcc_obs.snapshots.inc();
            let lag = epoch - mv.oldest_pin().unwrap_or(epoch);
            inner.mvcc_obs.oldest_epoch_lag.set(lag);
            (epoch, Arc::clone(&mv.roots))
        };
        inner
            .cobs
            .metrics
            .pipe_event(PipeKind::Begin, "mvcc.pin", epoch | PIN_TRACE_BIT, 0);
        (epoch, roots)
    }

    /// Release one pin at `epoch` and apply every deferred-free batch
    /// the oldest remaining pin has now passed. The reclaim itself
    /// (directory-page I/O) runs under the store write latch, with the
    /// MVCC latch already released. Batches are parked only by
    /// [`Self::publish_commit`], *after* their commit's log force, so
    /// every drained batch's commit frame is already durable.
    // durability: requires(commit-frame)
    fn unpin_and_reclaim(&self, epoch: u64) -> Result<()> {
        let inner = &*self.inner;
        let reclaim = {
            let mut mv = inner.mvcc.lock();
            if let Some(n) = mv.pinned.get_mut(&epoch) {
                *n -= 1;
                if *n == 0 {
                    mv.pinned.remove(&epoch);
                }
            }
            let out = mv.drain_reclaimable();
            let lag = mv.epoch - mv.oldest_pin().unwrap_or(mv.epoch);
            inner.mvcc_obs.oldest_epoch_lag.set(lag);
            out
        };
        inner
            .cobs
            .metrics
            .pipe_event(PipeKind::End, "mvcc.pin", epoch | PIN_TRACE_BIT, 0);
        if reclaim.is_empty() {
            return Ok(());
        }
        let mut st = inner.store.write();
        let mut reclaim = reclaim;
        for i in 0..reclaim.len() {
            let (epoch, batch, pages) = {
                let d = &reclaim[i];
                (d.epoch, d.batch, d.pages)
            };
            inner.cobs.metrics.pipe_event(
                PipeKind::Instant,
                "mvcc.reclaim",
                epoch | PIN_TRACE_BIT,
                0,
            );
            // durability: mutates(mvcc-publish)
            if let Err(e) = st.apply_commit(batch) {
                // `commit_frees` consumed the batch from the registry
                // before the failing free I/O, so the failed batch
                // cannot be re-parked (re-applying it would double
                // free) — its pages leak until restart, and the gauge
                // must drop them. The *rest* of the drained batches
                // were never touched: re-park them at the queue front,
                // in order, so a later unpin retries the frees.
                inner.mvcc_obs.deferred_pages.sub(pages);
                drop(st);
                let mut mv = inner.mvcc.lock();
                for r in reclaim.drain(i + 1..).rev() {
                    mv.deferred.push_front(r);
                }
                return Err(e);
            }
            inner.mvcc_obs.reclaim_batches.inc();
            inner.mvcc_obs.reclaimed_pages.add(pages);
            inner.mvcc_obs.deferred_pages.sub(pages);
        }
        Ok(())
    }

    /// Publish one prepared commit to readers and retire its deferred
    /// frees: bump the epoch, swap in a new committed root set with the
    /// scope's touched roots and tombstones applied, then either apply
    /// the free batch immediately (no reader pinned an older epoch) or
    /// park it on the epoch-tagged deferred list. Called with the store
    /// write latch held; the MVCC latch nests inside it and is released
    /// before the frees' directory I/O.
    // durability: requires(commit-frame)
    fn publish_commit(&self, st: &mut ObjectStore, prep: &PreparedCommit) -> Result<()> {
        let inner = &*self.inner;
        let pages = st.buddy().batch_page_count(prep.batch);
        let mut decoded = Vec::with_capacity(prep.touched.len());
        for (id, bytes) in &prep.touched {
            decoded.push((*id, Arc::new(LargeObject::from_bytes(bytes)?)));
        }
        let apply_now = {
            let mut mv = inner.mvcc.lock();
            mv.epoch += 1;
            if !decoded.is_empty() || !prep.deleted.is_empty() {
                let mut roots = (*mv.roots).clone();
                for (id, obj) in decoded {
                    roots.insert(id, obj);
                }
                for id in &prep.deleted {
                    roots.remove(id);
                }
                mv.roots = Arc::new(roots);
            }
            let lag = mv.epoch - mv.oldest_pin().unwrap_or(mv.epoch);
            inner.mvcc_obs.oldest_epoch_lag.set(lag);
            if pages > 0 && !mv.pinned.is_empty() {
                let epoch = mv.epoch;
                mv.deferred.push_back(DeferredFrees {
                    epoch,
                    batch: prep.batch,
                    pages,
                });
                inner.mvcc_obs.deferred_pages.add(pages);
                inner.cobs.metrics.pipe_event(
                    PipeKind::Instant,
                    "mvcc.park",
                    epoch | PIN_TRACE_BIT,
                    0,
                );
                false
            } else {
                true
            }
        };
        if apply_now {
            // durability: mutates(mvcc-publish)
            st.apply_commit(prep.batch)?;
        }
        Ok(())
    }

    /// Pin a consistent, immutable view of every committed object. The
    /// snapshot reads entirely without range locks; pages it can see
    /// are protected from reclaim until it drops.
    pub fn snapshot(&self) -> Snapshot {
        let (epoch, roots) = self.pin();
        Snapshot {
            cs: self.clone(),
            epoch,
            roots,
            pinned: Instant::now(),
        }
    }

    // ---- the commit pipeline ---------------------------------------------

    fn commit_scope(&self, id: TxnId) -> Result<()> {
        if self.inner.group_commit {
            self.commit_grouped(id)
        } else {
            self.commit_solo(id)
        }
    }

    /// The non-grouped durable commit, with MVCC publication: the same
    /// barrier/append/force sequence as [`ObjectStore::commit_scope`],
    /// but with both syncs issued **outside the store latch** — the
    /// data barrier before the append, the log force holding only the
    /// touched stripes' latches after it — so solo committers on
    /// disjoint stripes overlap their I/O. Then root publication and
    /// the deferred frees (parked if a reader epoch is pinned).
    fn commit_solo(&self, id: TxnId) -> Result<()> {
        let inner = &*self.inner;
        // Data barrier: shadowed pages and undo images must be on disk
        // before the commit record that publishes them.
        if inner.sync_on_commit && inner.wal.is_some() {
            let dirty = inner.store.read().scope_dirty(id);
            if dirty {
                // durability: seals(shadow-data)
                if let Err(e) = inner.volume.sync() {
                    let _ = inner.store.write().abort_scope(id);
                    return Err(Error::CommitFailed {
                        reason: format!("data barrier failed: {}", Error::from(e)),
                    });
                }
                inner.syncs.inc();
            }
        }
        // Append the commit record under the write latch, no force.
        let prep = {
            let mut st = inner.store.write();
            // durability: mutates(commit-frame)
            st.prepare_commit(id, false)?
        };
        // The log force: the commit record is durable past here.
        if prep.appended && inner.sync_on_commit {
            if let Some(wal) = &inner.wal {
                // durability: seals(commit-frame)
                if let Err(e) = wal.sync_stripes(&prep.stripes) {
                    // Durability unknown: drop the scope's deferred
                    // frees from the buddy registry *without* freeing
                    // (leaked pages are recoverable by restart;
                    // freeing pages a possibly-durable commit still
                    // references is not), then fail the commit.
                    inner.store.write().buddy().abort_frees(prep.batch);
                    return Err(Error::CommitFailed {
                        reason: format!("log force failed: {e}"),
                    });
                }
            }
        }
        let mut st = inner.store.write();
        self.publish_commit(&mut st, &prep)
    }

    /// Group commit: enqueue the scope, then either wait for a leader
    /// to retire it or become the leader and flush the whole queue.
    fn commit_grouped(&self, id: TxnId) -> Result<()> {
        let inner = &*self.inner;
        let waited = Instant::now();
        inner
            .cobs
            .metrics
            .pipe_event(PipeKind::Begin, "commit.queue_wait", id, 0);
        // Set once the queue-wait span has been closed (the leader
        // closes its own at election, a follower at retirement).
        let mut wait_closed = false;
        let mut close_wait = |batch_id: u64| {
            if wait_closed {
                return;
            }
            wait_closed = true;
            inner
                .cobs
                .metrics
                .pipe_event(PipeKind::End, "commit.queue_wait", id, batch_id);
            let wait_ns = u64::try_from(waited.elapsed().as_nanos()).unwrap_or(u64::MAX);
            inner.cobs.queue_wait_us.record(wait_ns / 1000);
            inner
                .cobs
                .metrics
                .check_stall("commit.queue_wait", id, batch_id, wait_ns);
        };
        // Home lane: the scope's lowest touched stripe. The store read
        // latch must drop *before* the lane mutex is taken —
        // store.latch (rank 30) can never be held while acquiring
        // commit.group (rank 10).
        let lane = {
            let st = inner.store.read();
            st.scope_group_stripe(id)
        }
        .min(inner.group.len() - 1);
        let mut g = inner.group[lane].lock();
        g.queue.push(id);
        loop {
            if let Some((batch_id, res)) = g.results.remove(&id) {
                drop(g);
                close_wait(batch_id);
                return res;
            }
            if !g.leader_running {
                g.leader_running = true;
                let batch = std::mem::take(&mut g.queue);
                let batch_id = inner.batch_seq.fetch_add(1, Ordering::Relaxed) + 1;
                drop(g);
                close_wait(batch_id);
                let results = self.flush_batch(&batch, batch_id, id);
                g = inner.group[lane].lock();
                g.leader_running = false;
                for (txn, res) in results {
                    g.results.insert(txn, (batch_id, res));
                }
                inner.group_cv[lane].notify_all();
                // Loop around: our own result is now in the map. If
                // more committers queued up meanwhile, one of the
                // woken threads elects itself the next leader.
            } else {
                inner.group_cv[lane].wait(&mut g);
            }
        }
    }

    /// Retire one batch of prepared scopes with two volume syncs
    /// total. Called with the group mutex *released*; takes the store
    /// latch only for the in-memory phases.
    ///
    /// The leader stamps Phase A–D begin/end events with *shared
    /// boundary timestamps* (phase N's end instant is phase N+1's
    /// begin), so the exported timeline is contiguous and the phase
    /// durations sum exactly to the batch's end-to-end wall time.
    /// `lead` is the leader's TxnId — the trace id of the batch-level
    /// spans.
    fn flush_batch(&self, batch: &[TxnId], batch_id: u64, lead: TxnId) -> Vec<(TxnId, Result<()>)> {
        let inner = &*self.inner;
        inner.group_commits.inc();
        inner.batch_hist.record(batch.len() as u64);
        let m = &inner.cobs.metrics;
        let t0 = m.now_ns();

        // Phase A — one data barrier for the whole batch, outside the
        // latch: shadowed pages and undo images of *every* scope in
        // the batch must be on disk before any commit record.
        if inner.sync_on_commit {
            let dirty = {
                let st = inner.store.read();
                batch.iter().any(|&t| st.scope_dirty(t))
            };
            if dirty {
                // durability: seals(shadow-data)
                if let Err(e) = inner.volume.sync() {
                    return self.fail_batch(batch, &Error::from(e).to_string());
                }
                inner.syncs.inc();
            }
        }
        let t1 = m.now_ns();

        // Phase B — append each scope's commit record under the write
        // latch, without forcing the log.
        let mut prepared = Vec::with_capacity(batch.len());
        let mut appended_any = false;
        {
            let mut st = inner.store.write();
            for &t in batch {
                // durability: mutates(commit-frame)
                let r = st.prepare_commit(t, false);
                if matches!(&r, Ok(p) if p.appended) {
                    appended_any = true;
                }
                m.pipe_event(PipeKind::Instant, "commit.prepare", t, batch_id);
                prepared.push((t, r));
            }
        }
        let t2 = m.now_ns();

        // Phase C — one log force covers every commit record appended
        // in phase B. No waiter is released before this returns, so a
        // reported commit is durable even though its fsync was shared.
        // On a striped log the force holds only the latches of the
        // stripes this batch actually landed on — and *no store latch*
        // — so lanes flushing disjoint stripes force in parallel.
        let mut force_err: Option<String> = None;
        if appended_any && inner.sync_on_commit {
            let force: Result<()> = match &inner.wal {
                Some(w) => {
                    let mut stripes: Vec<usize> = prepared
                        .iter()
                        .filter_map(|(_, r)| r.as_ref().ok())
                        .flat_map(|p| p.stripes.iter().copied())
                        .collect();
                    stripes.sort_unstable();
                    stripes.dedup();
                    // durability: seals(commit-frame)
                    w.sync_stripes(&stripes)
                }
                None => {
                    // durability: seals(commit-frame)
                    match inner.volume.sync() {
                        Ok(()) => {
                            inner.syncs.inc();
                            Ok(())
                        }
                        Err(e) => Err(Error::from(e)),
                    }
                }
            };
            if let Err(e) = force {
                force_err = Some(e.to_string());
            }
        }
        let t3 = m.now_ns();

        // Phase D — publish each scope's new roots to readers and
        // apply (or park, behind pinned reader epochs) its deferred
        // frees, under the latch.
        let mut out = Vec::with_capacity(prepared.len());
        {
            let mut st = inner.store.write();
            for (t, r) in prepared {
                let res = match r {
                    // `prepare_commit` already rolled the scope back.
                    Err(e) => Err(e),
                    Ok(prep) => match &force_err {
                        // The force failed after the records were written:
                        // durability is unknown, so surface an error and
                        // drop the frees — out of the buddy registry too,
                        // or the batch entry would pin `pending_extents`
                        // forever (leaking the *pages* is recoverable by
                        // restart; freeing pages a possibly-durable
                        // commit still references is not).
                        Some(msg) => {
                            st.buddy().abort_frees(prep.batch);
                            Err(Error::CommitFailed {
                                reason: format!("group log force failed: {msg}"),
                            })
                        }
                        None => self.publish_commit(&mut st, &prep),
                    },
                };
                out.push((t, res));
            }
        }
        let t4 = m.now_ns();

        // Emit the batch timeline: an enclosing `commit` span plus the
        // four phase spans, back to back on the shared boundaries.
        m.pipe_event_at(t0, PipeKind::Begin, "commit", lead, batch_id);
        let phases = [
            ("commit.phase_a", t0, t1),
            ("commit.phase_b", t1, t2),
            ("commit.phase_c", t2, t3),
            ("commit.phase_d", t3, t4),
        ];
        for (i, &(phase, begin, end)) in phases.iter().enumerate() {
            m.pipe_event_at(begin, PipeKind::Begin, phase, lead, batch_id);
            m.pipe_event_at(end, PipeKind::End, phase, lead, batch_id);
            inner.cobs.phase_wall_us[i].record(end.saturating_sub(begin) / 1000);
            m.check_stall(phase, lead, batch_id, end.saturating_sub(begin));
        }
        m.pipe_event_at(t4, PipeKind::End, "commit", lead, batch_id);

        if force_err.is_some() {
            // The batch is being failed with durability unknown — the
            // exact situation the flight recorder exists for.
            let _ = m.flight_dump("commit_failed");
        }
        out
    }

    /// Data barrier failed before anything was logged: roll every
    /// scope in the batch back and report the failure to each waiter.
    fn fail_batch(&self, batch: &[TxnId], msg: &str) -> Vec<(TxnId, Result<()>)> {
        let out: Vec<(TxnId, Result<()>)> = {
            let mut st = self.inner.store.write();
            batch
                .iter()
                .map(|&t| {
                    let _ = st.abort_scope(t);
                    (
                        t,
                        Err(Error::CommitFailed {
                            reason: format!("group data barrier failed: {msg}"),
                        }),
                    )
                })
                .collect()
        };
        let _ = self.inner.cobs.metrics.flight_dump("commit_failed");
        out
    }
}

/// One transaction scope on a [`ConcurrentStore`].
///
/// Writes follow strict 2PL: exclusive range locks accumulate as the
/// transaction touches bytes and are released only by [`Txn::commit`]
/// or [`Txn::abort`] (or by `Drop`, which aborts). Reads take **no
/// locks at all**: they pin the committed root set published by the
/// last commit (snapshot isolation — see DESIGN.md §14) and read the
/// version the pin protects, falling back to the transaction's own
/// uncommitted view for objects it has written (read-your-writes).
/// The handle is `Send` — move it into the thread that runs the
/// transaction.
pub struct Txn {
    cs: ConcurrentStore,
    id: TxnId,
    finished: bool,
    /// Ids of objects this scope has written — reads of these resolve
    /// to the caller's descriptor (the uncommitted view) instead of
    /// the committed root set.
    wrote: RefCell<BTreeSet<u64>>,
}

impl Txn {
    /// This scope's identifier (also its lock-table owner id).
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Run `f` on the store with this scope active, under the write
    /// latch. All lock acquisition must happen *before* this.
    fn with_scope<R>(&self, f: impl FnOnce(&mut ObjectStore) -> Result<R>) -> Result<R> {
        let mut st = self.cs.inner.store.write();
        st.set_active_scope(Some(self.id));
        let r = f(&mut st);
        st.set_active_scope(None);
        r
    }

    /// Note a write to `id` for read-your-writes resolution.
    fn note_write(&self, id: u64) {
        self.wrote.borrow_mut().insert(id);
    }

    /// Create an object (optionally with initial bytes). The new
    /// object is exclusively locked by this transaction — no other
    /// transaction can see it before commit anyway, but the lock keeps
    /// the footprint uniform for the lock-table accounting.
    pub fn create(&self, data: &[u8], size_hint: Option<u64>) -> Result<LargeObject> {
        let obj = self.with_scope(|st| st.create_with(data, size_hint))?;
        // Fresh id: guaranteed uncontended, safe to lock after the
        // fact without holding the latch.
        self.cs
            .inner
            .locks
            .lock_object(self.id, obj.id, LockMode::Exclusive);
        self.note_write(obj.id);
        Ok(obj)
    }

    /// Read `len` bytes at `offset` — **lock-free**. If this scope has
    /// written the object, the caller's descriptor (its uncommitted
    /// view) is read directly; otherwise an implicit snapshot pins the
    /// current epoch and the read traverses the committed root for the
    /// object id, immune to concurrent commits and page reclaim.
    pub fn read(&self, obj: &LargeObject, offset: u64, len: u64) -> Result<Vec<u8>> {
        if self.wrote.borrow().contains(&obj.id) {
            return self.cs.inner.store.read().read(obj, offset, len);
        }
        let pinned = Instant::now();
        let (epoch, roots) = self.cs.pin();
        let r = {
            let st = self.cs.inner.store.read();
            match roots.get(&obj.id) {
                Some(committed) => st.read(committed, offset, len),
                None => st.read(obj, offset, len),
            }
        };
        self.cs.unpin_and_reclaim(epoch)?;
        self.cs.inner.cobs.pin_hold_us.record(us_since(pinned));
        r
    }

    /// Read the whole object — lock-free, same resolution as
    /// [`Txn::read`].
    pub fn read_all(&self, obj: &LargeObject) -> Result<Vec<u8>> {
        if self.wrote.borrow().contains(&obj.id) {
            return self.cs.inner.store.read().read_all(obj);
        }
        let pinned = Instant::now();
        let (epoch, roots) = self.cs.pin();
        let r = {
            let st = self.cs.inner.store.read();
            match roots.get(&obj.id) {
                Some(committed) => st.read_all(committed),
                None => st.read_all(obj),
            }
        };
        self.cs.unpin_and_reclaim(epoch)?;
        self.cs.inner.cobs.pin_hold_us.record(us_since(pinned));
        r
    }

    /// Pin an explicit named snapshot of the committed state (every
    /// object, not just one) — independent of this transaction's
    /// lifetime and of its uncommitted writes.
    pub fn snapshot(&self) -> Snapshot {
        self.cs.snapshot()
    }

    /// Overwrite bytes under an exclusive lock on exactly the replaced
    /// range (offsets don't shift, §4.5's minimal footprint). The
    /// rewrite is copy-on-write ([`ObjectStore::replace_shadow`]):
    /// committed pages a reader snapshot may be traversing are never
    /// overwritten, their frees are deferred behind the reader epochs.
    pub fn replace(&self, obj: &mut LargeObject, offset: u64, data: &[u8]) -> Result<()> {
        if !data.is_empty() {
            self.cs.inner.locks.lock(
                self.id,
                obj.id,
                offset,
                offset + data.len() as u64,
                LockMode::Exclusive,
            );
        }
        self.note_write(obj.id);
        self.with_scope(|st| st.replace_shadow(obj, offset, data))
    }

    /// Append under an exclusive lock on the tail from the current
    /// size — readers of existing bytes are not blocked.
    pub fn append(&self, obj: &mut LargeObject, data: &[u8]) -> Result<()> {
        self.cs
            .inner
            .locks
            .lock_tail(self.id, obj.id, obj.size(), LockMode::Exclusive);
        self.note_write(obj.id);
        self.with_scope(|st| st.append(obj, data))
    }

    /// Insert at `offset`: everything from `offset` onward shifts, so
    /// the exclusive lock covers the tail from `offset`.
    pub fn insert(&self, obj: &mut LargeObject, offset: u64, data: &[u8]) -> Result<()> {
        self.cs
            .inner
            .locks
            .lock_tail(self.id, obj.id, offset, LockMode::Exclusive);
        self.note_write(obj.id);
        self.with_scope(|st| st.insert(obj, offset, data))
    }

    /// Delete a byte range: offsets shift from `offset` onward.
    pub fn delete(&self, obj: &mut LargeObject, offset: u64, len: u64) -> Result<()> {
        self.cs
            .inner
            .locks
            .lock_tail(self.id, obj.id, offset, LockMode::Exclusive);
        self.note_write(obj.id);
        self.with_scope(|st| st.delete(obj, offset, len))
    }

    /// Truncate to `new_size`: locks the discarded tail.
    pub fn truncate(&self, obj: &mut LargeObject, new_size: u64) -> Result<()> {
        self.cs
            .inner
            .locks
            .lock_tail(self.id, obj.id, new_size, LockMode::Exclusive);
        self.note_write(obj.id);
        self.with_scope(|st| st.truncate(obj, new_size))
    }

    /// Delete the whole object under an exclusive whole-object lock.
    pub fn delete_object(&self, obj: &mut LargeObject) -> Result<()> {
        self.cs
            .inner
            .locks
            .lock_object(self.id, obj.id, LockMode::Exclusive);
        self.note_write(obj.id);
        self.with_scope(|st| st.delete_object(obj))
    }

    /// Commit the scope (through the group pipeline when enabled) and
    /// release all locks.
    pub fn commit(mut self) -> Result<()> {
        self.finished = true;
        let r = self.cs.commit_scope(self.id);
        self.cs.inner.locks.release_all(self.id);
        r
    }

    /// Abort the scope, rolling back its effects, and release all
    /// locks.
    pub fn abort(mut self) -> Result<()> {
        self.finished = true;
        let r = self.cs.inner.store.write().abort_scope(self.id);
        self.cs.inner.locks.release_all(self.id);
        r
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            // Best effort — a failed rollback is repaired by restart
            // recovery, exactly like a crash at this point.
            let _ = self.cs.inner.store.write().abort_scope(self.id);
            self.cs.inner.locks.release_all(self.id);
        }
    }
}

/// A pinned, immutable view of the committed state (DESIGN.md §14).
///
/// Pinning is O(1): the snapshot holds an `Arc` of the committed root
/// set published by the last commit, plus an epoch pin that keeps
/// every page those roots reference from being reclaimed. Reads
/// traverse the trees without any range locks and are byte-stable no
/// matter how many writers commit concurrently. Dropping the snapshot
/// releases the pin; deferred frees parked behind it are applied as
/// soon as no older pin remains.
pub struct Snapshot {
    cs: ConcurrentStore,
    epoch: u64,
    roots: Arc<BTreeMap<u64, Arc<LargeObject>>>,
    /// When the pin was taken, for the `mvcc.pin.hold_us` histogram.
    pinned: Instant,
}

impl Snapshot {
    /// The publication epoch this snapshot is pinned at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Ids of every object committed as of the pin, ascending.
    pub fn object_ids(&self) -> Vec<u64> {
        self.roots.keys().copied().collect()
    }

    /// The pinned root descriptor of `id`, if the object was committed
    /// as of the pin. The clone stays readable through [`Self::read`]
    /// for this snapshot's lifetime.
    pub fn object(&self, id: u64) -> Option<LargeObject> {
        self.roots.get(&id).map(|o| (**o).clone())
    }

    /// Size in bytes of object `id` as of the pin.
    pub fn size_of(&self, id: u64) -> Result<u64> {
        self.roots
            .get(&id)
            .map(|o| o.size())
            .ok_or(Error::UnknownObject { id })
    }

    /// Read `len` bytes at `offset` of object `id`, as of the pin —
    /// no locks, unaffected by commits after the pin.
    pub fn read(&self, id: u64, offset: u64, len: u64) -> Result<Vec<u8>> {
        let obj = self.roots.get(&id).ok_or(Error::UnknownObject { id })?;
        self.cs.inner.store.read().read(obj, offset, len)
    }

    /// Read the whole object `id` as of the pin.
    pub fn read_all(&self, id: u64) -> Result<Vec<u8>> {
        let obj = self.roots.get(&id).ok_or(Error::UnknownObject { id })?;
        self.cs.inner.store.read().read_all(obj)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        // Best effort: a failed reclaim leaks pages until the next
        // unpin or restart recovery, never corrupts.
        let _ = self.cs.unpin_and_reclaim(self.epoch);
        let held_us = us_since(self.pinned);
        self.cs.inner.cobs.pin_hold_us.record(held_us);
        self.cs.inner.cobs.metrics.check_stall(
            "mvcc.pin",
            self.epoch | PIN_TRACE_BIT,
            0,
            held_us * 1000,
        );
    }
}
