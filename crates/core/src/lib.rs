//! # eos-core — the EOS large object manager
//!
//! Implements §4 of Biliris, *"An Efficient Database Storage Structure
//! for Large Dynamic Objects"* (ICDE 1992): general-purpose large
//! unstructured objects stored in a sequence of **variable-size
//! segments** of physically contiguous disk pages, indexed by a
//! positional B-tree keyed on byte counts.
//!
//! * [`ObjectStore`] — create/open objects and run the §4 operations:
//!   append (with the §4.1 growth policy), read, replace, insert,
//!   delete, truncate.
//! * [`LargeObject`] — the client-held root descriptor.
//! * [`Threshold`] — the §4.4 segment-size threshold (fixed or
//!   adaptive) that preserves physical clustering under updates.
//! * [`reshuffle`] — the pure L/N/R byte- and page-reshuffle planner.
//!
//! ## Example
//!
//! ```
//! use eos_core::ObjectStore;
//!
//! let mut store = ObjectStore::in_memory(4096, 4000);
//! let mut obj = store.create_with(b"hello large world", None).unwrap();
//! store.insert(&mut obj, 5, b",").unwrap();
//! store.delete(&mut obj, 0, 7).unwrap();
//! assert_eq!(store.read_all(&obj).unwrap(), b"large world");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blobstore;
mod codec;
pub mod concurrent;
mod config;
mod consolidate;
pub mod durable;
mod error;
mod fixtures;
pub mod locks;
mod node;
mod object;
mod ops;
mod reshuffle;
mod store;
mod stream;
pub mod striped;
mod tree;
mod verify;
pub mod wal;

pub use blobstore::BlobStore;
pub use concurrent::{ConcurrentStore, Snapshot, Txn};
pub use config::{StoreConfig, Threshold};
pub use consolidate::ConsolidateStats;
pub use eos_obs as obs;
pub use error::{Error, Result};
pub use node::{node_capacity, node_min, Entry, Node};
pub use object::LargeObject;
pub use ops::append::AppendSession;
pub use reshuffle::{pages, reshuffle, ReshufflePlan};
pub use store::{ObjectStore, PreparedCommit, RecoveryReport};
pub use stream::{CompactStats, ObjectReader};
pub use striped::StripedWal;
pub use verify::{ObjectStats, Violation};
