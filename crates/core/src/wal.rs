//! Logging and recovery (§4.5).
//!
//! The paper's recovery design rests on three observations:
//!
//! 1. **Replace** modifies leaf pages without touching the index, so it
//!    is protected by write-ahead logging of before/after images.
//! 2. **Insert, delete and append** do the opposite — they modify only
//!    index pages and never overwrite existing leaf pages — so shadowing
//!    the (small) index pages suffices; the byte-reshuffling rules were
//!    designed precisely so leaf segments are never overwritten.
//! 3. "Since no control information is kept on leaf segments, the log
//!    record of all updates must contain the operation that caused the
//!    update as well as its parameters, and the log sequence number of
//!    the update must be placed in the root page of the object to ensure
//!    that the update can be undone or redone idempotently."
//!
//! This module provides exactly that: an append-only [`Wal`] of logical
//! operation records, [`Wal::logged_replace`] (physical before/after
//! images, in-place apply), logical logging wrappers for the
//! index-modifying operations, and idempotent [`redo`]/[`undo`] driven
//! by the LSN stored in the object root.

use crate::error::Result;
use crate::object::LargeObject;
use crate::store::ObjectStore;

/// One logged update. `lsn` values are assigned in increasing order by
/// the [`Wal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Log sequence number.
    pub lsn: u64,
    /// Object the update applied to.
    pub object: u64,
    /// The operation and its parameters.
    pub op: LogOp,
}

/// The operation that caused an update, with its parameters — enough to
/// redo it forward or undo it backward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogOp {
    /// In-place byte replace with physical before/after images.
    Replace {
        /// Byte offset of the replaced range.
        offset: u64,
        /// The overwritten bytes (undo image).
        before: Vec<u8>,
        /// The new bytes (redo image).
        after: Vec<u8>,
    },
    /// Logical insert.
    Insert {
        /// Insertion offset.
        offset: u64,
        /// Inserted bytes.
        bytes: Vec<u8>,
    },
    /// Logical delete; the deleted bytes are kept for undo.
    Delete {
        /// First deleted byte.
        offset: u64,
        /// The deleted content.
        bytes: Vec<u8>,
    },
    /// Logical append.
    Append {
        /// Appended bytes.
        bytes: Vec<u8>,
    },
}

/// An append-only, in-memory log. In a full DBMS this would sit on
/// stable storage; for the reproduction the crash-injection tests treat
/// the `Wal` plus a descriptor checkpoint as the stable state and drop
/// everything else.
///
/// ```
/// use eos_core::{ObjectStore, wal::{Wal, undo}};
///
/// let mut store = ObjectStore::in_memory(512, 2000);
/// let mut wal = Wal::new();
/// let mut obj = store.create_with(b"the quick brown fox", None).unwrap();
///
/// wal.logged_replace(&mut store, &mut obj, 4, b"slick").unwrap();
/// assert_eq!(store.read(&obj, 4, 5).unwrap(), b"slick");
///
/// // Undo via the before-image; idempotence is keyed on the root LSN.
/// let r = wal.records().last().unwrap().clone();
/// undo(&mut store, &mut obj, &r).unwrap();
/// assert_eq!(store.read(&obj, 4, 5).unwrap(), b"quick");
/// ```
#[derive(Debug, Default)]
pub struct Wal {
    records: Vec<LogRecord>,
    next_lsn: u64,
}

impl Wal {
    /// An empty log; LSNs start at 1 (0 means "never updated").
    pub fn new() -> Wal {
        Wal {
            records: Vec::new(),
            next_lsn: 1,
        }
    }

    /// All records in LSN order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Records for one object in LSN order.
    pub fn records_for(&self, object: u64) -> impl Iterator<Item = &LogRecord> {
        self.records.iter().filter(move |r| r.object == object)
    }

    /// The highest LSN handed out so far (the log tail); 0 if nothing
    /// was ever logged. No object root may carry an LSN beyond this.
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    fn log(&mut self, object: u64, op: LogOp) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.records.push(LogRecord { lsn, object, op });
        lsn
    }

    /// §4.5 replace: write the log record (old and new values) *before*
    /// updating in place, then stamp the object's root with the LSN.
    pub fn logged_replace(
        &mut self,
        store: &mut ObjectStore,
        obj: &mut LargeObject,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        let before = store.read(obj, offset, data.len() as u64)?;
        let lsn = self.log(
            obj.id(),
            LogOp::Replace {
                offset,
                before,
                after: data.to_vec(),
            },
        );
        store.replace(obj, offset, data)?;
        obj.lsn = lsn;
        Ok(())
    }

    /// Logical insert with logging.
    pub fn logged_insert(
        &mut self,
        store: &mut ObjectStore,
        obj: &mut LargeObject,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        let lsn = self.log(
            obj.id(),
            LogOp::Insert {
                offset,
                bytes: data.to_vec(),
            },
        );
        store.insert(obj, offset, data)?;
        obj.lsn = lsn;
        Ok(())
    }

    /// Logical delete with logging (captures the deleted bytes first so
    /// the operation can be undone).
    pub fn logged_delete(
        &mut self,
        store: &mut ObjectStore,
        obj: &mut LargeObject,
        offset: u64,
        len: u64,
    ) -> Result<()> {
        let bytes = store.read(obj, offset, len)?;
        let lsn = self.log(obj.id(), LogOp::Delete { offset, bytes });
        store.delete(obj, offset, len)?;
        obj.lsn = lsn;
        Ok(())
    }

    /// Logical append with logging.
    pub fn logged_append(
        &mut self,
        store: &mut ObjectStore,
        obj: &mut LargeObject,
        data: &[u8],
    ) -> Result<()> {
        let lsn = self.log(
            obj.id(),
            LogOp::Append {
                bytes: data.to_vec(),
            },
        );
        store.append(obj, data)?;
        obj.lsn = lsn;
        Ok(())
    }
}

// ---- serialization (durable logs / log shipping) -----------------------

/// Magic tag of a serialized log ("EOSL").
const WAL_MAGIC: u32 = 0x454F_534C; // format-anchor: WAL_MAGIC
/// Record tag: in-place replace with before/after images.
const TAG_REPLACE: u8 = 0; // format-anchor: WAL_TAG_REPLACE
/// Record tag: logical insert.
const TAG_INSERT: u8 = 1; // format-anchor: WAL_TAG_INSERT
/// Record tag: logical delete (deleted bytes kept for undo).
const TAG_DELETE: u8 = 2; // format-anchor: WAL_TAG_DELETE
/// Record tag: logical append.
const TAG_APPEND: u8 = 3; // format-anchor: WAL_TAG_APPEND

/// Number of durability classes in the L6 write-ordering contract
/// (DESIGN.md §15). The lint cross-checks this against both the
/// FORMAT.md anchor and the declared `// durability-class:` table, so
/// adding a class forces all three to move together.
pub const DURABILITY_CLASSES: usize = 6; // format-anchor: DURABILITY_CLASSES

pub(crate) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

pub(crate) struct Reader<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) at: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .at
            .checked_add(n)
            .and_then(|end| self.data.get(self.at..end))
            .ok_or(crate::Error::CorruptObject {
                reason: "truncated log".into(),
            })?;
        self.at += n;
        Ok(s)
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(crate::codec::array_at(
            self.take(4)?,
            0,
            "log u32 field",
        )?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(crate::codec::array_at(
            self.take(8)?,
            0,
            "log u64 field",
        )?))
    }

    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

impl LogRecord {
    /// Serialize one record (length-prefixed fields, fixed header).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.lsn.to_le_bytes());
        out.extend_from_slice(&self.object.to_le_bytes());
        match &self.op {
            LogOp::Replace {
                offset,
                before,
                after,
            } => {
                out.push(TAG_REPLACE);
                out.extend_from_slice(&offset.to_le_bytes());
                put_bytes(&mut out, before);
                put_bytes(&mut out, after);
            }
            LogOp::Insert { offset, bytes } => {
                out.push(TAG_INSERT);
                out.extend_from_slice(&offset.to_le_bytes());
                put_bytes(&mut out, bytes);
            }
            LogOp::Delete { offset, bytes } => {
                out.push(TAG_DELETE);
                out.extend_from_slice(&offset.to_le_bytes());
                put_bytes(&mut out, bytes);
            }
            LogOp::Append { bytes } => {
                out.push(TAG_APPEND);
                put_bytes(&mut out, bytes);
            }
        }
        out
    }

    pub(crate) fn read_from(r: &mut Reader<'_>) -> Result<LogRecord> {
        let lsn = r.u64()?;
        let object = r.u64()?;
        let tag = r.take(1)?[0];
        let op = match tag {
            TAG_REPLACE => LogOp::Replace {
                offset: r.u64()?,
                before: r.bytes()?,
                after: r.bytes()?,
            },
            TAG_INSERT => LogOp::Insert {
                offset: r.u64()?,
                bytes: r.bytes()?,
            },
            TAG_DELETE => LogOp::Delete {
                offset: r.u64()?,
                bytes: r.bytes()?,
            },
            TAG_APPEND => LogOp::Append { bytes: r.bytes()? },
            _ => {
                return Err(crate::Error::CorruptObject {
                    reason: format!("unknown log record tag {tag}"),
                })
            }
        };
        Ok(LogRecord { lsn, object, op })
    }
}

impl Wal {
    /// Serialize the whole log — write this to stable storage to make
    /// the log durable, or ship it to a replica.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for r in &self.records {
            put_bytes(&mut out, &r.to_bytes());
        }
        out
    }

    /// Decode a log written by [`Self::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Wal> {
        let mut r = Reader { data, at: 0 };
        if r.u32()? != WAL_MAGIC {
            return Err(crate::Error::CorruptObject {
                reason: "bad log magic".into(),
            });
        }
        let n = r.u32()?;
        let mut records = Vec::with_capacity(n as usize);
        let mut max_lsn = 0;
        for _ in 0..n {
            let body = r.bytes()?;
            let mut rr = Reader { data: &body, at: 0 };
            let rec = LogRecord::read_from(&mut rr)?;
            max_lsn = max_lsn.max(rec.lsn);
            records.push(rec);
        }
        Ok(Wal {
            records,
            next_lsn: max_lsn + 1,
        })
    }
}

/// Reapply `record` to the object if and only if it has not been applied
/// yet (`record.lsn > obj.lsn`) — the idempotent redo of §4.5.
pub fn redo(store: &mut ObjectStore, obj: &mut LargeObject, record: &LogRecord) -> Result<()> {
    if record.lsn <= obj.lsn() || record.object != obj.id() {
        return Ok(());
    }
    match &record.op {
        LogOp::Replace { offset, after, .. } => store.replace(obj, *offset, after)?,
        LogOp::Insert { offset, bytes } => store.insert(obj, *offset, bytes)?,
        LogOp::Delete { offset, bytes } => store.delete(obj, *offset, bytes.len() as u64)?,
        LogOp::Append { bytes } => store.append(obj, bytes)?,
    }
    obj.lsn = record.lsn;
    Ok(())
}

/// Roll `record` back if and only if it is the last applied update
/// (`record.lsn == obj.lsn`) — the idempotent undo of §4.5. Undo is
/// applied in reverse LSN order.
pub fn undo(store: &mut ObjectStore, obj: &mut LargeObject, record: &LogRecord) -> Result<()> {
    if record.lsn != obj.lsn() || record.object != obj.id() {
        return Ok(());
    }
    match &record.op {
        LogOp::Replace { offset, before, .. } => store.replace(obj, *offset, before)?,
        LogOp::Insert { offset, bytes } => store.delete(obj, *offset, bytes.len() as u64)?,
        LogOp::Delete { offset, bytes } => store.insert(obj, *offset, bytes)?,
        LogOp::Append { bytes } => {
            let size = obj.size();
            store.truncate(obj, size - bytes.len() as u64)?;
        }
    }
    obj.lsn = record.lsn - 1;
    Ok(())
}

/// Replay the log onto a descriptor whose on-disk state is intact —
/// e.g. a fresh replica being rebuilt by log shipping, or a committed
/// descriptor after a crash that lost only uncommitted work (which,
/// thanks to shadowed index pages and deferred frees, never touches the
/// committed tree). Records already reflected (LSN ≤ descriptor LSN)
/// are skipped by the idempotence rule, so replay can run any number of
/// times.
pub fn recover(
    store: &mut ObjectStore,
    checkpoint: &LargeObject,
    wal: &Wal,
) -> Result<LargeObject> {
    let mut obj = checkpoint.clone();
    for r in wal.records_for(checkpoint.id()) {
        redo(store, &mut obj, r)?;
    }
    Ok(obj)
}
