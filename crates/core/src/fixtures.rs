//! Experiment fixtures: build objects with an explicit tree shape.
//!
//! The paper's worked examples (Fig 5.c, the §4.2 read-cost walkthrough)
//! assume a specific arrangement of segments and index nodes that would
//! be tedious to reproduce through update histories. This constructor
//! lays the tree out directly — through the same allocator and node
//! writer as the real operations — so the figure-reproduction harness
//! (`eos-bench`, experiments E3/E4) can measure exactly the object the
//! paper describes.

use crate::error::Result;
use crate::node::{Entry, Node};
use crate::object::LargeObject;
use crate::store::ObjectStore;

impl ObjectStore {
    /// Build an object whose level-1 nodes hold segments of exactly the
    /// given byte sizes: one inner `Vec` per level-1 node, one number
    /// per segment. With a single group the root points directly at the
    /// segments (Fig 5.a/b); with several groups the root points at one
    /// index node per group (Fig 5.c).
    ///
    /// Segment contents are the byte pattern `(object_offset % 251)`.
    pub fn assemble_object(&mut self, groups: &[Vec<u64>]) -> Result<LargeObject> {
        let ps = self.ps();
        let mut obj = self.create_object();
        let mut offset = 0u64;
        let mut group_entries: Vec<Entry> = Vec::with_capacity(groups.len());
        for group in groups {
            let mut entries = Vec::with_capacity(group.len());
            for &bytes in group {
                assert!(bytes > 0, "zero-byte segment");
                let pages = bytes.div_ceil(ps);
                let ext = self.alloc_extent(pages)?;
                let mut buf: Vec<u8> = (offset..offset + bytes).map(|i| (i % 251) as u8).collect();
                buf.resize((pages * ps) as usize, 0);
                self.volume().write_pages(ext.start, &buf)?;
                entries.push(Entry {
                    bytes,
                    ptr: ext.start,
                });
                offset += bytes;
            }
            group_entries.push(Entry {
                bytes: entries.iter().map(|e| e.bytes).sum(),
                ptr: 0, // patched below for multi-group objects
            });
            if groups.len() == 1 {
                obj.root = Node { level: 1, entries };
                return Ok(obj);
            }
            let node = Node { level: 1, entries };
            let page = self.write_node(None, &node)?;
            group_entries.last_mut().unwrap().ptr = page;
        }
        obj.root = Node {
            level: 2,
            entries: group_entries,
        };
        Ok(obj)
    }

    /// The deterministic content [`Self::assemble_object`] wrote for a
    /// byte range (for read verification in experiments).
    pub fn assembled_pattern(offset: u64, len: u64) -> Vec<u8> {
        (offset..offset + len).map(|i| (i % 251) as u8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5c_shape() {
        let mut store = ObjectStore::in_memory(100, 336);
        let obj = store
            .assemble_object(&[vec![520, 500], vec![280, 430, 90]])
            .unwrap();
        assert_eq!(obj.size(), 1820);
        assert_eq!(obj.height(), 2);
        assert_eq!(obj.root_entries(), 2);
        store.verify_object(&obj).unwrap();
        let got = store.read(&obj, 1470, 320).unwrap();
        assert_eq!(got, ObjectStore::assembled_pattern(1470, 320));
    }

    #[test]
    fn single_group_is_flat() {
        let mut store = ObjectStore::in_memory(100, 336);
        let obj = store.assemble_object(&[vec![1820]]).unwrap();
        assert_eq!(obj.height(), 1);
        assert_eq!(obj.root_entries(), 1);
        store.verify_object(&obj).unwrap();
    }
}
