//! The reshuffle algorithm of §4.3–§4.4, as pure arithmetic.
//!
//! Inserts and deletes conceptually split the affected segment(s) into a
//! left segment **L**, a brand-new segment **N**, and a right segment
//! **R** (Figs 6 and 7). Before N is written, bytes and whole pages are
//! shuffled between the three to (a) keep every segment "safe" with
//! respect to the size threshold *T* — **page reshuffling**, steps
//! 3.1–3.3 — and (b) minimize the free space wasted in the last pages of
//! L and N — **byte reshuffling**, step 3.4.
//!
//! The functions here are pure: they take the three byte counts and
//! return the new counts plus how many bytes crossed each boundary. The
//! operation executors in [`crate::ops`] turn the plan into reads,
//! writes and buddy-allocator calls. Keeping the arithmetic free of I/O
//! is what lets the property tests hammer every branch cheaply.

/// Outcome of reshuffling the L/N/R trio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReshufflePlan {
    /// Final bytes in L (0 = L disappeared).
    pub l: u64,
    /// Final bytes in N.
    pub n: u64,
    /// Final bytes in R (0 = R disappeared).
    pub r: u64,
    /// Bytes moved from the tail of L into the head of N.
    pub from_l: u64,
    /// Bytes moved from the head of R into the tail of N.
    pub from_r: u64,
}

impl ReshufflePlan {
    /// Plan that leaves everything in place.
    fn unchanged(l: u64, n: u64, r: u64) -> ReshufflePlan {
        ReshufflePlan {
            l,
            n,
            r,
            from_l: 0,
            from_r: 0,
        }
    }
}

/// Pages needed for `c` bytes with no holes.
#[inline]
pub fn pages(c: u64, ps: u64) -> u64 {
    c.div_ceil(ps)
}

/// Is a segment of `c` bytes *unsafe* for threshold `t`? ("A segment S
/// is unsafe if its size is greater than zero and less than T pages.")
#[inline]
fn is_unsafe(c: u64, ps: u64, t: u64) -> bool {
    c > 0 && pages(c, ps) < t
}

/// Reshuffle segments L, N, R (steps 3.1–3.4 of §4.4).
///
/// * `l0`, `n0`, `r0` — byte counts of the three conceptual segments.
/// * `ps` — page size; `t` — segment size threshold in pages;
///   `max_seg_pages` — the largest segment the buddy system can hand out.
///
/// When `n0` is zero (a delete that ends exactly on a page boundary)
/// nothing moves: the paper goes straight to count propagation.
pub fn reshuffle(l0: u64, n0: u64, r0: u64, ps: u64, t: u64, max_seg_pages: u64) -> ReshufflePlan {
    debug_assert!(ps > 0 && t >= 1 && max_seg_pages >= 1);
    if n0 == 0 {
        return ReshufflePlan::unchanged(l0, n0, r0);
    }
    let max_bytes = max_seg_pages * ps;
    let mut plan = ReshufflePlan::unchanged(l0, n0, r0);

    // ---- Page reshuffling: steps 3.1–3.3 -------------------------------
    // Each iteration either empties a segment into N, grows N by whole
    // pages, or breaks; the explicit cap is belt and braces.
    for _ in 0..8 {
        let l_unsafe = is_unsafe(plan.l, ps, t);
        let n_unsafe = is_unsafe(plan.n, ps, t);
        let r_unsafe = is_unsafe(plan.r, ps, t);

        // 3.1.a — all three safe (empty counts as safe here: "size
        // greater than zero" is part of unsafe-ness).
        let all_safe = !l_unsafe && !n_unsafe && !r_unsafe;
        // 3.1.b — L and R both empty.
        let both_empty = plan.l == 0 && plan.r == 0;
        // 3.1.c — an unsafe L/R exists but even the smallest could not
        // be merged with N inside one maximum-size segment.
        let smallest_unsafe = match (l_unsafe, r_unsafe) {
            (true, true) => Some(plan.l.min(plan.r)),
            (true, false) => Some(plan.l),
            (false, true) => Some(plan.r),
            (false, false) => None,
        };
        let cannot_fit = smallest_unsafe.is_some_and(|s| s + plan.n > max_bytes);
        if all_safe || both_empty || cannot_fit {
            break;
        }

        // 3.2 — merge the smaller unsafe neighbour entirely into N,
        // regardless of N's own size.
        if l_unsafe || r_unsafe {
            let take_l = match (l_unsafe, r_unsafe) {
                (true, true) => plan.l <= plan.r,
                (l, _) => l,
            };
            if take_l && plan.l + plan.n <= max_bytes {
                plan.from_l += plan.l;
                plan.n += plan.l;
                plan.l = 0;
                continue;
            }
            if !take_l && plan.n + plan.r <= max_bytes {
                plan.from_r += plan.r;
                plan.n += plan.r;
                plan.r = 0;
                continue;
            }
            // The chosen merge does not fit; try the byte phase.
            break;
        }

        // 3.3 — N itself is unsafe: borrow whole pages from the smaller
        // non-empty neighbour until N is safe (or the donor runs dry).
        debug_assert!(n_unsafe);
        let take_l = match (plan.l > 0, plan.r > 0) {
            (true, true) => plan.l <= plan.r,
            (l, _) => l,
        };
        let need = t - pages(plan.n, ps);
        let room = max_seg_pages.saturating_sub(pages(plan.n, ps));
        let want = need.min(room);
        if want == 0 {
            break; // N is already at the maximum segment size
        }
        let moved = if take_l {
            // Take pages from L's tail (its partial last page first).
            let have = pages(plan.l, ps);
            let k = want.min(have);
            let keep_pages = have - k;
            let taken = plan.l - keep_pages * ps;
            plan.l -= taken;
            plan.from_l += taken;
            plan.n += taken;
            taken
        } else {
            // Take pages from R's head (always full pages, except when R
            // is consumed entirely).
            let have = pages(plan.r, ps);
            let k = want.min(have);
            let taken = if k >= have { plan.r } else { k * ps };
            plan.r -= taken;
            plan.from_r += taken;
            plan.n += taken;
            taken
        };
        if moved == 0 {
            break;
        }
    }

    // ---- Byte reshuffling: step 3.4 ------------------------------------
    let nm = plan.n % ps; // bytes in N's (partial) last page; 0 = full
    if nm != 0 {
        let lm = plan.l % ps; // bytes in L's last page; 0 = full or empty
                              // Moving L's partial last page frees that page; refuse the move
                              // when it would push a currently-safe L below the threshold
                              // (the §4.4 constraint outranks the byte optimization).
        let l_keeps_safe =
            plan.l == lm || !is_unsafe(plan.l - lm, ps, t) || is_unsafe(plan.l, ps, t);
        let l_cand = plan.l > 0 && lm != 0 && lm + nm <= ps && l_keeps_safe;
        let r_cand = plan.r > 0 && pages(plan.r, ps) == 1 && plan.r + nm <= ps;
        if l_cand && r_cand && lm + plan.r + nm <= ps {
            // Move both groups.
            plan.from_l += lm;
            plan.n += lm;
            plan.l -= lm;
            plan.from_r += plan.r;
            plan.n += plan.r;
            plan.r = 0;
        } else if l_cand && r_cand {
            // Take the group living in the segment with more free space
            // in its last page (R is a single page here, so its free
            // space is ps − r).
            if ps - lm >= ps - plan.r {
                plan.from_l += lm;
                plan.n += lm;
                plan.l -= lm;
            } else {
                plan.from_r += plan.r;
                plan.n += plan.r;
                plan.r = 0;
            }
        } else if l_cand {
            plan.from_l += lm;
            plan.n += lm;
            plan.l -= lm;
        } else if r_cand {
            plan.from_r += plan.r;
            plan.n += plan.r;
            plan.r = 0;
        }

        // Balance the free space of L's and N's last pages by borrowing
        // from L.
        let lm = plan.l % ps;
        let nm = plan.n % ps;
        if plan.l > 0 && lm != 0 && nm != 0 && lm > nm {
            let x = (lm - nm) / 2;
            plan.from_l += x;
            plan.l -= x;
            plan.n += x;
        }
    }

    debug_assert_eq!(plan.l + plan.n + plan.r, l0 + n0 + r0, "bytes conserved");
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: u64 = 100;
    const MAX: u64 = 128;

    /// No thresholding (T=1): only byte reshuffling can act.
    #[test]
    fn t1_byte_reshuffle_eliminates_partial_last_page_of_l() {
        // L ends with a 30-byte last page; N's last page has 30 bytes;
        // 30+30 ≤ 100 → L's last page is absorbed ("eliminating the last
        // page of L"), then balance is a no-op.
        let p = reshuffle(230, 130, 500, PS, 1, MAX);
        assert_eq!(p.from_l, 30);
        assert_eq!(p.l, 200);
        assert_eq!(p.n, 160);
        assert_eq!(p.r, 500);
        assert_eq!(p.from_r, 0, "R has 5 pages — not a candidate");
    }

    #[test]
    fn t1_one_page_r_is_absorbed() {
        // R is exactly one page with 40 bytes; N's last page holds 20.
        let p = reshuffle(0, 120, 40, PS, 1, MAX);
        assert_eq!(p.from_r, 40);
        assert_eq!(p.r, 0);
        assert_eq!(p.n, 160);
    }

    #[test]
    fn t1_both_groups_move_when_they_fit_together() {
        // Lm=20, R=30 (1 page), Nm=40 → 20+30+40 ≤ 100: both move.
        let p = reshuffle(120, 140, 30, PS, 1, MAX);
        assert_eq!(p.from_l, 20);
        assert_eq!(p.from_r, 30);
        assert_eq!(p.l, 100);
        assert_eq!(p.n, 190);
        assert_eq!(p.r, 0);
    }

    #[test]
    fn t1_larger_free_space_wins_when_both_do_not_fit() {
        // Lm=45, R=50, Nm=30: together 125 > 100. L's last page free
        // space 55, R's 50 → take L's group.
        let p = reshuffle(145, 130, 50, PS, 1, MAX);
        assert_eq!(p.from_l, 45);
        assert_eq!(p.from_r, 0);
        // Balance afterwards: lm=0 → nothing further.
        assert_eq!(p.l, 100);
        assert_eq!(p.n, 175);
        assert_eq!(p.r, 50);
    }

    #[test]
    fn t1_balance_splits_free_space() {
        // Lm=80, Nm=20: groups can't merge (80+20=100 ≤ 100!) — they can:
        // 80+20=100 fits exactly, so the whole last page moves.
        let p = reshuffle(180, 120, 900, PS, 1, MAX);
        assert_eq!(p.from_l, 80);
        assert_eq!(p.n, 200);

        // Lm=90, Nm=20 → 110 > 100: no group move; balance x=(90-20)/2=35.
        let p = reshuffle(190, 120, 900, PS, 1, MAX);
        assert_eq!(p.from_l, 35);
        assert_eq!(p.l, 155);
        assert_eq!(p.n, 155);
    }

    #[test]
    fn full_n_skips_byte_phase() {
        let p = reshuffle(150, 200, 300, PS, 1, MAX);
        assert_eq!(p, ReshufflePlan::unchanged(150, 200, 300));
    }

    #[test]
    fn zero_n_is_untouched() {
        let p = reshuffle(199, 0, 301, PS, 8, MAX);
        assert_eq!(p, ReshufflePlan::unchanged(199, 0, 301));
    }

    #[test]
    fn unsafe_neighbour_merges_into_n_regardless_of_n() {
        // T=8: L has 2 pages (unsafe), N is big and safe.
        let p = reshuffle(150, 900, 2000, PS, 8, MAX);
        assert_eq!(p.from_l, 150);
        assert_eq!(p.l, 0);
        assert_eq!(p.n, 1050);
        assert_eq!(p.r, 2000);
    }

    #[test]
    fn smaller_unsafe_neighbour_is_merged_first() {
        // Both unsafe: L=500 (5p), R=300 (3p), T=8. R is smaller → merged
        // first; loop continues: L is still unsafe → merged too.
        let p = reshuffle(500, 900, 300, PS, 8, MAX);
        assert_eq!(p.from_r, 300);
        assert_eq!(p.from_l, 500);
        assert_eq!(p.l, 0);
        assert_eq!(p.r, 0);
        assert_eq!(p.n, 1700);
    }

    #[test]
    fn unsafe_n_borrows_whole_pages() {
        // T=8, N=1 page, L=20 pages, R=30 pages. N needs 7 more pages;
        // L is smaller → take 7 pages from L's tail. L's last page is
        // partial (1950 % 100 = 50): the 7 tail pages hold 650 bytes.
        let p = reshuffle(1950, 80, 3000, PS, 8, MAX);
        assert_eq!(p.from_l, 650);
        assert_eq!(p.l, 1300);
        assert_eq!(p.n, 730);
        assert_eq!(pages(p.n, PS), 8, "N became safe");
        // Byte phase: Nm = 30, Lm = 0 → nothing more from L; R is huge.
        assert_eq!(p.from_r, 0);
    }

    #[test]
    fn threshold_one_and_a_half_pages_stays_small() {
        // §4.4: "with T=8, a large object that is 1 page and a half long
        // is kept in two pages, not in 8" — here L and R are empty, so
        // 3.1.b exits immediately.
        let p = reshuffle(0, 150, 0, PS, 8, MAX);
        assert_eq!(p, ReshufflePlan::unchanged(0, 150, 0));
        assert_eq!(pages(p.n, PS), 2);
    }

    #[test]
    fn oversized_merge_is_refused() {
        // L unsafe but L+N would exceed the maximum segment.
        let max = 10; // pages
        let p = reshuffle(300, 900, 0, PS, 8, max);
        // 300+900 = 1200 > 1000 → 3.1.c exits; byte phase: L's last page
        // is full (300 % 100 = 0) → nothing happens.
        assert_eq!(p, ReshufflePlan::unchanged(300, 900, 0));
    }

    #[test]
    fn bytes_always_conserved() {
        for l in [0u64, 1, 99, 100, 101, 450, 799, 1000] {
            for n in [1u64, 50, 100, 399, 640] {
                for r in [0u64, 1, 100, 250, 777] {
                    for t in [1u64, 2, 4, 8] {
                        let p = reshuffle(l, n, r, PS, t, MAX);
                        assert_eq!(p.l + p.n + p.r, l + n + r, "{l},{n},{r},T={t}");
                        assert_eq!(l - p.l, p.from_l.min(l), "L only shrinks");
                        assert!(p.r <= r, "R only shrinks");
                        assert!(pages(p.n, PS) <= MAX);
                    }
                }
            }
        }
    }

    #[test]
    fn post_conditions_under_threshold() {
        // Whenever reshuffle finishes with L and N (or N and R) both
        // nonempty and one unsafe, their merge must not have fit in one
        // maximum segment.
        let max = 16;
        for l in [0u64, 120, 350, 900, 1590] {
            for n in [40u64, 150, 420] {
                for r in [0u64, 80, 260, 1400] {
                    let t = 8;
                    let p = reshuffle(l, n, r, PS, t, max);
                    if p.l > 0 && is_unsafe(p.l, PS, t) && p.n > 0 {
                        assert!(
                            p.l + p.n > max * PS,
                            "unsafe L={} left beside N={} (from {l},{n},{r})",
                            p.l,
                            p.n
                        );
                    }
                    if p.r > 0 && is_unsafe(p.r, PS, t) && p.n > 0 {
                        assert!(
                            p.r + p.n > max * PS,
                            "unsafe R={} left beside N={} (from {l},{n},{r})",
                            p.r,
                            p.n
                        );
                    }
                }
            }
        }
    }
}
