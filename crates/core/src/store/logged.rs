//! The logged (durable-store) variants of the §4 operations.
//!
//! On a store with an attached [`crate::StripedWal`] every mutating operation
//! runs inside a transaction scope — the caller's own, or an implicit
//! per-operation scope ([`ObjectStore::with_autocommit`]) — and leaves
//! a trail in the on-disk log:
//!
//! * **`replace`** follows the WAL rule: it writes leaf pages in place,
//!   so the before-images of every page it will touch are made durable
//!   *first* ([`WalEntry::Op`]), then the pages are overwritten. A
//!   crash mid-replace is rolled back byte-exactly from the images.
//! * **Everything else** (append, insert, delete, truncate, compaction)
//!   is *shadowed* (§4.5): it writes only freshly allocated pages and
//!   defers its frees, so the committed image on disk stays intact and
//!   nothing needs undoing. These log a [`WalEntry::Touch`] after the
//!   fact, purely to stamp the LSN and feed the eventual commit record
//!   — the log stays small no matter how many bytes the operation
//!   moved.
//!
//! The commit record ([`WalEntry::Commit`], written by
//! [`ObjectStore::commit_txn`]) then carries the new serialized root of
//! every touched object plus tombstones for deletions; it is the single
//! durable commit point of the scope.

use crate::durable::WalEntry;
use crate::error::{Error, Result};
use crate::locks::TxnId;
use crate::object::LargeObject;
use crate::ops;
use crate::wal::{LogOp, LogRecord};
use eos_pager::PageId;

use super::ObjectStore;

impl ObjectStore {
    /// Run `f` inside the caller's active transaction scope, or — on a
    /// durable store with no scope active — inside an implicit
    /// per-operation scope that commits on success and aborts on error.
    /// Without this, a committed operation's deferred frees would be
    /// applied immediately and a *later* crash could find those pages
    /// reallocated and overwritten while the log still considers their
    /// old contents committed.
    pub(crate) fn with_autocommit<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T>,
    ) -> Result<T> {
        if self.active.is_some() || self.wal.is_none() {
            return f(self);
        }
        self.begin_txn();
        match f(self) {
            Ok(v) => {
                self.commit_txn()?;
                Ok(v)
            }
            Err(e) => {
                // Best effort: the abort itself can fail (e.g. the
                // volume died); recovery handles that case on restart.
                if self.in_txn() {
                    let _ = self.abort_txn();
                }
                Err(e)
            }
        }
    }

    /// The scope every logged operation stamps its entries with.
    fn active_scope_id(&self) -> Result<TxnId> {
        self.active.ok_or(Error::StaleTransaction)
    }

    /// Record `obj`'s current root in the active scope's commit set.
    pub(crate) fn note_touched(&mut self, obj: &LargeObject) {
        let (id, bytes) = (obj.id, obj.to_bytes());
        if let Some(txn) = self.active_txn_mut() {
            txn.touched.insert(id, bytes);
            txn.deleted.retain(|&d| d != id);
        }
    }

    /// Stamp the next LSN on `obj`, append a [`WalEntry::Touch`] for it
    /// and add it to the scope's commit set — the post-hoc trail of
    /// every shadowed operation.
    pub(crate) fn log_touch(&mut self, obj: &mut LargeObject) -> Result<()> {
        let scope = self.active_scope_id()?;
        let wal = self.wal.as_ref().expect("log_touch on a non-durable store");
        let lsn = wal.allocate_lsn();
        obj.lsn = lsn;
        let entry = WalEntry::Touch {
            txn: scope,
            lsn,
            object: obj.id,
            root_after: obj.to_bytes(),
        };
        wal.append(entry)?;
        self.note_touched(obj);
        Ok(())
    }

    /// The physical image of every page `replace(obj, offset, len)`
    /// will overwrite, grouped exactly as [`ops::replace`] groups its
    /// writes: one `(first_page, bytes)` run per touched leaf segment.
    pub(crate) fn range_page_images(
        &self,
        obj: &LargeObject,
        offset: u64,
        len: u64,
    ) -> Result<Vec<(PageId, Vec<u8>)>> {
        let mut out = Vec::new();
        if len == 0 {
            return Ok(out);
        }
        let ps = self.ps();
        let (mut path, mut rel) = crate::tree::descend(self, obj, offset)?;
        let mut remaining = len;
        loop {
            let e = crate::tree::leaf_entry(&path);
            let take = (e.bytes - rel).min(remaining);
            let p0 = rel / ps;
            let p1 = (rel + take - 1) / ps;
            let npages = p1 - p0 + 1;
            out.push((e.ptr + p0, self.volume.read_pages(e.ptr + p0, npages)?));
            remaining -= take;
            if remaining == 0 {
                return Ok(out);
            }
            ops::read::advance(self, &mut path)?;
            rel = 0;
        }
    }

    /// Reverse the in-place writes of one scope's uncommitted `replace`
    /// operations, newest first, from the before-images in the log.
    /// Images of other open scopes are left alone — they are rolled
    /// back by their own abort (or by restart recovery).
    pub(crate) fn rollback_scope_images(&mut self, id: TxnId) -> Result<()> {
        let images: Vec<(PageId, Vec<u8>)> = self
            .wal
            .as_ref()
            .map(|w| {
                w.pending_for(id)
                    .into_iter()
                    .rev()
                    .flat_map(|e| match e {
                        WalEntry::Op { page_images, .. } => {
                            page_images.into_iter().rev().collect::<Vec<_>>()
                        }
                        _ => Vec::new(),
                    })
                    .collect()
            })
            .unwrap_or_default();
        for (page, bytes) in images {
            // Restoring before-images re-creates pre-transaction state;
            // like shadow writes, nothing committed depends on them
            // until the Abort frame publishes the rollback.
            // durability: mutates(shadow-data)
            self.volume.write_pages(page, &bytes)?;
        }
        Ok(())
    }

    // ---- the logged operations -------------------------------------------

    pub(crate) fn logged_replace(
        &mut self,
        obj: &mut LargeObject,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        self.with_autocommit(|s| {
            // WAL rule: the undo information must be durable before the
            // first in-place byte lands. The logical record's `before`
            // field stays empty — the physical page images *are* the
            // undo, and duplicating the bytes would double the record.
            let images = s.range_page_images(obj, offset, data.len() as u64)?;
            let scope = s.active_scope_id()?;
            let wal = s.wal.as_ref().expect("durable store");
            let lsn = wal.allocate_lsn();
            obj.lsn = lsn;
            let entry = WalEntry::Op {
                txn: scope,
                record: LogRecord {
                    lsn,
                    object: obj.id,
                    op: LogOp::Replace {
                        offset,
                        before: Vec::new(),
                        after: data.to_vec(),
                    },
                },
                root_after: obj.to_bytes(),
                page_images: images,
            };
            // durability: mutates(undo-image)
            s.wal.as_ref().unwrap().append(entry)?;
            if s.config.sync_on_commit {
                // The append only hands the frame to the OS; the sync
                // is what makes the undo images durable. Without it the
                // page cache could persist the in-place overwrites
                // below ahead of the log frame, and a power loss would
                // leave committed bytes with no durable undo.
                // durability: seals(undo-image)
                s.wal.as_ref().unwrap().sync()?;
            }
            // durability: mutates(committed-page)
            ops::replace::run(s, obj, offset, data)?;
            s.note_touched(obj);
            s.paranoid_check(obj)
        })
    }

    /// The durable side of [`ObjectStore::replace_shadow`]: because the
    /// copy-on-write rewrite never overwrites committed pages, it needs
    /// no before-images and no mid-operation log force — exactly like
    /// insert/delete/append, a [`WalEntry::Touch`] stamping the new
    /// root is the whole trail, and the commit record is the single
    /// durable point.
    pub(crate) fn logged_replace_shadow(
        &mut self,
        obj: &mut LargeObject,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        self.with_autocommit(|s| {
            ops::replace::run_shadow(s, obj, offset, data)?;
            s.log_touch(obj)?;
            s.paranoid_check(obj)
        })
    }

    pub(crate) fn logged_append(&mut self, obj: &mut LargeObject, data: &[u8]) -> Result<()> {
        self.with_autocommit(|s| {
            {
                let mut session = ops::append::AppendSession::open(s, obj, None)?;
                session.append(data)?;
                session.close()?;
            }
            s.log_touch(obj)?;
            s.paranoid_check(obj)
        })
    }

    pub(crate) fn logged_insert(
        &mut self,
        obj: &mut LargeObject,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        self.with_autocommit(|s| {
            ops::insert::run(s, obj, offset, data)?;
            s.log_touch(obj)?;
            s.paranoid_check(obj)
        })
    }

    pub(crate) fn logged_delete(
        &mut self,
        obj: &mut LargeObject,
        offset: u64,
        len: u64,
    ) -> Result<()> {
        self.with_autocommit(|s| {
            ops::delete::run(s, obj, offset, len)?;
            s.log_touch(obj)?;
            s.paranoid_check(obj)
        })
    }

    pub(crate) fn logged_create_with(
        &mut self,
        data: &[u8],
        size_hint: Option<u64>,
    ) -> Result<LargeObject> {
        self.with_autocommit(|s| {
            let mut obj = s.create_object();
            if !data.is_empty() || size_hint.is_some() {
                let mut session = ops::append::AppendSession::open(s, &mut obj, size_hint)?;
                session.append(data)?;
                session.close()?;
            }
            s.log_touch(&mut obj)?;
            s.paranoid_check(&obj)?;
            Ok(obj)
        })
    }

    pub(crate) fn logged_delete_object(&mut self, obj: &mut LargeObject) -> Result<()> {
        self.with_autocommit(|s| {
            let size = obj.size();
            if size > 0 {
                ops::delete::run(s, obj, 0, size)?;
            }
            // No log entry: deletion is fully shadowed (frees are
            // deferred), and the commit record's tombstone is what makes
            // it durable.
            let id = obj.id;
            if let Some(txn) = s.active_txn_mut() {
                txn.touched.remove(&id);
                if !txn.deleted.contains(&id) {
                    txn.deleted.push(id);
                }
            }
            s.paranoid_check(obj)
        })
    }
}
