//! Restart recovery for durable stores (§4.5 made whole-volume).
//!
//! A durable volume carries three kinds of state: the data/index pages
//! of the objects, the buddy directories, and the log region. After a
//! power loss only the log is trusted:
//!
//! 1. **Scan** — [`StripedWal::attach`] replays each stripe's active
//!    log half up to its torn tail, merges the stripes by LSN, settles
//!    cross-stripe commits (all parts durable → committed, else
//!    presumed aborted), and yields the committed root map and the
//!    uncommitted pending tail.
//! 2. **Undo** — the before-images of any uncommitted `replace` are
//!    written back, newest first. Every other operation was shadowed,
//!    so its effects live only on pages no committed root references —
//!    ignoring them *is* the rollback.
//! 3. **Rebuild** — the buddy directories are reformatted and the
//!    allocation bitmap is reconstructed from scratch: the boot page
//!    plus every page extent reachable from a committed root. This one
//!    stroke reconciles everything the crash could have left behind —
//!    half-applied deferred frees, allocations of the doomed
//!    transaction, a stale superdirectory — because none of that state
//!    is an input.
//! 4. **Checkpoint** — the recovered map is written as a fresh
//!    checkpoint, so a second crash during or right after recovery just
//!    repeats it (recovery is idempotent and never writes a committed
//!    page).
//!
//! Redo needs no separate pass: the commit record itself carries the
//! final root of every touched object, and shadowing guarantees the
//! pages those roots point at were on disk before the commit record
//! was.

use eos_buddy::BuddyManager;
use eos_obs::{Metrics, OpKind, PipeKind};
use eos_pager::SharedVolume;

use std::sync::Arc;

use crate::config::StoreConfig;
use crate::durable::WalEntry;
use crate::error::{Error, Result};
use crate::object::LargeObject;
use crate::striped::StripedWal;

use super::ObjectStore;

/// What [`ObjectStore::open_durable`] found and did.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Every committed object, rebuilt from the log's root map.
    pub objects: Vec<LargeObject>,
    /// Log records the attach scan replayed.
    pub records_scanned: u64,
    /// Whether the scan cut a torn record off the tail of the log.
    pub torn_tail: bool,
    /// Uncommitted operations rolled back (the pending tail).
    pub rolled_back_ops: u64,
    /// Pages restored from `replace` before-images during undo.
    pub restored_pages: u64,
    /// Highest LSN in the recovered log.
    pub max_lsn: u64,
}

impl ObjectStore {
    /// Like [`ObjectStore::create`], plus a freshly formatted log
    /// region of `wal_pages` pages placed directly after the buddy
    /// spaces (the volume must have room: `(pages_per_space + 1) *
    /// num_spaces + wal_pages` pages). The returned store logs every
    /// mutating operation; reopen it with [`ObjectStore::open_durable`].
    pub fn create_durable(
        volume: SharedVolume,
        num_spaces: usize,
        pages_per_space: u64,
        config: StoreConfig,
        wal_pages: u64,
    ) -> Result<ObjectStore> {
        let base = (pages_per_space + 1) * num_spaces as u64;
        let wal = StripedWal::format(&volume, base, wal_pages, config.wal_stripes)?;
        let mut store = Self::create(volume, num_spaces, pages_per_space, config)?;
        wal.set_metrics(&store.obs);
        store.wal = Some(Arc::new(wal));
        Ok(store)
    }

    /// Reopen a durable store, running full restart recovery (see the
    /// [module docs](self::recovery)). Always safe to call — on a
    /// cleanly closed store it degenerates to reloading the checkpoint.
    /// Returns the store and a [`RecoveryReport`] listing every
    /// committed object (the volume is self-describing; no descriptors
    /// need to have survived on the client side).
    ///
    /// Recovery itself is crash-safe: it writes only uncommitted pages
    /// (the undo images), rebuilt directories, and a fresh checkpoint,
    /// so a failure part-way through is simply retried by the next
    /// open.
    pub fn open_durable(
        volume: SharedVolume,
        num_spaces: usize,
        pages_per_space: u64,
        config: StoreConfig,
        wal_pages: u64,
    ) -> Result<(ObjectStore, RecoveryReport)> {
        Self::open_durable_with(
            volume,
            num_spaces,
            pages_per_space,
            config,
            wal_pages,
            &Metrics::new(),
        )
    }

    /// [`Self::open_durable`] recording into a caller-supplied metrics
    /// domain instead of a fresh one — the CLI threads
    /// [`eos_obs::global()`] through here so recovery cost and the
    /// subsequent operations accumulate in one place.
    pub fn open_durable_with(
        volume: SharedVolume,
        num_spaces: usize,
        pages_per_space: u64,
        config: StoreConfig,
        wal_pages: u64,
        metrics: &Metrics,
    ) -> Result<(ObjectStore, RecoveryReport)> {
        // The whole restart sequence — log scan, undo writes, directory
        // rebuild, fresh checkpoint — is one `recovery` span.
        let _span = metrics.span(OpKind::Recovery, &volume);
        let base = (pages_per_space + 1) * num_spaces as u64;
        let wal = StripedWal::attach(&volume, base, wal_pages, config.wal_stripes)?;

        // 2. Undo: reverse uncommitted in-place writes, newest first
        // across all stripes (the merge is by global LSN).
        let mut restored_pages = 0u64;
        let ps = volume.page_size() as u64;
        let pending = wal.pending();
        for entry in pending.iter().rev() {
            if let WalEntry::Op { page_images, .. } = entry {
                for (page, bytes) in page_images.iter().rev() {
                    volume.write_pages(*page, bytes)?;
                    restored_pages += bytes.len() as u64 / ps;
                }
            }
        }
        let rolled_back_ops = pending.len() as u64;

        // Rehydrate the committed objects from their serialized roots.
        let committed = wal.committed();
        let mut objects = Vec::with_capacity(committed.len());
        for (id, desc) in &committed {
            let obj = LargeObject::from_bytes(desc)?;
            if obj.id != *id {
                return Err(Error::CorruptObject {
                    reason: format!("log root map entry {id} deserialized as object {}", obj.id),
                });
            }
            objects.push(obj);
        }

        // 3. Rebuild the allocator from scratch: reformat the
        // directories (data pages untouched), then mark the boot page
        // and every extent a committed root reaches.
        let mut buddy = BuddyManager::create(volume.clone(), num_spaces, pages_per_space)?;
        let boot = buddy.space(0).data_base();
        buddy.allocate_at(boot, 1)?;
        buddy.set_metrics(metrics);
        let mut store = ObjectStore {
            volume,
            buddy,
            config,
            next_id: 1,
            txns: std::collections::BTreeMap::new(),
            active: None,
            next_txn: 1,
            wal: None,
            affinity: 0,
            obs: metrics.clone(),
        };
        for obj in &objects {
            for (start, pages) in store.object_page_extents(obj) {
                store.buddy.allocate_at(start, pages)?;
            }
        }
        store.next_id = objects
            .iter()
            .map(|o| o.id)
            .max()
            .unwrap_or(0)
            .max(wal.max_object_id())
            + 1;

        // 4. Checkpoint: persist the recovered state, dropping the
        // rolled-back tail from disk.
        let report = RecoveryReport {
            objects: objects.clone(),
            records_scanned: wal.records_scanned(),
            torn_tail: wal.torn_tail(),
            rolled_back_ops,
            restored_pages,
            max_lsn: wal.last_lsn(),
        };
        wal.clear_pending();
        wal.set_metrics(metrics);
        wal.checkpoint()?;
        store.wal = Some(Arc::new(wal));
        // A restart that actually undid work is a flight-recorder
        // moment: mark the timeline and, when `EOS_FLIGHT_PATH` is set,
        // snapshot the ring + metrics for post-mortem inspection.
        if report.torn_tail || report.rolled_back_ops > 0 {
            metrics.pipe_event(PipeKind::Instant, "recovery.rollback", 0, 0);
            let _ = metrics.flight_dump("recovery");
        }
        Ok((store, report))
    }
}
