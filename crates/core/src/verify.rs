//! Structural validation and statistics for large objects.
//!
//! [`verify_object`] is the test oracle: it walks the entire tree and
//! checks every invariant the paper states (counts, node fill, level
//! monotonicity, the no-holes rule for segments, and that every page an
//! object references is actually allocated in the buddy maps).
//! [`object_stats`] collects the numbers the experiments report —
//! segment counts, page counts, tree height and storage utilization.

use crate::error::{Error, Result};
use crate::node::{node_min, Node};
use crate::object::LargeObject;
use crate::store::ObjectStore;

/// Structural statistics of one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectStats {
    /// Object size in bytes.
    pub size: u64,
    /// Number of leaf segments.
    pub segments: u64,
    /// Pages occupied by leaf segments.
    pub leaf_pages: u64,
    /// Index pages (excluding the client-held root).
    pub index_pages: u64,
    /// Tree height (1 = root points straight at segments).
    pub height: u16,
    /// Pages of the smallest leaf segment.
    pub min_seg_pages: u64,
    /// Pages of the largest leaf segment.
    pub max_seg_pages: u64,
}

impl ObjectStats {
    /// Leaf storage utilization: object bytes over leaf-page bytes.
    pub fn leaf_utilization(&self, page_size: usize) -> f64 {
        if self.leaf_pages == 0 {
            return 1.0;
        }
        self.size as f64 / (self.leaf_pages * page_size as u64) as f64
    }

    /// Utilization counting index pages too.
    pub fn total_utilization(&self, page_size: usize) -> f64 {
        let pages = self.leaf_pages + self.index_pages;
        if pages == 0 {
            return 1.0;
        }
        self.size as f64 / (pages * page_size as u64) as f64
    }
}

/// Collect [`ObjectStats`] by walking the tree.
pub(crate) fn object_stats(store: &ObjectStore, obj: &LargeObject) -> Result<ObjectStats> {
    let ps = store.ps();
    let mut stats = ObjectStats {
        size: obj.size(),
        segments: 0,
        leaf_pages: 0,
        index_pages: 0,
        height: obj.root.level,
        min_seg_pages: u64::MAX,
        max_seg_pages: 0,
    };
    walk(store, &obj.root, &mut |node| {
        if node.level == 1 {
            for e in &node.entries {
                let pages = e.bytes.div_ceil(ps);
                stats.segments += 1;
                stats.leaf_pages += pages;
                stats.min_seg_pages = stats.min_seg_pages.min(pages);
                stats.max_seg_pages = stats.max_seg_pages.max(pages);
            }
        }
    })?;
    // Count index pages: every node except the root lives on a page.
    let mut index_pages = 0u64;
    walk(store, &obj.root, &mut |node| {
        if node.level > 1 {
            index_pages += node.entries.len() as u64;
        }
    })?;
    stats.index_pages = index_pages;
    if stats.segments == 0 {
        stats.min_seg_pages = 0;
    }
    Ok(stats)
}

fn walk(
    store: &ObjectStore,
    node: &Node,
    f: &mut impl FnMut(&Node),
) -> Result<()> {
    f(node);
    if node.level > 1 {
        for e in &node.entries {
            let child = store.read_node(e.ptr)?;
            walk(store, &child, f)?;
        }
    }
    Ok(())
}

/// Exhaustively verify the object's structural invariants.
pub(crate) fn verify_object(store: &ObjectStore, obj: &LargeObject) -> Result<()> {
    let root_cap = store.root_cap();
    if obj.root.entries.len() > root_cap {
        return Err(Error::CorruptObject {
            reason: format!(
                "root has {} entries, cap is {root_cap}",
                obj.root.entries.len()
            ),
        });
    }
    if obj.root.level > 1 && obj.root.entries.len() < 2 {
        return Err(Error::CorruptObject {
            reason: "non-leaf root with fewer than two pairs".into(),
        });
    }
    verify_node(store, &obj.root, NodePos::Root)?;
    Ok(())
}

#[derive(Clone, Copy, PartialEq)]
enum NodePos {
    Root,
    /// Direct child of the root: exempt from the half-full minimum when
    /// the client bounds the root below a full page (§4 footnote 3 —
    /// splitting such a root cannot produce half-full children).
    RootChild,
    Inner,
}

fn verify_node(store: &ObjectStore, node: &Node, pos: NodePos) -> Result<u64> {
    let ps = store.ps();
    let cap = store.node_cap();
    let min = node_min(store.page_size());
    if pos != NodePos::Root {
        if node.entries.len() > cap {
            return Err(Error::CorruptObject {
                reason: format!("node with {} entries over cap {cap}", node.entries.len()),
            });
        }
        let exempt = pos == NodePos::RootChild && store.root_cap() < cap;
        if node.entries.len() < min && !exempt {
            return Err(Error::CorruptObject {
                reason: format!(
                    "node with {} entries below half-full minimum {min}",
                    node.entries.len()
                ),
            });
        }
    }
    let mut total = 0u64;
    for e in &node.entries {
        if e.bytes == 0 {
            return Err(Error::CorruptObject {
                reason: "zero-byte entry".into(),
            });
        }
        if node.level == 1 {
            // Leaf segment: every page must be allocated in the buddy
            // maps; the page count is ⌈bytes/PS⌉ by the no-holes rule.
            let pages = e.bytes.div_ceil(ps);
            check_allocated(store, e.ptr, pages)?;
        } else {
            let child = store.read_node(e.ptr)?;
            if child.level != node.level - 1 {
                return Err(Error::CorruptObject {
                    reason: format!(
                        "level skew: child {} under node {}",
                        child.level, node.level
                    ),
                });
            }
            check_allocated(store, e.ptr, 1)?;
            let child_pos = if pos == NodePos::Root {
                NodePos::RootChild
            } else {
                NodePos::Inner
            };
            let child_total = verify_node(store, &child, child_pos)?;
            if child_total != e.bytes {
                return Err(Error::CorruptObject {
                    reason: format!(
                        "count mismatch: entry says {}, subtree holds {child_total}",
                        e.bytes
                    ),
                });
            }
        }
        total += e.bytes;
    }
    Ok(total)
}

/// Check that `pages` pages from `start` are marked allocated.
fn check_allocated(store: &ObjectStore, start: u64, pages: u64) -> Result<()> {
    for space_idx in 0..store.buddy().num_spaces() {
        let space = store.buddy().space(space_idx);
        let base = space.data_base();
        let end = base + space.dir().data_pages();
        if start >= base && start < end {
            if start + pages > end {
                return Err(Error::CorruptObject {
                    reason: format!("extent [{start},+{pages}) crosses a space boundary"),
                });
            }
            for p in start..start + pages {
                if !space.dir().amap().page_allocated(p - base) {
                    return Err(Error::CorruptObject {
                        reason: format!("page {p} referenced but free in the buddy map"),
                    });
                }
            }
            return Ok(());
        }
    }
    Err(Error::CorruptObject {
        reason: format!("page {start} outside every buddy space"),
    })
}
