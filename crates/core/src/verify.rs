//! Structural validation and statistics for large objects.
//!
//! [`verify_object_report`] is the exhaustive oracle: it walks the
//! entire tree and checks every invariant the paper states (counts,
//! node fill, level monotonicity, the no-holes rule for segments, and
//! that every page an object references is actually allocated in the
//! buddy maps), collecting *all* violations instead of stopping at the
//! first. [`verify_object`] is a thin pass/fail wrapper over it.
//! [`object_stats`] collects the numbers the experiments report —
//! segment counts, page counts, tree height and storage utilization.

use crate::error::{Error, Result};
use crate::node::{node_min, Node};
use crate::object::LargeObject;
use crate::store::ObjectStore;

/// Structural statistics of one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectStats {
    /// Object size in bytes.
    pub size: u64,
    /// Number of leaf segments.
    pub segments: u64,
    /// Pages occupied by leaf segments.
    pub leaf_pages: u64,
    /// Index pages (excluding the client-held root).
    pub index_pages: u64,
    /// Tree height (1 = root points straight at segments).
    pub height: u16,
    /// Pages of the smallest leaf segment.
    pub min_seg_pages: u64,
    /// Pages of the largest leaf segment.
    pub max_seg_pages: u64,
}

impl ObjectStats {
    /// Leaf storage utilization: object bytes over leaf-page bytes.
    pub fn leaf_utilization(&self, page_size: usize) -> f64 {
        if self.leaf_pages == 0 {
            return 1.0;
        }
        self.size as f64 / (self.leaf_pages * page_size as u64) as f64
    }

    /// Utilization counting index pages too.
    pub fn total_utilization(&self, page_size: usize) -> f64 {
        let pages = self.leaf_pages + self.index_pages;
        if pages == 0 {
            return 1.0;
        }
        self.size as f64 / (pages * page_size as u64) as f64
    }
}

/// One broken structural invariant found while walking an object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path of entry indices from the root, e.g. `root/2/0`.
    pub location: String,
    /// What invariant is broken, in the paper's terms.
    pub reason: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.location, self.reason)
    }
}

/// Collect [`ObjectStats`] by walking the tree.
pub(crate) fn object_stats(store: &ObjectStore, obj: &LargeObject) -> Result<ObjectStats> {
    let ps = store.ps();
    let mut stats = ObjectStats {
        size: obj.size(),
        segments: 0,
        leaf_pages: 0,
        index_pages: 0,
        height: obj.root.level,
        min_seg_pages: u64::MAX,
        max_seg_pages: 0,
    };
    walk(store, &obj.root, &mut |node| {
        if node.level == 1 {
            for e in &node.entries {
                let pages = e.bytes.div_ceil(ps);
                stats.segments += 1;
                stats.leaf_pages += pages;
                stats.min_seg_pages = stats.min_seg_pages.min(pages);
                stats.max_seg_pages = stats.max_seg_pages.max(pages);
            }
        }
    })?;
    // Count index pages: every node except the root lives on a page.
    let mut index_pages = 0u64;
    walk(store, &obj.root, &mut |node| {
        if node.level > 1 {
            index_pages += node.entries.len() as u64;
        }
    })?;
    stats.index_pages = index_pages;
    if stats.segments == 0 {
        stats.min_seg_pages = 0;
    }
    Ok(stats)
}

fn walk(store: &ObjectStore, node: &Node, f: &mut impl FnMut(&Node)) -> Result<()> {
    f(node);
    if node.level > 1 {
        for e in &node.entries {
            let child = store.read_node(e.ptr)?;
            walk(store, &child, f)?;
        }
    }
    Ok(())
}

/// Exhaustively verify the object's structural invariants, stopping at
/// nothing: every violation in the tree is reported.
pub(crate) fn verify_object_report(store: &ObjectStore, obj: &LargeObject) -> Vec<Violation> {
    let mut out = Vec::new();
    let root_cap = store.root_cap();
    if obj.root.entries.len() > root_cap {
        out.push(Violation {
            location: "root".into(),
            reason: format!(
                "root has {} entries, cap is {root_cap}",
                obj.root.entries.len()
            ),
        });
    }
    if obj.root.level > 1 && obj.root.entries.len() < 2 {
        out.push(Violation {
            location: "root".into(),
            reason: "non-leaf root with fewer than two pairs".into(),
        });
    }
    verify_node(store, &obj.root, NodePos::Root, "root", &mut out);
    out
}

/// Pass/fail wrapper over [`verify_object_report`]: the first violation
/// becomes an [`Error::CorruptObject`].
pub(crate) fn verify_object(store: &ObjectStore, obj: &LargeObject) -> Result<()> {
    match verify_object_report(store, obj).into_iter().next() {
        None => Ok(()),
        Some(v) => Err(Error::CorruptObject {
            reason: v.to_string(),
        }),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum NodePos {
    Root,
    /// Direct child of the root: exempt from the half-full minimum when
    /// the client bounds the root below a full page (§4 footnote 3 —
    /// splitting such a root cannot produce half-full children).
    RootChild,
    Inner,
}

/// Walk `node`, appending every violation to `out`. Returns the actual
/// byte total of the subtree so the parent can check its entry count;
/// an unreadable child absorbs its entry's claimed count so one torn
/// page does not cascade into count mismatches up the whole path.
fn verify_node(
    store: &ObjectStore,
    node: &Node,
    pos: NodePos,
    path: &str,
    out: &mut Vec<Violation>,
) -> u64 {
    let ps = store.ps();
    let cap = store.node_cap();
    let min = node_min(store.page_size());
    if pos != NodePos::Root {
        if node.entries.len() > cap {
            out.push(Violation {
                location: path.into(),
                reason: format!("node with {} entries over cap {cap}", node.entries.len()),
            });
        }
        let exempt = pos == NodePos::RootChild && store.root_cap() < cap;
        if node.entries.len() < min && !exempt {
            out.push(Violation {
                location: path.into(),
                reason: format!(
                    "node with {} entries below half-full minimum {min}",
                    node.entries.len()
                ),
            });
        }
    }
    let mut total = 0u64;
    for (i, e) in node.entries.iter().enumerate() {
        let epath = format!("{path}/{i}");
        if e.bytes == 0 {
            out.push(Violation {
                location: epath.clone(),
                reason: "zero-byte entry".into(),
            });
        }
        if node.level == 1 {
            // Leaf segment: every page must be allocated in the buddy
            // maps; the page count is ⌈bytes/PS⌉ by the no-holes rule.
            let pages = e.bytes.div_ceil(ps);
            check_allocated(store, e.ptr, pages, &epath, out);
        } else {
            match store.read_node(e.ptr) {
                Ok(child) => {
                    if child.level != node.level - 1 {
                        out.push(Violation {
                            location: epath.clone(),
                            reason: format!(
                                "level skew: child {} under node {}",
                                child.level, node.level
                            ),
                        });
                    }
                    check_allocated(store, e.ptr, 1, &epath, out);
                    let child_pos = if pos == NodePos::Root {
                        NodePos::RootChild
                    } else {
                        NodePos::Inner
                    };
                    let child_total = verify_node(store, &child, child_pos, &epath, out);
                    if child_total != e.bytes {
                        out.push(Violation {
                            location: epath,
                            reason: format!(
                                "count mismatch: entry says {}, subtree holds {child_total}",
                                e.bytes
                            ),
                        });
                    }
                }
                Err(err) => {
                    out.push(Violation {
                        location: epath,
                        reason: format!("unreadable index page {}: {err}", e.ptr),
                    });
                }
            }
        }
        total += e.bytes;
    }
    total
}

/// Check that `pages` pages from `start` are marked allocated,
/// reporting every free or out-of-space page.
fn check_allocated(
    store: &ObjectStore,
    start: u64,
    pages: u64,
    path: &str,
    out: &mut Vec<Violation>,
) {
    for space_idx in 0..store.buddy().num_spaces() {
        let space = store.buddy().space(space_idx);
        let base = space.data_base();
        let end = base + space.dir().data_pages();
        if start >= base && start < end {
            if start + pages > end {
                out.push(Violation {
                    location: path.into(),
                    reason: format!("extent [{start},+{pages}) crosses a space boundary"),
                });
            }
            for p in start..(start + pages).min(end) {
                if !space.dir().amap().page_allocated(p - base) {
                    out.push(Violation {
                        location: path.into(),
                        reason: format!("page {p} referenced but free in the buddy map"),
                    });
                }
            }
            return;
        }
    }
    out.push(Violation {
        location: path.into(),
        reason: format!("page {start} outside every buddy space"),
    });
}

/// Every page extent `(start_page, pages)` the object references —
/// index pages (one-page extents) and leaf segments. Tolerant of torn
/// index pages: an unreadable subtree contributes only the extent of
/// the page that failed to parse.
pub(crate) fn object_page_extents(store: &ObjectStore, obj: &LargeObject) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    collect_extents(store, &obj.root, &mut out);
    out
}

fn collect_extents(store: &ObjectStore, node: &Node, out: &mut Vec<(u64, u64)>) {
    let ps = store.ps();
    for e in &node.entries {
        if node.level == 1 {
            let pages = e.bytes.div_ceil(ps);
            if pages > 0 {
                out.push((e.ptr, pages));
            }
        } else {
            out.push((e.ptr, 1));
            if let Ok(child) = store.read_node(e.ptr) {
                collect_extents(store, &child, out);
            }
        }
    }
}
