//! Bounds-checked little-endian field readers for the decode paths.
//!
//! Recovery feeds `from_bytes`/`from_page`/the log scan raw disk pages,
//! so every fixed-width read must surface a truncated or corrupt buffer
//! as a typed [`Error::CorruptObject`] instead of a slice-index panic.
//! These helpers are the only sanctioned way to pull a fixed-width
//! integer out of an untrusted byte buffer (enforced by `eos lint`).

use crate::error::{Error, Result};

fn truncated(what: &'static str, off: usize) -> Error {
    Error::CorruptObject {
        reason: format!("truncated {what} at byte {off}"),
    }
}

/// `N` bytes at `data[off..]`, or a typed error naming the field.
pub(crate) fn array_at<const N: usize>(
    data: &[u8],
    off: usize,
    what: &'static str,
) -> Result<[u8; N]> {
    match off.checked_add(N).and_then(|end| data.get(off..end)) {
        Some(s) => {
            let mut b = [0u8; N];
            b.copy_from_slice(s);
            Ok(b)
        }
        None => Err(truncated(what, off)),
    }
}

/// Little-endian `u16` at `off`.
pub(crate) fn u16_at(data: &[u8], off: usize, what: &'static str) -> Result<u16> {
    Ok(u16::from_le_bytes(array_at(data, off, what)?))
}

/// Little-endian `u32` at `off`.
pub(crate) fn u32_at(data: &[u8], off: usize, what: &'static str) -> Result<u32> {
    Ok(u32::from_le_bytes(array_at(data, off, what)?))
}

/// Little-endian `u64` at `off`.
pub(crate) fn u64_at(data: &[u8], off: usize, what: &'static str) -> Result<u64> {
    Ok(u64::from_le_bytes(array_at(data, off, what)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_bounds() {
        let data = [1u8, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(u16_at(&data, 0, "x").unwrap(), 1);
        assert_eq!(u32_at(&data, 0, "x").unwrap(), 1);
        assert_eq!(u64_at(&data, 4, "x").unwrap(), 2);
    }

    #[test]
    fn out_of_bounds_is_a_typed_error() {
        let data = [0u8; 4];
        assert!(matches!(
            u64_at(&data, 0, "field"),
            Err(Error::CorruptObject { .. })
        ));
        assert!(matches!(
            u32_at(&data, 2, "field"),
            Err(Error::CorruptObject { .. })
        ));
        // Offset overflow must not wrap around.
        assert!(u32_at(&data, usize::MAX - 1, "field").is_err());
    }
}
