//! Store configuration: the segment-size threshold policy (§4.4) and
//! recovery-related switches.

/// The segment size threshold *T* (§4.4).
///
/// "It can not be the case that a number of bytes are kept in two
/// (logically) adjacent segments, one of which has less than T pages, if
/// they can be stored in one." Larger T improves storage utilization and
/// read performance at some insert/delete cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threshold {
    /// A fixed number of pages. `Fixed(1)` disables page reshuffling
    /// entirely (every segment of ≥1 page is "safe"), which is the
    /// configuration that degenerates to 1-page leaves under heavy
    /// updates — the problem §4.4 opens with.
    Fixed(u32),
    /// Adaptive T from the parent index node's fan-out (\[Bili91a\]): the
    /// closer the parent is to splitting, the larger T becomes. With a
    /// parent holding `n` of `cap` entries, `T = base · 2^(4·n/cap)` —
    /// T grows from `base` on an empty node to `16·base` on the verge of
    /// a split.
    Adaptive {
        /// T used when the parent node is empty.
        base: u32,
    },
}

impl Threshold {
    /// Effective T given the fan-out of the parent index node of the
    /// leaf being updated.
    pub fn effective(&self, parent_entries: usize, parent_cap: usize) -> u32 {
        match *self {
            Threshold::Fixed(t) => t.max(1),
            Threshold::Adaptive { base } => {
                let cap = parent_cap.max(1);
                let step = (4 * parent_entries / cap).min(4) as u32;
                (base.max(1)) << step
            }
        }
    }
}

impl Default for Threshold {
    fn default() -> Self {
        Threshold::Fixed(8)
    }
}

/// Configuration of an [`crate::ObjectStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Default segment-size threshold for new objects. Objects can
    /// override it each time they are opened for update ("the threshold
    /// value does not have to be constant during the lifetime of a large
    /// object", §4.4).
    pub threshold: Threshold,
    /// Maximum number of entries the in-descriptor root may hold before
    /// the tree grows a level. The paper lets clients bound the root
    /// size; `None` uses the same capacity as an index page.
    pub max_root_entries: Option<usize>,
    /// Shadow index pages on update (§4.5): modified internal nodes are
    /// written to freshly allocated pages and the old pages freed, so an
    /// interrupted update never corrupts the committed tree. Turning
    /// this off updates index pages in place (fewer allocator calls,
    /// no crash safety).
    pub shadow_index_pages: bool,
    /// Re-verify invariants at every operation boundary: after each
    /// mutating operation the whole object tree is re-walked
    /// ([`crate::ObjectStore::verify_object`]) and the buddy directories
    /// are re-audited. Catches corruption at the operation that caused
    /// it rather than at the next `eos check`, at a large cost in time —
    /// meant for tests and debugging, like RocksDB's `paranoid_checks`.
    pub paranoid_checks: bool,
    /// On a durable store (one with an attached on-disk log), enforce
    /// the write-ordering barriers (`fsync`) of §4.5: shadowed pages
    /// before the commit record, the commit record itself, `replace`
    /// undo images before the in-place overwrite, and rollback restores
    /// before the abort record. Turning this off trades the whole
    /// crash-consistency guarantee for speed on volumes where syncs
    /// cost real time; in-memory volumes ignore it (they are trivially
    /// stable).
    pub sync_on_commit: bool,
    /// WAL stripes on a durable store: the log region is split into
    /// this many independently forced slices, objects hash onto them by
    /// id, and commit forces for disjoint stripes overlap
    /// ([`crate::StripedWal`]). `1` (the default) keeps the classic
    /// single-log layout byte-identical to earlier versions.
    pub wal_stripes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            threshold: Threshold::default(),
            max_root_entries: None,
            shadow_index_pages: true,
            paranoid_checks: false,
            sync_on_commit: true,
            wal_stripes: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_threshold_is_constant() {
        let t = Threshold::Fixed(8);
        assert_eq!(t.effective(0, 100), 8);
        assert_eq!(t.effective(99, 100), 8);
        assert_eq!(Threshold::Fixed(0).effective(0, 10), 1, "clamped to 1");
    }

    #[test]
    fn adaptive_threshold_grows_with_fanout() {
        let t = Threshold::Adaptive { base: 4 };
        assert_eq!(t.effective(0, 100), 4);
        assert_eq!(t.effective(25, 100), 8);
        assert_eq!(t.effective(50, 100), 16);
        assert_eq!(t.effective(75, 100), 32);
        assert_eq!(t.effective(100, 100), 64, "about to split → largest T");
    }

    #[test]
    fn default_config_shadow_on() {
        let c = StoreConfig::default();
        assert!(c.shadow_index_pages);
        assert_eq!(c.threshold, Threshold::Fixed(8));
    }
}
