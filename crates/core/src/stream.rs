//! Streaming access and compaction.
//!
//! §1 motivates piece-wise access with objects too big to handle in one
//! chunk ("it would be unlikely (if not impossible) to create a very
//! large object in one big step"). [`ObjectReader`] is the read-side
//! counterpart: an iterator that yields the object segment by segment,
//! each segment fetched with a single multi-page call.
//!
//! [`ObjectStore::compact`] rewrites an object into a minimal run of
//! maximum-size segments — the right layout "for more static objects
//! where the cost of updates is of little or no concern" (§4.4).

use crate::error::Result;
use crate::node::{Entry, Node};
use crate::object::LargeObject;
use crate::ops::read::advance;
use crate::store::ObjectStore;
use crate::tree::{descend, free_subtree, leaf_entry, normalize_root, PathStep};

/// Iterator over an object's content, one leaf segment per item.
pub struct ObjectReader<'a> {
    store: &'a ObjectStore,
    path: Option<Vec<PathStep>>,
    remaining: u64,
}

impl<'a> ObjectReader<'a> {
    fn new(store: &'a ObjectStore, obj: &LargeObject) -> Result<ObjectReader<'a>> {
        let path = if obj.is_empty() {
            None
        } else {
            Some(descend(store, obj, 0)?.0)
        };
        Ok(ObjectReader {
            store,
            path,
            remaining: obj.size(),
        })
    }
}

impl Iterator for ObjectReader<'_> {
    type Item = Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        let path = self.path.as_mut()?;
        let e = leaf_entry(path);
        let ps = self.store.ps();
        let pages = e.bytes.div_ceil(ps);
        let out = match self.store.volume().read_pages(e.ptr, pages) {
            Ok(mut buf) => {
                buf.truncate(e.bytes as usize);
                buf
            }
            Err(err) => {
                self.path = None;
                return Some(Err(err.into()));
            }
        };
        self.remaining -= e.bytes;
        if self.remaining == 0 {
            self.path = None;
        } else if let Err(err) = advance(self.store, path) {
            self.path = None;
            return Some(Err(err));
        }
        Some(Ok(out))
    }
}

/// Outcome of a compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Leaf segments before.
    pub segments_before: u64,
    /// Leaf segments after.
    pub segments_after: u64,
}

impl ObjectStore {
    /// Stream the object segment by segment.
    pub fn reader<'a>(&'a self, obj: &LargeObject) -> Result<ObjectReader<'a>> {
        ObjectReader::new(self, obj)
    }

    /// Collect the leaf segments of an object as `(bytes, first page)`
    /// pairs — diagnostics and layout inspection.
    pub fn segments(&self, obj: &LargeObject) -> Result<Vec<(u64, u64)>> {
        let mut out = Vec::new();
        if obj.is_empty() {
            return Ok(out);
        }
        let (mut path, _) = descend(self, obj, 0)?;
        let mut seen = 0u64;
        loop {
            let e = leaf_entry(&path);
            out.push((e.bytes, e.ptr));
            seen += e.bytes;
            if seen == obj.size() {
                return Ok(out);
            }
            advance(self, &mut path)?;
        }
    }

    /// Rewrite the object into a minimal run of maximum-size segments
    /// (the §4.4 "the larger the segment size the better" layout for
    /// static objects). Needs transient space for the new copy before
    /// the old segments are freed. On a durable store the rewrite is
    /// shadowed like any structural update and becomes visible at
    /// commit.
    pub fn compact(&mut self, obj: &mut LargeObject) -> Result<CompactStats> {
        let _span = self
            .metrics()
            .span(eos_obs::OpKind::Reshuffle, self.volume());
        if self.durable_wal().is_some() {
            return self.with_autocommit(|s| {
                let stats = s.compact_inner(obj)?;
                s.log_touch(obj)?;
                Ok(stats)
            });
        }
        self.compact_inner(obj)
    }

    fn compact_inner(&mut self, obj: &mut LargeObject) -> Result<CompactStats> {
        let ps = self.ps();
        let max_bytes = (self.max_seg_pages() * ps) as usize;
        let old_segments = self.segments(obj)?;
        let stats_before = old_segments.len() as u64;
        if obj.is_empty() {
            return Ok(CompactStats {
                segments_before: 0,
                segments_after: 0,
            });
        }

        // Copy into fresh maximal segments, streaming one old segment at
        // a time (bounded memory: one max segment + one old segment).
        // Allocation is best effort: when churn has fragmented the free
        // space, compact takes the largest contiguous runs available
        // instead of failing.
        let mut new_entries: Vec<Entry> = Vec::new();
        let mut buffer: Vec<u8> = Vec::with_capacity(max_bytes);
        for &(bytes, ptr) in &old_segments {
            let pages = bytes.div_ceil(ps);
            let mut buf = self.volume().read_pages(ptr, pages)?;
            buf.truncate(bytes as usize);
            let mut src = buf.as_slice();
            while !src.is_empty() {
                let take = (max_bytes - buffer.len()).min(src.len());
                buffer.extend_from_slice(&src[..take]);
                src = &src[take..];
                if buffer.len() == max_bytes {
                    new_entries.extend(write_best_effort(self, &buffer)?);
                    buffer.clear();
                }
            }
        }
        if !buffer.is_empty() {
            new_entries.extend(write_best_effort(self, &buffer)?);
        }

        // Free the old tree (index pages and segments), install the new.
        let old_root = std::mem::replace(&mut obj.root, Node::new(1));
        free_subtree(self, &old_root)?;
        obj.root = Node {
            level: 1,
            entries: new_entries,
        };
        normalize_root(self, obj)?;
        self.paranoid_check(obj)?;
        Ok(CompactStats {
            segments_before: stats_before,
            segments_after: self.segments(obj)?.len() as u64,
        })
    }
}

/// Write `bytes` as segments using the largest contiguous runs the
/// allocator can offer (falls back below the maximum under
/// fragmentation).
fn write_best_effort(store: &mut ObjectStore, bytes: &[u8]) -> Result<Vec<Entry>> {
    let ps = store.ps();
    let mut out = Vec::new();
    let mut src = bytes;
    while !src.is_empty() {
        let want = (src.len() as u64).div_ceil(ps).min(store.max_seg_pages());
        let ext = store.alloc_up_to(want)?;
        let take = ((ext.pages * ps) as usize).min(src.len());
        let used = (take as u64).div_ceil(ps);
        let mut buf = src[..take].to_vec();
        buf.resize((used * ps) as usize, 0);
        store.volume().write_pages(ext.start, &buf)?;
        if used < ext.pages {
            store.free_pages(ext.start + used, ext.pages - used)?;
        }
        out.push(Entry {
            bytes: take as u64,
            ptr: ext.start,
        });
        src = &src[take..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StoreConfig, Threshold};

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    fn shattered() -> (ObjectStore, LargeObject, Vec<u8>) {
        let mut store = ObjectStore::in_memory_with(
            512,
            8000,
            StoreConfig {
                threshold: Threshold::Fixed(1),
                ..StoreConfig::default()
            },
        );
        let mut model = pattern(250_000);
        let mut obj = store.create_with(&model, None).unwrap();
        for i in 0..50u64 {
            let off = (i * 4999) % (model.len() as u64);
            store.insert(&mut obj, off, b"##").unwrap();
            model.splice(off as usize..off as usize, *b"##");
        }
        (store, obj, model)
    }

    #[test]
    fn reader_streams_the_whole_object() {
        let (store, obj, model) = shattered();
        let mut got = Vec::new();
        let mut chunks = 0;
        for chunk in store.reader(&obj).unwrap() {
            got.extend(chunk.unwrap());
            chunks += 1;
        }
        assert_eq!(got, model);
        let stats = store.object_stats(&obj).unwrap();
        assert_eq!(chunks, stats.segments);
    }

    #[test]
    fn reader_on_empty_object_yields_nothing() {
        let mut store = ObjectStore::in_memory(512, 100);
        let obj = store.create_object();
        assert_eq!(store.reader(&obj).unwrap().count(), 0);
    }

    #[test]
    fn segments_lists_layout_in_order() {
        let (store, obj, model) = shattered();
        let segs = store.segments(&obj).unwrap();
        assert!(segs.len() > 10);
        assert_eq!(
            segs.iter().map(|&(b, _)| b).sum::<u64>(),
            model.len() as u64
        );
    }

    #[test]
    fn compact_restores_minimal_layout() {
        let (mut store, mut obj, model) = shattered();
        let before = store.object_stats(&obj).unwrap();
        let free_before = store.buddy().total_free_pages();
        let stats = store.compact(&mut obj).unwrap();
        assert_eq!(stats.segments_before, before.segments);
        assert!(stats.segments_after < stats.segments_before / 5);
        store.verify_object(&obj).unwrap();
        assert_eq!(store.read_all(&obj).unwrap(), model);
        // Compaction cannot lose pages (it should gain some back).
        assert!(store.buddy().total_free_pages() >= free_before);
        // Scanning now takes one seek per (few) segments.
        store.reset_io_stats();
        let _ = store.read_all(&obj).unwrap();
        assert!(store.io_stats().seeks <= stats.segments_after);
    }

    #[test]
    fn compact_empty_is_noop() {
        let mut store = ObjectStore::in_memory(512, 100);
        let mut obj = store.create_object();
        let s = store.compact(&mut obj).unwrap();
        assert_eq!(s.segments_after, 0);
        assert!(obj.is_empty());
    }
}
