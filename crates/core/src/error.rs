//! Error type for the large object manager.

use std::fmt;

/// Result alias used throughout `eos-core`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the EOS large object manager.
#[derive(Debug)]
pub enum Error {
    /// A byte offset or range fell outside the object.
    OutOfObjectBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Current object size.
        object_size: u64,
    },
    /// The database has no room for the requested growth.
    NoSpace {
        /// Pages that could not be allocated.
        requested_pages: u64,
    },
    /// An object descriptor or index page failed validation.
    CorruptObject {
        /// Human-readable description.
        reason: String,
    },
    /// The operation is not supported by this store (used by baselines
    /// that lack, e.g., byte inserts).
    Unsupported {
        /// The operation name.
        op: &'static str,
        /// Why it is unsupported.
        reason: String,
    },
    /// A transaction token was used after commit/abort.
    StaleTransaction,
    /// A snapshot read named an object id the pinned committed root
    /// set does not contain (never created, or deleted before the
    /// snapshot was pinned).
    UnknownObject {
        /// The object id that was looked up.
        id: u64,
    },
    /// A group commit could not make its batch durable. On a data
    /// barrier failure the transaction was rolled back; on a log force
    /// failure its durability is unknown (restart recovery decides).
    CommitFailed {
        /// Human-readable description.
        reason: String,
    },
    /// A durable log record does not fit in the reserved log region,
    /// even after checkpointing (the region is too small for the
    /// transaction's footprint).
    LogFull {
        /// Bytes the record needs.
        needed: u64,
        /// Bytes one log half can hold.
        available: u64,
    },
    /// An underlying buddy-allocator error.
    Buddy(eos_buddy::Error),
    /// An underlying volume error.
    Pager(eos_pager::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfObjectBounds {
                offset,
                len,
                object_size,
            } => write!(
                f,
                "range [{offset}, {}) outside object of {object_size} bytes",
                offset + len
            ),
            Error::NoSpace { requested_pages } => {
                write!(f, "no space for {requested_pages} more pages")
            }
            Error::CorruptObject { reason } => write!(f, "corrupt object: {reason}"),
            Error::Unsupported { op, reason } => {
                write!(f, "operation `{op}` unsupported: {reason}")
            }
            Error::StaleTransaction => write!(f, "transaction already finished"),
            Error::UnknownObject { id } => {
                write!(f, "object {id} not in the snapshot's committed root set")
            }
            Error::CommitFailed { reason } => write!(f, "commit failed: {reason}"),
            Error::LogFull { needed, available } => write!(
                f,
                "log record of {needed} bytes exceeds the {available}-byte log half"
            ),
            Error::Buddy(e) => write!(f, "space manager: {e}"),
            Error::Pager(e) => write!(f, "volume: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Buddy(e) => Some(e),
            Error::Pager(e) => Some(e),
            _ => None,
        }
    }
}

impl From<eos_buddy::Error> for Error {
    fn from(e: eos_buddy::Error) -> Self {
        match e {
            eos_buddy::Error::NoSpace { requested_pages } => Error::NoSpace { requested_pages },
            other => Error::Buddy(other),
        }
    }
}

impl From<eos_pager::Error> for Error {
    fn from(e: eos_pager::Error) -> Self {
        Error::Pager(e)
    }
}
