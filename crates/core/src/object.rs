//! The large-object handle: the tree root plus per-object settings.
//!
//! "Although EOS manages the internals of the large object root, the
//! placement of the root on a database page is left to the client" (§4).
//! [`LargeObject`] is therefore an ordinary value the caller keeps —
//! e.g. inside a small record to implement long fields — and
//! [`LargeObject::to_bytes`] / [`LargeObject::from_bytes`] give it a
//! compact, validated serialization with the paper's cumulative-count
//! layout.

use crate::codec;
use crate::config::Threshold;
use crate::error::{Error, Result};
use crate::node::{Entry, Node};

/// Magic tag identifying a serialized object descriptor ("EOSR").
const ROOT_MAGIC: u32 = 0x454F_5352; // format-anchor: ROOT_MAGIC
/// Byte offset of the object id in the descriptor.
const DESC_ID_OFF: usize = 4; // format-anchor: DESC_ID_OFF
/// Byte offset of the root LSN.
const DESC_LSN_OFF: usize = 12; // format-anchor: DESC_LSN_OFF
/// Byte offset of the threshold tag (0 = fixed, 1 = adaptive).
const DESC_THRESHOLD_TAG_OFF: usize = 20; // format-anchor: DESC_THRESHOLD_TAG_OFF
/// Byte offset of the threshold value.
const DESC_THRESHOLD_VAL_OFF: usize = 21; // format-anchor: DESC_THRESHOLD_VAL_OFF
/// Byte offset of the root level.
const DESC_LEVEL_OFF: usize = 25; // format-anchor: DESC_LEVEL_OFF
/// Byte offset of the root entry count.
const DESC_COUNT_OFF: usize = 27; // format-anchor: DESC_COUNT_OFF
/// Fixed descriptor header length; root entries follow.
const DESC_HEADER: usize = 29; // format-anchor: DESC_HEADER
/// Each root entry: cumulative count (8) + child pointer (8).
const DESC_ENTRY_SIZE: usize = 16; // format-anchor: DESC_ENTRY_SIZE

/// A handle to one large object: the root node of its positional tree,
/// its identity, its segment-size threshold, and the LSN of the last
/// update (§4.5: "the log sequence number of the update must be placed
/// in the root page of the object").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LargeObject {
    /// Store-assigned object identity (used in log records).
    pub(crate) id: u64,
    /// The root node. `level == 1` with no entries means an empty
    /// object; the root may point directly at segments (Fig 5.a/b) or
    /// at index nodes (Fig 5.c).
    pub(crate) root: Node,
    /// Segment-size threshold in force (§4.4). May be changed between
    /// operations via [`LargeObject::set_threshold`].
    pub(crate) threshold: Threshold,
    /// LSN of the last logged update.
    pub(crate) lsn: u64,
}

impl LargeObject {
    /// A fresh, empty object.
    pub(crate) fn new(id: u64, threshold: Threshold) -> LargeObject {
        LargeObject {
            id,
            root: Node::new(1),
            threshold,
            lsn: 0,
        }
    }

    /// Total object size in bytes — the count of the rightmost root
    /// pair, exactly as in the paper.
    pub fn size(&self) -> u64 {
        self.root.total_bytes()
    }

    /// True when the object holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.root.entries.is_empty()
    }

    /// Store-assigned identity.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Height of the tree: 1 when the root points directly at segments.
    pub fn height(&self) -> u16 {
        self.root.level
    }

    /// LSN of the last update applied to this object.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// The threshold currently in force.
    pub fn threshold(&self) -> Threshold {
        self.threshold
    }

    /// Change the segment-size threshold. "Applications … are allowed
    /// to change the T value every time the object is opened for
    /// updates" (§4.4). Takes effect on subsequent operations; existing
    /// segments are reorganized lazily as updates touch them.
    pub fn set_threshold(&mut self, t: Threshold) {
        self.threshold = t;
    }

    /// Number of entries in the root (diagnostics; Fig 5 reproduction).
    pub fn root_entries(&self) -> usize {
        self.root.entries.len()
    }

    /// Serialize the descriptor for client-controlled placement.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(DESC_HEADER + DESC_ENTRY_SIZE * self.root.entries.len());
        out.extend_from_slice(&ROOT_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.lsn.to_le_bytes());
        let (tag, val): (u8, u32) = match self.threshold {
            Threshold::Fixed(t) => (0, t),
            Threshold::Adaptive { base } => (1, base),
        };
        out.push(tag);
        out.extend_from_slice(&val.to_le_bytes());
        out.extend_from_slice(&self.root.level.to_le_bytes());
        out.extend_from_slice(&(self.root.entries.len() as u16).to_le_bytes());
        let mut acc = 0u64;
        for e in &self.root.entries {
            acc += e.bytes;
            out.extend_from_slice(&acc.to_le_bytes());
            out.extend_from_slice(&e.ptr.to_le_bytes());
        }
        out
    }

    /// Decode a descriptor written by [`Self::to_bytes`]. Corruption —
    /// including truncation anywhere — surfaces as a typed error, never
    /// a panic: recovery hands this raw disk bytes.
    pub fn from_bytes(data: &[u8]) -> Result<LargeObject> {
        let corrupt = |reason: &str| Error::CorruptObject {
            reason: reason.to_string(),
        };
        if data.len() < DESC_HEADER {
            return Err(corrupt("descriptor too short"));
        }
        if codec::u32_at(data, 0, "descriptor magic")? != ROOT_MAGIC {
            return Err(corrupt("bad descriptor magic"));
        }
        let id = codec::u64_at(data, DESC_ID_OFF, "descriptor id")?;
        let lsn = codec::u64_at(data, DESC_LSN_OFF, "descriptor lsn")?;
        let tval = codec::u32_at(data, DESC_THRESHOLD_VAL_OFF, "threshold value")?;
        let threshold = match data.get(DESC_THRESHOLD_TAG_OFF) {
            Some(0) => Threshold::Fixed(tval),
            Some(1) => Threshold::Adaptive { base: tval },
            _ => return Err(corrupt("unknown threshold tag")),
        };
        let level = codec::u16_at(data, DESC_LEVEL_OFF, "root level")?;
        let n = codec::u16_at(data, DESC_COUNT_OFF, "root entry count")? as usize;
        if level == 0 {
            return Err(corrupt("descriptor root level 0"));
        }
        if data.len() < DESC_HEADER + DESC_ENTRY_SIZE * n {
            return Err(corrupt("descriptor truncated"));
        }
        let mut entries = Vec::with_capacity(n);
        let mut prev = 0u64;
        for i in 0..n {
            let off = DESC_HEADER + DESC_ENTRY_SIZE * i;
            let c = codec::u64_at(data, off, "entry count")?;
            let ptr = codec::u64_at(data, off + 8, "entry pointer")?;
            if c <= prev {
                return Err(corrupt("descriptor counts not increasing"));
            }
            entries.push(Entry {
                bytes: c - prev,
                ptr,
            });
            prev = c;
        }
        Ok(LargeObject {
            id,
            root: Node { level, entries },
            threshold,
            lsn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_object_is_empty() {
        let o = LargeObject::new(7, Threshold::Fixed(4));
        assert!(o.is_empty());
        assert_eq!(o.size(), 0);
        assert_eq!(o.height(), 1);
        assert_eq!(o.id(), 7);
    }

    #[test]
    fn descriptor_roundtrip() {
        let mut o = LargeObject::new(42, Threshold::Adaptive { base: 2 });
        o.lsn = 99;
        o.root = Node {
            level: 2,
            entries: vec![
                Entry {
                    bytes: 1020,
                    ptr: 5,
                },
                Entry { bytes: 800, ptr: 9 },
            ],
        };
        let bytes = o.to_bytes();
        let back = LargeObject::from_bytes(&bytes).unwrap();
        assert_eq!(back, o);
        assert_eq!(back.size(), 1820);
    }

    #[test]
    fn descriptor_rejects_corruption() {
        let o = LargeObject::new(1, Threshold::Fixed(8));
        let mut b = o.to_bytes();
        b[0] ^= 1;
        assert!(LargeObject::from_bytes(&b).is_err());
        assert!(LargeObject::from_bytes(&[0u8; 4]).is_err());
        let mut b = o.to_bytes();
        b[20] = 9; // bogus threshold tag
        assert!(LargeObject::from_bytes(&b).is_err());
    }

    #[test]
    fn empty_roundtrip() {
        let o = LargeObject::new(3, Threshold::Fixed(8));
        let back = LargeObject::from_bytes(&o.to_bytes()).unwrap();
        assert_eq!(back, o);
    }
}
