//! Group reallocation of unsafe segments (\[Bili91a\]; §4.4 last
//! paragraph).
//!
//! "When the parent node is indeed going to be split if the child
//! segment is split, the entire node is scanned and for any two or more
//! logically adjacent segments that have less than T pages, a single
//! larger segment is allocated to accommodate this group of unsafe
//! adjacent segments." Consolidation both restores physical clustering
//! and shrinks the parent's entry count, often avoiding the split
//! altogether.

use crate::error::Result;
use crate::node::{Entry, Node};
use crate::store::ObjectStore;

/// Statistics returned by a consolidation pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsolidateStats {
    /// Number of adjacent-unsafe runs merged.
    pub runs_merged: u64,
    /// Segments before the pass.
    pub segments_before: u64,
    /// Segments after the pass.
    pub segments_after: u64,
}

/// Merge every run of two or more logically adjacent segments of fewer
/// than `t` pages each into single larger segments. `node` must be a
/// level-1 node; its entries are edited in place (the caller propagates
/// counts). Runs larger than the maximum segment are split greedily.
pub(crate) fn consolidate_leaf_parent(
    store: &mut ObjectStore,
    node: &mut Node,
    t: u64,
) -> Result<ConsolidateStats> {
    debug_assert_eq!(node.level, 1);
    let ps = store.ps();
    let max_bytes = store.max_seg_pages() * ps;
    let mut stats = ConsolidateStats {
        segments_before: node.entries.len() as u64,
        ..Default::default()
    };

    // Collect maximal runs of adjacent unsafe entries, capped at the
    // maximum segment size.
    let unsafe_seg = |e: &Entry| e.bytes.div_ceil(ps) < t;
    let mut runs: Vec<(usize, usize)> = Vec::new(); // [i, j)
    let mut i = 0;
    while i < node.entries.len() {
        if !unsafe_seg(&node.entries[i]) {
            i += 1;
            continue;
        }
        let mut j = i;
        let mut bytes = 0u64;
        while j < node.entries.len()
            && unsafe_seg(&node.entries[j])
            && bytes + node.entries[j].bytes <= max_bytes
        {
            bytes += node.entries[j].bytes;
            j += 1;
        }
        if j - i >= 2 {
            runs.push((i, j));
        }
        i = j.max(i + 1);
    }

    // Rewrite each run into one fresh segment (right to left so earlier
    // indices stay valid).
    for &(a, b) in runs.iter().rev() {
        let mut bytes: Vec<u8> = Vec::new();
        for e in &node.entries[a..b] {
            let pages = e.bytes.div_ceil(ps);
            let buf = store.volume().read_pages(e.ptr, pages)?;
            bytes.extend_from_slice(&buf[..e.bytes as usize]);
        }
        let fresh = crate::ops::insert::write_new_segments(store, &bytes)?;
        let old: Vec<Entry> = node.entries.splice(a..b, fresh).collect();
        for e in old {
            store.free_pages(e.ptr, e.bytes.div_ceil(ps))?;
        }
        stats.runs_merged += 1;
    }
    stats.segments_after = node.entries.len() as u64;
    Ok(stats)
}

impl ObjectStore {
    /// Walk the whole object and apply group reallocation to every
    /// level-1 node — an explicit defragmentation pass with the current
    /// threshold ("for more static objects … the larger the segment
    /// size the better the overall performance", §4.4).
    pub fn consolidate(&mut self, obj: &mut crate::LargeObject) -> Result<ConsolidateStats> {
        if self.durable_wal().is_some() {
            return self.with_autocommit(|s| {
                let stats = s.consolidate_inner(obj)?;
                s.log_touch(obj)?;
                Ok(stats)
            });
        }
        self.consolidate_inner(obj)
    }

    fn consolidate_inner(&mut self, obj: &mut crate::LargeObject) -> Result<ConsolidateStats> {
        let cap = self.node_cap();
        let t = self.effective_threshold(obj, 0).max(2);
        let mut total = ConsolidateStats::default();
        let mut root = obj.root.clone();
        let changed = self.consolidate_sub(&mut root, t, &mut total)?;
        if changed {
            obj.root = root;
            crate::tree::normalize_root(self, obj)?;
        }
        let _ = cap;
        self.paranoid_check(obj)?;
        Ok(total)
    }

    fn consolidate_sub(
        &mut self,
        node: &mut Node,
        t: u64,
        total: &mut ConsolidateStats,
    ) -> Result<bool> {
        if node.level == 1 {
            let before = node.entries.len();
            let s = consolidate_leaf_parent(self, node, t)?;
            total.runs_merged += s.runs_merged;
            total.segments_before += s.segments_before;
            total.segments_after += s.segments_after;
            return Ok(node.entries.len() != before);
        }
        // Recurse into every child, keeping the in-memory nodes so
        // children that consolidation leaves under half-full can be
        // merged or rotated with a sibling before write-out.
        let mut slots: Vec<(crate::node::Entry, Node, bool)> = Vec::new();
        let mut any = false;
        for e in std::mem::take(&mut node.entries) {
            let mut child = self.read_node(e.ptr)?;
            let changed = self.consolidate_sub(&mut child, t, total)?;
            any |= changed;
            slots.push((e, child, changed));
        }
        let min = crate::node::node_min(self.page_size());
        let cap = self.node_cap();
        loop {
            let pos = slots.iter().position(|(_, n, _)| n.entries.len() < min);
            let Some(i) = pos else { break };
            if slots.len() == 1 {
                break; // the root collapse will absorb it
            }
            let j = if i > 0 { i - 1 } else { i + 1 };
            let (a, b) = (i.min(j), i.max(j));
            let (eb, nb, _) = slots.remove(b);
            let (ea, na, _) = slots.remove(a);
            let level = na.level;
            let mut combined = na.entries;
            combined.extend(nb.entries);
            any = true;
            if combined.len() <= cap {
                self.free_node(eb.ptr)?;
                slots.insert(
                    a,
                    (
                        ea,
                        Node {
                            level,
                            entries: combined,
                        },
                        true,
                    ),
                );
            } else {
                let mut halves = crate::tree::split_even(&combined, 2).into_iter();
                slots.insert(
                    a,
                    (
                        ea,
                        Node {
                            level,
                            entries: halves.next().unwrap(),
                        },
                        true,
                    ),
                );
                slots.insert(
                    a + 1,
                    (
                        eb,
                        Node {
                            level,
                            entries: halves.next().unwrap(),
                        },
                        true,
                    ),
                );
            }
        }
        let mut entries = Vec::with_capacity(slots.len());
        for (e, child, changed) in slots {
            if changed {
                let page = self.write_node(Some(e.ptr), &child)?;
                entries.push(Entry {
                    bytes: child.total_bytes(),
                    ptr: page,
                });
            } else {
                entries.push(e);
            }
        }
        node.entries = entries;
        Ok(any)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StoreConfig, Threshold};

    fn shattered(t: Threshold) -> (ObjectStore, crate::LargeObject, Vec<u8>) {
        let mut store = ObjectStore::in_memory_with(
            512,
            6000,
            StoreConfig {
                threshold: t,
                ..StoreConfig::default()
            },
        );
        let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        let mut obj = store.create_with(&data, Some(data.len() as u64)).unwrap();
        let mut model = data;
        // Shatter with T=1-style tiny inserts.
        for i in 0..60u64 {
            let off = (i * 3331) % (model.len() as u64);
            store.insert(&mut obj, off, b"..").unwrap();
            model.splice(off as usize..off as usize, *b"..");
        }
        (store, obj, model)
    }

    #[test]
    fn explicit_consolidation_restores_clustering() {
        let (mut store, mut obj, model) = shattered(Threshold::Fixed(1));
        let before = store.object_stats(&obj).unwrap();
        // Raise the threshold, then consolidate.
        obj.set_threshold(Threshold::Fixed(16));
        let stats = store.consolidate(&mut obj).unwrap();
        let after = store.object_stats(&obj).unwrap();
        assert!(stats.runs_merged > 0, "nothing merged");
        assert!(
            after.segments < before.segments / 2,
            "segments {} -> {}",
            before.segments,
            after.segments
        );
        store.verify_object(&obj).unwrap();
        assert_eq!(store.read_all(&obj).unwrap(), model, "content preserved");
    }

    #[test]
    fn consolidation_frees_what_it_replaces() {
        let (mut store, mut obj, _) = shattered(Threshold::Fixed(1));
        obj.set_threshold(Threshold::Fixed(8));
        let used_before = store.buddy().total_data_pages() - store.buddy().total_free_pages();
        store.consolidate(&mut obj).unwrap();
        let used_after = store.buddy().total_data_pages() - store.buddy().total_free_pages();
        assert!(
            used_after <= used_before,
            "consolidation may only reduce used pages ({used_before} -> {used_after})"
        );
        store.verify_object(&obj).unwrap();
    }

    #[test]
    fn safe_segments_are_left_alone() {
        let mut store = ObjectStore::in_memory(512, 4000);
        let data = vec![3u8; 100_000];
        let mut obj = store.create_with(&data, Some(100_000)).unwrap();
        let before = store.object_stats(&obj).unwrap();
        let stats = store.consolidate(&mut obj).unwrap();
        assert_eq!(stats.runs_merged, 0);
        let after = store.object_stats(&obj).unwrap();
        assert_eq!(before.segments, after.segments);
    }
}
