//! Index nodes of the positional tree (§4).
//!
//! "Each node N of the tree contains a sequence of (c\[i\], p\[i\])
//! pairs, one for each child of N, where p\[i\] is the page number of
//! the i-th child. The number of bytes stored in the subtree rooted at
//! p\[i\] is c\[i\]−c\[i−1\]." On disk the counts are cumulative exactly
//! as in the paper; in memory each entry carries its own span, which
//! makes splicing during inserts and deletes straightforward.

use crate::codec;
use crate::error::{Error, Result};

/// Magic tag identifying an index page ("EOSN").
pub const NODE_MAGIC: u32 = 0x454F_534E; // format-anchor: NODE_MAGIC
/// On-page header: magic (4) + level (2) + entry count (2).
pub const NODE_HEADER: usize = 8; // format-anchor: NODE_HEADER
/// On-page entry: cumulative count (8) + child pointer (8).
pub const ENTRY_SIZE: usize = 16; // format-anchor: NODE_ENTRY_SIZE

/// One `(count, pointer)` pair. `bytes` is the *span* of the child (the
/// paper's `c[i] − c[i−1]`); `ptr` is the child's page number — an index
/// page for levels > 1, the first page of a leaf segment for level 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Bytes stored below this child.
    pub bytes: u64,
    /// Page number of the child.
    pub ptr: u64,
}

/// An index node. `level` 1 means the children are leaf segments;
/// higher levels point to other index nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Distance to the leaves (≥ 1).
    pub level: u16,
    /// Child entries in byte order.
    pub entries: Vec<Entry>,
}

/// Maximum entries an index page of `page_size` bytes can hold.
#[inline]
pub fn node_capacity(page_size: usize) -> usize {
    (page_size - NODE_HEADER) / ENTRY_SIZE
}

/// Minimum entries for a non-root index node ("from half full to
/// completely full").
#[inline]
pub fn node_min(page_size: usize) -> usize {
    (node_capacity(page_size) / 2).max(2)
}

impl Node {
    /// An empty node at `level`.
    pub fn new(level: u16) -> Node {
        Node {
            level,
            entries: Vec::new(),
        }
    }

    /// Total bytes stored below this node (the rightmost cumulative
    /// count).
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Find the child holding byte `b` (0-based): the smallest `c[i]`
    /// with `c[i] > b`, per the §4.2 search. Returns the child index and
    /// `b` rebased to the child. `b` must be < [`Self::total_bytes`].
    pub fn find_child(&self, b: u64) -> (usize, u64) {
        let mut acc = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            if b < acc + e.bytes {
                return (i, b - acc);
            }
            acc += e.bytes;
        }
        // lint: allow(panic, reason = "documented contract: b < total_bytes(), callers validate; covered by a should_panic test")
        panic!("byte {b} beyond node total {acc}");
    }

    /// Byte offset (within this node) where child `i` starts.
    pub fn child_offset(&self, i: usize) -> u64 {
        self.entries.iter().take(i).map(|e| e.bytes).sum()
    }

    /// Serialize to a page image with cumulative counts (paper layout).
    pub fn to_page(&self, page_size: usize) -> Vec<u8> {
        assert!(
            self.entries.len() <= node_capacity(page_size),
            "node with {} entries exceeds page capacity {}",
            self.entries.len(),
            node_capacity(page_size)
        );
        let mut page = Vec::with_capacity(page_size);
        page.extend_from_slice(&NODE_MAGIC.to_le_bytes());
        page.extend_from_slice(&self.level.to_le_bytes());
        page.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        let mut acc = 0u64;
        for e in &self.entries {
            acc += e.bytes;
            page.extend_from_slice(&acc.to_le_bytes());
            page.extend_from_slice(&e.ptr.to_le_bytes());
        }
        page.resize(page_size, 0);
        page
    }

    /// Decode a page image written by [`Self::to_page`].
    pub fn from_page(page: &[u8]) -> Result<Node> {
        let corrupt = |reason: &str| Error::CorruptObject {
            reason: reason.to_string(),
        };
        if page.len() < NODE_HEADER {
            return Err(corrupt("index page too small"));
        }
        if codec::u32_at(page, 0, "index page magic")? != NODE_MAGIC {
            return Err(corrupt("bad index page magic"));
        }
        let level = codec::u16_at(page, 4, "index level")?;
        let n = codec::u16_at(page, 6, "index entry count")? as usize;
        if level == 0 {
            return Err(corrupt("index node with level 0"));
        }
        if NODE_HEADER + n * ENTRY_SIZE > page.len() {
            return Err(corrupt("entry count exceeds page"));
        }
        let mut entries = Vec::with_capacity(n);
        let mut prev = 0u64;
        for i in 0..n {
            let off = NODE_HEADER + i * ENTRY_SIZE;
            let c = codec::u64_at(page, off, "index entry count field")?;
            let ptr = codec::u64_at(page, off + 8, "index entry pointer")?;
            if c <= prev {
                return Err(corrupt("cumulative counts not strictly increasing"));
            }
            entries.push(Entry {
                bytes: c - prev,
                ptr,
            });
            prev = c;
        }
        Ok(Node { level, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(level: u16, spans: &[(u64, u64)]) -> Node {
        Node {
            level,
            entries: spans
                .iter()
                .map(|&(bytes, ptr)| Entry { bytes, ptr })
                .collect(),
        }
    }

    #[test]
    fn capacity_math() {
        assert_eq!(node_capacity(4096), 255);
        assert_eq!(node_capacity(100), 5);
        assert_eq!(node_min(4096), 127);
        assert_eq!(node_min(100), 2);
    }

    #[test]
    fn find_child_matches_paper_example() {
        // Fig 5.c root: c[0]=1020, c[1]=1820. Byte 1470 → child 1,
        // rebased to 1470−1020=450.
        let root = node(2, &[(1020, 10), (800, 20)]);
        assert_eq!(root.find_child(1470), (1, 450));
        // Fig 5.c right child: counts 280, 710, 800. Byte 450 → child 1,
        // rebased to 450−280=170.
        let child = node(1, &[(280, 30), (430, 40), (90, 50)]);
        assert_eq!(child.find_child(450), (1, 170));
        assert_eq!(child.find_child(0), (0, 0));
        assert_eq!(child.find_child(279), (0, 279));
        assert_eq!(child.find_child(280), (1, 0));
        assert_eq!(child.find_child(799), (2, 89));
    }

    #[test]
    #[should_panic(expected = "beyond node total")]
    fn find_child_past_end_panics() {
        node(1, &[(10, 1)]).find_child(10);
    }

    #[test]
    fn roundtrip_through_page() {
        let n = node(3, &[(123, 7), (1, 9), (u32::MAX as u64, 11)]);
        let page = n.to_page(256);
        assert_eq!(Node::from_page(&page).unwrap(), n);
    }

    #[test]
    fn cumulative_encoding_on_disk() {
        let n = node(1, &[(280, 30), (430, 40), (90, 50)]);
        let page = n.to_page(100);
        // First cumulative count is 280, second 710, third 800 — the
        // exact numbers of Fig 5.c.
        let c0 = u64::from_le_bytes(page[8..16].try_into().unwrap());
        let c1 = u64::from_le_bytes(page[24..32].try_into().unwrap());
        let c2 = u64::from_le_bytes(page[40..48].try_into().unwrap());
        assert_eq!((c0, c1, c2), (280, 710, 800));
    }

    #[test]
    fn from_page_rejects_garbage() {
        assert!(Node::from_page(&[0u8; 4]).is_err());
        let mut page = node(1, &[(5, 1)]).to_page(64);
        page[0] ^= 0xFF;
        assert!(Node::from_page(&page).is_err());
        // Non-increasing counts.
        let mut page = node(1, &[(5, 1), (6, 2)]).to_page(64);
        page[NODE_HEADER..NODE_HEADER + 8].copy_from_slice(&100u64.to_le_bytes());
        assert!(Node::from_page(&page).is_err());
    }

    #[test]
    fn totals_and_offsets() {
        let n = node(1, &[(100, 1), (250, 2), (3, 9)]);
        assert_eq!(n.total_bytes(), 353);
        assert_eq!(n.child_offset(0), 0);
        assert_eq!(n.child_offset(2), 350);
    }
}
