//! A common interface over large-object stores, so the benchmark
//! harness can drive EOS and the §2 baselines (Exodus, Starburst, WiSS,
//! System R) through one code path.

use eos_pager::IoStats;

use crate::error::Result;
use crate::object::LargeObject;
use crate::store::ObjectStore;

/// Everything a large-object store must offer for the \[Bili91b\]-style
/// comparison: the piece-wise operations of §1 plus cost introspection.
///
/// Stores that lack an operation (Starburst has no cheap insert/delete,
/// System R has no partial operations at all) return
/// [`Error::Unsupported`](crate::Error::Unsupported) — or implement it
/// with the copy costs their papers describe, which is what the
/// baselines crate does.
pub trait BlobStore {
    /// The client-held object handle (descriptor).
    type Handle;

    /// Short name for experiment tables ("eos", "exodus", …).
    fn name(&self) -> &'static str;

    /// Create an object holding `data`. With `known_size`, the eventual
    /// size is given to the allocator up front (§4.1).
    fn create(&mut self, data: &[u8], known_size: bool) -> Result<Self::Handle>;

    /// Object size in bytes.
    fn size(&self, h: &Self::Handle) -> u64;

    /// Read a byte range.
    fn read(&self, h: &Self::Handle, offset: u64, len: u64) -> Result<Vec<u8>>;

    /// Append bytes at the end.
    fn append(&mut self, h: &mut Self::Handle, data: &[u8]) -> Result<()>;

    /// Append a sequence of chunks as one multi-append operation (§4.1:
    /// "smaller but sizable chunks successively appended"). The default
    /// loops over [`Self::append`]; EOS overrides it with a single
    /// append session so the growth policy and final trim span the whole
    /// sequence, as the paper describes.
    fn append_many(&mut self, h: &mut Self::Handle, chunks: &[&[u8]]) -> Result<()> {
        for c in chunks {
            self.append(h, c)?;
        }
        Ok(())
    }

    /// Overwrite a byte range in place.
    fn replace(&mut self, h: &mut Self::Handle, offset: u64, data: &[u8]) -> Result<()>;

    /// Insert bytes at an arbitrary position.
    fn insert(&mut self, h: &mut Self::Handle, offset: u64, data: &[u8]) -> Result<()>;

    /// Delete a byte range.
    fn delete(&mut self, h: &mut Self::Handle, offset: u64, len: u64) -> Result<()>;

    /// Pages the object occupies (leaf + index), for utilization tables.
    fn storage_pages(&self, h: &Self::Handle) -> Result<u64>;

    /// Cumulative I/O counters of the underlying volume.
    fn io_stats(&self) -> IoStats;

    /// Zero the I/O counters.
    fn reset_io(&self);
}

impl BlobStore for ObjectStore {
    type Handle = LargeObject;

    fn name(&self) -> &'static str {
        "eos"
    }

    fn create(&mut self, data: &[u8], known_size: bool) -> Result<LargeObject> {
        let hint = known_size.then_some(data.len() as u64);
        self.create_with(data, hint)
    }

    fn size(&self, h: &LargeObject) -> u64 {
        h.size()
    }

    fn read(&self, h: &LargeObject, offset: u64, len: u64) -> Result<Vec<u8>> {
        ObjectStore::read(self, h, offset, len)
    }

    fn append(&mut self, h: &mut LargeObject, data: &[u8]) -> Result<()> {
        ObjectStore::append(self, h, data)
    }

    fn append_many(&mut self, h: &mut LargeObject, chunks: &[&[u8]]) -> Result<()> {
        let mut s = self.open_append(h, None)?;
        for c in chunks {
            s.append(c)?;
        }
        s.close()
    }

    fn replace(&mut self, h: &mut LargeObject, offset: u64, data: &[u8]) -> Result<()> {
        ObjectStore::replace(self, h, offset, data)
    }

    fn insert(&mut self, h: &mut LargeObject, offset: u64, data: &[u8]) -> Result<()> {
        ObjectStore::insert(self, h, offset, data)
    }

    fn delete(&mut self, h: &mut LargeObject, offset: u64, len: u64) -> Result<()> {
        ObjectStore::delete(self, h, offset, len)
    }

    fn storage_pages(&self, h: &LargeObject) -> Result<u64> {
        let s = self.object_stats(h)?;
        Ok(s.leaf_pages + s.index_pages)
    }

    fn io_stats(&self) -> IoStats {
        self.io_stats()
    }

    fn reset_io(&self) {
        self.reset_io_stats();
    }
}
