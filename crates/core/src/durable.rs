//! The durable write-ahead log (§4.5, made persistent).
//!
//! [`crate::wal::Wal`] implements the paper's *logical* logging and
//! idempotent redo/undo in memory; this module puts the log on the
//! volume itself so it survives a power loss. A store formatted with
//! [`crate::ObjectStore::create_durable`] reserves a **log region** of
//! pages right after the buddy spaces:
//!
//! ```text
//! page base+0   superblock slot A ─┐ dual slots, epoch-versioned,
//! page base+1   superblock slot B ─┘ CRC-sealed (torn-write safe)
//! page base+2 …          log half 0 ─┐ records live in one half; a
//! page base+2+H …        log half 1 ─┘ checkpoint flips to the other
//! ```
//!
//! Records are framed `[len u32][epoch u32][crc32 u32][payload]` and
//! terminated by a zero length word. The epoch stamp is the half's
//! occupancy epoch: after a flip the inactive half still holds
//! CRC-valid frames from its previous occupancy, and without the stamp
//! a crash that persists a new frame's leading pages but not its
//! terminator could let the scan run off the new frame onto a stale
//! one, replaying a phantom record. The scan cuts the log at the first
//! frame whose length overruns the half, whose epoch is not the active
//! half's, whose CRC (sealing epoch + payload) mismatches, or whose
//! payload fails to parse — that is the **torn tail**: the prefix
//! before it is exactly the set of records whose writes completed
//! before the power died, because every append goes to disk before
//! [`DurableWal::append`] returns (pages are written front to back, so
//! a power loss always leaves a record prefix plus at most one torn
//! frame).
//!
//! The **commit point** is the append (plus fsync) of a
//! [`WalEntry::Commit`] record carrying the serialized root descriptors
//! of every object the transaction touched and tombstones for the ones
//! it deleted. Everything else on the volume — leaf segments, shadowed
//! index pages, buddy directories — is reconstructible from those
//! descriptors, which is what restart recovery
//! ([`crate::ObjectStore::open_durable`]) does.
//!
//! Checkpointing uses the classic dual-half scheme: the live root map is
//! written as a single [`WalEntry::Checkpoint`] record at the start of
//! the *inactive* half (followed by any still-pending uncommitted
//! records, which must survive the flip), and then the superblock is
//! rewritten with a bumped epoch to point at it. A crash anywhere in
//! between leaves the old superblock — and therefore the old, complete
//! half — in force.

// The write-ordering contract this module anchors (rule L6, DESIGN.md
// §15). Roots first, then the classes whose safety hangs on them:
//
// durability-class: undo-image requires = none
// durability-class: shadow-data requires = none
// durability-class: commit-frame requires = shadow-data
// durability-class: superblock requires = shadow-data

use std::collections::BTreeMap;

use eos_obs::{Counter, Metrics, OpKind, PipeKind};
use eos_pager::{PageId, SharedVolume};

use crate::codec;
use crate::error::{Error, Result};
use crate::locks::TxnId;
use crate::wal::{put_bytes, LogRecord, Reader};

/// Magic tag of a log superblock ("EOSW").
const SB_MAGIC: u32 = 0x454F_5357; // format-anchor: SB_MAGIC
/// On-disk format version of the log region (v2 added the epoch stamp
/// to every frame header; v3 stamps every Op/Touch/Commit/Abort entry
/// with its transaction scope so concurrent scopes can commit and roll
/// back independently; v4 adds the `participants` count to commit
/// records so a commit split across WAL stripes resolves atomically —
/// a restart honors it only when every sibling part survived).
const SB_VERSION: u32 = 4; // format-anchor: SB_VERSION
/// Serialized superblock length: magic 4 + version 4 + epoch 8 +
/// active 1 + crc 4.
const SB_LEN: usize = 21; // format-anchor: SB_LEN
/// Frame header: length (4) + epoch (4) + CRC-32 (4).
const FRAME_HEADER: u64 = 12; // format-anchor: FRAME_HEADER
/// Smallest usable log region: 2 superblock pages + 1 page per half.
const MIN_LOG_PAGES: u64 = 4; // format-anchor: MIN_LOG_PAGES
/// Entry tag: logged §4 operation.
const ENTRY_TAG_OP: u8 = 1; // format-anchor: ENTRY_TAG_OP
/// Entry tag: structural update (no logical payload).
const ENTRY_TAG_TOUCH: u8 = 2; // format-anchor: ENTRY_TAG_TOUCH
/// Entry tag: transaction commit point.
const ENTRY_TAG_COMMIT: u8 = 3; // format-anchor: ENTRY_TAG_COMMIT
/// Entry tag: explicit rollback.
const ENTRY_TAG_ABORT: u8 = 4; // format-anchor: ENTRY_TAG_ABORT
/// Entry tag: checkpoint (complete committed root map).
const ENTRY_TAG_CHECKPOINT: u8 = 5; // format-anchor: ENTRY_TAG_CHECKPOINT

// ---- CRC-32 (IEEE 802.3) ------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

fn crc32_feed(mut c: u32, data: &[u8]) -> u32 {
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 (IEEE) of `data` — the checksum sealing every log record and
/// superblock.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_feed(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// CRC of a log frame: seals the epoch stamp *and* the payload, so a
/// frame whose epoch field was damaged cannot validate either.
fn frame_crc(epoch: u32, payload: &[u8]) -> u32 {
    crc32_feed(crc32_feed(0xFFFF_FFFF, &epoch.to_le_bytes()), payload) ^ 0xFFFF_FFFF
}

// ---- log entries --------------------------------------------------------

/// One durable log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEntry {
    /// A logged §4 operation: the logical record (operation +
    /// parameters, as the paper requires since leaf segments carry no
    /// control information), the object's serialized root *after* the
    /// operation, and — for `replace` only, which writes leaf pages in
    /// place — the physical before-images of every page it overwrites,
    /// so an uncommitted replace can be rolled back byte-exactly no
    /// matter where in the operation the power died.
    Op {
        /// Transaction scope the operation belongs to.
        txn: TxnId,
        /// The logical operation record (assigns the LSN).
        record: LogRecord,
        /// Serialized [`crate::LargeObject`] descriptor after the op.
        root_after: Vec<u8>,
        /// `(first_page, page_bytes)` before-images of the in-place
        /// writes; empty for the shadowed operations.
        page_images: Vec<(PageId, Vec<u8>)>,
    },
    /// A structural update with no logical payload worth logging —
    /// compaction, consolidation, object deletion. Shadowing makes it
    /// invisible until commit; the entry exists to stamp the LSN and
    /// carry the new root for the commit record.
    Touch {
        /// Transaction scope the update belongs to.
        txn: TxnId,
        /// LSN of the update.
        lsn: u64,
        /// Object the update applied to.
        object: u64,
        /// Serialized descriptor after the update.
        root_after: Vec<u8>,
    },
    /// The commit point of a transaction scope: the descriptors of
    /// every object the scope touched and tombstones for the ones it
    /// deleted. Once this record is on stable storage the transaction
    /// is durable; until then it never happened. Covers only the
    /// entries stamped with the same `txn` — entries of other open
    /// scopes remain pending.
    Commit {
        /// Transaction scope this record commits.
        txn: TxnId,
        /// LSN of the commit point itself (freshly allocated, strictly
        /// ordered across scopes — the tiebreak when recovery merges
        /// WAL stripes).
        lsn: u64,
        /// How many WAL stripes carry a part of this commit. `1` is
        /// the common self-contained case; for a cross-stripe commit
        /// each stripe holds one part and a restart honors the commit
        /// only when all `participants` parts survived — otherwise the
        /// scope is presumed aborted.
        participants: u32,
        /// `(object id, serialized descriptor)` for each touched object.
        touched: Vec<(u64, Vec<u8>)>,
        /// Ids of objects the transaction deleted.
        deleted: Vec<u64>,
    },
    /// An explicit rollback: the records of this scope are void (their
    /// effects were already reversed by the time this is written).
    Abort {
        /// Transaction scope this record voids.
        txn: TxnId,
        /// Highest LSN the aborted scope logged.
        lsn: u64,
    },
    /// A checkpoint: the complete committed root map at the moment the
    /// log flipped halves. Starts every half.
    Checkpoint {
        /// Highest LSN assigned before the checkpoint.
        max_lsn: u64,
        /// The full `(object id, serialized descriptor)` map.
        roots: Vec<(u64, Vec<u8>)>,
    },
}

fn put_roots(out: &mut Vec<u8>, roots: &[(u64, Vec<u8>)]) {
    out.extend_from_slice(&(roots.len() as u32).to_le_bytes());
    for (id, desc) in roots {
        out.extend_from_slice(&id.to_le_bytes());
        put_bytes(out, desc);
    }
}

fn read_roots(r: &mut Reader<'_>) -> Result<Vec<(u64, Vec<u8>)>> {
    let n = r.u32()? as usize;
    let mut roots = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u64()?;
        let desc = r.bytes()?;
        roots.push((id, desc));
    }
    Ok(roots)
}

impl WalEntry {
    /// Serialize to the frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalEntry::Op {
                txn,
                record,
                root_after,
                page_images,
            } => {
                out.push(ENTRY_TAG_OP);
                out.extend_from_slice(&txn.to_le_bytes());
                put_bytes(&mut out, &record.to_bytes());
                put_bytes(&mut out, root_after);
                out.extend_from_slice(&(page_images.len() as u32).to_le_bytes());
                for (page, bytes) in page_images {
                    out.extend_from_slice(&page.to_le_bytes());
                    put_bytes(&mut out, bytes);
                }
            }
            WalEntry::Touch {
                txn,
                lsn,
                object,
                root_after,
            } => {
                out.push(ENTRY_TAG_TOUCH);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&lsn.to_le_bytes());
                out.extend_from_slice(&object.to_le_bytes());
                put_bytes(&mut out, root_after);
            }
            WalEntry::Commit {
                txn,
                lsn,
                participants,
                touched,
                deleted,
            } => {
                out.push(ENTRY_TAG_COMMIT);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&lsn.to_le_bytes());
                out.extend_from_slice(&participants.to_le_bytes());
                put_roots(&mut out, touched);
                out.extend_from_slice(&(deleted.len() as u32).to_le_bytes());
                for id in deleted {
                    out.extend_from_slice(&id.to_le_bytes());
                }
            }
            WalEntry::Abort { txn, lsn } => {
                out.push(ENTRY_TAG_ABORT);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&lsn.to_le_bytes());
            }
            WalEntry::Checkpoint { max_lsn, roots } => {
                out.push(ENTRY_TAG_CHECKPOINT);
                out.extend_from_slice(&max_lsn.to_le_bytes());
                put_roots(&mut out, roots);
            }
        }
        out
    }

    /// Decode a frame payload written by [`Self::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<WalEntry> {
        let mut r = Reader { data, at: 0 };
        let tag = r.take(1)?[0];
        let entry = match tag {
            ENTRY_TAG_OP => {
                let txn = r.u64()?;
                let body = r.bytes()?;
                let mut rr = Reader { data: &body, at: 0 };
                let record = LogRecord::read_from(&mut rr)?;
                let root_after = r.bytes()?;
                let n = r.u32()? as usize;
                let mut page_images = Vec::with_capacity(n);
                for _ in 0..n {
                    let page = r.u64()?;
                    let bytes = r.bytes()?;
                    page_images.push((page, bytes));
                }
                WalEntry::Op {
                    txn,
                    record,
                    root_after,
                    page_images,
                }
            }
            ENTRY_TAG_TOUCH => WalEntry::Touch {
                txn: r.u64()?,
                lsn: r.u64()?,
                object: r.u64()?,
                root_after: r.bytes()?,
            },
            ENTRY_TAG_COMMIT => {
                let txn = r.u64()?;
                let lsn = r.u64()?;
                let participants = r.u32()?;
                let touched = read_roots(&mut r)?;
                let n = r.u32()? as usize;
                let mut deleted = Vec::with_capacity(n);
                for _ in 0..n {
                    deleted.push(r.u64()?);
                }
                WalEntry::Commit {
                    txn,
                    lsn,
                    participants,
                    touched,
                    deleted,
                }
            }
            ENTRY_TAG_ABORT => WalEntry::Abort {
                txn: r.u64()?,
                lsn: r.u64()?,
            },
            ENTRY_TAG_CHECKPOINT => WalEntry::Checkpoint {
                max_lsn: r.u64()?,
                roots: read_roots(&mut r)?,
            },
            _ => {
                return Err(Error::CorruptObject {
                    reason: format!("unknown log entry tag {tag}"),
                })
            }
        };
        Ok(entry)
    }

    /// The LSN this entry carries (the record LSN for ops, the scope's
    /// highest LSN otherwise).
    pub fn lsn(&self) -> u64 {
        match self {
            WalEntry::Op { record, .. } => record.lsn,
            WalEntry::Touch { lsn, .. } => *lsn,
            WalEntry::Commit { lsn, .. } => *lsn,
            WalEntry::Abort { lsn, .. } => *lsn,
            WalEntry::Checkpoint { max_lsn, .. } => *max_lsn,
        }
    }

    /// The transaction scope this entry belongs to; `None` for
    /// checkpoints, which are scope-independent.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            WalEntry::Op { txn, .. }
            | WalEntry::Touch { txn, .. }
            | WalEntry::Commit { txn, .. }
            | WalEntry::Abort { txn, .. } => Some(*txn),
            WalEntry::Checkpoint { .. } => None,
        }
    }
}

// ---- superblock ---------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Superblock {
    epoch: u64,
    active: u8,
}

impl Superblock {
    fn to_page(self, page_size: usize) -> Vec<u8> {
        let mut page = Vec::with_capacity(page_size);
        page.extend_from_slice(&SB_MAGIC.to_le_bytes());
        page.extend_from_slice(&SB_VERSION.to_le_bytes());
        page.extend_from_slice(&self.epoch.to_le_bytes());
        page.push(self.active);
        let crc = crc32(&page); // seals exactly the 17 bytes above
        page.extend_from_slice(&crc.to_le_bytes());
        page.resize(page_size, 0);
        page
    }

    fn from_page(page: &[u8]) -> Option<Superblock> {
        if page.len() < SB_LEN {
            return None;
        }
        if codec::u32_at(page, 0, "superblock magic").ok()? != SB_MAGIC {
            return None;
        }
        if codec::u32_at(page, 4, "superblock version").ok()? != SB_VERSION {
            return None;
        }
        let sealed = page.get(0..SB_LEN - 4)?;
        if crc32(sealed) != codec::u32_at(page, SB_LEN - 4, "superblock crc").ok()? {
            return None;
        }
        let active = *page.get(16)?;
        if active > 1 {
            return None;
        }
        Some(Superblock {
            epoch: codec::u64_at(page, 8, "superblock epoch").ok()?,
            active,
        })
    }
}

// ---- the durable log ----------------------------------------------------

/// Pre-resolved observability handles: counters record through pure
/// atomics, so nothing here can violate the latch discipline no matter
/// where in the commit path it fires. `metrics` is kept to open the
/// `wal.checkpoint` span.
struct WalObs {
    metrics: Metrics,
    frames: Counter,
    bytes: Counter,
    syncs: Counter,
    checkpoints: Counter,
}

/// The persistent write-ahead log of a durable [`crate::ObjectStore`].
/// See the [module docs](self) for the on-disk layout and protocol.
pub struct DurableWal {
    volume: SharedVolume,
    base: PageId,
    half_pages: u64,
    active: u8,
    epoch: u64,
    /// Which superblock slot holds the epoch currently in force. A
    /// checkpoint always publishes to the *other* slot, so a torn
    /// superblock write leaves this one intact.
    sb_slot: u8,
    /// Byte offset within the active half where the next frame goes.
    head: u64,
    next_lsn: u64,
    /// Committed object id → serialized root descriptor.
    committed: BTreeMap<u64, Vec<u8>>,
    /// Object id → LSN of the commit that last set (or tombstoned) its
    /// root. Guards the fold: a held-out part of an older cross-stripe
    /// commit resolved late must not clobber a newer committed root.
    committed_lsn: BTreeMap<u64, u64>,
    /// Op/Touch entries since the last commit/abort — the uncommitted
    /// tail a restart must roll back.
    pending: Vec<WalEntry>,
    /// Every logical op record seen (scan + appends), in LSN order —
    /// the view `eos-check` audits.
    ops: Vec<LogRecord>,
    /// Highest object id mentioned anywhere in the log.
    max_object_id: u64,
    records_scanned: u64,
    torn_tail: bool,
    checkpoints_taken: u64,
    /// Which WAL stripe this log serves (0 for an unstriped log) —
    /// stamped onto trace spans so per-stripe forces are attributable.
    stripe: u64,
    /// Attached by [`Self::set_metrics`]; `None` until the owning store
    /// wires its metrics domain through.
    obs: Option<WalObs>,
}

impl DurableWal {
    /// Resolve this log's instrument handles against `metrics`:
    /// `wal.frames` / `wal.bytes` (appended payloads), `wal.syncs`
    /// (commit barriers), `wal.checkpoints` (half-flips), plus the
    /// `wal.checkpoint` span around each flip.
    pub(crate) fn set_metrics(&mut self, metrics: &Metrics) {
        self.obs = Some(WalObs {
            metrics: metrics.clone(),
            frames: metrics.counter("wal.frames"),
            bytes: metrics.counter("wal.bytes"),
            syncs: metrics.counter("wal.syncs"),
            checkpoints: metrics.counter("wal.checkpoints"),
        });
    }

    fn half_bytes(&self) -> u64 {
        self.half_pages * self.volume.page_size() as u64
    }

    fn half_base(&self, half: u8) -> PageId {
        self.base + 2 + u64::from(half) * self.half_pages
    }

    fn check_region(volume: &SharedVolume, base: PageId, pages: u64) -> Result<u64> {
        if pages < MIN_LOG_PAGES || base + pages > volume.num_pages() {
            return Err(Error::Unsupported {
                op: "durable_wal",
                reason: format!(
                    "log region [{base}, +{pages}) needs ≥ {MIN_LOG_PAGES} pages inside \
                     the {}-page volume",
                    volume.num_pages()
                ),
            });
        }
        Ok((pages - 2) / 2)
    }

    /// Format a fresh, empty log region of `pages` pages starting at
    /// volume page `base`.
    pub fn format(volume: SharedVolume, base: PageId, pages: u64) -> Result<DurableWal> {
        let half_pages = Self::check_region(&volume, base, pages)?;
        let ps = volume.page_size();
        // Terminate half 0 (a zero length word) before pointing the
        // superblock at it.
        // durability: mutates(shadow-data)
        volume.write_pages(base + 2, &vec![0u8; ps])?;
        let sb = Superblock {
            epoch: 1,
            active: 0,
        };
        // lint: allow(durability, reason = "formatting a virgin region: no live slot or committed state to preserve, and the caller cannot observe the store before the sync below")
        volume.write_pages(base, &sb.to_page(ps))?; // durability: mutates(superblock)
                                                    // durability: mutates(shadow-data)
        volume.write_pages(base + 1, &vec![0u8; ps])?;
        // durability: seals(shadow-data, superblock)
        volume.sync()?;
        Ok(DurableWal {
            volume,
            base,
            half_pages,
            active: 0,
            epoch: 1,
            sb_slot: 0,
            head: 0,
            next_lsn: 1,
            committed: BTreeMap::new(),
            committed_lsn: BTreeMap::new(),
            pending: Vec::new(),
            ops: Vec::new(),
            max_object_id: 0,
            records_scanned: 0,
            torn_tail: false,
            checkpoints_taken: 0,
            stripe: 0,
            obs: None,
        })
    }

    /// Attach to an existing log region: pick the valid superblock with
    /// the highest epoch (a torn superblock write leaves the other slot
    /// in force) and scan its half up to the torn tail. A *virgin*
    /// region — both superblock pages all zero — is formatted fresh; a
    /// region where neither slot validates but bytes are present is
    /// refused, so detectable corruption never silently reformats away
    /// committed state.
    pub fn attach(volume: SharedVolume, base: PageId, pages: u64) -> Result<DurableWal> {
        let half_pages = Self::check_region(&volume, base, pages)?;
        let slot0 = volume.read_pages(base, 1)?;
        let slot1 = volume.read_pages(base + 1, 1)?;
        let best = match (Superblock::from_page(&slot0), Superblock::from_page(&slot1)) {
            (Some(a), Some(b)) => Some(if a.epoch >= b.epoch { (a, 0) } else { (b, 1) }),
            (Some(a), None) => Some((a, 0)),
            (None, Some(b)) => Some((b, 1)),
            (None, None) => None,
        };
        let Some((sb, slot)) = best else {
            let virgin = slot0.iter().all(|&b| b == 0) && slot1.iter().all(|&b| b == 0);
            if virgin {
                return Self::format(volume, base, pages);
            }
            return Err(Error::CorruptObject {
                reason: format!(
                    "log region at page {base}: neither superblock slot validates \
                     and the region is not virgin — refusing to reformat \
                     (run explicit salvage)"
                ),
            });
        };
        let mut wal = DurableWal {
            volume,
            base,
            half_pages,
            active: sb.active,
            epoch: sb.epoch,
            sb_slot: slot,
            head: 0,
            next_lsn: 1,
            committed: BTreeMap::new(),
            committed_lsn: BTreeMap::new(),
            pending: Vec::new(),
            ops: Vec::new(),
            max_object_id: 0,
            records_scanned: 0,
            torn_tail: false,
            checkpoints_taken: 0,
            stripe: 0,
            obs: None,
        };
        wal.scan()?;
        Ok(wal)
    }

    /// Replay the active half into the in-memory state, cutting at the
    /// torn tail.
    fn scan(&mut self) -> Result<()> {
        let half = self
            .volume
            .read_pages(self.half_base(self.active), self.half_pages)?;
        let limit = half.len() as u64;
        let mut at = 0u64;
        loop {
            if at + FRAME_HEADER > limit {
                break; // full to the brim; still a clean prefix
            }
            let base = at as usize;
            let len = u64::from(codec::u32_at(&half, base, "frame length")?);
            let epoch = codec::u32_at(&half, base + 4, "frame epoch")?;
            let crc = codec::u32_at(&half, base + 8, "frame crc")?;
            if len == 0 {
                break; // clean tail
            }
            if epoch != self.epoch as u32 {
                // A CRC-valid frame left over from this half's previous
                // occupancy — reachable only when the current occupant's
                // terminator was lost to a partial persist.
                self.torn_tail = true;
                break;
            }
            if at + FRAME_HEADER + len > limit {
                self.torn_tail = true;
                break;
            }
            let Some(payload) =
                half.get((at + FRAME_HEADER) as usize..(at + FRAME_HEADER + len) as usize)
            else {
                self.torn_tail = true;
                break;
            };
            if frame_crc(epoch, payload) != crc {
                self.torn_tail = true;
                break;
            }
            let Ok(entry) = WalEntry::from_bytes(payload) else {
                self.torn_tail = true;
                break;
            };
            self.absorb(entry);
            self.records_scanned += 1;
            at += FRAME_HEADER + len;
        }
        self.head = at;
        Ok(())
    }

    /// Fold one entry into the in-memory state — shared by the scan and
    /// by live appends, so a reopened log always agrees with the one
    /// that wrote it.
    fn absorb(&mut self, entry: WalEntry) {
        self.next_lsn = self.next_lsn.max(entry.lsn() + 1);
        match entry {
            WalEntry::Op { .. } | WalEntry::Touch { .. } => {
                if let WalEntry::Op { ref record, .. } = entry {
                    self.ops.push(record.clone());
                    self.max_object_id = self.max_object_id.max(record.object);
                }
                if let WalEntry::Touch { object, .. } = entry {
                    self.max_object_id = self.max_object_id.max(object);
                }
                self.pending.push(entry);
            }
            WalEntry::Commit { participants, .. } if participants > 1 => {
                // One part of a cross-stripe commit: its roots become
                // true only once every sibling part is on its stripe,
                // so the part is *held* pending until
                // [`Self::resolve_txn`] (all parts durable) or
                // [`Self::drop_txn`] / an Abort voids it.
                self.pending.push(entry);
            }
            WalEntry::Commit {
                txn,
                lsn,
                touched,
                deleted,
                ..
            } => self.apply_commit(txn, lsn, touched, deleted),
            WalEntry::Abort { txn, .. } => self.pending.retain(|e| e.txn() != Some(txn)),
            WalEntry::Checkpoint { max_lsn, roots } => {
                self.committed = roots
                    .into_iter()
                    .inspect(|(id, _)| self.max_object_id = self.max_object_id.max(*id))
                    .collect();
                self.committed_lsn = self.committed.keys().map(|&id| (id, max_lsn)).collect();
                self.pending.clear();
            }
        }
    }

    /// Fold one commit's root updates into the committed map, guarded
    /// by commit LSN: an older cross-stripe commit resolved after a
    /// newer commit of the same object must not clobber the newer
    /// root. Live appends are monotonic, so the guard only bites
    /// during the attach-time stripe merge. Resolves every pending
    /// entry of the scope.
    fn apply_commit(
        &mut self,
        txn: TxnId,
        lsn: u64,
        touched: Vec<(u64, Vec<u8>)>,
        deleted: Vec<u64>,
    ) {
        for (id, desc) in touched {
            self.max_object_id = self.max_object_id.max(id);
            if self.committed_lsn.get(&id).is_none_or(|&l| lsn >= l) {
                self.committed.insert(id, desc);
                self.committed_lsn.insert(id, lsn);
            }
        }
        for id in deleted {
            self.max_object_id = self.max_object_id.max(id);
            if self.committed_lsn.get(&id).is_none_or(|&l| lsn >= l) {
                self.committed.remove(&id);
                self.committed_lsn.insert(id, lsn);
            }
        }
        // Only this scope's entries are resolved; concurrent scopes
        // stay pending until their own commit/abort.
        self.pending.retain(|e| e.txn() != Some(txn));
    }

    /// Resolve a held cross-stripe commit part: fold its roots into
    /// the committed map and drop every pending entry of the scope.
    /// Called once every sibling part is durable on its own stripe.
    pub(crate) fn resolve_txn(&mut self, txn: TxnId) {
        let at = self
            .pending
            .iter()
            .position(|e| matches!(e, WalEntry::Commit { txn: t, .. } if *t == txn));
        if let Some(at) = at {
            if let WalEntry::Commit {
                lsn,
                touched,
                deleted,
                ..
            } = self.pending.remove(at)
            {
                self.apply_commit(txn, lsn, touched, deleted);
            }
        }
    }

    /// Void the held commit part of `txn` without touching its Op or
    /// Touch entries — presumed abort for a cross-stripe commit that
    /// never completed on every stripe; the surviving Ops keep their
    /// before-images for the recovery rollback pass.
    pub(crate) fn drop_txn(&mut self, txn: TxnId) {
        self.pending
            .retain(|e| !matches!(e, WalEntry::Commit { txn: t, .. } if *t == txn));
    }

    /// The held cross-stripe commit parts, as `(txn, participants)`,
    /// for the attach-time all-parts-present check.
    pub(crate) fn unresolved_commits(&self) -> Vec<(TxnId, u32)> {
        self.pending
            .iter()
            .filter_map(|e| match e {
                WalEntry::Commit {
                    txn, participants, ..
                } => Some((*txn, *participants)),
                _ => None,
            })
            .collect()
    }

    /// Append one entry durably: the frame (and a fresh terminator
    /// behind it) reaches the volume before this returns. Flips to a
    /// checkpoint automatically when the active half is full.
    pub fn append(&mut self, entry: WalEntry) -> Result<()> {
        let payload = entry.to_bytes();
        let frame = FRAME_HEADER + payload.len() as u64;
        if self.head + frame + FRAME_HEADER > self.half_bytes() {
            self.checkpoint()?;
            if self.head + frame + FRAME_HEADER > self.half_bytes() {
                return Err(Error::LogFull {
                    needed: frame,
                    available: self.half_bytes().saturating_sub(self.head + FRAME_HEADER),
                });
            }
        }
        self.write_frame(&payload)?;
        if let Some(o) = &self.obs {
            // One instant per appended frame on the pipeline timeline,
            // stamped with the owning scope (0 for checkpoints).
            o.metrics
                .pipe_event(PipeKind::Instant, "wal.frame", entry.txn().unwrap_or(0), 0);
        }
        self.absorb(entry);
        Ok(())
    }

    /// Write `payload` as a frame at `head` of the active half,
    /// followed by a zero terminator, and advance `head`.
    fn write_frame(&mut self, payload: &[u8]) -> Result<()> {
        let ps = self.volume.page_size() as u64;
        let frame = FRAME_HEADER + payload.len() as u64;
        let end = self.head + frame + FRAME_HEADER; // include terminator
        let first_page = self.head / ps;
        let last_page = (end - 1) / ps;
        let npages = last_page - first_page + 1;
        // Build the buffer front to back: the committed bytes sharing
        // the first page, then header, payload, and zeros out to the
        // page boundary. Truncating the existing page at `head` drops
        // stale bytes past the old terminator, which must not survive
        // as a plausible frame; the zeros `resize` appends after the
        // payload are the new terminator.
        let within = (self.head - first_page * ps) as usize;
        let mut buf = if within > 0 {
            let mut existing = self
                .volume
                .read_pages(self.half_base(self.active) + first_page, 1)?;
            existing.truncate(within);
            existing
        } else {
            Vec::with_capacity((npages * ps) as usize)
        };
        let epoch = self.epoch as u32;
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&epoch.to_le_bytes());
        buf.extend_from_slice(&frame_crc(epoch, payload).to_le_bytes());
        buf.extend_from_slice(payload);
        buf.resize((npages * ps) as usize, 0);
        self.volume
            .write_pages(self.half_base(self.active) + first_page, &buf)?;
        self.head += frame;
        if let Some(obs) = &self.obs {
            obs.frames.inc();
            obs.bytes.add(payload.len() as u64);
        }
        Ok(())
    }

    /// Flip halves: write the committed root map as a checkpoint record
    /// at the start of the inactive half, re-append any uncommitted
    /// pending records behind it (an open scope must survive the flip),
    /// then publish the new half by bumping the superblock epoch. A
    /// crash at any point leaves one complete, consistent half in
    /// force.
    pub fn checkpoint(&mut self) -> Result<()> {
        let _span = self
            .obs
            .as_ref()
            .map(|o| o.metrics.span(OpKind::WalCheckpoint, &self.volume));
        // The half-flip on the pipeline timeline (no owning scope).
        let _pspan = self
            .obs
            .as_ref()
            .map(|o| o.metrics.pipe_span("wal.checkpoint", 0, 0));
        let roots: Vec<(u64, Vec<u8>)> = self
            .committed
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        let cp = WalEntry::Checkpoint {
            max_lsn: self.next_lsn - 1,
            roots,
        };
        let carry: Vec<Vec<u8>> = self.pending.iter().map(WalEntry::to_bytes).collect();

        let old_active = self.active;
        let old_head = self.head;
        let old_epoch = self.epoch;
        self.active = 1 - self.active;
        self.head = 0;
        // Frames in the new half carry the epoch under which the half
        // will be scanned, distinguishing them from any CRC-valid
        // leftovers of its previous occupancy.
        self.epoch += 1;
        let mut write_all = || -> Result<()> {
            let cp_bytes = cp.to_bytes();
            let mut need = FRAME_HEADER + cp_bytes.len() as u64;
            for c in &carry {
                need += FRAME_HEADER + c.len() as u64;
            }
            if need + FRAME_HEADER > self.half_bytes() {
                return Err(Error::LogFull {
                    needed: need,
                    available: self.half_bytes() - FRAME_HEADER,
                });
            }
            // Checkpoint + carried frames land on the *inactive* half —
            // fresh-extent writes in the shadow paradigm.
            // durability: mutates(shadow-data)
            self.write_frame(&cp_bytes)?;
            for c in &carry {
                // durability: mutates(shadow-data)
                self.write_frame(c)?;
            }
            Ok(())
        };
        if let Err(e) = write_all() {
            // Nothing published: the old half is still the log.
            self.active = old_active;
            self.head = old_head;
            self.epoch = old_epoch;
            return Err(e);
        }
        // Barrier: the new half must be stable before it is published.
        // durability: seals(shadow-data)
        self.volume.sync()?;
        let sb = Superblock {
            epoch: self.epoch,
            active: self.active,
        };
        // Always publish into the slot *not* holding the epoch in
        // force, so a torn superblock write loses at most this
        // checkpoint, never the log it supersedes.
        let slot = 1 - self.sb_slot;
        // durability: mutates(superblock)
        self.volume.write_pages(
            self.base + u64::from(slot),
            &sb.to_page(self.volume.page_size()),
        )?;
        // durability: seals(superblock)
        self.volume.sync()?;
        self.sb_slot = slot;
        self.checkpoints_taken += 1;
        if let Some(obs) = &self.obs {
            obs.checkpoints.inc();
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage — the commit
    /// barrier.
    pub fn sync(&self) -> Result<()> {
        let _force = self
            .obs
            .as_ref()
            .map(|o| o.metrics.pipe_span("wal.force", self.stripe, 0));
        // Lockdep tripwire at the WAL's own barrier: catches a latch
        // held across the force even when the test volume is a custom
        // `Volume` impl that never reaches the Mem/File bottom hooks.
        parking_lot::on_volume_io("wal.sync");
        self.volume.sync()?;
        if let Some(obs) = &self.obs {
            obs.syncs.inc();
        }
        Ok(())
    }

    /// Tag this log with the stripe index it serves, so trace spans
    /// distinguish concurrent per-stripe forces.
    pub(crate) fn set_stripe(&mut self, stripe: u64) {
        self.stripe = stripe;
    }

    /// Hand out the next LSN (monotonically increasing, starting at 1).
    pub fn allocate_lsn(&mut self) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        lsn
    }

    /// The highest LSN handed out so far; 0 if none.
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Committed object id → serialized root descriptor.
    pub fn committed(&self) -> &BTreeMap<u64, Vec<u8>> {
        &self.committed
    }

    /// The uncommitted tail: Op/Touch entries not covered by a commit,
    /// across all open scopes, in log order.
    pub fn pending(&self) -> &[WalEntry] {
        &self.pending
    }

    /// The uncommitted entries of one scope, in log order.
    pub fn pending_for(&self, txn: TxnId) -> impl DoubleEndedIterator<Item = &WalEntry> {
        self.pending.iter().filter(move |e| e.txn() == Some(txn))
    }

    /// Drop the uncommitted tail from the in-memory view (recovery
    /// calls this after rolling it back; the next checkpoint drops it
    /// from disk too).
    pub(crate) fn clear_pending(&mut self) {
        self.pending.clear();
    }

    /// Every logical op record seen, in log order — the same view the
    /// in-memory [`crate::wal::Wal`] offers, for `eos-check`.
    pub fn records(&self) -> &[LogRecord] {
        &self.ops
    }

    /// Highest object id mentioned anywhere in the log.
    pub fn max_object_id(&self) -> u64 {
        self.max_object_id
    }

    /// Number of records the attach scan replayed.
    pub fn records_scanned(&self) -> u64 {
        self.records_scanned
    }

    /// Did the attach scan cut a torn tail?
    pub fn torn_tail(&self) -> bool {
        self.torn_tail
    }

    /// Checkpoints taken since attach/format.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// Bytes of the active half already used by records.
    pub fn bytes_used(&self) -> u64 {
        self.head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::LogOp;
    use eos_pager::{DiskProfile, MemVolume};

    fn vol(pages: u64) -> SharedVolume {
        MemVolume::with_profile(256, pages, DiskProfile::FREE).shared()
    }

    fn op_entry(lsn: u64, object: u64, bytes: &[u8]) -> WalEntry {
        WalEntry::Op {
            txn: 1,
            record: LogRecord {
                lsn,
                object,
                op: LogOp::Append {
                    bytes: bytes.to_vec(),
                },
            },
            root_after: vec![1, 2, 3],
            page_images: vec![],
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn entries_roundtrip() {
        let entries = [
            op_entry(7, 3, b"hello"),
            WalEntry::Op {
                txn: 42,
                record: LogRecord {
                    lsn: 8,
                    object: 3,
                    op: LogOp::Replace {
                        offset: 10,
                        before: vec![0; 4],
                        after: vec![1; 4],
                    },
                },
                root_after: vec![9; 40],
                page_images: vec![(12, vec![5; 256]), (19, vec![6; 512])],
            },
            WalEntry::Touch {
                txn: 42,
                lsn: 9,
                object: 4,
                root_after: vec![1],
            },
            WalEntry::Commit {
                txn: 42,
                lsn: 9,
                participants: 2,
                touched: vec![(3, vec![9; 40]), (4, vec![1])],
                deleted: vec![17],
            },
            WalEntry::Abort { txn: 42, lsn: 11 },
            WalEntry::Checkpoint {
                max_lsn: 11,
                roots: vec![(3, vec![9; 40])],
            },
        ];
        for e in &entries {
            let bytes = e.to_bytes();
            assert_eq!(&WalEntry::from_bytes(&bytes).unwrap(), e);
        }
    }

    #[test]
    fn append_scan_roundtrip_with_commit() {
        let v = vol(64);
        {
            let mut wal = DurableWal::format(v.clone(), 0, 64).unwrap();
            wal.append(op_entry(1, 5, b"aaa")).unwrap();
            wal.append(op_entry(2, 5, b"bbb")).unwrap();
            wal.append(WalEntry::Commit {
                txn: 1,
                lsn: 2,
                participants: 1,
                touched: vec![(5, vec![1, 2, 3])],
                deleted: vec![],
            })
            .unwrap();
            wal.append(op_entry(3, 6, b"uncommitted")).unwrap();
        }
        let wal = DurableWal::attach(v, 0, 64).unwrap();
        assert_eq!(wal.records_scanned(), 4);
        assert!(!wal.torn_tail());
        assert_eq!(wal.last_lsn(), 3);
        assert_eq!(wal.committed().len(), 1);
        assert_eq!(wal.committed()[&5], vec![1, 2, 3]);
        assert_eq!(wal.pending().len(), 1, "op 3 is the uncommitted tail");
        assert_eq!(wal.records().len(), 3);
        assert_eq!(wal.max_object_id(), 6);
    }

    fn op_entry_for(txn: TxnId, lsn: u64, object: u64, bytes: &[u8]) -> WalEntry {
        WalEntry::Op {
            txn,
            record: LogRecord {
                lsn,
                object,
                op: LogOp::Append {
                    bytes: bytes.to_vec(),
                },
            },
            root_after: vec![1, 2, 3],
            page_images: vec![],
        }
    }

    #[test]
    fn commit_absorbs_only_its_own_scope() {
        let v = vol(64);
        {
            let mut wal = DurableWal::format(v.clone(), 0, 64).unwrap();
            wal.append(op_entry_for(1, 1, 5, b"aaa")).unwrap();
            wal.append(op_entry_for(2, 2, 6, b"bbb")).unwrap();
            wal.append(op_entry_for(1, 3, 5, b"ccc")).unwrap();
            wal.append(WalEntry::Commit {
                txn: 1,
                lsn: 3,
                participants: 1,
                touched: vec![(5, vec![1])],
                deleted: vec![],
            })
            .unwrap();
            // Scope 1's entries are absorbed; scope 2's stay pending.
            assert_eq!(wal.pending_for(1).count(), 0);
            assert_eq!(wal.pending_for(2).count(), 1);
            assert_eq!(wal.pending().len(), 1);
        }
        // A restart scan preserves the split: scope 2 is still the
        // uncommitted tail, scope 1 is committed.
        let mut wal = DurableWal::attach(v, 0, 64).unwrap();
        assert_eq!(wal.committed()[&5], vec![1]);
        assert_eq!(wal.pending().len(), 1);
        assert_eq!(wal.pending_for(2).count(), 1);
        // An abort for scope 2 drops exactly its entries.
        wal.append(WalEntry::Abort { txn: 2, lsn: 4 }).unwrap();
        assert_eq!(wal.pending().len(), 0);
    }

    #[test]
    fn torn_tail_is_cut() {
        let v = vol(64);
        let mut wal = DurableWal::format(v.clone(), 0, 64).unwrap();
        wal.append(op_entry(1, 5, b"aaa")).unwrap();
        wal.append(WalEntry::Commit {
            txn: 1,
            lsn: 1,
            participants: 1,
            touched: vec![(5, vec![1])],
            deleted: vec![],
        })
        .unwrap();
        let keep = wal.bytes_used();
        wal.append(op_entry(2, 5, b"torn victim")).unwrap();
        // Corrupt one payload byte of the last record on disk.
        let page = v.read_pages(2, 1).unwrap();
        let mut page = page;
        page[(keep + FRAME_HEADER) as usize + 2] ^= 0xFF;
        v.write_pages(2, &page).unwrap();

        let wal = DurableWal::attach(v, 0, 64).unwrap();
        assert!(wal.torn_tail());
        assert_eq!(wal.records_scanned(), 2, "prefix survives");
        assert_eq!(wal.committed().len(), 1);
        assert!(wal.pending().is_empty());
    }

    #[test]
    fn checkpoint_flips_halves_and_carries_pending() {
        let v = vol(64);
        let mut wal = DurableWal::format(v.clone(), 0, 64).unwrap();
        wal.append(op_entry(1, 5, b"committed")).unwrap();
        wal.append(WalEntry::Commit {
            txn: 1,
            lsn: 1,
            participants: 1,
            touched: vec![(5, vec![1])],
            deleted: vec![],
        })
        .unwrap();
        wal.append(op_entry(2, 6, b"in flight")).unwrap();
        wal.checkpoint().unwrap();
        assert_eq!(wal.pending().len(), 1, "pending survives the flip");

        let wal2 = DurableWal::attach(v, 0, 64).unwrap();
        assert_eq!(wal2.committed().len(), 1);
        assert_eq!(wal2.pending().len(), 1);
        assert_eq!(wal2.last_lsn(), 2);
        assert_eq!(
            wal2.records_scanned(),
            2,
            "checkpoint + carried pending record"
        );
    }

    #[test]
    fn half_overflow_checkpoints_automatically() {
        let v = vol(64);
        // 64 pages of 256 B: halves of 31 pages = 7936 bytes each.
        let mut wal = DurableWal::format(v.clone(), 0, 64).unwrap();
        for i in 0..100u64 {
            wal.append(op_entry(i + 1, 5, &[7u8; 150])).unwrap();
            wal.append(WalEntry::Commit {
                txn: 1,
                lsn: i + 1,
                participants: 1,
                touched: vec![(5, vec![8u8; 30])],
                deleted: vec![],
            })
            .unwrap();
        }
        assert!(wal.checkpoints_taken() > 0, "the log wrapped");
        let wal2 = DurableWal::attach(v, 0, 64).unwrap();
        assert_eq!(wal2.committed().len(), 1);
        assert_eq!(wal2.last_lsn(), 100);
    }

    #[test]
    fn oversized_record_reports_log_full() {
        let v = vol(8);
        let mut wal = DurableWal::format(v, 0, 8).unwrap();
        let err = wal.append(op_entry(1, 5, &[0u8; 4096])).unwrap_err();
        assert!(matches!(err, Error::LogFull { .. }), "got {err}");
    }

    #[test]
    fn checkpoints_alternate_superblock_slots() {
        let v = vol(64);
        let ps = 256usize;
        let mut wal = DurableWal::format(v.clone(), 0, 64).unwrap();
        wal.append(op_entry(1, 5, b"aaa")).unwrap();
        wal.append(WalEntry::Commit {
            txn: 1,
            lsn: 1,
            participants: 1,
            touched: vec![(5, vec![1])],
            deleted: vec![],
        })
        .unwrap();
        let epoch_of = |page: Vec<u8>| Superblock::from_page(&page).map(|sb| sb.epoch);
        assert_eq!(epoch_of(v.read_pages(0, 1).unwrap()), Some(1));
        assert_eq!(epoch_of(v.read_pages(1, 1).unwrap()), None, "slot 1 zeroed");

        // The first checkpoint must publish into the *other* slot —
        // overwriting slot 0 here would leave a torn superblock write
        // with zero valid slots.
        wal.checkpoint().unwrap();
        assert_eq!(epoch_of(v.read_pages(0, 1).unwrap()), Some(1));
        assert_eq!(epoch_of(v.read_pages(1, 1).unwrap()), Some(2));
        wal.checkpoint().unwrap();
        assert_eq!(epoch_of(v.read_pages(0, 1).unwrap()), Some(3));
        assert_eq!(epoch_of(v.read_pages(1, 1).unwrap()), Some(2));

        // A torn write of the newest superblock loses only that
        // checkpoint: attach falls back to the other slot and still
        // sees the committed state.
        v.write_pages(0, &vec![0xAAu8; ps]).unwrap();
        let wal2 = DurableWal::attach(v, 0, 64).unwrap();
        assert_eq!(wal2.epoch, 2);
        assert_eq!(wal2.committed()[&5], vec![1]);
    }

    #[test]
    fn stale_epoch_frames_are_rejected() {
        let v = vol(64);
        {
            let wal = DurableWal::format(v.clone(), 0, 64).unwrap();
            drop(wal);
        }
        // Forge a CRC-valid frame stamped with a *different* epoch at
        // the head of the active half — the disk state a lost
        // terminator write would leave behind after a half flip.
        let payload = op_entry(9, 5, b"phantom").to_bytes();
        let mut page = vec![0u8; 256];
        page[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        page[4..8].copy_from_slice(&7u32.to_le_bytes());
        page[8..12].copy_from_slice(&frame_crc(7, &payload).to_le_bytes());
        page[12..12 + payload.len()].copy_from_slice(&payload);
        v.write_pages(2, &page).unwrap();

        let wal = DurableWal::attach(v, 0, 64).unwrap();
        assert!(wal.torn_tail(), "stale frame is cut, not replayed");
        assert_eq!(wal.records_scanned(), 0);
        assert!(wal.pending().is_empty());
    }

    #[test]
    fn corrupt_superblocks_refuse_to_reformat() {
        let v = vol(64);
        {
            let mut wal = DurableWal::format(v.clone(), 0, 64).unwrap();
            wal.append(WalEntry::Commit {
                txn: 1,
                lsn: 1,
                participants: 1,
                touched: vec![(5, vec![1])],
                deleted: vec![],
            })
            .unwrap();
        }
        // Smash both superblock slots: detectable corruption must be
        // surfaced, not silently formatted over.
        v.write_pages(0, &vec![0x55u8; 256]).unwrap();
        v.write_pages(1, &vec![0x55u8; 256]).unwrap();
        let err = DurableWal::attach(v, 0, 64).map(|_| ()).unwrap_err();
        assert!(matches!(err, Error::CorruptObject { .. }), "got {err}");
    }

    #[test]
    fn cross_stripe_commit_parts_are_held_until_resolved() {
        let v = vol(64);
        let mut wal = DurableWal::format(v.clone(), 0, 64).unwrap();
        wal.append(op_entry(1, 5, b"aaa")).unwrap();
        wal.append(WalEntry::Commit {
            txn: 1,
            lsn: 2,
            participants: 2,
            touched: vec![(5, vec![1])],
            deleted: vec![],
        })
        .unwrap();
        // The part is held: nothing committed yet, the op still pends.
        assert!(wal.committed().is_empty());
        assert_eq!(wal.pending().len(), 2);
        assert_eq!(wal.unresolved_commits(), vec![(1, 2)]);

        wal.resolve_txn(1);
        assert_eq!(wal.committed()[&5], vec![1]);
        assert!(wal.pending().is_empty());

        // A restart scan sees the part again — still held — and a
        // drop (presumed abort) keeps the Op for the rollback pass.
        let mut wal2 = DurableWal::attach(v, 0, 64).unwrap();
        assert!(wal2.committed().is_empty());
        assert_eq!(wal2.unresolved_commits(), vec![(1, 2)]);
        wal2.drop_txn(1);
        assert!(wal2.unresolved_commits().is_empty());
        assert_eq!(wal2.pending_for(1).count(), 1, "the Op survives for undo");
    }

    #[test]
    fn late_resolved_part_cannot_clobber_newer_commit() {
        let v = vol(64);
        let mut wal = DurableWal::format(v, 0, 64).unwrap();
        // Part of an old cross-stripe commit of object 5 at LSN 2.
        wal.append(WalEntry::Commit {
            txn: 1,
            lsn: 2,
            participants: 2,
            touched: vec![(5, vec![0xAA])],
            deleted: vec![],
        })
        .unwrap();
        // A newer self-contained commit of the same object at LSN 5.
        wal.append(WalEntry::Commit {
            txn: 2,
            lsn: 5,
            participants: 1,
            touched: vec![(5, vec![0xBB])],
            deleted: vec![],
        })
        .unwrap();
        // Resolving the stale part late must not roll the root back.
        wal.resolve_txn(1);
        assert_eq!(wal.committed()[&5], vec![0xBB]);
    }

    #[test]
    fn attach_on_virgin_region_formats_fresh() {
        let v = vol(16);
        let wal = DurableWal::attach(v.clone(), 4, 12).unwrap();
        assert_eq!(wal.last_lsn(), 0);
        assert!(wal.committed().is_empty());
        // And it is immediately reattachable.
        drop(wal);
        let wal = DurableWal::attach(v, 4, 12).unwrap();
        assert_eq!(wal.records_scanned(), 0);
    }
}
