//! The EOS object store: a volume formatted into buddy spaces plus the
//! large-object operations of §4.

use std::collections::BTreeMap;
use std::sync::Arc;

use eos_buddy::{BuddyManager, Extent, FreeBatch};
use eos_obs::{Metrics, MetricsSnapshot, OpKind};
use eos_pager::{IoStats, PageId, SharedVolume};

use crate::config::{StoreConfig, Threshold};
use crate::durable::WalEntry;
use crate::error::{Error, Result};
use crate::locks::TxnId;
use crate::node::{node_capacity, Node};
use crate::object::LargeObject;
use crate::ops;
use crate::striped::StripedWal;
use crate::verify::{ObjectStats, Violation};

mod logged;
mod recovery;

pub use recovery::RecoveryReport;

/// The large object manager: owns the disk space (through the buddy
/// system of §3) and implements create/append, read, replace, insert,
/// delete and truncate on [`LargeObject`]s.
pub struct ObjectStore {
    volume: SharedVolume,
    buddy: BuddyManager,
    config: StoreConfig,
    next_id: u64,
    /// Open transaction scopes, keyed by [`TxnId`]. The single-writer
    /// API ([`Self::begin_txn`] &c.) drives exactly one; the concurrent
    /// front-end ([`crate::concurrent::ConcurrentStore`]) keeps one per
    /// in-flight client transaction.
    txns: BTreeMap<TxnId, TxnState>,
    /// The scope the next mutating operation charges its allocations,
    /// deferred frees and touched roots to.
    active: Option<TxnId>,
    next_txn: TxnId,
    /// The on-disk log of a durable store ([`Self::create_durable`] /
    /// [`Self::open_durable`]); `None` for the classic in-memory-logged
    /// store, whose mutating ops then skip the logging path entirely.
    /// Shared (`Arc`) so the concurrent front-end can force stripes
    /// without holding the store latch — the log's own state lives
    /// behind its per-stripe latches.
    wal: Option<Arc<StripedWal>>,
    /// The buddy space the next allocation should prefer — set to the
    /// touched object's home space (`id % num_spaces`) by every §4
    /// operation, so concurrent writers on different objects contend on
    /// different space latches and an object's segments cluster.
    affinity: usize,
    /// The metrics domain I/O is attributed to. Every store starts with
    /// a fresh private domain (test isolation); [`Self::set_metrics`]
    /// rewires the whole stack — buddy manager, durable log, and the
    /// store's own operation spans — onto a shared one (the CLI uses
    /// [`eos_obs::global()`]).
    pub(crate) obs: Metrics,
}

/// Book-keeping for an open transaction scope (§4.5): frees are
/// deferred behind release locks, and the scope's own allocations are
/// remembered so an abort can return them. On a durable store the
/// scope also accumulates the commit record: the latest serialized
/// root of every object it touched and tombstones for deletions.
struct TxnState {
    batch: FreeBatch,
    allocs: Vec<Extent>,
    touched: BTreeMap<u64, Vec<u8>>,
    deleted: Vec<u64>,
}

/// The outcome of [`ObjectStore::prepare_commit`]: everything the
/// caller needs to finish the commit after its log force — and, for
/// the MVCC front-end, to publish the scope's new roots to readers.
pub struct PreparedCommit {
    /// The scope's deferred-free batch, to apply once the commit
    /// record is durable (or to park behind pinned reader epochs).
    pub batch: FreeBatch,
    /// Whether a commit record was appended at all (read-only scopes
    /// skip the log entirely).
    pub appended: bool,
    /// Serialized root descriptor of every object the scope touched.
    pub touched: BTreeMap<u64, Vec<u8>>,
    /// Objects the scope deleted (tombstones in the commit record).
    pub deleted: Vec<u64>,
    /// The WAL stripes carrying a part of the commit record — the set
    /// whose force ([`StripedWal::sync_stripes`]) makes it durable.
    /// Empty when nothing was appended.
    pub stripes: Vec<usize>,
}

impl ObjectStore {
    /// Format `num_spaces` buddy spaces of `pages_per_space` data pages
    /// on the volume and return an empty store.
    pub fn create(
        volume: SharedVolume,
        num_spaces: usize,
        pages_per_space: u64,
        config: StoreConfig,
    ) -> Result<ObjectStore> {
        let mut buddy = BuddyManager::create(volume.clone(), num_spaces, pages_per_space)?;
        // Claim the boot-record page (the very first data page), so
        // reopened stores find it at a deterministic address. The
        // data-base read must drop its space guard before allocate_at
        // re-locks the same space.
        let boot = buddy.space(0).data_base();
        buddy.allocate_at(boot, 1)?;
        let obs = Metrics::new();
        buddy.set_metrics(&obs);
        Ok(ObjectStore {
            volume,
            buddy,
            config,
            next_id: 1,
            txns: BTreeMap::new(),
            active: None,
            next_txn: 1,
            wal: None,
            affinity: 0,
            obs,
        })
    }

    /// Reopen a previously formatted store by reading every buddy-space
    /// directory back from the volume. Objects are reattached by
    /// deserializing their client-held descriptors
    /// ([`LargeObject::from_bytes`]).
    pub fn open(
        volume: SharedVolume,
        num_spaces: usize,
        pages_per_space: u64,
        config: StoreConfig,
        next_object_id: u64,
    ) -> Result<ObjectStore> {
        let mut buddy = BuddyManager::open(volume.clone(), num_spaces, pages_per_space)?;
        let obs = Metrics::new();
        buddy.set_metrics(&obs);
        Ok(ObjectStore {
            volume,
            buddy,
            config,
            next_id: next_object_id,
            txns: BTreeMap::new(),
            active: None,
            next_txn: 1,
            wal: None,
            affinity: 0,
            obs,
        })
    }

    /// Convenience: an in-memory store of at least `data_pages` pages,
    /// split into as many buddy spaces as the directory geometry
    /// requires. For tests and examples.
    pub fn in_memory(page_size: usize, data_pages: u64) -> ObjectStore {
        Self::in_memory_with(page_size, data_pages, StoreConfig::default())
    }

    /// [`Self::in_memory`] with an explicit configuration.
    pub fn in_memory_with(page_size: usize, data_pages: u64, config: StoreConfig) -> ObjectStore {
        use eos_pager::{DiskProfile, MemVolume};
        let geometry = eos_buddy::Geometry::for_page_size(page_size);
        let pps = geometry.max_space_pages.min(data_pages.max(16));
        let spaces = data_pages.div_ceil(pps).max(1) as usize;
        let vol = MemVolume::with_profile(
            page_size,
            (pps + 1) * spaces as u64 + 2,
            DiskProfile::VINTAGE_1992,
        )
        .shared();
        ObjectStore::create(vol, spaces, pps, config).expect("in-memory store creation cannot fail")
    }

    // ---- geometry & accessors ------------------------------------------

    /// Page size of the underlying volume.
    pub fn page_size(&self) -> usize {
        self.volume.page_size()
    }

    /// Page size as u64 (the planners work in u64).
    pub(crate) fn ps(&self) -> u64 {
        self.volume.page_size() as u64
    }

    /// Largest segment the space manager can hand out, in pages.
    pub fn max_seg_pages(&self) -> u64 {
        self.buddy.max_extent_pages()
    }

    /// Entry capacity of an index page.
    pub fn node_cap(&self) -> usize {
        node_capacity(self.page_size())
    }

    /// Entry capacity of the root (client-bounded, §4 footnote 3).
    pub fn root_cap(&self) -> usize {
        self.config
            .max_root_entries
            .map_or_else(|| self.node_cap(), |m| m.clamp(2, self.node_cap()))
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        self.config_ref()
    }

    pub(crate) fn config_ref(&self) -> &StoreConfig {
        &self.config
    }

    /// The underlying volume (for I/O statistics in experiments).
    pub fn volume(&self) -> &SharedVolume {
        &self.volume
    }

    /// The buddy space manager (for utilization experiments).
    pub fn buddy(&self) -> &BuddyManager {
        &self.buddy
    }

    /// Mutable access to the buddy manager (experiments only).
    pub fn buddy_mut(&mut self) -> &mut BuddyManager {
        &mut self.buddy
    }

    /// The on-disk log of a durable store, if this store has one.
    pub fn durable_wal(&self) -> Option<&StripedWal> {
        self.wal.as_deref()
    }

    /// A shareable handle on the on-disk log: the concurrent front-end
    /// caches it so commit forces ([`StripedWal::sync_stripes`]) run
    /// without any store latch held.
    pub(crate) fn wal_handle(&self) -> Option<Arc<StripedWal>> {
        self.wal.clone()
    }

    /// Cumulative volume I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.volume.stats()
    }

    /// Zero the volume I/O counters.
    pub fn reset_io_stats(&self) {
        self.volume.reset_stats();
    }

    /// The metrics domain this store records into.
    pub fn metrics(&self) -> &Metrics {
        &self.obs
    }

    /// Rewire the whole stack onto `metrics`: the store's operation
    /// spans, the buddy manager's allocator/latch instruments and, on a
    /// durable store, the log's frame/sync/checkpoint counters. Numbers
    /// already recorded into the previous domain stay there.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.buddy.set_metrics(metrics);
        if let Some(wal) = &self.wal {
            wal.set_metrics(metrics);
        }
        self.obs = metrics.clone();
    }

    /// Point-in-time snapshot of the store's metrics domain, with the
    /// page-cache hit/miss counters (when the volume has a cache layer)
    /// folded in as gauges.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        if let Some(cs) = self.volume.cache_stats() {
            self.obs.gauge("pager.cache.hits").set(cs.hits);
            self.obs.gauge("pager.cache.misses").set(cs.misses);
        }
        self.obs.snapshot()
    }

    // ---- object lifecycle ----------------------------------------------

    /// Create an empty object with the store's default threshold.
    pub fn create_object(&mut self) -> LargeObject {
        let id = self.next_id;
        self.next_id += 1;
        self.set_affinity_for(id);
        LargeObject::new(id, self.config.threshold)
    }

    /// Create an empty object with a caller-chosen identity — used when
    /// replaying a log onto a replica (see [`crate::wal`]).
    pub fn create_object_with_id(&mut self, id: u64) -> LargeObject {
        self.next_id = self.next_id.max(id + 1);
        self.set_affinity_for(id);
        LargeObject::new(id, self.config.threshold)
    }

    /// Steer subsequent allocations toward `id`'s home buddy space —
    /// the placement half of the sharding story: writers on different
    /// objects allocate from (and latch) different spaces, and one
    /// object's segments cluster in one space.
    pub(crate) fn set_affinity_for(&mut self, id: u64) {
        self.affinity = (id % self.buddy.num_spaces() as u64) as usize;
    }

    // ---- boot record -------------------------------------------------------

    /// Write the boot record: up to one page of client bytes at a fixed,
    /// well-known location (the first data page of the first buddy
    /// space). The paper leaves root placement to the client; the boot
    /// record is the conventional spot for the descriptor of a root
    /// catalog object, making a volume fully self-describing.
    pub fn write_boot_record(&mut self, data: &[u8]) -> Result<()> {
        let ps = self.page_size();
        if data.len() + 4 > ps {
            return Err(Error::Unsupported {
                op: "write_boot_record",
                reason: format!("boot record of {} bytes exceeds one page", data.len()),
            });
        }
        let mut page = vec![0u8; ps];
        page[0..4].copy_from_slice(&(data.len() as u32).to_le_bytes());
        page[4..4 + data.len()].copy_from_slice(data);
        self.volume.write_pages(self.boot_page(), &page)?;
        Ok(())
    }

    /// Read the boot record written by [`Self::write_boot_record`]
    /// (empty if none was ever written).
    pub fn read_boot_record(&self) -> Result<Vec<u8>> {
        let page = self.volume.read_pages(self.boot_page(), 1)?;
        let len = u32::from_le_bytes(page[0..4].try_into().unwrap()) as usize;
        if len + 4 > page.len() {
            return Err(Error::CorruptObject {
                reason: "boot record length exceeds the page".into(),
            });
        }
        Ok(page[4..4 + len].to_vec())
    }

    /// The fixed volume page of the boot record: data page 0 of buddy
    /// space 0 (volume page 1, right after the first directory).
    fn boot_page(&self) -> PageId {
        let space = self.buddy.space(0);
        space.data_base()
    }

    // ---- transaction scope (§4.5) ----------------------------------------

    /// Open a transaction scope. Until [`Self::commit_txn`]:
    ///
    /// * every free is **deferred** behind a release lock (§4.5 /
    ///   \[Lehm89\]) — freed segments cannot be reallocated, and
    /// * insert/delete/append write only freshly allocated pages
    ///   (shadowed index pages, brand-new leaf segments),
    ///
    /// so the committed tree image stays fully intact on disk: a crash
    /// that loses the in-flight descriptor loses no committed data.
    /// `replace` is the exception — it writes leaf pages in place and
    /// must be protected with [`crate::wal::Wal::logged_replace`].
    ///
    /// # Panics
    /// If a transaction scope is already open (single-writer facade;
    /// the concurrent front-end opens scopes directly).
    pub fn begin_txn(&mut self) {
        assert!(
            self.active.is_none(),
            "nested transactions are not supported"
        );
        let id = self.open_scope();
        self.active = Some(id);
    }

    /// Open a new transaction scope and return its id, without making
    /// it the active one — the concurrent front-end keeps many scopes
    /// open and selects per operation via [`Self::set_active_scope`].
    pub fn open_scope(&mut self) -> TxnId {
        let id = self.next_txn;
        self.next_txn += 1;
        self.txns.insert(
            id,
            TxnState {
                batch: self.buddy.begin_free_batch(),
                allocs: Vec::new(),
                touched: BTreeMap::new(),
                deleted: Vec::new(),
            },
        );
        id
    }

    /// Select which open scope the next mutating operations charge
    /// their allocations, deferred frees and touched roots to (`None`
    /// restores autocommit behaviour for durable stores).
    pub fn set_active_scope(&mut self, id: Option<TxnId>) {
        self.active = id;
    }

    /// The scope mutating operations currently charge to.
    pub fn active_scope(&self) -> Option<TxnId> {
        self.active
    }

    /// Does `id` name an open scope?
    pub fn scope_is_open(&self, id: TxnId) -> bool {
        self.txns.contains_key(&id)
    }

    /// Has the scope done anything a durable commit must sync — touched
    /// or deleted objects, allocations, or pending log entries?
    pub fn scope_dirty(&self, id: TxnId) -> bool {
        self.txns
            .get(&id)
            .is_some_and(|t| !t.touched.is_empty() || !t.deleted.is_empty() || !t.allocs.is_empty())
            || self.wal.as_ref().is_some_and(|w| w.has_pending_for(id))
    }

    /// The group-commit lane a scope's force belongs on: the home
    /// stripe of the lowest-id object it touched or deleted (0 for a
    /// scope with nothing to publish). Scopes on different lanes
    /// batch — and force — independently.
    pub fn scope_group_stripe(&self, id: TxnId) -> usize {
        let Some(wal) = &self.wal else { return 0 };
        self.txns.get(&id).map_or(0, |t| {
            t.touched
                .keys()
                .copied()
                .chain(t.deleted.iter().copied())
                .map(|o| wal.stripe_of(o))
                .min()
                .unwrap_or(0)
        })
    }

    fn active_txn_mut(&mut self) -> Option<&mut TxnState> {
        let id = self.active?;
        self.txns.get_mut(&id)
    }

    /// Commit the open scope: apply every deferred free. On a durable
    /// store the **commit point** comes first — the volume is synced so
    /// every shadowed page the scope wrote is durable (the
    /// data-before-log barrier: the commit record must never point at
    /// pages the OS could still be holding back), then a
    /// [`WalEntry::Commit`] record carrying the new root of every
    /// touched object is appended to the on-disk log and forced to
    /// stable storage; only then are the deferred frees applied. Both
    /// barriers are gated on [`StoreConfig::sync_on_commit`]. A crash
    /// on either side of that append recovers cleanly: before it, the
    /// transaction never happened; after it, restart recovery rebuilds
    /// the allocator state from the committed roots.
    /// On a non-durable store the caller makes the new descriptor
    /// durable (that write is the commit point, since the root is
    /// client-placed).
    ///
    /// If the commit append itself fails the scope is rolled back
    /// cleanly — before-images restored, allocations returned, deferred
    /// frees dropped, an Abort record closing the scope in the log —
    /// and the error returned; the volume stays structurally clean (the
    /// log-full-during-commit tests drive this path).
    pub fn commit_txn(&mut self) -> Result<()> {
        // Commit I/O (log frames, the data-before-log syncs, the
        // deferred frees) is attributed to `wal.commit`, not to the
        // operation that happened to trigger an autocommit — span
        // nesting subtracts it from the enclosing op automatically.
        let _span = self.obs.span(OpKind::WalCommit, &self.volume);
        let id = self.active.take().expect("no open transaction");
        self.commit_scope(id)
    }

    /// Commit one scope end to end: the data-before-log barrier, the
    /// commit-record append, the log force, then the deferred frees.
    /// The group-commit leader instead calls the three phases
    /// ([`Self::prepare_commit`], its own single log force,
    /// [`Self::apply_commit`]) so one fsync covers a whole batch.
    pub fn commit_scope(&mut self, id: TxnId) -> Result<()> {
        let prep = self.prepare_commit(id, true)?;
        if prep.appended && self.config.sync_on_commit {
            if let Some(wal) = &self.wal {
                // The log force — only the stripes carrying a part of
                // this commit record: the record is durable past here.
                // durability: seals(commit-frame)
                wal.sync_stripes(&prep.stripes)?;
            }
        }
        self.apply_commit(prep.batch)
    }

    /// Phase 1 of a commit: close the scope's book-keeping and append
    /// (without forcing) its [`WalEntry::Commit`] record. Returns the
    /// [`PreparedCommit`] the caller finishes with: the deferred-free
    /// batch to apply once the record is durable, whether a record was
    /// appended at all (read-only scopes skip the log entirely), and
    /// the touched-root/tombstone sets the MVCC front-end publishes to
    /// lock-free readers. With `data_barrier` the volume is synced
    /// before the append, so the record never points at shadowed pages
    /// the OS could still be holding back; the group-commit leader
    /// passes `false` after issuing one barrier for the whole batch.
    ///
    /// On any error (most importantly [`Error::LogFull`]) the scope is
    /// **fully aborted** — before-images restored, allocations
    /// returned, deferred frees dropped, an Abort record appended —
    /// so a failed commit can never leave the store half-applied.
    pub fn prepare_commit(&mut self, id: TxnId, data_barrier: bool) -> Result<PreparedCommit> {
        let txn = self.txns.remove(&id).ok_or(Error::StaleTransaction)?;
        if self.active == Some(id) {
            self.active = None;
        }
        let batch = txn.batch;
        let Some(wal) = self.wal.clone() else {
            return Ok(PreparedCommit {
                batch,
                appended: false,
                touched: txn.touched,
                deleted: txn.deleted,
                stripes: Vec::new(),
            });
        };
        let worth_logging =
            !txn.touched.is_empty() || !txn.deleted.is_empty() || wal.has_pending_for(id);
        if !worth_logging {
            return Ok(PreparedCommit {
                batch,
                appended: false,
                touched: txn.touched,
                deleted: txn.deleted,
                stripes: Vec::new(),
            });
        }
        // A fresh LSN for the commit point itself: strictly ordered
        // across scopes, so recovery's cross-stripe merge has a global
        // tiebreak.
        let lsn = wal.allocate_lsn();
        let touched: Vec<(u64, Vec<u8>)> =
            txn.touched.iter().map(|(k, v)| (*k, v.clone())).collect();
        let sync = data_barrier && self.config.sync_on_commit;
        // Data-before-log: shadowed pages must be on disk before the
        // commit record that publishes them.
        // durability: seals(shadow-data)
        let barrier = if sync { wal.sync() } else { Ok(()) };
        let appended = barrier.and_then(|()| {
            // durability: mutates(commit-frame)
            wal.append_commit(id, lsn, touched, txn.deleted.clone())
        });
        match appended {
            Err(e) => {
                // Clean abort: put the scope back so abort_scope finds
                // its allocations and deferred frees, then roll
                // everything back.
                self.txns.insert(id, txn);
                let _ = self.abort_scope(id);
                Err(e)
            }
            Ok(stripes) => Ok(PreparedCommit {
                batch,
                appended: true,
                touched: txn.touched,
                deleted: txn.deleted,
                stripes,
            }),
        }
    }

    /// Phase 3 of a commit: apply the deferred frees. Only called once
    /// the commit record is durable (or was never needed).
    // durability: requires(commit-frame)
    pub fn apply_commit(&mut self, batch: FreeBatch) -> Result<()> {
        // Freed pages become allocatable (and under MVCC, reusable by
        // writers) from here on — the superseding commit frame must
        // already be durable.
        // durability: mutates(mvcc-publish)
        self.buddy.commit_frees(batch)?;
        Ok(())
    }

    /// Abort the open scope: drop the deferred frees (the logical frees
    /// never happen) and return every page the scope allocated. The
    /// caller goes back to its pre-transaction descriptor copy. On a
    /// durable store the in-place writes of any logged `replace` are
    /// first reversed from their before-images, the restores are synced
    /// to stable storage, and only then does an [`WalEntry::Abort`]
    /// record close the scope in the log — without that barrier the
    /// Abort frame could persist ahead of the restores, and recovery
    /// (trusting the Abort) would skip the undo. If the abort itself is
    /// interrupted before the record lands, restart recovery simply
    /// rolls the scope back again.
    pub fn abort_txn(&mut self) -> Result<()> {
        let id = self.active.take().expect("no open transaction");
        self.abort_scope(id)
    }

    /// Abort one scope: restore the before-images of its uncommitted
    /// in-place writes, drop its deferred frees, return its
    /// allocations, and close it in the log with a scope-stamped
    /// [`WalEntry::Abort`]. Other open scopes are untouched — their
    /// pending entries stay pending.
    pub fn abort_scope(&mut self, id: TxnId) -> Result<()> {
        let txn = self.txns.remove(&id).ok_or(Error::StaleTransaction)?;
        if self.active == Some(id) {
            self.active = None;
        }
        let restored_images = self.wal.as_ref().is_some_and(|w| {
            w.pending_for(id)
                .iter()
                .any(|e| matches!(e, WalEntry::Op { page_images, .. } if !page_images.is_empty()))
        });
        if self.wal.is_some() {
            self.rollback_scope_images(id)?;
        }
        self.buddy.abort_frees(txn.batch);
        for e in txn.allocs {
            self.buddy.free(e.start, e.pages)?;
        }
        if let Some(wal) = &self.wal {
            if wal.has_pending_for(id) {
                if restored_images && self.config.sync_on_commit {
                    // Restores-before-Abort barrier.
                    // durability: seals(shadow-data)
                    wal.sync()?;
                }
                let lsn = wal.last_lsn();
                // durability: mutates(commit-frame)
                wal.append(WalEntry::Abort { txn: id, lsn })?;
            }
        }
        Ok(())
    }

    /// Is a transaction scope open (single-writer facade)?
    pub fn in_txn(&self) -> bool {
        self.active.is_some()
    }

    /// Create an object pre-filled with `data`, optionally telling the
    /// store the eventual size in advance ("if the size is known a
    /// priori, it is provided as a hint", §4.1).
    pub fn create_with(&mut self, data: &[u8], size_hint: Option<u64>) -> Result<LargeObject> {
        let _span = self.obs.span(OpKind::Create, &self.volume);
        if self.wal.is_some() {
            return self.logged_create_with(data, size_hint);
        }
        let mut obj = self.create_object();
        if !data.is_empty() || size_hint.is_some() {
            // The internal session (not `open_append`, which would open
            // a nested Append span and claim the I/O): creation cost
            // belongs to `create`.
            let mut s = ops::append::AppendSession::open(self, &mut obj, size_hint)?;
            s.append(data)?;
            s.close()?;
        }
        Ok(obj)
    }

    /// Delete an object: free every leaf segment and index page. The
    /// handle becomes an empty object. On a durable store the commit
    /// record carries a tombstone, so the deletion survives restart.
    pub fn delete_object(&mut self, obj: &mut LargeObject) -> Result<()> {
        let _span = self.obs.span(OpKind::Delete, &self.volume);
        self.set_affinity_for(obj.id());
        if self.wal.is_some() {
            return self.logged_delete_object(obj);
        }
        let size = obj.size();
        if size > 0 {
            ops::delete::run(self, obj, 0, size)?;
        }
        self.paranoid_check(obj)
    }

    // ---- the §4 operations ----------------------------------------------

    /// Read `len` bytes starting at byte `offset` (§4.2).
    pub fn read(&self, obj: &LargeObject, offset: u64, len: u64) -> Result<Vec<u8>> {
        let _span = self.obs.span(OpKind::Read, &self.volume);
        ops::read::run(self, obj, offset, len)
    }

    /// Read the whole object.
    pub fn read_all(&self, obj: &LargeObject) -> Result<Vec<u8>> {
        let _span = self.obs.span(OpKind::Read, &self.volume);
        ops::read::run(self, obj, 0, obj.size())
    }

    /// Overwrite `data.len()` bytes in place starting at `offset`
    /// (§4.2: "the search algorithm can also be used for the byte range
    /// replace operation").
    pub fn replace(&mut self, obj: &mut LargeObject, offset: u64, data: &[u8]) -> Result<()> {
        let _span = self.obs.span(OpKind::Replace, &self.volume);
        self.set_affinity_for(obj.id());
        if self.wal.is_some() {
            return self.logged_replace(obj, offset, data);
        }
        ops::replace::run(self, obj, offset, data)?;
        self.paranoid_check(obj)
    }

    /// Overwrite bytes at `offset` **copy-on-write**: every touched
    /// segment is rewritten onto a fresh extent and the old extent's
    /// free is deferred behind the scope's release lock, so the
    /// committed image — and any MVCC reader snapshot pinned on it —
    /// stays intact on disk until the scope commits and the deferral
    /// is reclaimed. Functionally identical to [`Self::replace`]; the
    /// concurrent front-end uses this variant so its lock-free readers
    /// never observe a half-applied overwrite.
    pub fn replace_shadow(
        &mut self,
        obj: &mut LargeObject,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        let _span = self.obs.span(OpKind::Replace, &self.volume);
        self.set_affinity_for(obj.id());
        if self.wal.is_some() {
            return self.logged_replace_shadow(obj, offset, data);
        }
        ops::replace::run_shadow(self, obj, offset, data)?;
        self.paranoid_check(obj)
    }

    /// Append bytes at the end of the object (§4.1).
    pub fn append(&mut self, obj: &mut LargeObject, data: &[u8]) -> Result<()> {
        let _span = self.obs.span(OpKind::Append, &self.volume);
        self.set_affinity_for(obj.id());
        if self.wal.is_some() {
            return self.logged_append(obj, data);
        }
        let mut s = ops::append::AppendSession::open(self, obj, None)?;
        s.append(data)?;
        s.close()
    }

    /// Open a multi-append session (§4.1). While the session is open,
    /// successive segment allocations double in size (or, with a size
    /// hint, maximum-size segments are used); the final segment is
    /// trimmed when the session closes.
    pub fn open_append<'a>(
        &'a mut self,
        obj: &'a mut LargeObject,
        size_hint: Option<u64>,
    ) -> Result<ops::append::AppendSession<'a>> {
        // The span rides inside the session so the whole multi-append —
        // open (tail absorption), every chunk, and the closing trim and
        // tree splice — lands in one `append` attribution.
        let span = self.obs.span(OpKind::Append, &self.volume);
        self.set_affinity_for(obj.id());
        let mut session = ops::append::AppendSession::open(self, obj, size_hint)?;
        session.attach_span(span);
        Ok(session)
    }

    /// Insert `data` at byte `offset`, shifting the tail of the object
    /// right (§4.3.1, with the §4.4 reshuffling).
    pub fn insert(&mut self, obj: &mut LargeObject, offset: u64, data: &[u8]) -> Result<()> {
        let _span = self.obs.span(OpKind::Insert, &self.volume);
        self.set_affinity_for(obj.id());
        if self.wal.is_some() {
            return self.logged_insert(obj, offset, data);
        }
        ops::insert::run(self, obj, offset, data)?;
        self.paranoid_check(obj)
    }

    /// Delete `len` bytes starting at `offset`, shifting the tail left
    /// (§4.3.2, with the §4.4 reshuffling).
    pub fn delete(&mut self, obj: &mut LargeObject, offset: u64, len: u64) -> Result<()> {
        let _span = self.obs.span(OpKind::Delete, &self.volume);
        self.set_affinity_for(obj.id());
        if self.wal.is_some() {
            return self.logged_delete(obj, offset, len);
        }
        ops::delete::run(self, obj, offset, len)?;
        self.paranoid_check(obj)
    }

    /// Truncate the object to `new_size` bytes — the special case of
    /// delete that never touches a leaf segment.
    pub fn truncate(&mut self, obj: &mut LargeObject, new_size: u64) -> Result<()> {
        let _span = self.obs.span(OpKind::Delete, &self.volume);
        self.set_affinity_for(obj.id());
        let size = obj.size();
        if new_size > size {
            return Err(Error::OutOfObjectBounds {
                offset: new_size,
                len: 0,
                object_size: size,
            });
        }
        if new_size == size {
            return Ok(());
        }
        if self.wal.is_some() {
            return self.logged_delete(obj, new_size, size - new_size);
        }
        ops::delete::run(self, obj, new_size, size - new_size)?;
        self.paranoid_check(obj)
    }

    /// Walk the whole tree and return structural statistics
    /// (segment count, page counts, utilization).
    pub fn object_stats(&self, obj: &LargeObject) -> Result<ObjectStats> {
        crate::verify::object_stats(self, obj)
    }

    /// Exhaustively check the object's structural invariants; used by
    /// the property tests after every operation.
    pub fn verify_object(&self, obj: &LargeObject) -> Result<()> {
        crate::verify::verify_object(self, obj)
    }

    /// Like [`ObjectStore::verify_object`] but collects *every*
    /// violation in the tree instead of failing on the first — the
    /// entry point `eos-check` builds its census on.
    pub fn verify_object_report(&self, obj: &LargeObject) -> Vec<Violation> {
        crate::verify::verify_object_report(self, obj)
    }

    /// Every page extent `(start_page, pages)` the object references:
    /// index pages and leaf segments. Tolerant of unreadable index
    /// pages (their subtrees are skipped), so a whole-volume page
    /// census can still run on a damaged tree.
    pub fn object_page_extents(&self, obj: &LargeObject) -> Vec<(u64, u64)> {
        crate::verify::object_page_extents(self, obj)
    }

    /// When [`StoreConfig::paranoid_checks`] is set, re-walk `obj` and
    /// re-audit the buddy directories, escalating any violation to an
    /// error at the operation boundary that introduced it.
    pub(crate) fn paranoid_check(&self, obj: &LargeObject) -> Result<()> {
        if !self.config.paranoid_checks {
            return Ok(());
        }
        self.verify_object(obj)?;
        self.buddy
            .check_invariants()
            .map_err(|e| Error::CorruptObject {
                reason: format!("buddy invariant after operation: {e}"),
            })
    }

    // ---- internal helpers shared by the ops modules ----------------------

    /// Effective threshold (in pages) for an update whose leaf parent
    /// holds `parent_entries` entries.
    pub(crate) fn effective_threshold(&self, obj: &LargeObject, parent_entries: usize) -> u64 {
        let cap = self.node_cap();
        u64::from(obj.threshold.effective(parent_entries, cap))
    }

    /// Default threshold value for fresh objects (experiments tweak it
    /// via [`StoreConfig`]).
    pub fn default_threshold(&self) -> Threshold {
        self.config.threshold
    }

    /// Record a §4.4 local reshuffle: the insert/delete planner decided
    /// to move bytes between L/N/R under threshold `t`. Local
    /// reshuffles stay attributed to the operation that triggered them
    /// (no span of their own); these counters answer "how often, and
    /// how much moved, per threshold" — the §5 experiment axes.
    pub(crate) fn note_reshuffle(&self, t: u64, plan: &crate::reshuffle::ReshufflePlan) {
        if plan.from_l == 0 && plan.from_r == 0 {
            return;
        }
        self.obs.counter(&format!("reshuffle.triggers.t{t}")).inc();
        let moved_pages = (plan.from_l + plan.from_r).div_ceil(self.ps());
        self.obs
            .histogram("reshuffle.pages_moved")
            .record(moved_pages);
    }

    /// Allocate a fresh extent of exactly `pages` pages.
    pub(crate) fn alloc_extent(&mut self, pages: u64) -> Result<Extent> {
        let e = self.buddy.allocate_near(pages, self.affinity)?;
        if let Some(txn) = self.active_txn_mut() {
            txn.allocs.push(e);
        }
        Ok(e)
    }

    /// Allocate at most `pages`, taking what is available.
    pub(crate) fn alloc_up_to(&mut self, pages: u64) -> Result<Extent> {
        let e = self.buddy.allocate_up_to_near(pages, self.affinity)?;
        if let Some(txn) = self.active_txn_mut() {
            txn.allocs.push(e);
        }
        Ok(e)
    }

    /// Free `pages` pages starting at `start` — deferred behind a
    /// release lock while a transaction scope is open.
    pub(crate) fn free_pages(&mut self, start: PageId, pages: u64) -> Result<()> {
        let batch = self
            .active
            .and_then(|id| self.txns.get(&id))
            .map(|t| t.batch);
        match batch {
            Some(batch) => {
                self.buddy.defer_free(batch, Extent { start, pages });
            }
            None => self.buddy.free(start, pages)?,
        }
        Ok(())
    }

    /// Read an index node from its page.
    pub(crate) fn read_node(&self, page: PageId) -> Result<Node> {
        let buf = self.volume.read_pages(page, 1)?;
        Node::from_page(&buf)
    }

    /// Write an index node, shadowing it if configured: the node goes to
    /// a freshly allocated page and the old page is freed, so the
    /// committed tree is never overwritten (§4.5). Returns the page the
    /// node now lives on.
    pub(crate) fn write_node(&mut self, old: Option<PageId>, node: &Node) -> Result<PageId> {
        let image = node.to_page(self.page_size());
        match old {
            Some(page) if !self.config.shadow_index_pages => {
                self.volume.write_pages(page, &image)?;
                Ok(page)
            }
            old => {
                let ext = self.alloc_extent(1)?;
                self.volume.write_pages(ext.start, &image)?;
                if let Some(page) = old {
                    self.free_pages(page, 1)?;
                }
                Ok(ext.start)
            }
        }
    }

    /// Free the page of a dropped index node.
    pub(crate) fn free_node(&mut self, page: PageId) -> Result<()> {
        self.free_pages(page, 1)
    }
}
