//! Striped write-ahead logging: N independent [`DurableWal`] regions
//! forced in parallel.
//!
//! A single log region serializes every commit force behind one mutex;
//! the paper's multi-space layout (§3) makes the natural shard: objects
//! hash by id onto a **stripe**, each stripe owns a contiguous slice of
//! the log region and its own [`DurableWal`], and commits whose objects
//! live on disjoint stripes force concurrently — each stripe's force
//! holds only that stripe's latch while the volume barrier runs.
//!
//! ```text
//! log region (pages)
//! ├── stripe 0:  [sb A][sb B][half 0 …][half 1 …]
//! ├── stripe 1:  [sb A][sb B][half 0 …][half 1 …]   ⇐ pages/N each
//! └── …                                               (format-anchor in
//!                                                      FORMAT.md §WAL)
//! ```
//!
//! **LSNs are global.** One atomic counter hands out LSNs across all
//! stripes, so recovery can merge the stripes' records into a single
//! total order — the stripe is a placement decision, not a logical one.
//!
//! **Cross-stripe commits** (a scope touching objects on more than one
//! stripe) write one [`WalEntry::Commit`] *part* per participating
//! stripe, every part stamped with the same scope, the same fresh LSN,
//! and the participant count. A part only becomes true once all its
//! siblings are durable: live appends resolve the parts after the last
//! one lands; a restart counts surviving parts per scope and resolves
//! the scope only when all `participants` survived, else presumes abort
//! (the surviving Op entries keep their before-images for the rollback
//! pass). Because each *object* maps to exactly one stripe, its root
//! history lives on one stripe and the per-stripe `committed_lsn` guard
//! keeps a late-resolved older part from clobbering a newer root.
//!
//! With `stripes = 1` (the default) the single stripe occupies the
//! whole region in the exact layout earlier versions wrote — striping
//! is purely additive.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

use eos_obs::Metrics;
use eos_pager::{PageId, SharedVolume};
use parking_lot::{LockClass, TrackedMutex};

use crate::durable::{DurableWal, WalEntry};
use crate::error::{Error, Result};
use crate::locks::TxnId;
use crate::wal::LogRecord;

/// N log stripes over one region, each an independent [`DurableWal`].
/// All methods take `&self`: per-stripe state lives behind the stripe
/// latches, LSNs behind an atomic, so the store can hand out an `Arc`
/// and commit forces never queue on the store latch.
pub struct StripedWal {
    // lock-class: stripes = wal.stripe rank = 55 io = allowed
    stripes: Vec<TrackedMutex<DurableWal>>,
    // lock-class: scopes = wal.scopes rank = 54 io = forbidden
    /// Which stripes hold uncommitted entries of each open scope. This
    /// is the routing index `append_commit`, the `Abort` fan-out, and
    /// [`Self::has_pending_for`] consult so that none of them has to
    /// *scan the stripes*: a stripe latch may legitimately be held
    /// across a volume force (io = allowed), and a commit that polls
    /// every stripe's latch to find its participants queues behind
    /// every in-flight force — serializing the pipeline right back
    /// into the single-latch shape this module exists to break.
    scopes: TrackedMutex<BTreeMap<TxnId, BTreeSet<usize>>>,
    /// Global LSN allocator — `next_lsn` is the next value handed out.
    next_lsn: AtomicU64,
}

impl StripedWal {
    fn stripe_mutex(wal: DurableWal) -> TrackedMutex<DurableWal> {
        TrackedMutex::new(LockClass::allows_io("wal.stripe"), wal)
    }

    fn scopes_map(
        seed: BTreeMap<TxnId, BTreeSet<usize>>,
    ) -> TrackedMutex<BTreeMap<TxnId, BTreeSet<usize>>> {
        TrackedMutex::new(LockClass::forbids_io("wal.scopes"), seed)
    }

    /// Record that `txn` has an uncommitted entry on `stripe`. Called
    /// *before* the stripe append: a failed append then leaves a stale
    /// stripe in the set, which at worst routes one extra (empty)
    /// commit part or abort record there — harmless, and cleaned up
    /// when the scope resolves.
    fn note_scope(&self, txn: TxnId, stripe: usize) {
        self.scopes.lock().entry(txn).or_default().insert(stripe);
    }

    /// Split `pages` at `base` into `stripes` equal slices and format a
    /// fresh [`DurableWal`] in each. `stripes` is clamped to at least 1
    /// and each slice must still clear the per-log minimum.
    pub fn format(
        volume: &SharedVolume,
        base: PageId,
        pages: u64,
        stripes: usize,
    ) -> Result<StripedWal> {
        let n = stripes.max(1) as u64;
        let per = pages / n;
        let mut slices = Vec::with_capacity(n as usize);
        for r in 0..n {
            let mut wal = DurableWal::format(volume.clone(), base + r * per, per)?;
            wal.set_stripe(r);
            slices.push(Self::stripe_mutex(wal));
        }
        Ok(StripedWal {
            stripes: slices,
            scopes: Self::scopes_map(BTreeMap::new()),
            next_lsn: AtomicU64::new(1),
        })
    }

    /// Attach to an existing striped region: attach each slice, then
    /// settle the cross-stripe commits — a scope whose surviving parts
    /// number `participants` is resolved (its roots become committed on
    /// every part's stripe); any other count presumes abort and voids
    /// the parts, leaving the scope's Op entries pending for the
    /// caller's rollback pass.
    pub fn attach(
        volume: &SharedVolume,
        base: PageId,
        pages: u64,
        stripes: usize,
    ) -> Result<StripedWal> {
        let n = stripes.max(1) as u64;
        let per = pages / n;
        let mut slices = Vec::with_capacity(n as usize);
        let mut max_lsn = 0u64;
        // txn → (declared participant count, stripes holding a part).
        let mut parts: BTreeMap<TxnId, (u32, Vec<usize>)> = BTreeMap::new();
        for r in 0..n {
            let mut wal = DurableWal::attach(volume.clone(), base + r * per, per)?;
            wal.set_stripe(r);
            max_lsn = max_lsn.max(wal.last_lsn());
            for (txn, participants) in wal.unresolved_commits() {
                let slot = parts.entry(txn).or_insert((participants, Vec::new()));
                if slot.0 != participants {
                    return Err(Error::CorruptObject {
                        reason: format!(
                            "cross-stripe commit of scope {txn}: parts disagree on \
                             participant count ({} vs {participants})",
                            slot.0
                        ),
                    });
                }
                slot.1.push(r as usize);
            }
            slices.push(Self::stripe_mutex(wal));
        }
        for (txn, (participants, present)) in parts {
            let complete = present.len() as u32 == participants;
            for r in present {
                let mut w = slices[r].lock();
                if complete {
                    w.resolve_txn(txn);
                } else {
                    w.drop_txn(txn);
                }
            }
        }
        // Seed the scope index from what survived the scan: the entries
        // recovery is about to roll back still need their Abort records
        // routed to the right stripes.
        let mut scopes: BTreeMap<TxnId, BTreeSet<usize>> = BTreeMap::new();
        for (r, stripe) in slices.iter().enumerate() {
            let w = stripe.lock();
            for entry in w.pending() {
                if let Some(txn) = entry.txn() {
                    scopes.entry(txn).or_default().insert(r);
                }
            }
        }
        Ok(StripedWal {
            stripes: slices,
            scopes: Self::scopes_map(scopes),
            next_lsn: AtomicU64::new(max_lsn + 1),
        })
    }

    /// How many stripes this log runs.
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe an object's log traffic lands on.
    pub fn stripe_of(&self, object: u64) -> usize {
        (object % self.stripes.len() as u64) as usize
    }

    /// Hand out the next LSN (monotonically increasing, starting at 1,
    /// global across stripes).
    pub fn allocate_lsn(&self) -> u64 {
        self.next_lsn.fetch_add(1, Ordering::Relaxed)
    }

    /// The highest LSN handed out so far; 0 if none.
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn.load(Ordering::Relaxed) - 1
    }

    /// Append one entry durably on the stripe it belongs to: Op/Touch
    /// entries go to their object's stripe, an Abort to every stripe
    /// holding entries of its scope, a Checkpoint to stripe 0. Commit
    /// entries must go through [`Self::append_commit`], which knows how
    /// to split them.
    pub fn append(&self, entry: WalEntry) -> Result<()> {
        match entry {
            WalEntry::Op { ref record, .. } => {
                let s = self.stripe_of(record.object);
                if let Some(txn) = entry.txn() {
                    self.note_scope(txn, s);
                }
                self.stripes[s].lock().append(entry)
            }
            WalEntry::Touch { txn, object, .. } => {
                let s = self.stripe_of(object);
                self.note_scope(txn, s);
                self.stripes[s].lock().append(entry)
            }
            WalEntry::Commit {
                txn,
                lsn,
                touched,
                deleted,
                ..
            } => self.append_commit(txn, lsn, touched, deleted).map(|_| ()),
            WalEntry::Abort { txn, lsn } => {
                let homes = self.scopes.lock().remove(&txn).unwrap_or_default();
                if homes.is_empty() {
                    return self.stripes[0].lock().append(WalEntry::Abort { txn, lsn });
                }
                for &s in &homes {
                    self.stripes[s]
                        .lock()
                        .append(WalEntry::Abort { txn, lsn })?;
                }
                Ok(())
            }
            WalEntry::Checkpoint { .. } => self.stripes[0].lock().append(entry),
        }
    }

    /// Append a scope's commit point, split per stripe, and return the
    /// participating stripes (the set [`Self::sync_stripes`] must force
    /// before the commit is reported durable). Participants are every
    /// stripe holding a root part *or* a pending entry of the scope;
    /// for a single participant the part self-commits on append, for
    /// several each part is held until all have landed, then resolved —
    /// so a crash between the appends presumes abort on restart.
    pub fn append_commit(
        &self,
        txn: TxnId,
        lsn: u64,
        touched: Vec<(u64, Vec<u8>)>,
        deleted: Vec<u64>,
    ) -> Result<Vec<usize>> {
        let n = self.stripes.len();
        let mut touched_parts: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); n];
        for (id, desc) in touched {
            touched_parts[self.stripe_of(id)].push((id, desc));
        }
        let mut deleted_parts: Vec<Vec<u64>> = vec![Vec::new(); n];
        for id in deleted {
            deleted_parts[self.stripe_of(id)].push(id);
        }
        // Participants come from the scope index, never from polling
        // the stripe latches: a poll would block behind every stripe
        // latch currently held across a force, re-serializing commits
        // the stripes are meant to decouple.
        let homes = self.scopes.lock().get(&txn).cloned().unwrap_or_default();
        let mut participating: Vec<usize> = (0..n)
            .filter(|&s| {
                !touched_parts[s].is_empty() || !deleted_parts[s].is_empty() || homes.contains(&s)
            })
            .collect();
        if participating.is_empty() {
            participating.push(0);
        }
        let participants = participating.len() as u32;
        for (at, &s) in participating.iter().enumerate() {
            let entry = WalEntry::Commit {
                txn,
                lsn,
                participants,
                touched: std::mem::take(&mut touched_parts[s]),
                deleted: std::mem::take(&mut deleted_parts[s]),
            };
            if let Err(e) = self.stripes[s].lock().append(entry) {
                // Void the parts already down: recovery would presume
                // abort on the incomplete set anyway, and the in-memory
                // view must agree with that verdict now.
                for &prior in &participating[..at] {
                    self.stripes[prior].lock().drop_txn(txn);
                }
                return Err(e);
            }
        }
        if participants > 1 {
            for &s in &participating {
                self.stripes[s].lock().resolve_txn(txn);
            }
        }
        self.scopes.lock().remove(&txn);
        Ok(participating)
    }

    /// Force everything appended so far to stable storage. Stripe 0's
    /// latch stands in for the whole log: any one stripe's force
    /// barriers the volume, and callers without a stripe set (format,
    /// recovery, solo barriers) don't contend with anyone.
    pub fn sync(&self) -> Result<()> {
        let stripe = self.stripes[0].lock();
        // `wal.stripe` is io = allowed (§13): holding the stripe's own
        // latch across its force is the design — it serializes forces
        // *per stripe* while other stripes' forces proceed.
        stripe.sync() // lint: allow(latch, reason = "wal.stripe is io=allowed; the guard covers only this stripe's force")
    }

    /// Force the named stripes — the per-stripe commit barrier. Each
    /// stripe's force holds only that stripe's latch, so forces for
    /// disjoint stripes overlap; two commits on the same stripe
    /// serialize there, preserving the one-barrier-then-one-force
    /// ordering per stripe.
    pub fn sync_stripes(&self, stripes: &[usize]) -> Result<()> {
        for &s in stripes {
            let stripe = self.stripes[s].lock();
            // durability: seals(commit-frame)
            stripe.sync()?; // lint: allow(latch, reason = "wal.stripe is io=allowed; the guard covers only this stripe's force")
        }
        Ok(())
    }

    /// Does `txn` have uncommitted entries on any stripe? Answered from
    /// the scope index (no stripe latch touched — this runs on the
    /// commit path's dirty check, concurrently with other stripes'
    /// forces). Conservative by one append: a scope whose only append
    /// *failed* still reads as pending until it commits or aborts.
    pub fn has_pending_for(&self, txn: TxnId) -> bool {
        self.scopes.lock().contains_key(&txn)
    }

    /// The uncommitted entries of one scope, merged across stripes in
    /// global LSN order.
    pub fn pending_for(&self, txn: TxnId) -> Vec<WalEntry> {
        let mut out: Vec<WalEntry> = Vec::new();
        for stripe in &self.stripes {
            out.extend(stripe.lock().pending_for(txn).cloned());
        }
        out.sort_by_key(WalEntry::lsn);
        out
    }

    /// The uncommitted tail across all scopes and stripes, in global
    /// LSN order — what a restart must roll back, newest first when
    /// walked in reverse.
    pub fn pending(&self) -> Vec<WalEntry> {
        let mut out: Vec<WalEntry> = Vec::new();
        for stripe in &self.stripes {
            out.extend(stripe.lock().pending().iter().cloned());
        }
        out.sort_by_key(WalEntry::lsn);
        out
    }

    /// Drop the uncommitted tail from the in-memory view of every
    /// stripe (recovery calls this after rolling it back).
    pub(crate) fn clear_pending(&self) {
        for stripe in &self.stripes {
            stripe.lock().clear_pending();
        }
        self.scopes.lock().clear();
    }

    /// The committed root map, merged across stripes. Each object's
    /// root lives on exactly one stripe (its home), so the union is
    /// disjoint.
    pub fn committed(&self) -> BTreeMap<u64, Vec<u8>> {
        let mut out = BTreeMap::new();
        for stripe in &self.stripes {
            out.extend(
                stripe
                    .lock()
                    .committed()
                    .iter()
                    .map(|(k, v)| (*k, v.clone())),
            );
        }
        out
    }

    /// Every logical op record seen, merged across stripes in LSN
    /// order — the view `eos-check` audits.
    pub fn records(&self) -> Vec<LogRecord> {
        let mut out: Vec<LogRecord> = Vec::new();
        for stripe in &self.stripes {
            out.extend(stripe.lock().records().iter().cloned());
        }
        out.sort_by_key(|r| r.lsn);
        out
    }

    /// Highest object id mentioned anywhere in the log.
    pub fn max_object_id(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.lock().max_object_id())
            .max()
            .unwrap_or(0)
    }

    /// Total records the attach scans replayed.
    pub fn records_scanned(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.lock().records_scanned())
            .sum()
    }

    /// Did any stripe's attach scan cut a torn tail?
    pub fn torn_tail(&self) -> bool {
        self.stripes.iter().any(|s| s.lock().torn_tail())
    }

    /// Checkpoints taken since attach/format, all stripes.
    pub fn checkpoints_taken(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.lock().checkpoints_taken())
            .sum()
    }

    /// Bytes of active halves already used by records, all stripes.
    pub fn bytes_used(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().bytes_used()).sum()
    }

    /// Checkpoint every stripe (flip halves, drop dead records).
    pub fn checkpoint(&self) -> Result<()> {
        for stripe in &self.stripes {
            stripe.lock().checkpoint()?;
        }
        Ok(())
    }

    /// Wire every stripe's instruments into `metrics`.
    pub(crate) fn set_metrics(&self, metrics: &Metrics) {
        for stripe in &self.stripes {
            stripe.lock().set_metrics(metrics);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eos_pager::{DiskProfile, MemVolume};

    fn vol(pages: u64) -> SharedVolume {
        MemVolume::with_profile(512, pages, DiskProfile::FREE).shared()
    }

    fn commit_one(wal: &StripedWal, txn: TxnId, object: u64, tag: u8) -> Vec<usize> {
        let lsn = wal.allocate_lsn();
        wal.append_commit(txn, lsn, vec![(object, vec![tag; 4])], Vec::new())
            .unwrap()
    }

    #[test]
    fn entries_route_to_their_objects_stripe() {
        let v = vol(64);
        let wal = StripedWal::format(&v, 0, 32, 4).unwrap();
        assert_eq!(wal.num_stripes(), 4);
        for object in 0..8u64 {
            let lsn = wal.allocate_lsn();
            wal.append(WalEntry::Touch {
                txn: object,
                lsn,
                object,
                root_after: vec![0xAA],
            })
            .unwrap();
        }
        // Each object's entry is pending on exactly its home stripe.
        for object in 0..8u64 {
            let home = wal.stripe_of(object);
            assert_eq!(home, (object % 4) as usize);
            let pend = wal.pending_for(object);
            assert_eq!(pend.len(), 1);
        }
        // Commits route home too, and the merged committed map sees all.
        for object in 0..8u64 {
            let stripes = commit_one(&wal, object, object, object as u8);
            assert_eq!(stripes, vec![wal.stripe_of(object)]);
        }
        assert_eq!(wal.committed().len(), 8);
        assert!(!wal.has_pending_for(3));
    }

    #[test]
    fn cross_stripe_commit_survives_reattach_when_all_parts_landed() {
        let v = vol(64);
        let base = 0;
        let pages = 32;
        {
            let wal = StripedWal::format(&v, base, pages, 2).unwrap();
            let lsn = wal.allocate_lsn();
            // Objects 4 and 5 live on stripes 0 and 1: two parts.
            let stripes = wal
                .append_commit(7, lsn, vec![(4, vec![1]), (5, vec![2])], Vec::new())
                .unwrap();
            assert_eq!(stripes, vec![0, 1]);
            assert_eq!(wal.committed().len(), 2);
            wal.sync().unwrap();
        }
        let wal = StripedWal::attach(&v, base, pages, 2).unwrap();
        let committed = wal.committed();
        assert_eq!(committed.get(&4), Some(&vec![1]));
        assert_eq!(committed.get(&5), Some(&vec![2]));
        assert!(wal.pending().is_empty());
    }

    #[test]
    fn incomplete_cross_stripe_commit_is_presumed_aborted() {
        let v = vol(64);
        let base = 0;
        let pages = 32;
        {
            let wal = StripedWal::format(&v, base, pages, 2).unwrap();
            let lsn = wal.allocate_lsn();
            // Forge the crash window: only stripe 0's part lands.
            wal.stripes[0]
                .lock()
                .append(WalEntry::Commit {
                    txn: 9,
                    lsn,
                    participants: 2,
                    touched: vec![(4, vec![1])],
                    deleted: Vec::new(),
                })
                .unwrap();
            wal.sync().unwrap();
        }
        let wal = StripedWal::attach(&v, base, pages, 2).unwrap();
        // The lone part is void: nothing committed, nothing pending
        // (the part carried no Op entries to roll back).
        assert!(wal.committed().is_empty());
        assert!(wal.pending().is_empty());
    }

    #[test]
    fn single_stripe_layout_matches_unstriped_log() {
        let v = vol(64);
        {
            let wal = StripedWal::format(&v, 0, 32, 1).unwrap();
            commit_one(&wal, 1, 10, 0xCC);
            wal.sync().unwrap();
        }
        // The plain DurableWal attaches to the same region and sees the
        // same state: stripes=1 is byte-identical to the unstriped log.
        let plain = DurableWal::attach(v, 0, 32).unwrap();
        assert_eq!(plain.committed().get(&10), Some(&vec![0xCC; 4]));
    }
}
