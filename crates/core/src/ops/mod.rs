//! Executors for the §4 operations. Each submodule turns the pure plans
//! of [`crate::reshuffle`] and the tree plumbing of [`crate::tree`] into
//! volume reads/writes and buddy-allocator calls.

pub(crate) mod append;
pub(crate) mod delete;
pub(crate) mod insert;
pub(crate) mod read;
pub(crate) mod replace;
