//! The insert operation (§4.3.1), with §4.4 page reshuffling.
//!
//! Inserting `Ic` bytes at byte `B` of segment S conceptually creates
//! three segments (Fig 6): **L** — the bytes of S left of the insertion
//! point (physically the unchanged prefix of S, including the partially
//! kept page P); **N** — a brand-new segment holding the inserted bytes
//! followed by the tail of page P (plus whatever reshuffling moves in);
//! **R** — the pages of S after P, kept in place. Existing leaf pages
//! are never overwritten; only the new segment is written and the index
//! is fixed (§4.5).

use crate::config::Threshold;
use crate::consolidate::consolidate_leaf_parent;
use crate::error::{Error, Result};
use crate::node::Entry;
use crate::object::LargeObject;
use crate::reshuffle::reshuffle;
use crate::store::ObjectStore;
use crate::tree::{descend, leaf_entry, propagate};

pub(crate) fn run(
    store: &mut ObjectStore,
    obj: &mut LargeObject,
    offset: u64,
    data: &[u8],
) -> Result<()> {
    let size = obj.size();
    if offset > size {
        return Err(Error::OutOfObjectBounds {
            offset,
            len: data.len() as u64,
            object_size: size,
        });
    }
    if data.is_empty() {
        return Ok(());
    }
    if offset == size {
        // Insertion at the very end is an append.
        let mut s = super::append::AppendSession::open(store, obj, None)?;
        s.append(data)?;
        return s.close();
    }

    let ps = store.ps();
    let ic = data.len() as u64;
    // Step 1: traverse the tree, saving the path.
    let (path, rel) = descend(store, obj, offset)?;
    let e = leaf_entry(&path);
    let (sc, s_ptr) = (e.bytes, e.ptr);
    let s_pages = sc.div_ceil(ps);

    // Step 2: preparation (the paper's L/N/R arithmetic).
    let p = rel / ps;
    let pb = rel % ps;
    let last = s_pages - 1;
    let pc = if p == last { sc - last * ps } else { ps };
    let l0 = p * ps + pb;
    let r0 = if p == last { 0 } else { sc - (p + 1) * ps };
    let n0 = ic + pc - pb;

    // Step 3: reshuffle bytes and pages of L, N, R.
    let parent_fill = path.last().expect("path").node.entries.len();
    let t = store.effective_threshold(obj, parent_fill);
    let plan = reshuffle(l0, n0, r0, ps, t, store.max_seg_pages());
    store.note_reshuffle(t, &plan);

    // Step 4: read the needed pages of S in one contiguous call, build
    // N, and write it.
    // Bytes of S feeding N: the tail of L, the tail of page P, and the
    // head of R — a contiguous byte range of S starting at l0 − from_l.
    let lo_page = (l0 - plan.from_l) / ps;
    let hi_page = if plan.from_r > 0 {
        p + 1 + (plan.from_r - 1) / ps
    } else {
        p
    };
    let src = store
        .volume()
        .read_pages(s_ptr + lo_page, hi_page - lo_page + 1)?;
    let at = |byte: u64| (byte - lo_page * ps) as usize;

    let mut n_bytes = Vec::with_capacity(plan.n as usize);
    n_bytes.extend_from_slice(&src[at(l0 - plan.from_l)..at(l0)]);
    n_bytes.extend_from_slice(data);
    n_bytes.extend_from_slice(&src[at(rel)..at(p * ps + pc)]);
    if plan.from_r > 0 {
        let r_start = (p + 1) * ps;
        n_bytes.extend_from_slice(&src[at(r_start)..at(r_start + plan.from_r)]);
    }
    debug_assert_eq!(n_bytes.len() as u64, plan.n);
    let n_entries = write_new_segments(store, &n_bytes)?;

    // Free the pages of S that belong to neither L′ nor R′ (one
    // contiguous run: L′'s trimmed tail, page P, and R's donated head).
    let keep_l_pages = plan.l.div_ceil(ps);
    let donated_r_pages = if r0 > 0 && plan.r == 0 {
        s_pages - (p + 1)
    } else {
        plan.from_r / ps
    };
    let free_lo = keep_l_pages;
    let free_hi = if r0 > 0 {
        p + 1 + donated_r_pages
    } else {
        s_pages
    };
    if free_hi > free_lo {
        store.free_pages(s_ptr + free_lo, free_hi - free_lo)?;
    }

    // Step 5: fix the parent with entries for L, N, R (sizes > 0) and
    // propagate counts and pointers to the root.
    let mut repl = Vec::with_capacity(2 + n_entries.len());
    if plan.l > 0 {
        repl.push(Entry {
            bytes: plan.l,
            ptr: s_ptr,
        });
    }
    repl.extend(n_entries);
    if plan.r > 0 {
        repl.push(Entry {
            bytes: plan.r,
            ptr: s_ptr + p + 1 + donated_r_pages,
        });
    }
    let mut path = path;
    let bottom = path.last_mut().expect("path");
    bottom
        .node
        .entries
        .splice(bottom.child..bottom.child + 1, repl);
    // [Bili91a] group reallocation: under the adaptive policy, if the
    // new entries are about to split the parent, first merge adjacent
    // unsafe segments — often the node then fits again.
    let consolidated = if bottom.node.entries.len() > store.node_cap()
        && matches!(obj.threshold(), Threshold::Adaptive { .. })
    {
        consolidate_leaf_parent(store, &mut bottom.node, t)?.runs_merged > 0
    } else {
        false
    };
    propagate(store, obj, path)?;
    if consolidated {
        // Consolidation may have left the node under half full.
        crate::tree::repair_seam(store, obj, offset)?;
    }
    Ok(())
}

/// Allocate and write `bytes` as one segment, or several maximum-size
/// segments when it exceeds the largest the buddy system hands out
/// (also used by the delete executor for its new segment N).
pub(crate) fn write_new_segments(store: &mut ObjectStore, bytes: &[u8]) -> Result<Vec<Entry>> {
    let ps = store.ps();
    let max_bytes = (store.max_seg_pages() * ps) as usize;
    let mut out = Vec::with_capacity(bytes.len().div_ceil(max_bytes));
    for chunk in bytes.chunks(max_bytes) {
        let pages = (chunk.len() as u64).div_ceil(ps);
        let ext = store.alloc_extent(pages)?;
        let mut buf = chunk.to_vec();
        buf.resize((pages * ps) as usize, 0);
        store.volume().write_pages(ext.start, &buf)?;
        out.push(Entry {
            bytes: chunk.len() as u64,
            ptr: ext.start,
        });
    }
    Ok(out)
}
