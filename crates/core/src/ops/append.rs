//! The append/create operation (§4.1).
//!
//! Appends run inside an [`AppendSession`]:
//!
//! * With a **size hint**, "the large object manager allocates a segment
//!   just large enough to hold the entire object" (maximum-size segments
//!   if it exceeds the largest segment), and successive chunks are laid
//!   down back to back with no holes (Fig 5.a).
//! * With the size **unknown**, "successive segments allocated for
//!   storage double in size until the maximum segment size is reached"
//!   (Fig 5.b — the Starburst growth scheme).
//! * "At the end of these multi-append operations the last allocated
//!   segment is always trimmed", which is trivial because the buddy
//!   system frees with one-page precision.
//!
//! If the object already ends in a partial page, those bytes are
//! absorbed into the first new segment (the old partial page is freed),
//! so an append never overwrites an existing leaf page (§4.5).

use eos_pager::PageId;

use crate::error::Result;
use crate::node::Entry;
use crate::object::LargeObject;
use crate::store::ObjectStore;
use crate::tree::{self, descend, leaf_entry};

/// A multi-append session. Obtain with
/// [`ObjectStore::open_append`](crate::ObjectStore::open_append), feed
/// it chunks with [`AppendSession::append`], and finish with
/// [`AppendSession::close`] — closing trims the tail segment and splices
/// the new segments into the tree.
pub struct AppendSession<'a> {
    store: &'a mut ObjectStore,
    obj: &'a mut LargeObject,
    /// Bytes the caller promised are still coming (`None` = unknown).
    hint_remaining: Option<u64>,
    /// Partial-page bytes absorbed from the old tail segment; the tree
    /// entry shrinks by this many bytes at close.
    shrink_last_by: u64,
    /// The currently open (not yet full) segment.
    seg: Option<OpenSeg>,
    /// Completed segments awaiting the tree splice.
    done: Vec<Entry>,
    /// Pages of the last allocation — the doubling base.
    last_alloc_pages: u64,
    closed: bool,
    /// The `append` attribution span of a *public* session
    /// ([`ObjectStore::open_append`](crate::ObjectStore::open_append));
    /// internal callers (create, the logged variants) run under their
    /// own span and leave this `None`. Dropped with the session, after
    /// the closing trim and splice.
    span: Option<eos_obs::OpSpan>,
}

struct OpenSeg {
    start: PageId,
    alloc_pages: u64,
    full_pages: u64,
    /// Bytes of the trailing partial page, buffered until the page
    /// fills or the session closes.
    partial: Vec<u8>,
}

impl OpenSeg {
    fn bytes(&self, ps: u64) -> u64 {
        self.full_pages * ps + self.partial.len() as u64
    }

    fn capacity_left(&self, ps: u64) -> u64 {
        self.alloc_pages * ps - self.bytes(ps)
    }
}

impl<'a> AppendSession<'a> {
    pub(crate) fn open(
        store: &'a mut ObjectStore,
        obj: &'a mut LargeObject,
        additional_bytes_hint: Option<u64>,
    ) -> Result<AppendSession<'a>> {
        let ps = store.ps();
        let mut shrink_last_by = 0u64;
        let mut partial0: Vec<u8> = Vec::new();
        let mut last_alloc_pages = 0u64;
        if !obj.is_empty() {
            // Absorb the old partial tail page, if any.
            let (path, _) = descend(store, obj, obj.size() - 1)?;
            let e = leaf_entry(&path);
            let seg_pages = e.bytes.div_ceil(ps);
            last_alloc_pages = seg_pages;
            let sm = e.bytes % ps;
            if sm != 0 {
                let page = store.volume().read_pages(e.ptr + seg_pages - 1, 1)?;
                partial0.extend_from_slice(&page[..sm as usize]);
                shrink_last_by = sm;
                store.free_pages(e.ptr + seg_pages - 1, 1)?;
            }
        }
        let seg = if partial0.is_empty() {
            None
        } else {
            // The absorbed bytes restart in a fresh (1-page, for now)
            // segment; appends extend it under the growth policy.
            let want = additional_bytes_hint
                .map_or(1, |h| (h + partial0.len() as u64).div_ceil(ps))
                .min(store.max_seg_pages())
                .max(1);
            let ext = store.alloc_up_to(want)?;
            Some(OpenSeg {
                start: ext.start,
                alloc_pages: ext.pages,
                full_pages: 0,
                partial: partial0,
            })
        };
        if let Some(s) = &seg {
            last_alloc_pages = s.alloc_pages;
        }
        Ok(AppendSession {
            store,
            obj,
            hint_remaining: additional_bytes_hint,
            shrink_last_by,
            seg,
            done: Vec::new(),
            last_alloc_pages,
            closed: false,
            span: None,
        })
    }

    /// Attach the attribution span that should live as long as the
    /// session (set by
    /// [`ObjectStore::open_append`](crate::ObjectStore::open_append)
    /// only).
    pub(crate) fn attach_span(&mut self, span: eos_obs::OpSpan) {
        self.span = Some(span);
    }

    /// Append one chunk at the end of the object.
    pub fn append(&mut self, data: &[u8]) -> Result<()> {
        assert!(!self.closed, "append on a closed session");
        let ps = self.store.ps();
        let mut src = data;
        while !src.is_empty() {
            if self.seg.as_ref().is_none_or(|s| s.capacity_left(ps) == 0) {
                self.finish_segment()?;
                self.alloc_segment(src.len() as u64)?;
            }
            let seg = self.seg.as_mut().expect("just allocated");
            let take = (seg.capacity_left(ps)).min(src.len() as u64) as usize;
            let (chunk, rest) = src.split_at(take);
            src = rest;
            // Compose the buffered partial bytes with the chunk and
            // write all completed pages in one call.
            let buffered = seg.partial.len();
            let complete = (buffered + chunk.len()) / ps as usize;
            if complete > 0 {
                let mut buf = Vec::with_capacity(complete * ps as usize);
                buf.extend_from_slice(&seg.partial);
                let need = complete * ps as usize - buffered;
                buf.extend_from_slice(&chunk[..need]);
                self.store
                    .volume()
                    .write_pages(seg.start + seg.full_pages, &buf)?;
                seg.full_pages += complete as u64;
                seg.partial.clear();
                seg.partial.extend_from_slice(&chunk[need..]);
            } else {
                seg.partial.extend_from_slice(chunk);
            }
            if let Some(h) = &mut self.hint_remaining {
                *h = h.saturating_sub(take as u64);
            }
        }
        Ok(())
    }

    /// Bytes appended so far in this session (excluding absorbed ones).
    pub fn appended(&self) -> u64 {
        let ps = self.store.ps();
        let open = self.seg.as_ref().map_or(0, |s| s.bytes(ps));
        self.done.iter().map(|e| e.bytes).sum::<u64>() + open - self.shrink_last_by
    }

    /// Flush the tail, trim the last segment, and splice the new
    /// segments into the tree.
    pub fn close(mut self) -> Result<()> {
        self.finish_segment()?;
        self.closed = true;
        let done = std::mem::take(&mut self.done);
        if done.is_empty() && self.shrink_last_by == 0 {
            return Ok(());
        }
        tree::append_entries(self.store, self.obj, done, self.shrink_last_by)?;
        self.store.paranoid_check(self.obj)
    }

    /// Allocate the next segment under the §4.1 growth policy.
    fn alloc_segment(&mut self, upcoming: u64) -> Result<()> {
        debug_assert!(self.seg.is_none());
        let ps = self.store.ps();
        let max = self.store.max_seg_pages();
        let want = match self.hint_remaining {
            // Known size: just large enough (a run of maximum-size
            // segments when very large).
            Some(h) => h.max(upcoming).div_ceil(ps).clamp(1, max),
            // Unknown: double the previous allocation.
            None => (self.last_alloc_pages * 2).clamp(1, max),
        };
        let ext = self.store.alloc_up_to(want)?;
        self.last_alloc_pages = ext.pages;
        self.seg = Some(OpenSeg {
            start: ext.start,
            alloc_pages: ext.pages,
            full_pages: 0,
            partial: Vec::new(),
        });
        Ok(())
    }

    /// Flush the partial page, trim unused pages, record the entry.
    fn finish_segment(&mut self) -> Result<()> {
        let Some(mut seg) = self.seg.take() else {
            return Ok(());
        };
        let ps = self.store.ps();
        let bytes = seg.bytes(ps);
        if !seg.partial.is_empty() {
            // Flush the partial tail page, zero-padded.
            seg.partial.resize(ps as usize, 0);
            self.store
                .volume()
                .write_pages(seg.start + seg.full_pages, &seg.partial)?;
            seg.full_pages += 1;
            seg.partial.clear();
        }
        let used = bytes.div_ceil(ps);
        if used < seg.alloc_pages {
            // Trim: "the last allocated segment is always trimmed".
            self.store
                .free_pages(seg.start + used, seg.alloc_pages - used)?;
        }
        if bytes > 0 {
            self.done.push(Entry {
                bytes,
                ptr: seg.start,
            });
        }
        // bytes == 0: the trim above already returned the whole extent.
        Ok(())
    }
}

impl Drop for AppendSession<'_> {
    fn drop(&mut self) {
        // Dropping without close() (e.g. unwinding out of an I/O error)
        // leaks the session's segments unless a transaction scope is
        // open — abort_txn reclaims them. Nothing to assert here: the
        // leak is the documented contract of abandoning a session.
    }
}
