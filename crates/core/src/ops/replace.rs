//! The byte-range replace operation (§4.2).
//!
//! Replace locates the range with the search algorithm and overwrites
//! leaf pages **in place** — it is the one update that modifies leaf
//! pages and leaves the index untouched, so it is protected by logging
//! rather than shadowing (§4.5). Only partially overwritten boundary
//! pages need to be read first.

use crate::error::{Error, Result};
use crate::object::LargeObject;
use crate::store::ObjectStore;
use crate::tree::{descend, leaf_entry};

pub(crate) fn run(
    store: &mut ObjectStore,
    obj: &mut LargeObject,
    offset: u64,
    data: &[u8],
) -> Result<()> {
    let size = obj.size();
    let len = data.len() as u64;
    if offset.checked_add(len).is_none_or(|end| end > size) {
        return Err(Error::OutOfObjectBounds {
            offset,
            len,
            object_size: size,
        });
    }
    if data.is_empty() {
        return Ok(());
    }
    let ps = store.ps();
    let (mut path, mut rel) = descend(store, obj, offset)?;
    let mut src = data;
    loop {
        let e = leaf_entry(&path);
        let take = (e.bytes - rel).min(src.len() as u64);
        let p0 = rel / ps;
        let p1 = (rel + take - 1) / ps;
        let npages = p1 - p0 + 1;
        let mut buf = vec![0u8; (npages * ps) as usize];
        let head = (rel - p0 * ps) as usize; // bytes kept before the range
                                             // Bytes of the last covered page that survive past the range.
                                             // The page may be the segment's partial last page.
        let page_end = ((p1 + 1) * ps).min(e.bytes);
        let tail = (page_end - (rel + take)) as usize;
        if head > 0 {
            let page = store.volume().read_pages(e.ptr + p0, 1)?;
            buf[..ps as usize].copy_from_slice(&page);
        }
        if tail > 0 && (p1 > p0 || head == 0) {
            let page = store.volume().read_pages(e.ptr + p1, 1)?;
            let off = ((npages - 1) * ps) as usize;
            buf[off..].copy_from_slice(&page);
        }
        buf[head..head + take as usize].copy_from_slice(&src[..take as usize]);
        store.volume().write_pages(e.ptr + p0, &buf)?;
        src = &src[take as usize..];
        if src.is_empty() {
            return Ok(());
        }
        super::read::advance(store, &mut path)?;
        rel = 0;
    }
}
